"""Figure 9: fine (K, lambda) grid search on the B2B corpus.

Paper claims reproduced here:

* the recall landscape over (K, lambda) has a clear 'hot' region;
* the optimum of a fine grid search is at least as good as the best value
  inside the narrow coarse-grid region used by the CPU-only experiments —
  the reason the paper invests in fast (GPU / scale-out) search.

The combinations are evaluated through the process-pool executor, the
reproduction's stand-in for the paper's Spark-over-GPUs deployment.
"""

from __future__ import annotations

import numpy as np
from _report import write_bench_json
from conftest import run_once, scaled, smoke_mode

from repro.experiments.gridsearch import run_grid_search_experiment
from repro.experiments.paper_reference import PAPER_CLAIMS
from repro.parallel import ProcessExecutor


def test_fig9_grid_search(benchmark, report_writer):
    params = scaled(
        dict(
            k_values=(5, 10, 20, 40, 60),
            lambda_values=(0.0, 1.0, 5.0, 20.0, 60.0),
            n_clients=250,
            n_products=40,
            max_iterations=40,
            max_workers=4,
        ),
        k_values=(5, 10),
        lambda_values=(1.0, 5.0),
        n_clients=80,
        n_products=20,
        max_iterations=10,
        max_workers=2,
    )
    k_values = params.pop("k_values")
    lambda_values = params.pop("lambda_values")
    max_workers = params.pop("max_workers")

    def run():
        with ProcessExecutor(max_workers=max_workers) as executor:
            return run_grid_search_experiment(
                k_values=k_values,
                lambda_values=lambda_values,
                m=15,
                executor=executor,
                random_state=0,
                **params,
            )

    result = run_once(benchmark, run)

    lines = [
        result.to_text(),
        "",
        f"paper: {PAPER_CLAIMS['fig9_grid']}",
        f"grid evaluated: {len(k_values)} x {len(lambda_values)} = "
        f"{len(k_values) * len(lambda_values)} combinations (paper: 625), "
        "distributed over a process pool (paper: 8 GPUs via Spark)",
    ]
    report_writer("fig9_grid_search", "\n".join(lines))
    write_bench_json(
        "fig9_grid_search",
        dict(
            best_fine_score=result.best_fine["score"],
            best_coarse_score=result.best_coarse["score"],
            grid_min=float(result.grid.min()),
            grid_max=float(result.grid.max()),
        ),
        grid_size=len(k_values) * len(lambda_values),
        max_workers=max_workers,
    )

    # The score grid is complete in every mode.
    assert result.grid is not None and not np.isnan(result.grid).any()
    if smoke_mode():
        return
    # The fine-grid optimum is at least as good as the best score inside the
    # coarse region.
    assert result.best_fine["score"] >= result.best_coarse["score"] - 1e-12
    # The landscape is not flat: the hot region is clearly better than the
    # worst configuration (otherwise the search would be pointless).
    assert result.best_fine["score"] > float(result.grid.min()) + 1e-6
