"""Request-batching benchmark: many small concurrent requests, with and
without the micro-batching front-end.

The paper's deployment serves many concurrent B2B clients, each asking for a
handful of users at a time.  Unbatched, every such request is one sharded
dispatch — for a four-user request the executor round-trip dwarfs the four
rows of BLAS work, so dispatch overhead bounds users/s.  The
:class:`~repro.runtime.BatchingFrontEnd` coalesces concurrent requests into
micro-batches under a latency bound; this benchmark drives the same client
threads down both paths and reports users/s, the coalescing ratio (runtime
dispatches per client request) and the batch occupancy.

Batched throughput is asserted >= unbatched in full mode on hosts with at
least :data:`WORKERS` cores; rankings are asserted identical request by
request on both paths, always.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np
from _report import write_bench_json
from conftest import run_once, scaled, smoke_mode

from repro.api import RecommendRequest
from repro.core.ocular import OCuLaR
from repro.data.datasets import make_netflix_like
from repro.runtime import BatchingFrontEnd, RecommenderRuntime
from repro.utils.tables import format_table

#: Worker-pool size of the serving runtime.
WORKERS = 2

#: Client threads submitting concurrently (the paper's many-tenant shape).
CLIENTS = 16


def _run_clients(n_clients, requests, serve_one):
    """Drive ``requests`` through ``serve_one`` from ``n_clients`` threads.

    Returns (seconds, results) with ``results`` aligned to ``requests``.
    """
    results = [None] * len(requests)
    cursor = iter(range(len(requests)))
    lock = threading.Lock()
    errors: list = []

    def worker() -> None:
        try:
            while True:
                with lock:
                    index = next(cursor, None)
                if index is None:
                    return
                results[index] = serve_one(requests[index])
        except Exception as exc:  # pragma: no cover - failure mode
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(n_clients)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - start
    if errors:
        raise errors[0]
    return seconds, results


def test_batched_vs_unbatched_small_requests(benchmark, report_writer):
    params = scaled(
        dict(
            n_users=2000,
            n_items=200,
            n_coclusters=16,
            n_requests=192,
            users_per_request=4,
            top_n=10,
            max_delay_ms=4.0,
            max_batch_users=512,
        ),
        n_users=200,
        n_items=60,
        n_coclusters=6,
        n_requests=24,
    )
    matrix, _spec = make_netflix_like(
        n_users=params["n_users"], n_items=params["n_items"], random_state=0
    )
    rng = np.random.default_rng(0)
    requests = [
        [int(u) for u in rng.integers(0, params["n_users"], size=params["users_per_request"])]
        for _ in range(params["n_requests"])
    ]
    total_users = sum(len(r) for r in requests)

    with RecommenderRuntime(executor="process", max_workers=WORKERS) as runtime:
        runtime.fit(
            OCuLaR(
                n_coclusters=params["n_coclusters"],
                regularization=5.0,
                max_iterations=3,
                tolerance=0.0,
                random_state=0,
            ),
            matrix,
        )
        runtime.publish()
        reference = runtime.engine.recommend_batch(
            [u for r in requests for u in r], n_items=params["top_n"]
        )
        runtime.recommend(  # warm the pool
            RecommendRequest(users=requests[0], n_items=params["top_n"])
        )

        # Unbatched: each client request is its own sharded runtime dispatch.
        calls_before = runtime.serving_calls
        unbatched_seconds, unbatched = _run_clients(
            CLIENTS,
            requests,
            lambda users: runtime.recommend(
                RecommendRequest(users=users, n_items=params["top_n"])
            ).rankings,
        )
        unbatched_calls = runtime.serving_calls - calls_before

        # Batched: the same client threads submit through the front-end.
        def batched_run():
            calls_at_start = runtime.serving_calls
            with BatchingFrontEnd(
                runtime,
                max_delay_ms=params["max_delay_ms"],
                max_batch_users=params["max_batch_users"],
            ) as front:
                seconds, results = _run_clients(
                    CLIENTS,
                    requests,
                    lambda users: front.recommend(
                        RecommendRequest(users=users, n_items=params["top_n"]),
                        timeout=300,
                    ).rankings,
                )
                stats = front.stats()
            return seconds, results, stats, runtime.serving_calls - calls_at_start

        batched_seconds, batched, stats, batched_calls = run_once(benchmark, batched_run)

    # Both paths produce exactly the unbatched single-engine rankings.
    flat_unbatched = [r for result in unbatched for r in result]
    flat_batched = [r for result in batched for r in result]
    for expected, plain, coalesced in zip(reference, flat_unbatched, flat_batched):
        assert np.array_equal(expected, plain)
        assert np.array_equal(expected, coalesced)

    unbatched_rate = total_users / unbatched_seconds
    batched_rate = total_users / batched_seconds
    table = format_table(
        ["path", "seconds", "users/s", "runtime dispatches", "mean batch users"],
        [
            [
                "unbatched (1 dispatch/request)",
                f"{unbatched_seconds:.3f}",
                f"{unbatched_rate:,.0f}",
                str(unbatched_calls),
                f"{total_users / unbatched_calls:.1f}",
            ],
            [
                "micro-batched front-end",
                f"{batched_seconds:.3f}",
                f"{batched_rate:,.0f}",
                str(batched_calls),
                f"{stats.mean_occupancy:.1f}",
            ],
        ],
    )
    lines = [
        f"micro-batched vs unbatched serving — {params['n_requests']} requests x "
        f"{params['users_per_request']} users from {CLIENTS} client threads, "
        f"top-{params['top_n']}, {WORKERS} workers, "
        f"max_delay={params['max_delay_ms']}ms, cap={params['max_batch_users']} users",
        table,
        f"speedup: {batched_rate / unbatched_rate:.2f}x | queue p95: "
        f"{stats.queue_p95_ms:.1f} ms | requests/batch: "
        f"{stats.mean_requests_per_batch:.1f}",
        f"host cores: {os.cpu_count()}",
    ]
    report_writer("request_batching", "\n".join(lines))
    write_bench_json(
        "request_batching",
        dict(
            unbatched_users_per_s=unbatched_rate,
            batched_users_per_s=batched_rate,
            speedup=batched_rate / unbatched_rate,
            queue_p95_ms=stats.queue_p95_ms,
            mean_occupancy=stats.mean_occupancy,
        ),
        n_requests=params["n_requests"],
        users_per_request=params["users_per_request"],
    )

    # Coalescing must be real (fewer dispatches than requests), and with
    # dispatch overhead amortised over whole batches the batched path must
    # serve at least as many users per second as one-dispatch-per-request.
    assert batched_calls < params["n_requests"]
    assert stats.mean_occupancy > params["users_per_request"]
    if not smoke_mode() and (os.cpu_count() or 1) >= WORKERS:
        assert batched_rate >= unbatched_rate, (
            f"micro-batching served {batched_rate:,.0f} users/s vs "
            f"{unbatched_rate:,.0f} unbatched"
        )
