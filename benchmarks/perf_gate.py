#!/usr/bin/env python
"""Perf-regression smoke gate over the committed benchmark baselines.

Every ``bench_*.py`` writes its headline numbers to
``results/BENCH_<name>.json``; this script compares each benchmark's
headline metric against the snapshot committed under ``baselines/`` and
fails (exit 1) when a metric has regressed by more than a generous ratio.
The gate is deliberately loose — benchmark hosts differ wildly, CI runs in
smoke mode on shared runners — its job is to catch a silent 5x cliff
(an accidentally disabled fast path, a quadratic slip), not 20% noise.

Comparisons are skipped, never failed, when they would be meaningless:
missing baseline, missing result, missing metric, or a smoke-flag mismatch
(full-mode numbers must not be judged against smoke baselines or vice
versa).

Usage::

    python benchmarks/perf_gate.py                # gate results/ vs baselines/
    python benchmarks/perf_gate.py --ratio 3.0    # tighter ratio
    REPRO_PERF_GATE_RATIO=10 python benchmarks/perf_gate.py

Refreshing baselines after an intentional perf change::

    REPRO_BENCH_SMOKE=1 pytest benchmarks/ --benchmark-disable -q
    cp benchmarks/results/BENCH_*.json benchmarks/baselines/
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

BENCH_DIR = Path(__file__).parent
RESULTS_DIR = BENCH_DIR / "results"
BASELINES_DIR = BENCH_DIR / "baselines"

#: Environment override for the regression ratio.
RATIO_ENV = "REPRO_PERF_GATE_RATIO"

#: Default regression ratio: a headline metric may degrade up to this factor
#: against the committed baseline before the gate fails.
DEFAULT_RATIO = 5.0

#: The one headline metric per benchmark and which direction is good.
#: ``"higher"``: the gate fails when result < baseline / ratio.
#: ``"lower"``:  the gate fails when result > baseline * ratio.
#: Benchmarks not listed here (accuracy tables, parity checks) are not
#: perf-gated — their own asserts guard correctness.
HEADLINES: Dict[str, Tuple[str, str]] = {
    "serving_hotpath": ("speedup", "higher"),
    "training_hotpath": ("speedup", "higher"),
    "serving_throughput": ("speedup", "higher"),
    "gateway_throughput": ("gateway_users_per_s", "higher"),
    "gateway_adaptive_delay": ("adaptive_p50_ms", "lower"),
    "request_batching": ("batched_users_per_s", "higher"),
    "cluster_serving": ("cluster_users_per_s", "higher"),
    "incremental_refit": ("speedup", "higher"),
    "parallel_training_speedup": ("speedup_2w", "higher"),
    "process_vs_thread_training": ("process_2w_seconds", "lower"),
    "runtime_warm_vs_cold": ("speedup", "higher"),
    "runtime_descriptor_serving": ("shared_seconds", "lower"),
    "fig8_backend_speedup": ("speedup_per_iteration", "higher"),
    "fig7_scalability": ("seconds_per_iteration_full_k10", "lower"),
}


@dataclass
class GateOutcome:
    """One benchmark's verdict."""

    bench: str
    status: str  # "ok" | "fail" | "skip"
    detail: str
    metric: Optional[str] = None
    baseline: Optional[float] = None
    result: Optional[float] = None


def resolve_ratio(ratio: Optional[float] = None) -> float:
    """The regression ratio: argument, then environment, then default."""
    if ratio is None:
        raw = os.environ.get(RATIO_ENV)
        if raw:
            try:
                ratio = float(raw)
            except ValueError:
                ratio = None
    if ratio is None or ratio <= 1.0:
        ratio = DEFAULT_RATIO
    return float(ratio)


def load_payload(path: Path) -> Optional[dict]:
    """Parse one ``BENCH_*.json``; ``None`` when absent or unparseable."""
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None


def evaluate_bench(
    bench: str,
    metric: str,
    direction: str,
    baseline_payload: Optional[dict],
    result_payload: Optional[dict],
    ratio: float,
) -> GateOutcome:
    """Gate one benchmark's headline metric against its baseline."""
    if baseline_payload is None:
        return GateOutcome(bench, "skip", "no committed baseline")
    if result_payload is None:
        return GateOutcome(bench, "skip", "no result (benchmark did not run)")
    if bool(baseline_payload.get("smoke")) != bool(result_payload.get("smoke")):
        return GateOutcome(
            bench,
            "skip",
            f"smoke-flag mismatch (baseline smoke={baseline_payload.get('smoke')}, "
            f"result smoke={result_payload.get('smoke')})",
        )
    baseline_value = baseline_payload.get("metrics", {}).get(metric)
    result_value = result_payload.get("metrics", {}).get(metric)
    if not isinstance(baseline_value, (int, float)) or isinstance(baseline_value, bool):
        return GateOutcome(bench, "skip", f"baseline lacks numeric metric {metric!r}")
    if not isinstance(result_value, (int, float)) or isinstance(result_value, bool):
        return GateOutcome(bench, "skip", f"result lacks numeric metric {metric!r}")
    baseline_value = float(baseline_value)
    result_value = float(result_value)
    if direction == "higher":
        floor = baseline_value / ratio
        ok = result_value >= floor
        detail = (
            f"{metric}: {result_value:.4g} vs baseline {baseline_value:.4g} "
            f"(floor {floor:.4g} at ratio {ratio:g})"
        )
    else:
        ceiling = baseline_value * ratio
        ok = result_value <= ceiling
        detail = (
            f"{metric}: {result_value:.4g} vs baseline {baseline_value:.4g} "
            f"(ceiling {ceiling:.4g} at ratio {ratio:g})"
        )
    return GateOutcome(
        bench,
        "ok" if ok else "fail",
        detail,
        metric=metric,
        baseline=baseline_value,
        result=result_value,
    )


def run_gate(
    results_dir: Path = RESULTS_DIR,
    baselines_dir: Path = BASELINES_DIR,
    ratio: Optional[float] = None,
) -> List[GateOutcome]:
    """Evaluate every registered benchmark; returns all outcomes."""
    ratio = resolve_ratio(ratio)
    outcomes = []
    for bench, (metric, direction) in sorted(HEADLINES.items()):
        outcomes.append(
            evaluate_bench(
                bench,
                metric,
                direction,
                load_payload(baselines_dir / f"BENCH_{bench}.json"),
                load_payload(results_dir / f"BENCH_{bench}.json"),
                ratio,
            )
        )
    return outcomes


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--ratio",
        type=float,
        default=None,
        help=f"regression ratio (default {DEFAULT_RATIO}, env {RATIO_ENV})",
    )
    parser.add_argument(
        "--results", type=Path, default=RESULTS_DIR, help="directory of fresh BENCH_*.json"
    )
    parser.add_argument(
        "--baselines",
        type=Path,
        default=BASELINES_DIR,
        help="directory of committed baseline BENCH_*.json",
    )
    args = parser.parse_args(argv)
    outcomes = run_gate(args.results, args.baselines, args.ratio)
    width = max(len(outcome.bench) for outcome in outcomes)
    for outcome in outcomes:
        print(f"[{outcome.status.upper():>4}] {outcome.bench:<{width}}  {outcome.detail}")
    failures = [outcome for outcome in outcomes if outcome.status == "fail"]
    checked = sum(outcome.status == "ok" for outcome in outcomes)
    print(
        f"\nperf gate: {checked} ok, {len(failures)} failed, "
        f"{sum(o.status == 'skip' for o in outcomes)} skipped"
    )
    if failures:
        print("perf gate FAILED — headline metrics regressed past the ratio:")
        for outcome in failures:
            print(f"  {outcome.bench}: {outcome.detail}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
