"""Figure 10 / Section VIII: deployment-style recommendation rationale.

Paper claim reproduced here: in the deployed B2B system every recommendation
card carries (a) the recommended product and a confidence, (b) a co-cluster
rationale that names the similar client companies, and (c) a price estimate
derived from the historical purchases of the co-cluster members.
"""

from __future__ import annotations

from _report import write_bench_json
from conftest import run_once, scaled, smoke_mode

from repro.experiments.deployment import run_deployment_example
from repro.experiments.paper_reference import PAPER_CLAIMS


def test_fig10_deployment_rationale(benchmark, report_writer):
    params = scaled(
        dict(n_clients=300, n_products=50, n_coclusters=12),
        n_clients=120,
        n_products=30,
        n_coclusters=8,
    )
    result = run_once(
        benchmark,
        run_deployment_example,
        n_reports=3,
        recommendations_per_client=3,
        random_state=0,
        **params,
    )

    lines = [
        result.to_text(),
        "",
        f"paper: {PAPER_CLAIMS['fig10_deployment']}",
        f"measured: {result.n_recommendations} recommendation cards generated; "
        f"{result.n_recommendations_with_rationale} with a co-cluster rationale, "
        f"{result.n_recommendations_with_price} with a price estimate",
    ]
    report_writer("fig10_deployment", "\n".join(lines))
    write_bench_json(
        "fig10_deployment",
        dict(
            n_recommendations=result.n_recommendations,
            with_rationale=result.n_recommendations_with_rationale,
            with_price=result.n_recommendations_with_price,
        ),
        **params,
    )

    assert result.n_recommendations == 9
    # Every card carries a rationale and a price estimate, as in the deployed
    # UI (the thinner smoke corpus supports a slightly weaker floor).
    floor = 6 if smoke_mode() else 8
    assert result.n_recommendations_with_rationale >= floor
    assert result.n_recommendations_with_price >= floor
    # The rationale text names actual client companies.
    text = result.to_text()
    assert "Corp" in text
    assert "confidence" in text
