"""Figure 5: recall@M and MAP@M versus M on the MovieLens-like corpus.

Paper claim reproduced here: "OCuLaR and R-OCuLaR are consistently better or
at least as good as the other recommendation techniques" across the whole
range of list lengths M.
"""

from __future__ import annotations

from _report import write_bench_json
from conftest import run_once, scaled, smoke_mode

from repro.experiments.accuracy import run_recall_curves
from repro.experiments.paper_reference import FIGURE5_PAPER_SHAPE


def test_fig5_recall_curves(benchmark, report_writer):
    params = scaled(
        dict(m_values=(5, 10, 20, 50, 100), scale=0.5, max_users=120),
        m_values=(5, 20, 50),
        scale=0.25,
        max_users=40,
    )
    result = run_once(
        benchmark,
        run_recall_curves,
        dataset="movielens",
        random_state=0,
        **params,
    )

    lines = [
        result.to_text(),
        "",
        "paper shape: " + "; ".join(f"{k}: {v}" for k, v in FIGURE5_PAPER_SHAPE.items()),
    ]
    report_writer("fig5_recall_curves", "\n".join(lines))
    last_m = result.m_values[-1]
    write_bench_json(
        "fig5_recall_curves",
        {
            f"recall_at_{last_m}_{name}": curves["recall"][-1]
            for name, curves in result.curves.items()
        },
        m_values=list(result.m_values),
    )

    # Recall curves are monotone in M for every method (holds at any scale).
    for name, curves in result.curves.items():
        recalls = curves["recall"]
        assert all(later >= earlier - 1e-9 for earlier, later in zip(recalls, recalls[1:]))

    if smoke_mode():
        return

    # Shape assertions: the best OCuLaR variant matches or beats every
    # baseline at the paper's headline cut-off (M = 50).
    index_50 = result.m_values.index(50)
    ocular_recall = max(
        result.curves["OCuLaR"]["recall"][index_50],
        result.curves["R-OCuLaR"]["recall"][index_50],
    )
    for name in ("wALS", "BPR", "user-based", "item-based"):
        assert ocular_recall >= result.curves[name]["recall"][index_50] - 0.02
