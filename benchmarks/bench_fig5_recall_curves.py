"""Figure 5: recall@M and MAP@M versus M on the MovieLens-like corpus.

Paper claim reproduced here: "OCuLaR and R-OCuLaR are consistently better or
at least as good as the other recommendation techniques" across the whole
range of list lengths M.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.accuracy import run_recall_curves
from repro.experiments.paper_reference import FIGURE5_PAPER_SHAPE

M_VALUES = (5, 10, 20, 50, 100)


def test_fig5_recall_curves(benchmark, report_writer):
    result = run_once(
        benchmark,
        run_recall_curves,
        dataset="movielens",
        m_values=M_VALUES,
        scale=0.5,
        max_users=120,
        random_state=0,
    )

    lines = [
        result.to_text(),
        "",
        "paper shape: " + "; ".join(f"{k}: {v}" for k, v in FIGURE5_PAPER_SHAPE.items()),
    ]
    report_writer("fig5_recall_curves", "\n".join(lines))

    # Shape assertions: the best OCuLaR variant matches or beats every
    # baseline at the paper's headline cut-off (M = 50), and recall curves
    # are monotone in M for every method.
    index_50 = result.m_values.index(50)
    ocular_recall = max(
        result.curves["OCuLaR"]["recall"][index_50],
        result.curves["R-OCuLaR"]["recall"][index_50],
    )
    for name in ("wALS", "BPR", "user-based", "item-based"):
        assert ocular_recall >= result.curves[name]["recall"][index_50] - 0.02
    for name, curves in result.curves.items():
        recalls = curves["recall"]
        assert all(later >= earlier - 1e-9 for earlier, later in zip(recalls, recalls[1:]))
