"""Parallel training: sharded sweeps vs the single-threaded vectorized backend.

Paper claim reproduced here (Sections IV/VI, Figure 8): the row subproblems
of a block sweep are independent, so gradient sweeps parallelise across
cores with near-linear scaling.  Two properties are asserted:

* **parity** — the parallel backend's fitted factors are *exactly* equal
  (``np.array_equal``, not allclose) to the vectorized backend's, because a
  shard computes the bit-identical row slice of the full sweep and shards
  are stitched in deterministic order;
* **speed-up** — at 4 workers on the Netflix-like corpus, per-iteration
  time improves by at least 1.5x over the single-threaded vectorized
  baseline (asserted in full mode on hosts with >= 4 cores; the smoke lane
  and small CI runners keep the parity assertion only, since thread
  parallelism cannot pay for itself without cores to run on).
"""

from __future__ import annotations

import os

import numpy as np
from _report import write_bench_json
from conftest import run_once, scaled, smoke_mode

from repro.core.ocular import OCuLaR
from repro.data.datasets import make_netflix_like
from repro.experiments.scalability import run_worker_scaling_study

#: Worker count the acceptance speed-up floor is asserted at.
SPEEDUP_WORKERS = 4

#: Minimum per-iteration speed-up over vectorized at :data:`SPEEDUP_WORKERS`.
SPEEDUP_FLOOR = 1.5


def test_parallel_training_speedup(benchmark, report_writer):
    params = scaled(
        dict(
            n_users=2000,
            n_items=600,
            n_coclusters=50,
            n_iterations=3,
            worker_counts=(1, 2, SPEEDUP_WORKERS),
        ),
        n_users=150,
        n_items=60,
        n_coclusters=8,
        n_iterations=2,
        worker_counts=(2,),
    )
    result = run_once(benchmark, run_worker_scaling_study, random_state=0, **params)

    lines = [
        result.to_text(),
        "",
        "paper: near-linear sweep scaling across cores/GPU threads (Sections IV/VI)",
        f"host cores: {os.cpu_count()}",
    ]
    report_writer("parallel_training_speedup", "\n".join(lines))
    write_bench_json(
        "parallel_training_speedup",
        dict(
            baseline_seconds=result.baseline_seconds,
            **{
                f"speedup_{n}w": result.speedup_at(n)
                for n in params["worker_counts"]
            },
        ),
        n_users=params["n_users"],
        n_items=params["n_items"],
    )

    # Structural shape always holds: every configuration was measured.
    assert result.baseline_seconds > 0
    assert result.worker_counts() == sorted(params["worker_counts"])

    # The speed-up floor is an acceptance criterion of the full benchmark;
    # thread scaling needs physical cores, so it is only meaningful there.
    if not smoke_mode() and (os.cpu_count() or 1) >= SPEEDUP_WORKERS:
        assert result.speedup_at(SPEEDUP_WORKERS) >= SPEEDUP_FLOOR, (
            f"parallel backend at {SPEEDUP_WORKERS} workers reached only "
            f"{result.speedup_at(SPEEDUP_WORKERS):.2f}x over vectorized"
        )


def test_process_vs_thread_training(benchmark, report_writer):
    """Process sharding (shared-memory descriptors) vs thread sharding.

    Threads rely on NumPy releasing the GIL; the shared-memory process
    executor sidesteps the GIL entirely at the cost of pool start-up and one
    factor memcpy per sweep.  This benchmark reports both on the same corpus
    so the trade-off is visible; no relative speed floor is asserted (which
    side wins is host-dependent — core count, BLAS build, fork cost), but
    both executors must produce a full measurement grid.
    """
    params = scaled(
        dict(
            n_users=2000,
            n_items=600,
            n_coclusters=50,
            n_iterations=3,
            worker_counts=(2, SPEEDUP_WORKERS),
        ),
        n_users=150,
        n_items=60,
        n_coclusters=8,
        n_iterations=2,
        worker_counts=(2,),
    )
    result = run_once(
        benchmark,
        run_worker_scaling_study,
        executors=("thread", "process"),
        random_state=0,
        **params,
    )

    lines = [
        result.to_text(),
        "",
        "paper: row subproblems are independent, so sweeps shard across any",
        "worker substrate (Sections IV/VI); threads and shared-memory",
        "processes realise the same sharding on opposite sides of the GIL",
        f"host cores: {os.cpu_count()}",
    ]
    report_writer("process_vs_thread_training", "\n".join(lines))
    write_bench_json(
        "process_vs_thread_training",
        {
            f"{executor}_{n}w_seconds": result.seconds_at(n, executor)
            for executor in ("thread", "process")
            for n in params["worker_counts"]
        },
        n_users=params["n_users"],
        n_items=params["n_items"],
    )

    assert result.baseline_seconds > 0
    assert result.executors() == ["process", "thread"]
    for executor in ("thread", "process"):
        for n_workers in params["worker_counts"]:
            assert result.seconds_at(n_workers, executor) > 0


def test_parallel_training_parity(report_writer):
    """Factors from the parallel backend are exactly the vectorized factors."""
    params = scaled(
        dict(n_users=600, n_items=200, n_coclusters=25, max_iterations=4),
        n_users=120,
        n_items=50,
        n_coclusters=6,
        max_iterations=2,
    )
    matrix, _spec = make_netflix_like(
        n_users=params["n_users"], n_items=params["n_items"], random_state=0
    )

    def fit(backend, **kwargs):
        model = OCuLaR(
            n_coclusters=params["n_coclusters"],
            regularization=5.0,
            max_iterations=params["max_iterations"],
            tolerance=0.0,
            backend=backend,
            random_state=0,
            **kwargs,
        )
        return model.fit(matrix)

    vectorized = fit("vectorized")
    for executor in ("thread", "process"):
        parallel = fit("parallel", n_workers=SPEEDUP_WORKERS, executor=executor)
        assert np.array_equal(
            vectorized.factors_.user_factors, parallel.factors_.user_factors
        ), executor
        assert np.array_equal(
            vectorized.factors_.item_factors, parallel.factors_.item_factors
        ), executor
        np.testing.assert_array_equal(
            vectorized.history_.objective_values, parallel.history_.objective_values
        )
    report_writer(
        "parallel_training_parity",
        "thread- and process-sharded factors exactly equal vectorized factors "
        f"({params['n_users']}x{params['n_items']}, K={params['n_coclusters']}, "
        f"{params['max_iterations']} iterations, {SPEEDUP_WORKERS} workers)",
    )
    write_bench_json(
        "parallel_training_parity",
        dict(parity=True),
        workers=SPEEDUP_WORKERS,
        **params,
    )
