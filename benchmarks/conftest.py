"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it runs the
corresponding experiment once (timed through ``benchmark.pedantic`` with a
single round, because the experiments themselves take seconds to minutes),
prints the measured values next to the paper's reported values, and appends
the same report to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can be
assembled from the files.

Run with::

    pytest benchmarks/ --benchmark-only

Smoke mode
----------
CI runs the whole harness on every push to guard the figure scripts against
import rot, so each benchmark also has a fast configuration.  Activate it
with either::

    REPRO_BENCH_SMOKE=1 pytest benchmarks/
    pytest benchmarks/ --smoke

In smoke mode every benchmark swaps its full-size parameters for tiny ones
via :func:`scaled` and skips the statistical shape assertions (tiny corpora
cannot support them) while keeping the structural ones, so the full
experiment code path still executes end to end in seconds.
"""

from __future__ import annotations

import os
import warnings
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Environment variable that switches the harness into smoke mode.
SMOKE_ENV = "REPRO_BENCH_SMOKE"

_smoke_option = False


def pytest_addoption(parser):
    """Register ``--smoke`` (equivalent to ``REPRO_BENCH_SMOKE=1``)."""
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="run every benchmark with tiny parameters (seconds, for CI)",
    )


def pytest_configure(config):
    global _smoke_option
    _smoke_option = bool(config.getoption("--smoke", default=False))


def smoke_mode() -> bool:
    """Whether the harness runs in the fast CI configuration."""
    return _smoke_option or bool(os.environ.get(SMOKE_ENV))


def scaled(full: dict, **smoke_overrides) -> dict:
    """Benchmark parameters: ``full`` normally, with overrides in smoke mode.

    Usage::

        params = scaled(dict(n_users=1500, n_iterations=3), n_users=150)
    """
    params = dict(full)
    if smoke_mode():
        params.update(smoke_overrides)
    return params


@pytest.fixture(autouse=True)
def _silence_warnings():
    """Benchmarks use tight iteration budgets; convergence warnings are expected.

    Deprecations raised from ``repro`` itself stay fatal so no benchmark
    quietly drifts back onto a deprecated shim.
    """
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        warnings.filterwarnings(
            "error", category=DeprecationWarning, module=r"repro(\..*)?$"
        )
        yield


@pytest.fixture(scope="session")
def report_writer():
    """Callable that persists a benchmark's textual report.

    Usage: ``report_writer("table1_movielens", text)`` writes
    ``benchmarks/results/table1_movielens.txt`` and echoes the text to stdout
    (visible with ``pytest -s``).
    """
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n[{name}]\n{text}\n")
        return path

    return write


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing.

    The experiments are far too heavy for statistical repetition; a single
    timed round still records wall-clock cost in the benchmark report.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
