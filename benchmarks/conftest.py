"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it runs the
corresponding experiment once (timed through ``benchmark.pedantic`` with a
single round, because the experiments themselves take seconds to minutes),
prints the measured values next to the paper's reported values, and appends
the same report to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can be
assembled from the files.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import warnings
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(autouse=True)
def _silence_warnings():
    """Benchmarks use tight iteration budgets; convergence warnings are expected."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        yield


@pytest.fixture(scope="session")
def report_writer():
    """Callable that persists a benchmark's textual report.

    Usage: ``report_writer("table1_movielens", text)`` writes
    ``benchmarks/results/table1_movielens.txt`` and echoes the text to stdout
    (visible with ``pytest -s``).
    """
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n[{name}]\n{text}\n")
        return path

    return write


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing.

    The experiments are far too heavy for statistical repetition; a single
    timed round still records wall-clock cost in the benchmark report.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
