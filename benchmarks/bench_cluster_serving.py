"""Cluster serving: sharded top-N over loopback RPC nodes vs serial.

Not a paper figure — this guards the multi-machine executor that scales the
Section VIII nightly batch past one machine.  Two loopback agent processes
stand in for two machines: the engine's factor matrices are published to
the driver's object store once, each node fetches each descriptor exactly
once per generation (asserted from the node telemetry), and every shard
task crosses the wire as a descriptor tuple — no factor bytes per task.
The rankings are asserted identical to the single-process engine, so the
users/s numbers compare the same scoring work over different transports.
"""

from __future__ import annotations

import time

import numpy as np
from _report import write_bench_json
from conftest import run_once, scaled

from repro.core.ocular import OCuLaR
from repro.data.datasets import make_netflix_like
from repro.parallel import ClusterExecutor
from repro.serving.batch import serve_sharded
from repro.serving.engine import TopNEngine

N_NODES = 2


def run_cluster_serving(
    n_users: int,
    n_items: int,
    n_coclusters: int,
    top_n: int,
    shard_size: int,
    random_state: int,
) -> dict:
    matrix, _ = make_netflix_like(
        n_users=n_users, n_items=n_items, random_state=random_state
    )
    model = OCuLaR(
        n_coclusters=n_coclusters,
        regularization=5.0,
        max_iterations=3,
        tolerance=0.0,
        random_state=random_state,
    ).fit(matrix)
    engine = TopNEngine.from_model(model)
    users = list(range(matrix.shape[0]))

    start = time.perf_counter()
    serial = serve_sharded(
        engine, users, n_items=top_n, executor="serial", shard_size=shard_size
    )
    serial_seconds = time.perf_counter() - start

    with ClusterExecutor(n_nodes=N_NODES, task_timeout=120) as executor:
        start = time.perf_counter()
        clustered = serve_sharded(
            engine, users, n_items=top_n, executor=executor, shard_size=shard_size
        )
        cluster_seconds = time.perf_counter() - start
        stats = executor.node_stats()

    rankings_match = all(
        np.array_equal(got, want)
        for got, want in zip(clustered.rankings, serial.rankings)
    )
    fetch_once = all(
        count == 1
        for node_stats in stats.values()
        for count in node_stats["fetch_counts"].values()
    )
    return dict(
        serial_seconds=serial_seconds,
        cluster_seconds=cluster_seconds,
        serial_users_per_s=len(users) / serial_seconds,
        cluster_users_per_s=len(users) / cluster_seconds,
        n_shards=clustered.n_shards,
        rankings_match=rankings_match,
        fetch_once=fetch_once,
        descriptor_fetches={
            node_id: sum(node_stats["fetch_counts"].values())
            for node_id, node_stats in stats.items()
        },
    )


def test_cluster_serving(benchmark, report_writer):
    params = scaled(
        dict(
            n_users=20_000,
            n_items=64,
            n_coclusters=48,
            top_n=10,
            shard_size=512,
        ),
        n_users=1_000,
        shard_size=128,
    )
    result = run_once(benchmark, run_cluster_serving, random_state=0, **params)

    lines = [
        f"cluster serving over {N_NODES} loopback nodes "
        f"({params['n_users']} users, {result['n_shards']} shards)",
        f"serial:  {result['serial_seconds']:.3f}s "
        f"({result['serial_users_per_s']:.0f} users/s)",
        f"cluster: {result['cluster_seconds']:.3f}s "
        f"({result['cluster_users_per_s']:.0f} users/s)",
        f"rankings identical to single-process engine: {result['rankings_match']}",
        f"descriptor fetches per node (one per array per generation): "
        f"{result['descriptor_fetches']}",
        "note: RPC adds pickling + socket hops per shard; publication keeps factor",
        "bytes off the per-task wire, so throughput tracks shard compute, not model size.",
    ]
    report_writer("cluster_serving", "\n".join(lines))
    write_bench_json(
        "cluster_serving",
        dict(
            cluster_users_per_s=result["cluster_users_per_s"],
            serial_users_per_s=result["serial_users_per_s"],
            cluster_seconds=result["cluster_seconds"],
            serial_seconds=result["serial_seconds"],
            rankings_match=result["rankings_match"],
            fetch_once=result["fetch_once"],
        ),
        n_nodes=N_NODES,
        **params,
    )

    # Structural guarantees hold at every scale; speed is tracked by the
    # perf gate against the committed baseline, not asserted here.
    assert result["rankings_match"]
    assert result["fetch_once"]
