"""Figure 2: generic community detection fails to recover overlapping co-clusters.

Paper claim reproduced here: running Modularity (non-overlapping) and
BIGCLAM (overlapping) on the toy purchase graph recovers community boundaries
that identify **only 1 of the 3** candidate recommendations, whereas OCuLaR
identifies all three.
"""

from __future__ import annotations

from _report import write_bench_json
from conftest import run_once

from repro.experiments.paper_reference import PAPER_CLAIMS
from repro.experiments.toy import run_community_comparison
from repro.utils.tables import format_table


def test_fig2_community_baselines(benchmark, report_writer):
    result = run_once(benchmark, run_community_comparison, random_state=0)

    rows = [
        [method, covered, result.n_candidates, result.n_communities.get(method, "-")]
        for method, covered in sorted(result.coverage.items())
    ]
    lines = [
        "Figure 2 — community-detection baselines on the toy example",
        f"paper: {PAPER_CLAIMS['fig2_result']}",
        "",
        format_table(["method", "candidates identified", "out of", "communities"], rows),
    ]
    report_writer("fig2_community_baselines", "\n".join(lines))
    write_bench_json(
        "fig2_community_baselines",
        {f"covered_{method}": covered for method, covered in result.coverage.items()},
        n_candidates=result.n_candidates,
    )

    assert result.n_candidates == 3
    assert result.coverage["modularity"] <= 1
    assert result.coverage["bigclam"] <= 1
    assert result.coverage["ocular"] == 3
