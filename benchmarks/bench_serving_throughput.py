"""Serving throughput: chunked TopNEngine versus the per-user Python loop.

Not a paper figure — this guards the serving-path rewrite that makes the
Section VIII nightly batch viable at scale.  The claim held here: at 10k
users the chunked engine (one BLAS call per chunk, CSR-driven masking,
``argpartition`` selection) serves at least an order of magnitude more
users per second than looping ``model.recommend``, while producing
*identical* rankings.  The fold-in cold-start rate is reported alongside.
"""

from __future__ import annotations

from _report import write_bench_json
from conftest import run_once, scaled, smoke_mode

from repro.experiments.serving import run_serving_throughput


def test_serving_throughput(benchmark, report_writer):
    # A B2B-scale nightly batch: many clients, a compact product catalogue
    # (the Section VIII deployment shape, where per-user Python overhead is
    # the serving bottleneck).
    params = scaled(
        dict(
            n_users=10_000,
            n_items=64,
            n_coclusters=48,
            top_n=10,
            n_repeats=3,
            n_fold_in=500,
        ),
        n_users=1_000,
        n_repeats=1,
        n_fold_in=50,
    )
    result = run_once(benchmark, run_serving_throughput, random_state=0, **params)

    lines = [
        result.to_text(),
        "",
        f"per-run loop seconds:  {[f'{t:.3f}' for t in result.per_run_loop_seconds]}",
        f"per-run batch seconds: {[f'{t:.3f}' for t in result.per_run_batch_seconds]}",
        "note: single scoring code path — the engine result is asserted identical to the",
        "per-user reference, so the speedup is pure batching (BLAS chunking, CSR masking,",
        "argpartition top-N), not an approximation.",
    ]
    report_writer("serving_throughput", "\n".join(lines))
    write_bench_json(
        "serving_throughput",
        dict(
            speedup=result.speedup(),
            loop_seconds=result.loop_seconds,
            batch_seconds=result.batch_seconds,
            rankings_match=result.rankings_match,
        ),
        **params,
    )

    # The engine must agree with the reference ranking for every user.
    assert result.rankings_match

    # Full mode reproduces the headline claim: >= 10x at 10k users.  Smoke
    # mode only sanity-checks the direction on its tiny corpus.
    if smoke_mode():
        assert result.speedup() > 1.5
    else:
        assert result.speedup() >= 10.0, (
            f"serving speedup {result.speedup():.1f}x below the 10x floor "
            f"(loop {result.loop_seconds:.3f}s vs batch {result.batch_seconds:.3f}s)"
        )
