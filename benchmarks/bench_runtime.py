"""Runtime benchmarks: warm-pool refits and descriptor-only sharded serving.

The paper's deployment (Section VIII) is a persistent service — retrain on a
schedule, serve heavy top-N traffic in between.  Two costs dominate a naive
one-shot lifecycle there, and this benchmark measures the runtime removing
both:

* **cold pools** — a name-configured ``OCuLaR(backend="parallel",
  executor="process")`` fit builds a worker pool, publishes its plan, and
  tears everything down when it returns; a retraining service pays that
  start-up for every refit.  :class:`~repro.runtime.RecommenderRuntime`
  holds one warm pool across fits, so the pool is paid for once.  Warm must
  beat cold (asserted in full mode on multi-core hosts).
* **pickled engines** — sharded serving over a *plain* process pool ships
  the whole ``TopNEngine`` (factor matrices, training CSR) in every shard
  task.  The runtime publishes the engine once per model version and tasks
  carry only descriptors; the payload assertion (a few hundred bytes,
  independent of model size) always runs, the throughput comparison is
  reported.
"""

from __future__ import annotations

import os
import pickle
import time

import numpy as np
from _report import write_bench_json
from conftest import run_once, scaled, smoke_mode

from repro.api import RecommendRequest
from repro.core.ocular import OCuLaR
from repro.data.datasets import make_netflix_like
from repro.parallel import ProcessExecutor
from repro.runtime import RecommenderRuntime
from repro.serving import TopNEngine, serve_sharded
from repro.utils.tables import format_table

#: Worker-pool size both lifecycles use.
WORKERS = 2

#: Minimum warm-over-cold refit speed-up asserted in full mode on hosts with
#: at least :data:`WORKERS` cores.  Conservative: the warm pool saves the
#: whole pool start-up per fit, which is worth far more than 5% whenever
#: fits are frequent relative to their size.
WARM_SPEEDUP_FLOOR = 1.05


def _model(params, seed, **kwargs):
    return OCuLaR(
        n_coclusters=params["n_coclusters"],
        regularization=5.0,
        max_iterations=params["n_iterations"],
        tolerance=0.0,
        random_state=seed,
        **kwargs,
    )


def test_warm_vs_cold_refit(benchmark, report_writer):
    params = scaled(
        dict(n_users=1200, n_items=300, n_coclusters=20, n_iterations=2, n_fits=4),
        n_users=120,
        n_items=50,
        n_coclusters=6,
        n_iterations=1,
        n_fits=2,
    )
    matrix, _spec = make_netflix_like(
        n_users=params["n_users"], n_items=params["n_items"], random_state=0
    )
    seeds = range(params["n_fits"])

    def cold_fits():
        factors = []
        for seed in seeds:
            model = _model(
                params, seed, backend="parallel", executor="process", n_workers=WORKERS
            )
            model.fit(matrix)  # builds and tears down a pool, every time
            factors.append(model.factors_.user_factors)
        return factors

    def warm_fits():
        factors = []
        with RecommenderRuntime(executor="process", max_workers=WORKERS) as runtime:
            runtime.fit(_model(params, 0), matrix)
            factors.append(runtime.model.factors_.user_factors)
            for seed in list(seeds)[1:]:
                runtime.fit(_model(params, seed), matrix)
                factors.append(runtime.model.factors_.user_factors)
        return factors

    start = time.perf_counter()
    cold_factors = cold_fits()
    cold_seconds = time.perf_counter() - start

    start = time.perf_counter()
    warm_factors = run_once(benchmark, warm_fits)
    warm_seconds = time.perf_counter() - start

    # Warm pools change where sweeps run, never what they compute.
    for cold, warm in zip(cold_factors, warm_factors):
        assert np.array_equal(cold, warm)

    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    table = format_table(
        ["lifecycle", "seconds", f"seconds/fit ({params['n_fits']} fits)"],
        [
            ["cold pool per fit", f"{cold_seconds:.3f}", f"{cold_seconds / params['n_fits']:.3f}"],
            ["warm runtime pool", f"{warm_seconds:.3f}", f"{warm_seconds / params['n_fits']:.3f}"],
        ],
    )
    lines = [
        f"warm vs cold refit — {params['n_users']}x{params['n_items']}, "
        f"K={params['n_coclusters']}, {params['n_iterations']} iterations, "
        f"{WORKERS} workers",
        table,
        f"warm-pool speedup: {speedup:.2f}x",
        f"host cores: {os.cpu_count()}",
    ]
    report_writer("runtime_warm_vs_cold", "\n".join(lines))
    write_bench_json(
        "runtime_warm_vs_cold",
        dict(
            cold_seconds=cold_seconds,
            warm_seconds=warm_seconds,
            speedup=speedup,
        ),
        workers=WORKERS,
        **params,
    )

    assert cold_seconds > 0 and warm_seconds > 0
    if not smoke_mode() and (os.cpu_count() or 1) >= WORKERS:
        assert speedup >= WARM_SPEEDUP_FLOOR, (
            f"warm pool reached only {speedup:.2f}x over cold pools "
            f"(floor {WARM_SPEEDUP_FLOOR}x)"
        )


def test_descriptor_vs_pickled_serving(report_writer):
    params = scaled(
        dict(n_users=4000, n_items=200, n_coclusters=32, top_n=10, shard_size=512),
        n_users=300,
        n_items=60,
        n_coclusters=8,
        top_n=5,
        shard_size=100,
    )
    matrix, _spec = make_netflix_like(
        n_users=params["n_users"], n_items=params["n_items"], random_state=0
    )
    model = OCuLaR(
        n_coclusters=params["n_coclusters"],
        regularization=5.0,
        max_iterations=3,
        tolerance=0.0,
        random_state=0,
    ).fit(matrix)
    engine = TopNEngine.from_model(model)
    users = list(range(params["n_users"]))
    reference = engine.recommend_batch(users, n_items=params["top_n"])

    # Pickled path: a plain process pool — every shard task carries the
    # whole engine by value.
    with ProcessExecutor(max_workers=WORKERS) as executor:
        serve_sharded(  # warm the pool outside the timed region
            engine, users[:32], n_items=params["top_n"], executor=executor
        )
        start = time.perf_counter()
        pickled = serve_sharded(
            engine,
            users,
            n_items=params["top_n"],
            shard_size=params["shard_size"],
            executor=executor,
        )
        pickled_seconds = time.perf_counter() - start

    # Descriptor path: the runtime publishes the engine once; shard tasks
    # carry segment names.
    with RecommenderRuntime(executor="process", max_workers=WORKERS) as runtime:
        runtime.fit(
            OCuLaR(
                n_coclusters=params["n_coclusters"],
                regularization=5.0,
                max_iterations=3,
                tolerance=0.0,
                random_state=0,
            ),
            matrix,
        )
        runtime.publish()
        runtime.recommend(  # warm the pool
            RecommendRequest(users=users[:32], n_items=params["top_n"])
        )
        start = time.perf_counter()
        shared = runtime.recommend(
            RecommendRequest(users=users, n_items=params["top_n"]),
            shard_size=params["shard_size"],
        )
        shared_seconds = time.perf_counter() - start
        stats = runtime.last_serving_stats

    for expected, via_pickle, via_shm in zip(
        reference, pickled.rankings, shared.rankings
    ):
        assert np.array_equal(expected, via_pickle)
        assert np.array_equal(expected, via_shm)

    engine_bytes = len(pickle.dumps(engine))
    table = format_table(
        ["path", "seconds", "users/s", "per-task model payload"],
        [
            [
                "pickled engine per shard",
                f"{pickled_seconds:.3f}",
                f"{len(users) / pickled_seconds:,.0f}",
                f"{engine_bytes:,} B",
            ],
            [
                "published descriptors",
                f"{shared_seconds:.3f}",
                f"{len(users) / shared_seconds:,.0f}",
                f"{stats.spec_bytes:,} B",
            ],
        ],
    )
    lines = [
        f"descriptor vs pickled sharded serving — {params['n_users']:,} users x "
        f"{params['n_items']} items, K={params['n_coclusters']}, "
        f"top-{params['top_n']}, {WORKERS} workers",
        table,
        f"payload ratio: {engine_bytes / stats.spec_bytes:,.0f}x smaller per task",
        f"host cores: {os.cpu_count()}",
    ]
    report_writer("runtime_descriptor_serving", "\n".join(lines))
    write_bench_json(
        "runtime_descriptor_serving",
        dict(
            pickled_seconds=pickled_seconds,
            shared_seconds=shared_seconds,
            engine_bytes=engine_bytes,
            spec_bytes=stats.spec_bytes,
        ),
        workers=WORKERS,
        **params,
    )

    # The acceptance criterion: process-sharded runtime serving sends no
    # factor bytes per task — the model-dependent payload is descriptors
    # only, orders of magnitude below the pickled engine, at identical
    # rankings.  Asserted in smoke mode too (payload size is size-invariant).
    assert stats.path == "shared"
    assert stats.spec_bytes < 2048
    assert stats.spec_bytes * 20 < engine_bytes
