"""Gateway serving benchmark: open-loop network clients vs the in-process
blocking path, plus adaptive-vs-static batching delay under light load.

The paper's deployment exposes the recommender to many B2B tenants at once.
This benchmark measures the asyncio gateway end to end:

* **Open-loop throughput** — :data:`CONNECTIONS` sockets each pipeline all
  of their frames without waiting for responses, the harshest arrival
  pattern for the admission controller.  The gateway coalesces the flood
  into micro-batches, so despite paying JSON framing and loopback TCP it
  must sustain at least the throughput of the blocking in-process path
  (one sharded dispatch per request) on hosts with enough cores.
* **Adaptive delay under light load** — a single client sends sparse
  sequential requests.  A static front-end holds every lone request for
  the full ``max_delay_ms`` window; the adaptive controller sees that the
  arrival rate cannot buy occupancy and walks the delay down to the
  floor.  Both per-request latency medians are recorded and compared.

Rankings are asserted identical to the in-process engine on both paths.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np
from _report import write_bench_json
from conftest import run_once, scaled, smoke_mode

from repro.api import RecommendRequest
from repro.core.ocular import OCuLaR
from repro.data.datasets import make_netflix_like
from repro.runtime import (
    AdaptiveDelayController,
    BatchingFrontEnd,
    GatewayClient,
    GatewayThread,
    RecommenderRuntime,
)
from repro.utils.tables import format_table

#: Worker-pool size of the serving runtime.
WORKERS = 2

#: Concurrent gateway connections in the open-loop phase.
CONNECTIONS = 64


def _fit_runtime(runtime, params):
    matrix, _spec = make_netflix_like(
        n_users=params["n_users"], n_items=params["n_items"], random_state=0
    )
    runtime.fit(
        OCuLaR(
            n_coclusters=params["n_coclusters"],
            regularization=5.0,
            max_iterations=3,
            tolerance=0.0,
            random_state=0,
        ),
        matrix,
    )
    runtime.publish()


def _open_loop_connection(host, port, requests, results, index, errors):
    """Pipeline every frame, then collect every response, matched by id."""
    try:
        with GatewayClient(host, port, timeout=300) as client:
            for rid, request in enumerate(requests):
                frame = request.to_dict()
                frame["id"] = rid
                client.send_frame(frame)
            by_id: dict = {}
            for _ in requests:
                frame = client.recv_frame()
                assert frame.get("ok"), frame
                by_id[frame["id"]] = [np.asarray(r) for r in frame["rankings"]]
            results[index] = [by_id[rid] for rid in range(len(requests))]
    except Exception as exc:  # pragma: no cover - failure mode
        errors.append(exc)


def test_gateway_open_loop_vs_blocking(benchmark, report_writer):
    params = scaled(
        dict(
            n_users=2000,
            n_items=200,
            n_coclusters=16,
            connections=CONNECTIONS,
            requests_per_connection=6,
            users_per_request=4,
            top_n=10,
            max_delay_ms=4.0,
            max_batch_users=512,
        ),
        n_users=200,
        n_items=60,
        n_coclusters=6,
        connections=8,
        requests_per_connection=3,
    )
    rng = np.random.default_rng(0)
    streams = [
        [
            RecommendRequest(
                users=tuple(
                    int(u)
                    for u in rng.integers(
                        0, params["n_users"], size=params["users_per_request"]
                    )
                ),
                n_items=params["top_n"],
                tenant=f"tenant-{index % 8}",
            )
            for _ in range(params["requests_per_connection"])
        ]
        for index in range(params["connections"])
    ]
    flat_requests = [request for stream in streams for request in stream]
    total_users = sum(request.n_rows for request in flat_requests)

    with RecommenderRuntime(executor="process", max_workers=WORKERS) as runtime:
        _fit_runtime(runtime, params)
        reference = runtime.engine.recommend_batch(
            [u for request in flat_requests for u in request.users],
            n_items=params["top_n"],
        )
        runtime.recommend(flat_requests[0])  # warm the pool

        # Blocking path: one in-process sharded dispatch per request, from
        # as many threads as there are gateway connections.
        blocking_results = [None] * len(streams)
        blocking_errors: list = []

        def blocking_client(index: int) -> None:
            try:
                blocking_results[index] = [
                    runtime.recommend(request).rankings
                    for request in streams[index]
                ]
            except Exception as exc:  # pragma: no cover - failure mode
                blocking_errors.append(exc)

        threads = [
            threading.Thread(target=blocking_client, args=(index,))
            for index in range(len(streams))
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        blocking_seconds = time.perf_counter() - start
        assert not blocking_errors

        # Gateway path: the same request streams, pipelined open-loop over
        # one socket per connection.
        def gateway_run():
            with BatchingFrontEnd(
                runtime,
                max_delay_ms=params["max_delay_ms"],
                max_batch_users=params["max_batch_users"],
            ) as front:
                with GatewayThread(front, max_inflight=256) as gateway:
                    host, port = gateway.address
                    results = [None] * len(streams)
                    errors: list = []
                    workers = [
                        threading.Thread(
                            target=_open_loop_connection,
                            args=(host, port, streams[i], results, i, errors),
                        )
                        for i in range(len(streams))
                    ]
                    begin = time.perf_counter()
                    for worker in workers:
                        worker.start()
                    for worker in workers:
                        worker.join()
                    seconds = time.perf_counter() - begin
                    if errors:
                        raise errors[0]
                    stats = front.stats()
            return seconds, results, stats

        gateway_seconds, gateway_results, stats = run_once(benchmark, gateway_run)

    # Both paths reproduce the single-engine rankings, request by request.
    flat_reference = iter(reference)
    for blocked, wired in zip(blocking_results, gateway_results):
        for blocked_rankings, wired_rankings in zip(blocked, wired):
            for got_blocking, got_gateway in zip(blocked_rankings, wired_rankings):
                expected = next(flat_reference)
                assert np.array_equal(expected, got_blocking)
                assert np.array_equal(expected, got_gateway)

    blocking_rate = total_users / blocking_seconds
    gateway_rate = total_users / gateway_seconds
    table = format_table(
        ["path", "seconds", "users/s", "mean batch users"],
        [
            [
                "blocking in-process (1 dispatch/request)",
                f"{blocking_seconds:.3f}",
                f"{blocking_rate:,.0f}",
                "1 request",
            ],
            [
                f"gateway, {params['connections']} open-loop connections",
                f"{gateway_seconds:.3f}",
                f"{gateway_rate:,.0f}",
                f"{stats.mean_occupancy:.1f}",
            ],
        ],
    )
    lines = [
        f"asyncio gateway vs blocking path — {len(flat_requests)} requests x "
        f"{params['users_per_request']} users over {params['connections']} "
        f"connections, top-{params['top_n']}, {WORKERS} workers, "
        f"max_delay={params['max_delay_ms']}ms",
        table,
        f"speedup: {gateway_rate / blocking_rate:.2f}x | queue p95: "
        f"{stats.queue_p95_ms:.1f} ms | requests/batch: "
        f"{stats.mean_requests_per_batch:.1f}",
        f"host cores: {os.cpu_count()}",
    ]
    report_writer("gateway_throughput", "\n".join(lines))
    write_bench_json(
        "gateway_throughput",
        dict(
            blocking_users_per_s=blocking_rate,
            gateway_users_per_s=gateway_rate,
            speedup=gateway_rate / blocking_rate,
            queue_p95_ms=stats.queue_p95_ms,
        ),
        connections=params["connections"],
        users_per_request=params["users_per_request"],
    )

    # Coalescing must be real; with dispatch overhead amortised over whole
    # micro-batches the networked path must keep up with the blocking path.
    assert stats.mean_requests_per_batch > 1.0
    if not smoke_mode() and (os.cpu_count() or 1) >= WORKERS:
        assert gateway_rate >= blocking_rate, (
            f"gateway served {gateway_rate:,.0f} users/s vs "
            f"{blocking_rate:,.0f} blocking"
        )


def test_adaptive_delay_beats_static_under_light_load(benchmark, report_writer):
    params = scaled(
        dict(
            n_users=400,
            n_items=80,
            n_coclusters=8,
            n_requests=24,
            top_n=10,
            ceiling_ms=12.0,
            gap_s=0.02,
        ),
        n_users=150,
        n_items=50,
        n_coclusters=5,
        n_requests=10,
    )

    def drive(front):
        """Sequential lone requests over the wire; per-request latencies."""
        latencies = []
        with GatewayThread(front) as gateway:
            host, port = gateway.address
            with GatewayClient(host, port) as client:
                for user in range(params["n_requests"]):
                    begin = time.perf_counter()
                    response = client.recommend(
                        RecommendRequest(
                            users=(user % params["n_users"],),
                            n_items=params["top_n"],
                        )
                    )
                    latencies.append((time.perf_counter() - begin) * 1000.0)
                    assert len(response.rankings) == 1
                    time.sleep(params["gap_s"])
        return latencies

    with RecommenderRuntime(executor="serial") as runtime:
        _fit_runtime(runtime, params)
        runtime.recommend(RecommendRequest(users=(0,), n_items=params["top_n"]))

        def compare():
            with BatchingFrontEnd(
                runtime, max_delay_ms=params["ceiling_ms"]
            ) as static_front:
                static_latencies = drive(static_front)
            controller = AdaptiveDelayController(
                floor_ms=0.25,
                ceiling_ms=params["ceiling_ms"],
                slo_p95_ms=50.0,
                adjust_interval_s=0.005,
            )
            with BatchingFrontEnd(
                runtime, max_delay_ms=params["ceiling_ms"], adaptive=controller
            ) as adaptive_front:
                adaptive_latencies = drive(adaptive_front)
                final_delay = adaptive_front.current_delay_ms
            return static_latencies, adaptive_latencies, final_delay

        static_latencies, adaptive_latencies, final_delay = run_once(
            benchmark, compare
        )

    static_p50 = float(np.percentile(static_latencies, 50))
    adaptive_p50 = float(np.percentile(adaptive_latencies, 50))
    table = format_table(
        ["front-end", "p50 latency", "p95 latency", "final delay"],
        [
            [
                "static max_delay",
                f"{static_p50:.2f} ms",
                f"{float(np.percentile(static_latencies, 95)):.2f} ms",
                f"{params['ceiling_ms']:.2f} ms",
            ],
            [
                "adaptive controller",
                f"{adaptive_p50:.2f} ms",
                f"{float(np.percentile(adaptive_latencies, 95)):.2f} ms",
                f"{final_delay:.2f} ms",
            ],
        ],
    )
    lines = [
        f"adaptive vs static batching delay — {params['n_requests']} lone "
        f"requests over the gateway, ceiling {params['ceiling_ms']} ms, "
        f"{params['gap_s'] * 1000:.0f} ms think time",
        table,
        f"p50 reduction: {static_p50 - adaptive_p50:.2f} ms",
        f"host cores: {os.cpu_count()}",
    ]
    report_writer("gateway_adaptive_delay", "\n".join(lines))
    write_bench_json(
        "gateway_adaptive_delay",
        dict(
            static_p50_ms=static_p50,
            adaptive_p50_ms=adaptive_p50,
            final_delay_ms=final_delay,
        ),
        ceiling_ms=params["ceiling_ms"],
        n_requests=params["n_requests"],
    )

    # Lone requests cannot buy occupancy, so the controller must have left
    # the ceiling; with the delay at the floor the wire-level median must
    # drop measurably below the static configuration's.
    assert final_delay < params["ceiling_ms"]
    if not smoke_mode():
        assert adaptive_p50 < static_p50, (
            f"adaptive p50 {adaptive_p50:.2f} ms vs static {static_p50:.2f} ms"
        )
