"""Figure 6: recall and co-cluster metrics versus K and lambda.

Paper claims reproduced here:

* "either too little (lambda = 0) or too much regularisation (lambda = 100)
  can hurt the recommendation accuracy" — the best recall is achieved at an
  intermediate lambda;
* larger K yields smaller (and typically denser) co-clusters, which is the
  criterion the paper suggests for picking K.
"""

from __future__ import annotations

import numpy as np
from _report import write_bench_json
from conftest import run_once, scaled, smoke_mode

from repro.experiments.parameters import run_parameter_study
from repro.experiments.paper_reference import PAPER_CLAIMS


def test_fig6_parameter_study(benchmark, report_writer):
    params = scaled(
        dict(
            k_values=(5, 10, 20, 40),
            lambda_values=(0.0, 5.0, 30.0, 100.0),
            m=50,
            scale=0.4,
            max_users=100,
            max_iterations=80,
        ),
        k_values=(5, 10),
        lambda_values=(0.0, 5.0, 100.0),
        m=20,
        scale=0.2,
        max_users=30,
        max_iterations=15,
    )
    result = run_once(
        benchmark,
        run_parameter_study,
        dataset="movielens",
        random_state=0,
        **params,
    )

    best = result.best_point()
    best_recall_per_lambda = {
        lam: max(point.recall for point in result.series_for_lambda(lam))
        for lam in result.lambdas()
    }
    lines = [
        result.to_text(),
        "",
        f"paper: {PAPER_CLAIMS['fig6_regularization']}",
        f"measured best: K={best.n_coclusters}, lambda={best.regularization}, "
        f"recall@{result.m}={best.recall:.4f}",
        "best recall per lambda: "
        + ", ".join(f"lambda={lam:g}: {val:.4f}" for lam, val in best_recall_per_lambda.items()),
    ]
    report_writer("fig6_parameters", "\n".join(lines))
    write_bench_json(
        "fig6_parameters",
        dict(
            best_k=best.n_coclusters,
            best_lambda=best.regularization,
            best_recall=best.recall,
            **{
                f"best_recall_lambda_{lam:g}": val
                for lam, val in best_recall_per_lambda.items()
            },
        ),
        m=result.m,
    )

    if smoke_mode():
        # Only structural guarantees at smoke scale: the sweep covered the
        # grid and produced finite co-cluster statistics.
        series = result.series_for_lambda(5.0)
        assert series and all(np.isfinite(point.recall) for point in series)
        return

    # Shape assertion 1: some intermediate lambda beats both extremes.
    intermediate = max(best_recall_per_lambda[5.0], best_recall_per_lambda[30.0])
    assert intermediate >= best_recall_per_lambda[0.0]
    assert intermediate >= best_recall_per_lambda[100.0]

    # Shape assertion 2: at a fixed intermediate lambda, larger K gives
    # smaller co-clusters on average.
    series = result.series_for_lambda(5.0)
    sizes = [point.mean_users_per_cocluster for point in series]
    assert sizes[0] >= sizes[-1] * 0.8
    # Co-cluster statistics must be well-defined for the swept configurations.
    assert all(np.isfinite(point.mean_items_per_cocluster) for point in series)
