"""Figure 8: likelihood-versus-time for the two backends (CPU vs GPU stand-ins).

Paper claim reproduced here: the parallel implementation reaches the same
training likelihood much faster than the per-item loop — 57x on the authors'
CUDA-vs-C++ setup.  Our stand-ins are the batched NumPy backend versus the
per-row Python loop; absolute speed-ups depend on the host, but the shape
must hold: identical likelihood trajectories, with the vectorized backend at
least several times faster per iteration.
"""

from __future__ import annotations

import numpy as np
from _report import write_bench_json
from conftest import run_once, scaled, smoke_mode

from repro.experiments.backends import run_backend_comparison
from repro.experiments.paper_reference import PAPER_CLAIMS


def test_fig8_backend_speedup(benchmark, report_writer):
    params = scaled(
        dict(n_users=1200, n_items=400, n_coclusters=30, n_iterations=4),
        n_users=150,
        n_items=60,
        n_coclusters=8,
        n_iterations=2,
    )
    result = run_once(benchmark, run_backend_comparison, random_state=0, **params)

    speedup = result.speedup_per_iteration()
    to_target = result.speedup_to_target()
    lines = [
        result.to_text(),
        "",
        f"paper: {PAPER_CLAIMS['fig8_speedup']}",
        f"measured: {speedup:.1f}x per iteration"
        + (f", {to_target:.1f}x to a common likelihood target" if to_target else ""),
        "note: the paper compares CUDA against single-threaded C++; here the stand-ins are",
        "batched NumPy kernels against a per-row Python loop, so the constant differs while",
        "the qualitative shape (same likelihood path, large constant-factor gap) is preserved.",
    ]
    report_writer("fig8_backend_speedup", "\n".join(lines))
    write_bench_json(
        "fig8_backend_speedup",
        dict(speedup_per_iteration=speedup, speedup_to_target=to_target),
        **params,
    )

    # Same mathematics: the likelihood trajectories coincide.
    np.testing.assert_allclose(
        result.trajectories["reference"].log_likelihoods,
        result.trajectories["vectorized"].log_likelihoods,
        rtol=1e-6,
    )
    # Clear constant-factor speed-up (the gap narrows on the smoke corpus,
    # where per-iteration fixed costs dominate).
    assert speedup > (1.0 if smoke_mode() else 2.0)
