"""Incremental refit: warm-started refits on a drifting corpus, via the runtime.

The perf claim guarded here (ROADMAP "incremental refit and online updates"):
when the corpus has drifted moderately since the last full fit, seeding the
refit from the previous generation's factors — new users/items folded in by
:func:`~repro.serving.fold_in.extend_factors` — and stopping on objective
plateau reaches the cold-retrain recall@M (within a small tolerance) in a
fraction of the sweeps and of the wall-clock.  The whole lifecycle runs
through a :class:`~repro.runtime.RecommenderRuntime` on the warm
shared-memory process executor: base fit, publish, delta ingest (new users
served immediately via fold-in), warm refit + update, cold refit.

The scenario is pinned (corpus, drift, seed): the training objective is
non-convex, and on under-determined corpora which basin a refit lands in —
and basins differ in recall more than in objective — is seed luck.  The
full-size corpus below was validated across seeds (see
``experiments/incremental.py``); the benchmark asserts the acceptance
criteria on the pinned configuration.
"""

from __future__ import annotations

import os
import time

import numpy as np
from _report import write_bench_json
from conftest import run_once, scaled, smoke_mode

from repro.api import RecommendRequest
from repro.core.ocular import OCuLaR
from repro.evaluation.evaluator import evaluate_recommender
from repro.experiments.incremental import make_drifting_corpus
from repro.runtime import RecommenderRuntime
from repro.utils.rng import ensure_rng
from repro.utils.tables import format_table

#: Process-pool size the runtime uses.
WORKERS = 2

#: Acceptance: warm recall@M may trail cold recall@M by at most this.
RECALL_GAP_TOLERANCE = 0.005

#: Acceptance: warm sweeps over cold sweeps.
SWEEP_RATIO_CEILING = 0.5

#: Acceptance: cold wall-clock over warm wall-clock.
WALL_CLOCK_SPEEDUP_FLOOR = 1.5


def test_incremental_refit_warm_vs_cold(benchmark, report_writer):
    params = scaled(
        dict(n_users=2000, n_items=600, n_coclusters=24, max_iterations=150, m=50),
        n_users=300,
        n_items=90,
        n_coclusters=8,
        max_iterations=12,
        m=20,
    )
    corpus = make_drifting_corpus(
        n_users=params["n_users"], n_items=params["n_items"], random_state=0
    )
    grown = corpus.split.train

    def lifecycle():
        # One advancing RNG stream for base fit and cold refit (the
        # documented Generator contract of initialize_factors); the warm
        # refit seeds from factors and draws nothing.
        model = OCuLaR(
            n_coclusters=params["n_coclusters"],
            regularization=5.0,
            max_iterations=params["max_iterations"],
            tolerance=1e-5,
            random_state=ensure_rng(0),
        )
        with RecommenderRuntime(executor="process", max_workers=WORKERS) as runtime:
            runtime.fit(model, corpus.base)
            base_generation = runtime.publish()
            base_sweeps = model.history_.n_iterations

            stats = runtime.ingest(
                corpus.delta_pairs,
                n_new_users=corpus.n_new_users,
                n_new_items=corpus.n_new_items,
            )
            # The ingested corpus is exactly the grown training matrix.
            assert runtime.train_matrix == grown
            # A just-ingested user (beyond the published generation) is
            # servable immediately through the fold-in path.
            fresh_user = grown.n_users - 1
            response = runtime.recommend(
                RecommendRequest(users=[fresh_user], n_items=5)
            )
            assert len(response.rankings[0]) == 5
            assert response.generation == base_generation

            start = time.perf_counter()
            runtime.refit(mode="auto")
            warm_seconds = time.perf_counter() - start
            assert runtime.last_refit_mode == "warm"
            warm_sweeps = runtime.model.history_.n_iterations
            assert runtime.model.history_.warm_started
            warm_recall = evaluate_recommender(
                runtime.model, corpus.split, m=params["m"]
            ).recall
            new_generation = runtime.update()
            assert new_generation > base_generation
            # After update, the new users/items are first-class rows of the
            # published generation.
            served = runtime.recommend(
                RecommendRequest(users=[0, fresh_user], n_items=5)
            )
            assert served.generation == new_generation

            start = time.perf_counter()
            runtime.refit(mode="cold")
            cold_seconds = time.perf_counter() - start
            assert runtime.last_refit_mode == "cold"
            cold_sweeps = runtime.model.history_.n_iterations
            assert not runtime.model.history_.warm_started
            cold_recall = evaluate_recommender(
                runtime.model, corpus.split, m=params["m"]
            ).recall
            # A cold refit resets the drift baseline.
            assert runtime.drift == 0.0
        return dict(
            base_sweeps=base_sweeps,
            ingest_drift=stats.drift,
            warm_seconds=warm_seconds,
            warm_sweeps=warm_sweeps,
            warm_recall=warm_recall,
            cold_seconds=cold_seconds,
            cold_sweeps=cold_sweeps,
            cold_recall=cold_recall,
        )

    result = run_once(benchmark, lifecycle)

    sweep_ratio = result["warm_sweeps"] / max(result["cold_sweeps"], 1)
    recall_gap = result["cold_recall"] - result["warm_recall"]
    speedup = result["cold_seconds"] / max(result["warm_seconds"], 1e-9)
    table = format_table(
        ["refit", "sweeps", "seconds", f"recall@{params['m']}"],
        [
            ["warm", result["warm_sweeps"], f"{result['warm_seconds']:.3f}", f"{result['warm_recall']:.4f}"],
            ["cold", result["cold_sweeps"], f"{result['cold_seconds']:.3f}", f"{result['cold_recall']:.4f}"],
        ],
    )
    lines = [
        f"incremental refit through the runtime — {params['n_users']}x"
        f"{params['n_items']}, K={params['n_coclusters']}, drift "
        f"{result['ingest_drift']:.1%}, {WORKERS} process workers",
        table,
        f"sweep ratio: {sweep_ratio:.2f} | recall gap (cold - warm): "
        f"{recall_gap:+.4f} | wall-clock speedup: {speedup:.1f}x",
        f"host cores: {os.cpu_count()}",
    ]
    report_writer("incremental_refit", "\n".join(lines))
    write_bench_json(
        "incremental_refit",
        dict(
            warm_seconds=result["warm_seconds"],
            cold_seconds=result["cold_seconds"],
            warm_sweeps=result["warm_sweeps"],
            cold_sweeps=result["cold_sweeps"],
            warm_recall=result["warm_recall"],
            cold_recall=result["cold_recall"],
            sweep_ratio=sweep_ratio,
            recall_gap=recall_gap,
            speedup=speedup,
            drift=result["ingest_drift"],
        ),
        workers=WORKERS,
        **params,
    )

    # The drift must be in the moderate regime the auto policy warm-starts in.
    assert 0.0 < result["ingest_drift"] <= 0.25

    if smoke_mode() or (os.cpu_count() or 1) < WORKERS:
        # Tiny corpora cannot support recall claims; the smoke run guards the
        # lifecycle end to end (ingest, mixed serving, warm + cold refits).
        return

    assert recall_gap <= RECALL_GAP_TOLERANCE, (
        f"warm refit recall trails cold by {recall_gap:+.4f} "
        f"(tolerance {RECALL_GAP_TOLERANCE})"
    )
    assert sweep_ratio <= SWEEP_RATIO_CEILING, (
        f"warm refit used {result['warm_sweeps']} sweeps vs cold "
        f"{result['cold_sweeps']} (ceiling {SWEEP_RATIO_CEILING:.0%})"
    )
    assert speedup >= WALL_CLOCK_SPEEDUP_FLOOR, (
        f"warm refit wall-clock speedup {speedup:.2f}x below the "
        f"{WALL_CLOCK_SPEEDUP_FLOOR}x floor"
    )


def test_cold_refit_bit_identical_to_direct_fit(report_writer):
    """The cold path (early-stop off by default) is exactly seed training.

    A runtime ``refit(mode="cold")`` on the process pool must produce
    bit-identical factors to a direct single-threaded ``OCuLaR.fit`` from
    the same seed — the incremental machinery (plateau stop, warm seeds)
    must not perturb the cold path at all.
    """
    corpus = make_drifting_corpus(n_users=200, n_items=60, random_state=0)

    def fresh_model():
        return OCuLaR(
            n_coclusters=8,
            regularization=5.0,
            max_iterations=10,
            tolerance=0.0,
            random_state=0,
        )

    direct = fresh_model().fit(corpus.split.train)

    with RecommenderRuntime(executor="process", max_workers=WORKERS) as runtime:
        runtime.fit(fresh_model(), corpus.base)
        runtime.ingest(
            corpus.delta_pairs,
            n_new_users=corpus.n_new_users,
            n_new_items=corpus.n_new_items,
        )
        runtime.refit(mode="cold")
        assert np.array_equal(
            runtime.model.factors_.user_factors, direct.factors_.user_factors
        )
        assert np.array_equal(
            runtime.model.factors_.item_factors, direct.factors_.item_factors
        )
        assert not runtime.model.history_.warm_started
        assert runtime.model.history_.plateau_tolerance is None

    report_writer(
        "incremental_cold_parity",
        "cold refit through the runtime (process pool, post-ingest) is "
        "bit-identical to direct seed training on the grown corpus",
    )
    write_bench_json("incremental_cold_parity", dict(parity=True), workers=WORKERS)
