"""Figure 7: linear scalability in the number of positive examples and in K.

Paper claim reproduced here: "the training time is indeed linear in the
number of positive examples and linear in the number of co-clusters K".  The
benchmark sweeps fractions of the Netflix-like corpus for several K, fits a
straight line to seconds-per-iteration versus the number of positives, and
asserts the fit explains the data (R^2 high) — i.e. no super-linear blow-up.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.paper_reference import PAPER_CLAIMS
from repro.experiments.scalability import run_scalability_study

FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0)
K_VALUES = (10, 50, 100)


def test_fig7_linear_scalability(benchmark, report_writer):
    result = run_once(
        benchmark,
        run_scalability_study,
        fractions=FRACTIONS,
        k_values=K_VALUES,
        n_iterations=3,
        n_users=1500,
        n_items=500,
        random_state=0,
    )

    lines = [
        result.to_text(),
        "",
        f"paper: {PAPER_CLAIMS['fig7_scaling']}",
    ]
    report_writer("fig7_scalability", "\n".join(lines))

    # Linear in nnz: the straight-line fit explains the timing for every K.
    for k in K_VALUES:
        assert result.linearity_r2(k) > 0.7, f"scaling in nnz not linear for K={k}"

    # Monotone in nnz: the full corpus costs more per iteration than 20% of it.
    for k in K_VALUES:
        series = result.series_for_k(k)
        assert series[-1].seconds_per_iteration > series[0].seconds_per_iteration

    # Roughly linear (certainly monotone) in K at the full corpus size.
    full = {
        k: result.series_for_k(k)[-1].seconds_per_iteration for k in K_VALUES
    }
    assert full[50] > full[10]
    assert full[100] > full[50]
