"""Figure 7: linear scalability in the number of positive examples and in K.

Paper claim reproduced here: "the training time is indeed linear in the
number of positive examples and linear in the number of co-clusters K".  The
benchmark sweeps fractions of the Netflix-like corpus for several K, fits a
straight line to seconds-per-iteration versus the number of positives, and
asserts the fit explains the data (R^2 high) — i.e. no super-linear blow-up.
"""

from __future__ import annotations

from _report import write_bench_json
from conftest import run_once, scaled, smoke_mode

from repro.experiments.paper_reference import PAPER_CLAIMS
from repro.experiments.scalability import run_scalability_study


def test_fig7_linear_scalability(benchmark, report_writer):
    params = scaled(
        dict(
            fractions=(0.2, 0.4, 0.6, 0.8, 1.0),
            k_values=(10, 50, 100),
            n_iterations=3,
            n_users=1500,
            n_items=500,
        ),
        fractions=(0.5, 1.0),
        k_values=(5, 10),
        n_iterations=1,
        n_users=200,
        n_items=80,
    )
    k_values = params["k_values"]
    result = run_once(benchmark, run_scalability_study, random_state=0, **params)

    lines = [
        result.to_text(),
        "",
        f"paper: {PAPER_CLAIMS['fig7_scaling']}",
    ]
    report_writer("fig7_scalability", "\n".join(lines))
    write_bench_json(
        "fig7_scalability",
        dict(
            **{f"r2_k{k}": result.linearity_r2(k) for k in k_values},
            **{
                f"seconds_per_iteration_full_k{k}": result.series_for_k(k)[-1].seconds_per_iteration
                for k in k_values
            },
        ),
        n_users=params["n_users"],
        n_items=params["n_items"],
    )

    if smoke_mode():
        # Tiny corpora cannot support timing-shape assertions; the smoke run
        # guards the experiment code path end to end.
        assert all(result.series_for_k(k) for k in k_values)
        return

    # Linear in nnz: the straight-line fit explains the timing for every K.
    for k in k_values:
        assert result.linearity_r2(k) > 0.7, f"scaling in nnz not linear for K={k}"

    # Monotone in nnz: the full corpus costs more per iteration than 20% of it.
    for k in k_values:
        series = result.series_for_k(k)
        assert series[-1].seconds_per_iteration > series[0].seconds_per_iteration

    # Roughly linear (certainly monotone) in K at the full corpus size.
    full = {
        k: result.series_for_k(k)[-1].seconds_per_iteration for k in k_values
    }
    assert full[50] > full[10]
    assert full[100] > full[50]
