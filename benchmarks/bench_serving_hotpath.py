"""Serving hot path: pooled flat engines versus the legacy allocating loop.

Not a paper figure — this guards the zero-allocation serving rewrite
(score-buffer pool, chunk autotune, flat ``TopNResult``, float32 path) on a
catalogue large enough (100k items in full mode) that the legacy engine's
per-chunk allocation and double-width bandwidth dominate.  Three invariants
are asserted in every mode:

* the rewritten float64 rankings equal the legacy engine's on every user
  and the per-user reference kernel on a subsample,
* the pooled engines perform **zero** score-block allocations across the
  timed passes (the pool's stats counter is the witness),
* the float32 top-N substantially overlaps the float64 one.

The >= 1.5x users/s floor over the legacy engine is asserted in full mode
on multi-core hosts (single-core containers cannot overlap the BLAS
product with selection, and smoke corpora are too small to be
bandwidth-bound).
"""

from __future__ import annotations

import os

from _report import write_bench_json
from conftest import run_once, scaled, smoke_mode

from repro.experiments.hotpath import run_serving_hotpath


def test_serving_hotpath(benchmark, report_writer):
    params = scaled(
        dict(
            n_users=2_048,
            n_items=100_000,
            n_coclusters=32,
            top_n=10,
            n_repeats=3,
        ),
        n_users=256,
        n_items=2_000,
        n_repeats=1,
    )
    result = run_once(benchmark, run_serving_hotpath, random_state=0, **params)

    lines = [
        result.to_text(),
        "",
        f"per-run legacy seconds:  {[f'{t:.3f}' for t in result.per_run_legacy_seconds]}",
        f"per-run flat64 seconds:  {[f'{t:.3f}' for t in result.per_run_flat64_seconds]}",
        f"per-run flat32 seconds:  {[f'{t:.3f}' for t in result.per_run_flat32_seconds]}",
        "note: float64 is asserted exact against the legacy engine and the per-user",
        "reference kernel; float32 trades bit-exactness for half the scoring",
        "bandwidth — its top-N overlap against float64 is reported above.",
    ]
    report_writer("serving_hotpath", "\n".join(lines))
    write_bench_json(
        "serving_hotpath",
        dict(
            speedup=result.speedup(),
            speedup_float64=result.speedup64(),
            legacy_users_per_second=result.legacy_users_per_second(),
            flat64_users_per_second=result.flat64_users_per_second(),
            flat32_users_per_second=result.flat32_users_per_second(),
            float64_exact=result.float64_exact,
            float32_overlap=result.float32_overlap,
            pool_allocations_after_warmup=result.pool_allocations_after_warmup,
            pool_reuses=result.pool_reuses,
            effective_chunk=result.effective_chunk,
        ),
        **params,
    )

    # The rewrite must be a pure optimisation on the default path.
    assert result.float64_exact
    # Steady state allocates nothing: every timed chunk reuses pooled blocks.
    assert result.pool_allocations_after_warmup == 0
    assert result.pool_reuses > 0
    # Half-width scoring must not wreck the lists.
    assert result.float32_overlap >= 0.9

    # Throughput floor: full mode on multi-core hosts only — smoke corpora
    # are not bandwidth-bound, and a single core cannot overlap scoring with
    # selection, which is where much of the win comes from.
    if not smoke_mode() and (os.cpu_count() or 1) >= 2:
        assert result.speedup() >= 1.5, (
            f"hot-path speedup {result.speedup():.2f}x below the 1.5x floor "
            f"(legacy {result.legacy_seconds:.3f}s vs flat32 {result.flat32_seconds:.3f}s)"
        )
