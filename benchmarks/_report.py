"""Machine-readable benchmark reports.

Every ``bench_*.py`` dumps its headline numbers through
:func:`write_bench_json` next to the human-readable ``results/<name>.txt``
report.  The JSON files (``results/BENCH_<name>.json``) are uploaded as a CI
artifact, so the perf trajectory of the repo is a directory of small
documents instead of numbers buried in pytest logs.

The schema is deliberately flat::

    {
      "bench": "incremental_refit",
      "smoke": false,
      "metrics": {"warm_seconds": 0.41, "cold_seconds": 5.6, ...},
      "context": {"n_users": 2000, ...},
      "host": {"cpu_count": 8, "platform": "...", "python": "3.11.8"},
      "recorded_at": "2026-08-08T12:34:56+00:00"
    }

``metrics`` is the headline scalars a trend dashboard would plot;
``context`` is whatever identifies the configuration that produced them
(corpus size, worker count, smoke overrides).  Values are coerced to plain
JSON scalars — numpy floats and ints are accepted.
"""

from __future__ import annotations

import json
import os
import platform
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Mapping

RESULTS_DIR = Path(__file__).parent / "results"


def _jsonable(value: Any) -> Any:
    """Coerce a metric value to a JSON scalar (numpy types included)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if isinstance(value, (list, tuple)):
        return [_jsonable(entry) for entry in value]
    if isinstance(value, Mapping):
        return {str(key): _jsonable(entry) for key, entry in value.items()}
    return str(value)


def _smoke() -> bool:
    """Whether the harness runs in smoke mode, without a hard conftest import.

    The conftest lookup keeps ``--smoke`` visible here; the environment
    fallback keeps the helper importable outside pytest (e.g. ad-hoc
    scripts re-emitting a report).
    """
    try:
        from conftest import smoke_mode

        return bool(smoke_mode())
    except Exception:
        return bool(os.environ.get("REPRO_BENCH_SMOKE"))


def write_bench_json(
    name: str, metrics: Dict[str, Any], **context: Any
) -> Path:
    """Persist a benchmark's headline numbers as ``results/BENCH_<name>.json``.

    Parameters
    ----------
    name:
        Benchmark identifier; also the file stem (``BENCH_<name>.json``).
    metrics:
        Headline scalars — timings, throughputs, recalls, speedups.
    **context:
        Configuration that produced the metrics (corpus shape, workers, ...).

    Returns
    -------
    Path
        The written file, for tests and log messages.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "bench": name,
        "smoke": _smoke(),
        "metrics": {str(key): _jsonable(value) for key, value in metrics.items()},
        "context": {str(key): _jsonable(value) for key, value in context.items()},
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8")
    return path
