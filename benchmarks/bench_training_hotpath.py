"""Training hot path: pooled sweep workspaces versus the legacy kernel.

Not a paper figure — this guards the zero-allocation training rewrite
(plan-cached sparse operators, pooled sweep workspaces, in-place Armijo
machinery) against a verbatim replica of the pre-rewrite allocating kernel.
Two invariants are asserted in every mode:

* the pooled float64 factors are ``np.array_equal`` to the legacy kernel's
  after a full alternating sweep trajectory (bit-exactness — the rewrite
  reuses storage, it never changes the math),
* the timed passes build **zero** new workspaces (the plan sides' store
  counters are the witness), only reuses.

The >= 1.2x sweep-throughput floor over the legacy replica is asserted in
full mode on multi-core hosts (smoke corpora are too small for the
allocation cost to dominate, and single-core containers spend the budget
in BLAS either way).
"""

from __future__ import annotations

import os

from _report import write_bench_json
from conftest import run_once, scaled, smoke_mode

from repro.experiments.training_hotpath import run_training_hotpath


def test_training_hotpath(benchmark, report_writer):
    params = scaled(
        dict(
            n_users=6_000,
            n_items=2_000,
            n_coclusters=32,
            n_sweeps=4,
            n_repeats=3,
            positives_per_user=16,
        ),
        n_users=400,
        n_items=160,
        n_coclusters=8,
        n_sweeps=2,
        n_repeats=1,
        positives_per_user=8,
    )
    result = run_once(benchmark, run_training_hotpath, random_state=0, **params)

    lines = [
        result.to_text(),
        "",
        f"per-run legacy seconds:  {[f'{t:.3f}' for t in result.per_run_legacy_seconds]}",
        f"per-run pooled seconds:  {[f'{t:.3f}' for t in result.per_run_pooled_seconds]}",
        "note: the pooled kernels are asserted bit-exact against the legacy",
        "replica — identical operations in identical order, reused storage —",
        "so the speedup is pure allocation/validation overhead removed.",
    ]
    report_writer("training_hotpath", "\n".join(lines))
    write_bench_json(
        "training_hotpath",
        dict(
            speedup=result.speedup(),
            legacy_rows_per_second=result.legacy_rows_per_second(),
            pooled_rows_per_second=result.pooled_rows_per_second(),
            legacy_nnz_per_second=result.legacy_nnz_per_second(),
            pooled_nnz_per_second=result.pooled_nnz_per_second(),
            float64_exact=result.float64_exact,
            workspace_allocations_after_warmup=(
                result.workspace_allocations_after_warmup
            ),
            workspace_reuses=result.workspace_reuses,
            peak_workspace_bytes=result.peak_workspace_bytes,
        ),
        **params,
    )

    # The rewrite must be a pure optimisation: identical factor bytes.
    assert result.float64_exact
    # Steady state allocates nothing: every timed sweep reuses its arena.
    assert result.workspace_allocations_after_warmup == 0
    assert result.workspace_reuses > 0

    # Throughput floor: full mode on multi-core hosts only — on smoke
    # corpora the kernels finish in microseconds and timer noise dominates.
    if not smoke_mode() and (os.cpu_count() or 1) >= 2:
        assert result.speedup() >= 1.2, (
            f"sweep speedup {result.speedup():.2f}x below the 1.2x floor "
            f"(legacy {result.legacy_seconds:.3f}s vs pooled "
            f"{result.pooled_seconds:.3f}s)"
        )
