"""float32 accuracy study: does halving factor memory cost recall@M?

ROADMAP question answered here: ``dtype="float32"`` halves the memory of the
fitted factor matrices, which doubles the model size a serving host can hold
— but only if ranking quality survives the precision cut.  The study fits
OCuLaR at both precisions from the same seed, split and hyper-parameters at
converged tolerances and compares recall@M / MAP@M.

Expected (and asserted in full mode): no meaningful gap.  The projected
gradient iterates at ~1e-7 relative perturbation — far below the score
differences that separate ranked items — so float32 recall@M matches float64
within split noise.  The memory halving is exact by construction and
asserted always.
"""

from __future__ import annotations

from _report import write_bench_json
from conftest import run_once, scaled, smoke_mode

from repro.experiments.accuracy import run_precision_study

#: Maximum |recall@M(float64) - recall@M(float32)| accepted at full scale.
RECALL_GAP_TOLERANCE = 0.02

#: Same bound for MAP@M.
MAP_GAP_TOLERANCE = 0.02


def test_float32_matches_float64_at_half_the_memory(benchmark, report_writer):
    params = scaled(
        dict(scale=0.5, max_users=150, max_iterations=80, tolerance=1e-6),
        scale=0.15,
        max_users=40,
        max_iterations=10,
        tolerance=1e-4,
    )
    result = run_once(
        benchmark,
        run_precision_study,
        dataset="movielens",
        m=50,
        random_state=0,
        **params,
    )

    lines = [
        result.to_text(),
        "",
        "ROADMAP: float32 halves factor memory; expected recall@M gap at",
        "converged tolerances: none (asserted in full mode).",
    ]
    report_writer("float32_accuracy", "\n".join(lines))
    write_bench_json(
        "float32_accuracy",
        dict(
            recall_gap=result.recall_gap(),
            map_gap=result.map_gap(),
            memory_ratio=result.memory_ratio(),
        ),
        m=result.m,
        **params,
    )

    # Structural claims hold at any scale: both precisions evaluated, the
    # factor memory exactly halved.
    assert set(result.metrics) == {"float32", "float64"}
    assert result.memory_ratio() == 0.5

    # The accuracy-parity claim needs a corpus large enough for stable
    # recall; tiny smoke corpora cannot support it.
    if not smoke_mode():
        assert abs(result.recall_gap()) <= RECALL_GAP_TOLERANCE, (
            f"float32 recall@{result.m} deviates by {result.recall_gap():+.4f} "
            f"(tolerance {RECALL_GAP_TOLERANCE})"
        )
        assert abs(result.map_gap()) <= MAP_GAP_TOLERANCE, (
            f"float32 MAP@{result.m} deviates by {result.map_gap():+.4f} "
            f"(tolerance {MAP_GAP_TOLERANCE})"
        )
