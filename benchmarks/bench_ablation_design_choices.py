"""Ablation benchmarks for the design choices DESIGN.md calls out.

These do not correspond to a numbered table or figure; they quantify the two
algorithmic decisions the paper motivates in prose:

* **Single projected-gradient step per block** (Section IV-B): solving each
  block subproblem only approximately converges faster in wall-clock time
  than solving it (nearly) exactly before alternating.
* **Regularisation is crucial** (Section II, discussing BIGCLAM): an
  unregularised fit generalises worse than a properly regularised one.
* **R-OCuLaR weighting** (Section V): the relative-preference weighting is a
  comparable-quality alternative, not a strict improvement — matching the
  mixed outcome of the paper's Table I.
"""

from __future__ import annotations

import time

from _report import write_bench_json
from conftest import run_once, scaled, smoke_mode

from repro.core.ocular import OCuLaR
from repro.core.r_ocular import ROCuLaR
from repro.data.datasets import make_movielens_like
from repro.data.splitting import train_test_split
from repro.evaluation.evaluator import evaluate_recommender
from repro.utils.tables import format_table


def _scaled_sizes() -> dict:
    """Corpus size / iteration budget, shrunk in smoke mode."""
    return scaled(
        dict(n_users=250, n_items=160, max_iterations=100),
        n_users=80,
        n_items=40,
        max_iterations=12,
    )


def _make_split(n_users: int, n_items: int, random_state: int = 0):
    matrix, _ = make_movielens_like(
        n_users=n_users, n_items=n_items, random_state=random_state
    )
    return train_test_split(matrix, test_fraction=0.25, random_state=random_state)


def test_ablation_single_vs_exact_block_updates(benchmark, report_writer):
    """Single-step block updates reach a given objective in less wall-clock time."""
    sizes = _scaled_sizes()

    def run():
        split = _make_split(sizes["n_users"], sizes["n_items"])
        rows = []
        for inner_sweeps in (1, 5):
            start = time.perf_counter()
            model = OCuLaR(
                n_coclusters=20,
                regularization=10.0,
                max_iterations=sizes["max_iterations"],
                tolerance=1e-4,
                inner_sweeps=inner_sweeps,
                random_state=0,
            ).fit(split.train)
            elapsed = time.perf_counter() - start
            evaluation = evaluate_recommender(model, split, m=20)
            rows.append(
                {
                    "inner_sweeps": inner_sweeps,
                    "seconds": elapsed,
                    "objective": model.history_.final_objective,
                    "outer_iterations": model.history_.n_iterations,
                    "recall": evaluation.recall,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    table = format_table(
        ["inner sweeps/block", "wall-clock (s)", "final objective", "outer iters", "recall@20"],
        [
            [row["inner_sweeps"], row["seconds"], row["objective"], row["outer_iterations"], row["recall"]]
            for row in rows
        ],
    )
    report_writer(
        "ablation_inner_sweeps",
        "Ablation — single projected-gradient step per block vs (nearly) exact block solves\n"
        + table
        + "\npaper: 'solving the subproblems exactly may slow down convergence' (Section IV-B)",
    )

    single, exact = rows
    write_bench_json(
        "ablation_inner_sweeps",
        dict(
            single_seconds=single["seconds"],
            exact_seconds=exact["seconds"],
            single_recall=single["recall"],
            exact_recall=exact["recall"],
            single_objective=single["objective"],
            exact_objective=exact["objective"],
        ),
        **_scaled_sizes(),
    )
    if smoke_mode():
        assert single["outer_iterations"] >= 1 and exact["outer_iterations"] >= 1
        return
    # Comparable quality...
    assert abs(single["recall"] - exact["recall"]) < 0.08
    assert single["objective"] <= exact["objective"] * 1.05
    # ...at a fraction of the per-outer-iteration cost (5 inner sweeps cost
    # roughly 5x per iteration, so the single-step variant must be cheaper
    # per unit of objective progress).
    assert single["seconds"] < exact["seconds"]


def test_ablation_regularization_matters(benchmark, report_writer):
    """lambda = 0 underperforms a tuned lambda (the paper's BIGCLAM critique)."""

    sizes = _scaled_sizes()

    def run():
        split = _make_split(sizes["n_users"], sizes["n_items"], random_state=1)
        results = {}
        for lam in (0.0, 10.0):
            model = OCuLaR(
                n_coclusters=20,
                regularization=lam,
                max_iterations=sizes["max_iterations"],
                random_state=0,
            ).fit(split.train)
            results[lam] = evaluate_recommender(model, split, m=20).recall
        return results

    results = run_once(benchmark, run)
    report_writer(
        "ablation_regularization",
        "Ablation — regularisation\n"
        + format_table(
            ["lambda", "recall@20"], [[lam, recall] for lam, recall in results.items()]
        )
        + "\npaper: regularisation 'turns out to be crucial for recommendation performance'",
    )
    write_bench_json(
        "ablation_regularization",
        {f"recall_lambda_{lam:g}": recall for lam, recall in results.items()},
        **_scaled_sizes(),
    )
    if not smoke_mode():
        assert results[10.0] >= results[0.0]


def test_ablation_relative_weighting(benchmark, report_writer):
    """R-OCuLaR is competitive with OCuLaR (neither dominates, as in Table I)."""

    sizes = _scaled_sizes()

    def run():
        split = _make_split(sizes["n_users"], sizes["n_items"], random_state=2)
        shared = dict(
            n_coclusters=20,
            regularization=10.0,
            max_iterations=sizes["max_iterations"],
            random_state=0,
        )
        ocular = evaluate_recommender(OCuLaR(**shared).fit(split.train), split, m=20)
        r_ocular = evaluate_recommender(ROCuLaR(**shared).fit(split.train), split, m=20)
        return {"OCuLaR": ocular, "R-OCuLaR": r_ocular}

    results = run_once(benchmark, run)
    report_writer(
        "ablation_relative_weighting",
        "Ablation — absolute (OCuLaR) vs relative (R-OCuLaR) likelihood weighting\n"
        + format_table(
            ["variant", "recall@20", "MAP@20"],
            [[name, result.recall, result.map] for name, result in results.items()],
        )
        + "\npaper Table I: the two variants trade places across datasets",
    )
    write_bench_json(
        "ablation_relative_weighting",
        {
            f"{metric}_{name}": getattr(result, metric)
            for name, result in results.items()
            for metric in ("recall", "map")
        },
        **_scaled_sizes(),
    )
    if not smoke_mode():
        ratio = results["R-OCuLaR"].recall / max(results["OCuLaR"].recall, 1e-9)
        assert 0.6 < ratio < 1.4
