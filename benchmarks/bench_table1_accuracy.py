"""Table I: recommendation accuracy of OCuLaR vs the baselines.

Paper claim reproduced here: "Across all datasets the OCuLaR variants are
either the best or the second-best performing algorithm (together with
wALS)", with MAP@50 / recall@50 measured under a 75/25 hold-out protocol.

The corpora are synthetic stand-ins at laptop scale (see DESIGN.md), so the
absolute values differ from the paper; the assertion is on the *ordering*:
the best OCuLaR variant ranks in the top two by recall and by MAP.
"""

from __future__ import annotations

import pytest
from _report import write_bench_json
from conftest import run_once, scaled, smoke_mode

from repro.experiments.accuracy import run_table1

#: Per-dataset benchmark configuration (kept small enough for CI-style runs).
CONFIGS = {
    "movielens": dict(m=50, scale=0.5, n_repeats=2, max_users=120),
    "citeulike": dict(m=50, scale=0.5, n_repeats=2, max_users=120),
    "b2b": dict(m=15, scale=1.0, n_repeats=2, max_users=120),
}


def _ocular_rank(result, metric: str) -> int:
    ranking = result.ranking(metric)
    return min(ranking.index("OCuLaR"), ranking.index("R-OCuLaR"))


@pytest.mark.parametrize("dataset", ["movielens", "citeulike", "b2b"])
def test_table1(benchmark, report_writer, dataset):
    config = scaled(CONFIGS[dataset], scale=0.25, n_repeats=1, max_users=40)
    result = run_once(benchmark, run_table1, dataset=dataset, random_state=0, **config)

    lines = [
        result.to_text(),
        "",
        f"measured ranking by recall: {result.ranking('recall')}",
        f"measured ranking by MAP:    {result.ranking('map')}",
        "paper shape: the OCuLaR variants are best or second best on every dataset",
    ]
    report_writer(f"table1_{dataset}", "\n".join(lines))
    write_bench_json(
        f"table1_{dataset}",
        {
            f"{metric}_{method}": values[metric]
            for method, values in result.metrics.items()
            for metric in ("recall", "map")
        },
        dataset=dataset,
        **config,
    )

    if smoke_mode():
        # The tiny smoke corpora cannot support ordering claims; just require
        # every method to have produced finite metrics.
        assert set(result.metrics) and all(
            values["recall"] >= 0 for values in result.metrics.values()
        )
        return

    # Shape assertions: an OCuLaR variant in the top 2 by at least one of the
    # two reported metrics (the paper's Table I has exactly this property,
    # with wALS occasionally edging out OCuLaR on CiteULike).
    assert min(_ocular_rank(result, "recall"), _ocular_rank(result, "map")) <= 1
    # And OCuLaR always beats BPR (true in every column of the paper's table).
    assert result.metrics["OCuLaR"]["recall"] >= result.metrics["BPR"]["recall"]
