"""Figure 1 / Figure 3: the toy overlapping co-cluster example.

Paper claims reproduced here:

* OCuLaR fits the 12x12 toy matrix and recommends **item 4 to user 6 with
  confidence 0.83**, justified by two co-clusters (items 1-3 bought by users
  4-5, items 5-9 bought by users 7-9).
* All three "white square" candidate recommendations are each user's top-1
  recommendation.
"""

from __future__ import annotations

from _report import write_bench_json
from conftest import run_once

from repro.experiments.paper_reference import PAPER_CLAIMS
from repro.experiments.toy import run_toy_example


def test_fig3_toy_example(benchmark, report_writer):
    result = run_once(benchmark, run_toy_example, random_state=0)

    lines = [
        "Figure 1 / Figure 3 — toy overlapping co-cluster example",
        f"paper: {PAPER_CLAIMS['fig3_confidence']}",
        f"measured: item 4 recommended to user 6 with confidence {result.headline_confidence:.2f} "
        f"(rank {result.headline_rank} among user 6's unknowns)",
        f"candidate recommendations recovered at top-1: {result.holes_recovered_at_1} of "
        f"{len(result.dataset.heldout_pairs)}",
        f"co-clusters supporting the headline recommendation: "
        f"{result.explanation.n_supporting_coclusters}",
        "",
        "input matrix:",
        result.matrix_text,
        "",
        "fitted probabilities (observed positives bracketed):",
        result.probability_text,
        "",
        "generated rationale:",
        result.explanation.to_text(),
    ]
    report_writer("fig3_toy_example", "\n".join(lines))
    write_bench_json(
        "fig3_toy_example",
        dict(
            headline_confidence=result.headline_confidence,
            headline_rank=result.headline_rank,
            holes_recovered_at_1=result.holes_recovered_at_1,
            supporting_coclusters=result.explanation.n_supporting_coclusters,
        ),
    )

    assert result.headline_rank == 1
    assert abs(result.headline_confidence - 0.83) < 0.10
    assert result.holes_recovered_at_1 == 3
    assert result.explanation.n_supporting_coclusters >= 2
