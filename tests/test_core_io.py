"""Tests for model persistence (save_model / load_model)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.io import load_model, save_model
from repro.core.ocular import OCuLaR
from repro.core.r_ocular import ROCuLaR
from repro.exceptions import DataError, NotFittedError


class TestSaveModel:
    def test_round_trip_preserves_scores_and_recommendations(self, fitted_toy_model, tmp_path):
        path = save_model(fitted_toy_model, tmp_path / "model.npz")
        restored = load_model(path)
        np.testing.assert_allclose(
            restored.score_user(6), fitted_toy_model.score_user(6)
        )
        np.testing.assert_array_equal(
            restored.recommend(6, n_items=3), fitted_toy_model.recommend(6, n_items=3)
        )
        assert restored.predict_proba(6, 4) == pytest.approx(
            fitted_toy_model.predict_proba(6, 4)
        )

    def test_round_trip_preserves_hyperparameters(self, fitted_toy_model, tmp_path):
        restored = load_model(save_model(fitted_toy_model, tmp_path / "model.npz"))
        assert restored.n_coclusters == fitted_toy_model.n_coclusters
        assert restored.regularization == fitted_toy_model.regularization
        assert isinstance(restored, OCuLaR)

    def test_explanations_work_after_reload(self, fitted_toy_model, tmp_path):
        restored = load_model(save_model(fitted_toy_model, tmp_path / "model.npz"))
        explanation = restored.explain(6, 4)
        assert explanation.confidence == pytest.approx(fitted_toy_model.predict_proba(6, 4))

    def test_labels_survive_round_trip(self, b2b_small, tmp_path):
        model = OCuLaR(n_coclusters=5, regularization=1.0, max_iterations=20, random_state=0)
        model.fit(b2b_small.matrix)
        restored = load_model(save_model(model, tmp_path / "b2b"))
        assert restored.train_matrix.label_of_user(0) == b2b_small.client_names[0]
        assert restored.train_matrix.label_of_item(0) == b2b_small.product_names[0]

    def test_suffix_added_when_missing(self, fitted_toy_model, tmp_path):
        path = save_model(fitted_toy_model, tmp_path / "model")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_r_ocular_round_trip(self, toy_dataset, tmp_path):
        model = ROCuLaR(n_coclusters=3, regularization=0.1, max_iterations=20, random_state=0)
        model.fit(toy_dataset.matrix)
        restored = load_model(save_model(model, tmp_path / "r.npz"))
        assert isinstance(restored, ROCuLaR)
        np.testing.assert_allclose(restored.score_user(6), model.score_user(6))

    def test_unfitted_model_rejected(self, tmp_path):
        with pytest.raises(NotFittedError):
            save_model(OCuLaR(), tmp_path / "model.npz")


class TestLoadModel:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError):
            load_model(tmp_path / "missing.npz")

    def test_non_model_archive_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, data=np.arange(3))
        with pytest.raises(DataError):
            load_model(path)

    def test_history_not_persisted(self, fitted_toy_model, tmp_path):
        restored = load_model(save_model(fitted_toy_model, tmp_path / "model.npz"))
        assert restored.history_ is None
        assert restored.is_fitted
