"""Tests for the long-lived recommender runtime: warm pools, zero-copy
serving publication, model-version swaps, and shm hygiene on exit."""

from __future__ import annotations

import os
import pickle
import threading
import warnings

import numpy as np
import pytest

from repro.api import RecommendRequest
from repro.core.backends import BackendLease, ParallelBackend, VectorizedBackend
from repro.core.ocular import OCuLaR
from repro.data.datasets import make_netflix_like
from repro.exceptions import ConfigurationError, NotFittedError
from repro.parallel import SharedMemoryProcessExecutor
from repro.runtime import RecommenderRuntime
from repro.serving import TopNEngine, recommend_folded, serve_sharded
from repro.serving.shared import _topn_shard


def _dev_shm_entries() -> set:
    """Current /dev/shm entries (empty set where the mount does not exist)."""
    if not os.path.isdir("/dev/shm"):
        return set()
    return set(os.listdir("/dev/shm"))


@pytest.fixture(scope="module")
def corpus():
    matrix, _spec = make_netflix_like(n_users=150, n_items=60, random_state=0)
    return matrix


def _model(**overrides):
    settings = dict(
        n_coclusters=6,
        regularization=5.0,
        max_iterations=3,
        tolerance=0.0,
        random_state=0,
    )
    settings.update(overrides)
    return OCuLaR(**settings)


@pytest.fixture(scope="module")
def fitted_reference(corpus):
    """A vectorized fit plus its single-process serving engine."""
    # Module-scoped, so it runs outside the function-scoped warning
    # silencer; the tiny iteration budget's convergence warning is expected.
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        model = _model().fit(corpus)
    return model, TopNEngine.from_model(model)


# --------------------------------------------------------------------------- #
# Warm pool across fits
# --------------------------------------------------------------------------- #
class TestWarmPool:
    def test_worker_pids_stable_across_three_fits(self, corpus):
        with RecommenderRuntime(executor="process", max_workers=2) as runtime:
            runtime.fit(_model(), corpus)
            initial = runtime.worker_pids()
            assert initial and os.getpid() not in initial
            for seed in (1, 2):
                runtime.fit(_model(random_state=seed), corpus)
                # A warm pool never restarts its processes, so every PID
                # observed after later fits was already serving fit #1.
                assert runtime.worker_pids() <= initial

    def test_fit_backend_override_is_borrowed_and_config_untouched(self, corpus):
        with RecommenderRuntime(executor="process", max_workers=2) as runtime:
            model = _model(backend="vectorized")
            runtime.fit(model, corpus)
            assert model.backend == "vectorized"  # config not mutated
            assert model.is_fitted
            # The warm executor survived the fit (a borrower never shuts down).
            assert runtime.executor.starmap(divmod, [(7, 3)]) == [(2, 1)]

    def test_warm_fit_factors_match_vectorized(self, corpus, fitted_reference):
        reference, _engine = fitted_reference
        with RecommenderRuntime(executor="process", max_workers=2) as runtime:
            warm = runtime.fit(_model(), corpus)
            assert np.array_equal(
                reference.factors_.user_factors, warm.factors_.user_factors
            )
            assert np.array_equal(
                reference.factors_.item_factors, warm.factors_.item_factors
            )

    def test_refit_uses_stored_matrix(self, corpus):
        with RecommenderRuntime(executor="serial") as runtime:
            with pytest.raises(NotFittedError):
                runtime.refit()
            model = runtime.fit(_model(), corpus)
            again = runtime.refit()
            assert again is model
            assert again.is_fitted

    def test_fit_supports_models_without_backend_override(self, corpus):
        from repro.baselines.popularity import PopularityRecommender

        with RecommenderRuntime(executor="serial") as runtime:
            model = runtime.fit(PopularityRecommender(), corpus)
            assert model.is_fitted

    def test_fit_backend_override_rejects_names(self, corpus):
        from repro.core.bias import BiasedOCuLaR

        # Both fit entry points enforce the borrowed-instance-only contract.
        with pytest.raises(ConfigurationError):
            _model().fit(corpus, backend="parallel")
        with pytest.raises(ConfigurationError):
            BiasedOCuLaR(n_coclusters=4, max_iterations=1).fit(corpus, backend="parallel")


# --------------------------------------------------------------------------- #
# Publication / generation swap
# --------------------------------------------------------------------------- #
@pytest.mark.skipif(not os.path.isdir("/dev/shm"), reason="requires a /dev/shm mount")
class TestGenerationLifecycle:
    def test_publish_swap_unlinks_old_generation(self, corpus):
        with RecommenderRuntime(executor="process", max_workers=2) as runtime:
            runtime.fit(_model(), corpus)
            first = runtime.publish()
            first_spec = runtime.published_spec
            assert first_spec is not None
            first_names = set(first_spec.segment_names())
            assert first_names <= _dev_shm_entries()

            second = runtime.update()
            assert second == first + 1
            second_spec = runtime.published_spec
            assert second_spec is not None
            assert second_spec.generation != first_spec.generation
            # The old generation's names are gone from /dev/shm and from the
            # executor's books; the new one is live.
            assert not (first_names & _dev_shm_entries())
            assert not (
                first_names & set(runtime.executor.active_segment_names())
            )
            assert set(second_spec.segment_names()) <= _dev_shm_entries()
            # Serving still works after the swap.
            assert runtime.recommend(
                RecommendRequest(users=(0, 1, 2), n_items=3)
            ).rankings

    def test_swap_defers_unlink_until_inflight_calls_drain(self, corpus):
        with RecommenderRuntime(executor="process", max_workers=2) as runtime:
            runtime.fit(_model(), corpus)
            runtime.publish()
            old_spec = runtime.published_spec
            old_names = set(old_spec.segment_names())
            # Simulate a serving call that snapshotted generation 1 and has
            # not dispatched yet (the race a swap must tolerate).
            _engine, spec, _mod, _gen = runtime._serving_snapshot()
            assert spec is old_spec
            runtime.update()
            # Old generation retired, not unlinked: the in-flight call's
            # workers can still attach by name.
            assert old_names <= _dev_shm_entries()
            result = runtime._executor.starmap(
                _topn_shard, [(old_spec, [0, 1, 2], 3, True)]
            )
            assert len(result[0]) == 3
            runtime._release_spec(spec)
            # Last reference dropped: the retired generation unlinks now.
            assert not (old_names & _dev_shm_entries())
            # The new generation serves normally.
            assert runtime.recommend(
                RecommendRequest(users=(0, 1), n_items=3)
            ).rankings

    def test_recommend_folded_serves_published_version(self, corpus, fitted_reference):
        reference_model, engine = fitted_reference
        cold = [[1, 5, 9], [2, 3]]
        expected = recommend_folded(engine, cold, model=reference_model, n_items=6, n_sweeps=8)
        with RecommenderRuntime(executor="process", max_workers=2) as runtime:
            runtime.fit(_model(), corpus)
            runtime.publish()
            # A refit WITHOUT update() must not leak into serving: cold-start
            # lists still come from the published version, like topn.
            runtime.refit(callback=lambda i, h: True)  # perturb self.model
            runtime.fit(_model(random_state=9), corpus)
            got = runtime.recommend(
                RecommendRequest(interactions=cold, n_items=6, n_sweeps=8)
            ).rankings
            for want, have in zip(expected, got):
                assert np.array_equal(want, have)

    def test_close_leaves_dev_shm_clean(self, corpus):
        before = _dev_shm_entries()
        runtime = RecommenderRuntime(executor="process", max_workers=2)
        runtime.fit(_model(), corpus)
        runtime.publish()
        runtime.recommend(RecommendRequest(users=range(30), n_items=5))
        runtime.recommend(
            RecommendRequest(interactions=[[1, 2, 3]], n_items=5, n_sweeps=5)
        )
        runtime.close()
        assert _dev_shm_entries() <= before
        runtime.close()  # idempotent

    def test_close_with_serving_in_flight(self, corpus):
        """Concurrent serving while the runtime closes: /dev/shm still ends clean."""
        before = _dev_shm_entries()
        runtime = RecommenderRuntime(executor="process", max_workers=2)
        runtime.fit(_model(), corpus)
        runtime.publish()
        stop = threading.Event()
        errors: list = []

        def hammer():
            while not stop.is_set():
                try:
                    runtime.recommend(
                        RecommendRequest(users=range(60), n_items=5),
                        shard_size=20,
                    )
                except Exception as exc:  # expected once the pool drains
                    errors.append(exc)
                    return

        thread = threading.Thread(target=hammer)
        thread.start()
        try:
            for _ in range(3):
                runtime.recommend(
                    RecommendRequest(users=range(60), n_items=5), shard_size=20
                )
        finally:
            runtime.close()
            stop.set()
            thread.join(timeout=30)
        assert not thread.is_alive()
        assert _dev_shm_entries() <= before

    def test_borrowed_executor_survives_close_and_is_unpublished(self, corpus):
        before = _dev_shm_entries()
        with SharedMemoryProcessExecutor(max_workers=2) as executor:
            runtime = RecommenderRuntime(executor=executor)
            runtime.fit(_model(), corpus)
            runtime.publish()
            assert runtime.recommend(
                RecommendRequest(users=range(20), n_items=5)
            ).rankings
            runtime.close()
            # The borrowed executor is still alive...
            assert executor.starmap(divmod, [(9, 2)]) == [(4, 1)]
            # ...but holds nothing the runtime published.
            assert executor.active_segment_names() == []
        assert _dev_shm_entries() <= before

    def test_borrowed_close_defers_unlink_for_inflight_calls(self, corpus):
        with SharedMemoryProcessExecutor(max_workers=2) as executor:
            runtime = RecommenderRuntime(executor=executor)
            runtime.fit(_model(), corpus)
            runtime.publish()
            _engine, spec, _mod, _gen = runtime._serving_snapshot()  # in flight
            runtime.close()
            # close() must honor the in-flight reference: the generation
            # stays attachable until the call drains.
            names = set(spec.segment_names())
            assert names <= _dev_shm_entries()
            result = executor.starmap(_topn_shard, [(spec, [0, 1], 3, True)])
            assert len(result[0]) == 2
            runtime._release_spec(spec)
            assert not (names & _dev_shm_entries())
            assert executor.active_segment_names() == []

    def test_session_call_reference_survives_racing_release(self, corpus):
        # A session shared across threads: a call takes its own generation
        # reference, so release() (or close) racing the call can never pull
        # the segments out from under it mid-flight.
        with RecommenderRuntime(executor="process", max_workers=2) as runtime:
            runtime.fit(_model(), corpus)
            runtime.publish()
            session = runtime.serving_session()
            spec = session._spec
            names = set(spec.segment_names())
            # Simulate a call in progress: per-call reference acquired...
            engine, call_spec, _mod, _gen = session._acquire_for_call()
            assert call_spec is spec
            # ...then the session is released and the model version swapped
            # while the call is still in flight.
            session.release()
            session.release()  # double release: atomic, no double-decrement
            runtime.update()
            assert names <= _dev_shm_entries()  # still attachable
            result = runtime._executor.starmap(
                _topn_shard, [(spec, [0, 1], 3, True)]
            )
            assert len(result[0]) == 2
            runtime._release_spec(call_spec)  # the call's own reference
            assert not (names & _dev_shm_entries())
            # A released session refuses new calls.
            with pytest.raises(ConfigurationError):
                session.recommend(RecommendRequest(users=(0,)))

    def test_publish_requires_fitted_model(self, corpus):
        with RecommenderRuntime(executor="serial") as runtime:
            with pytest.raises(NotFittedError):
                runtime.publish()
            with pytest.raises(NotFittedError):
                runtime.recommend(RecommendRequest(users=(0,)))

    def test_invalid_arguments_rejected_before_pool_spawn(self):
        # Validation precedes executor construction, so a bad argument
        # cannot leak a spawned worker pool with no handle to close it.
        with pytest.raises(ConfigurationError):
            RecommenderRuntime(executor="process", chunk_size=0)
        with pytest.raises(ConfigurationError):
            RecommenderRuntime(executor="process", n_shards=-1)

    def test_closed_runtime_rejects_use(self, corpus):
        runtime = RecommenderRuntime(executor="serial")
        runtime.close()
        with pytest.raises(ConfigurationError):
            runtime.fit(_model(), corpus)
        with pytest.raises(ConfigurationError):
            runtime.recommend(RecommendRequest(users=(0,)))


# --------------------------------------------------------------------------- #
# Ranking equality: process shards vs the single-process engine
# --------------------------------------------------------------------------- #
class TestServingParity:
    @pytest.mark.parametrize("n_shards", [1, 2, 5])
    def test_topn_equals_single_process_engine(
        self, corpus, fitted_reference, n_shards
    ):
        model, engine = fitted_reference
        users = list(range(corpus.n_users))
        reference = engine.recommend_batch(users, n_items=7)
        shard_size = -(-len(users) // n_shards)
        with RecommenderRuntime(executor="process", max_workers=2) as runtime:
            runtime.fit(_model(), corpus)
            runtime.publish()
            result = runtime.recommend(
                RecommendRequest(users=users, n_items=7), shard_size=shard_size
            )
            assert runtime.last_serving_stats.n_shards == n_shards
            assert runtime.last_serving_stats.path == "shared"
            assert len(result.rankings) == len(users)
            for expected, got in zip(reference, result.rankings):
                assert np.array_equal(expected, got)

    @pytest.mark.parametrize("n_shards", [1, 2, 5])
    def test_recommend_folded_equals_single_process(
        self, corpus, fitted_reference, n_shards
    ):
        model, engine = fitted_reference
        cold = [[1, 5, 9], [2, 3], [0, 10, 20, 30], [], [7]]
        reference = recommend_folded(engine, cold, model=model, n_items=6, n_sweeps=8)
        shard_size = -(-len(cold) // n_shards)
        with RecommenderRuntime(executor="process", max_workers=2) as runtime:
            runtime.fit(_model(), corpus)
            runtime.publish()
            got = runtime.recommend(
                RecommendRequest(interactions=cold, n_items=6, n_sweeps=8),
                shard_size=shard_size,
            ).rankings
            assert runtime.last_serving_stats.n_shards == n_shards
            assert len(got) == len(cold)
            for expected, lists in zip(reference, got):
                assert np.array_equal(expected, lists)

    def test_tasks_carry_descriptors_not_factors(self, corpus, fitted_reference):
        _model_ref, engine = fitted_reference
        pickled_engine_bytes = len(pickle.dumps(engine))
        with RecommenderRuntime(executor="process", max_workers=2) as runtime:
            runtime.fit(_model(), corpus)
            runtime.publish()
            runtime.recommend(
                RecommendRequest(users=range(corpus.n_users), n_items=5),
                shard_size=50,
            )
            stats = runtime.last_serving_stats
            assert stats.path == "shared"
            # The model-dependent payload is a handful of segment names —
            # far below the factor matrices a pickled engine would ship.
            assert stats.spec_bytes < 2048
            assert stats.spec_bytes < engine.factors.user_factors.nbytes
            assert stats.max_task_bytes < pickled_engine_bytes
            factor_bytes = (
                engine.factors.user_factors.nbytes + engine.factors.item_factors.nbytes
            )
            assert stats.max_task_bytes < factor_bytes

    def test_thread_runtime_serves_locally(self, corpus, fitted_reference):
        _model_ref, engine = fitted_reference
        users = list(range(40))
        reference = engine.recommend_batch(users, n_items=5)
        with RecommenderRuntime(executor="thread", max_workers=2) as runtime:
            runtime.fit(_model(), corpus)
            runtime.publish()
            result = runtime.recommend(
                RecommendRequest(users=users, n_items=5), shard_size=16
            )
            assert runtime.last_serving_stats.path == "local"
            for expected, got in zip(reference, result.rankings):
                assert np.array_equal(expected, got)
            folded = runtime.recommend(
                RecommendRequest(interactions=[[1, 2]], n_items=5, n_sweeps=5)
            )
            assert len(folded.rankings) == 1

    def test_concurrent_folds_match_serial_results(self, corpus, fitted_reference):
        # Concurrent cold-start calls share the runtime's warm backend; the
        # backend's sweep lock must keep their shared-memory factor slots
        # from clobbering each other (same-shape batches collide on slot
        # keys without it).
        reference_model, engine = fitted_reference
        batches = [[[1 + i, 5 + i, 9 + i], [2 + i, 3 + i]] for i in range(6)]
        expected = [
            recommend_folded(engine, batch, model=reference_model, n_items=6, n_sweeps=8)
            for batch in batches
        ]
        with RecommenderRuntime(executor="process", max_workers=2) as runtime:
            runtime.fit(_model(), corpus)
            runtime.publish()
            results: dict = {}
            errors: list = []

            def fold(index: int) -> None:
                try:
                    results[index] = runtime.recommend(
                        RecommendRequest(
                            interactions=batches[index], n_items=6, n_sweeps=8
                        ),
                        shard_size=1,
                    ).rankings
                except Exception as exc:  # pragma: no cover - failure mode
                    errors.append(exc)

            threads = [
                threading.Thread(target=fold, args=(index,))
                for index in range(len(batches))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors
            for index, want in enumerate(expected):
                assert len(results[index]) == len(want)
                for expected_row, got_row in zip(want, results[index]):
                    assert np.array_equal(expected_row, got_row), index

    def test_float32_model_serves_through_descriptors(self, corpus):
        model32 = _model(dtype="float32").fit(corpus)
        engine32 = TopNEngine.from_model(model32)
        reference = engine32.recommend_batch(range(60), n_items=5)
        with RecommenderRuntime(executor="process", max_workers=2) as runtime:
            runtime.fit(_model(dtype="float32"), corpus)
            runtime.publish()
            result = runtime.recommend(
                RecommendRequest(users=range(60), n_items=5), shard_size=20
            )
            assert runtime.last_serving_stats.path == "shared"
            for expected, got in zip(reference, result.rankings):
                assert np.array_equal(expected, got)


# --------------------------------------------------------------------------- #
# serve_sharded's descriptor path (the per-call flavour of the same machinery)
# --------------------------------------------------------------------------- #
class TestServeShardedDescriptorPath:
    def test_process_serving_matches_serial(self, fitted_reference):
        _model_ref, engine = fitted_reference
        users = list(range(engine.train_matrix.n_users))
        serial = serve_sharded(engine, users, n_items=5, shard_size=40)
        process = serve_sharded(
            engine, users, n_items=5, shard_size=40, executor="process"
        )
        assert serial.n_shards == process.n_shards
        for expected, got in zip(serial.rankings, process.rankings):
            assert np.array_equal(expected, got)

    def test_borrowed_shm_executor_left_clean(self, fitted_reference):
        _model_ref, engine = fitted_reference
        with SharedMemoryProcessExecutor(max_workers=2) as executor:
            result = serve_sharded(
                engine, range(50), n_items=5, shard_size=25, executor=executor
            )
            assert len(result.rankings) == 50
            # The call unpublishes what it published on the borrowed executor.
            assert executor.active_segment_names() == []


# --------------------------------------------------------------------------- #
# BackendLease ownership (the contract the runtime relies on)
# --------------------------------------------------------------------------- #
class TestBackendLease:
    def test_name_is_owned_instance_is_borrowed(self):
        owned = BackendLease("vectorized")
        assert owned.owned
        backend = VectorizedBackend()
        borrowed = BackendLease(backend)
        assert not borrowed.owned
        assert borrowed.backend is backend

    def test_release_only_touches_owned(self):
        calls = []

        class Probe(VectorizedBackend):
            def shutdown(self):
                calls.append("shutdown")

        probe = Probe()
        with BackendLease(probe):
            pass
        assert calls == []  # borrowed: context exit must not shut down

    def test_trainer_reports_ownership(self):
        from repro.core.optimizer import BlockCoordinateTrainer

        assert BlockCoordinateTrainer(backend="vectorized").owns_backend
        with ParallelBackend(n_workers=1, executor="serial") as backend:
            assert not BlockCoordinateTrainer(backend=backend).owns_backend

    def test_owned_double_release_is_idempotent(self):
        # Lifecycle code may release twice (explicit release + context
        # exit); the second release must be a harmless no-op.
        lease = BackendLease("parallel", n_workers=1, executor="thread")
        assert lease.owned
        assert lease.backend._scheduler.live_executor is None  # still lazy
        lease.backend._scheduler.executor.map(abs, [-1])  # force the pool
        lease.release()
        assert lease.backend._scheduler.live_executor is None
        lease.release()  # second release: no error, nothing to tear down
        assert lease.backend._scheduler.live_executor is None

    def test_owned_context_exit_after_explicit_release(self):
        with BackendLease("parallel", n_workers=1, executor="serial") as lease:
            lease.release()
        # __exit__ ran release() again; reaching here without error is the
        # contract.
        assert lease.owned

    def test_borrow_after_shutdown_stays_borrowed(self):
        # Borrowing an instance whose pool was already shut down is legal:
        # the lease never owns it, release() never touches it, and the
        # scheduler transparently rebuilds the pool on next use (shutdown
        # resets the owned executor to lazy, it does not poison it).
        backend = ParallelBackend(n_workers=1, executor="thread")
        backend._scheduler.executor.map(abs, [-1])
        backend.shutdown()
        assert backend._scheduler.live_executor is None
        lease = BackendLease(backend)
        assert not lease.owned
        assert lease.backend is backend
        lease.release()
        lease.release()
        # The borrowed backend still works after both releases: the lease
        # neither shut it down again nor blocked its lazy rebuild.
        assert backend._scheduler.executor.map(abs, [-2]) == [2]
        backend.shutdown()

    def test_borrowed_shut_down_backend_not_resurrected_by_release(self):
        calls = []

        class Probe(VectorizedBackend):
            def shutdown(self):
                calls.append("shutdown")

        probe = Probe()
        probe.shutdown()
        with BackendLease(probe) as lease:
            assert not lease.owned
        lease.release()
        # Exactly the caller's own shutdown: neither context exit nor the
        # explicit releases added calls on a borrowed (even dead) instance.
        assert calls == ["shutdown"]
