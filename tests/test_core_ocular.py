"""Tests for the OCuLaR recommender (fitting, scoring, recommending)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ocular import OCuLaR
from repro.data.synthetic import make_planted_coclusters, membership_recovery_score
from repro.exceptions import ConfigurationError, NotFittedError


class TestConfiguration:
    def test_invalid_hyperparameters_raise(self):
        with pytest.raises(ConfigurationError):
            OCuLaR(n_coclusters=0)
        with pytest.raises(ConfigurationError):
            OCuLaR(regularization=-1.0)
        with pytest.raises(ConfigurationError):
            OCuLaR(sigma=1.5)
        with pytest.raises(ConfigurationError):
            OCuLaR(user_weighting="absolute")

    def test_get_params_roundtrip(self):
        model = OCuLaR(n_coclusters=7, regularization=3.0, backend="reference")
        params = model.get_params()
        assert params["n_coclusters"] == 7
        assert params["regularization"] == 3.0
        assert params["backend"] == "reference"
        rebuilt = OCuLaR(**{k: v for k, v in params.items()})
        assert rebuilt.get_params() == params


class TestUnfittedBehaviour:
    def test_prediction_before_fit_raises(self):
        model = OCuLaR()
        with pytest.raises(NotFittedError):
            model.score_user(0)
        with pytest.raises(NotFittedError):
            model.recommend(0)
        with pytest.raises(NotFittedError):
            model.predict_proba(0, 0)
        with pytest.raises(NotFittedError):
            model.coclusters()
        assert not model.is_fitted


class TestFitting:
    def test_fit_returns_self_and_sets_state(self, toy_dataset):
        model = OCuLaR(n_coclusters=3, regularization=0.05, max_iterations=50, random_state=0)
        assert model.fit(toy_dataset.matrix) is model
        assert model.is_fitted
        assert model.factors_ is not None
        assert model.history_ is not None
        assert model.user_factors_.shape == (12, 3)
        assert model.item_factors_.shape == (12, 3)

    def test_factors_non_negative(self, fitted_toy_model):
        assert (fitted_toy_model.user_factors_ >= 0).all()
        assert (fitted_toy_model.item_factors_ >= 0).all()

    def test_training_objective_decreases(self, fitted_toy_model):
        values = fitted_toy_model.history_.objective_values
        assert values[-1] < values[0]

    def test_deterministic_given_seed(self, toy_dataset):
        first = OCuLaR(n_coclusters=3, max_iterations=30, random_state=5).fit(toy_dataset.matrix)
        second = OCuLaR(n_coclusters=3, max_iterations=30, random_state=5).fit(toy_dataset.matrix)
        np.testing.assert_array_equal(first.user_factors_, second.user_factors_)

    def test_different_seeds_give_different_factors(self, toy_dataset):
        first = OCuLaR(n_coclusters=3, max_iterations=10, random_state=1).fit(toy_dataset.matrix)
        second = OCuLaR(n_coclusters=3, max_iterations=10, random_state=2).fit(toy_dataset.matrix)
        assert not np.allclose(first.user_factors_, second.user_factors_)


class TestScoring:
    def test_scores_are_probabilities(self, fitted_toy_model):
        scores = fitted_toy_model.score_user(6)
        assert scores.shape == (12,)
        assert np.all(scores >= 0) and np.all(scores < 1)

    def test_score_users_matches_score_user(self, fitted_toy_model):
        batch = fitted_toy_model.score_users([0, 6, 7])
        for row, user in zip(batch, (0, 6, 7)):
            np.testing.assert_allclose(row, fitted_toy_model.score_user(user))

    def test_score_users_empty(self, fitted_toy_model):
        assert fitted_toy_model.score_users([]).shape == (0, 12)

    def test_predict_proba_consistent_with_score(self, fitted_toy_model):
        assert fitted_toy_model.predict_proba(6, 4) == pytest.approx(
            float(fitted_toy_model.score_user(6)[4])
        )

    def test_observed_positives_get_high_probability(self, toy_dataset, fitted_toy_model):
        probabilities = [
            fitted_toy_model.predict_proba(user, item)
            for user, item in toy_dataset.matrix.iter_pairs()
        ]
        assert float(np.mean(probabilities)) > 0.6


class TestRecommendation:
    def test_recommend_excludes_seen_by_default(self, toy_dataset, fitted_toy_model):
        seen = set(toy_dataset.matrix.items_of_user(6).tolist())
        recommended = fitted_toy_model.recommend(6, n_items=5)
        assert not (set(recommended.tolist()) & seen)

    def test_recommend_can_include_seen(self, fitted_toy_model):
        ranked = fitted_toy_model.recommend(6, n_items=12, exclude_seen=False)
        assert len(ranked) == 12

    def test_recommend_respects_ranking(self, fitted_toy_model):
        ranked = fitted_toy_model.recommend(6, n_items=4)
        scores = fitted_toy_model.score_user(6)
        ranked_scores = scores[ranked]
        assert all(
            earlier >= later for earlier, later in zip(ranked_scores, ranked_scores[1:])
        )

    def test_headline_toy_recommendation(self, fitted_toy_model):
        # The paper's flagship example: item 4 is user 6's top recommendation.
        top = fitted_toy_model.recommend(6, n_items=1)
        assert int(top[0]) == 4

    def test_recommend_many(self, fitted_toy_model):
        reports = fitted_toy_model.recommend_many([0, 6], n_items=3)
        assert set(reports.keys()) == {0, 6}
        assert all(len(items) == 3 for items in reports.values())


class TestStructureRecovery:
    """OCuLaR should recover planted overlapping co-clusters."""

    def test_recovers_planted_user_memberships(self):
        planted = make_planted_coclusters(
            n_users=90,
            n_items=60,
            n_coclusters=3,
            users_per_cocluster=30,
            items_per_cocluster=20,
            within_density=0.95,
            background_density=0.0,
            random_state=0,
        )
        model = OCuLaR(
            n_coclusters=3, regularization=0.5, max_iterations=150, random_state=1
        ).fit(planted.matrix)
        coclusters = model.coclusters(membership_threshold=0.5)
        score = membership_recovery_score(
            planted.user_memberships,
            [cocluster.users for cocluster in coclusters],
            universe=planted.matrix.n_users,
        )
        assert score > 0.6

    def test_heldout_positives_rank_above_random_unknowns(self):
        planted = make_planted_coclusters(
            n_users=80,
            n_items=50,
            n_coclusters=3,
            users_per_cocluster=25,
            items_per_cocluster=15,
            within_density=0.9,
            background_density=0.01,
            holdout_fraction=0.1,
            random_state=3,
        )
        model = OCuLaR(
            n_coclusters=4, regularization=1.0, max_iterations=100, random_state=0
        ).fit(planted.matrix)
        rng = np.random.default_rng(0)
        heldout_scores, random_scores = [], []
        for user, item in planted.heldout_pairs[:100]:
            heldout_scores.append(model.predict_proba(user, item))
            random_item = int(rng.integers(0, planted.matrix.n_items))
            if not planted.matrix.contains(user, random_item):
                random_scores.append(model.predict_proba(user, random_item))
        assert np.mean(heldout_scores) > np.mean(random_scores)


class TestBackendsAndWeighting:
    def test_reference_and_vectorized_backends_agree(self, toy_dataset):
        shared = dict(n_coclusters=3, regularization=0.1, max_iterations=20, random_state=0)
        reference = OCuLaR(backend="reference", **shared).fit(toy_dataset.matrix)
        vectorized = OCuLaR(backend="vectorized", **shared).fit(toy_dataset.matrix)
        np.testing.assert_allclose(
            reference.user_factors_, vectorized.user_factors_, rtol=1e-6, atol=1e-8
        )

    def test_relative_weighting_changes_solution(self, toy_dataset):
        plain = OCuLaR(n_coclusters=3, max_iterations=30, random_state=0).fit(toy_dataset.matrix)
        weighted = OCuLaR(
            n_coclusters=3, max_iterations=30, random_state=0, user_weighting="relative"
        ).fit(toy_dataset.matrix)
        assert not np.allclose(plain.user_factors_, weighted.user_factors_)

    def test_parallel_backend_fit_is_bit_identical(self, toy_dataset):
        shared = dict(n_coclusters=3, regularization=0.1, max_iterations=15, random_state=0)
        vectorized = OCuLaR(backend="vectorized", **shared).fit(toy_dataset.matrix)
        parallel = OCuLaR(backend="parallel", n_workers=3, **shared).fit(toy_dataset.matrix)
        np.testing.assert_array_equal(vectorized.user_factors_, parallel.user_factors_)
        np.testing.assert_array_equal(vectorized.item_factors_, parallel.item_factors_)
        np.testing.assert_array_equal(
            vectorized.history_.objective_values, parallel.history_.objective_values
        )

    def test_n_workers_requires_parallel_backend(self, toy_dataset):
        model = OCuLaR(backend="vectorized", n_workers=2, max_iterations=2)
        with pytest.raises(ConfigurationError):
            model.fit(toy_dataset.matrix)

    def test_sweep_stats_exposed_after_fit(self, toy_dataset):
        model = OCuLaR(n_coclusters=3, max_iterations=5, random_state=0).fit(
            toy_dataset.matrix
        )
        history = model.history_
        assert len(history.item_sweep_stats) == history.n_iterations
        assert len(history.user_sweep_stats) == history.n_iterations
        assert history.mean_user_acceptance_rate > 0.0


class TestDtype:
    def test_default_fit_is_float64(self, toy_dataset):
        model = OCuLaR(n_coclusters=3, max_iterations=5, random_state=0).fit(
            toy_dataset.matrix
        )
        assert model.factors_.dtype == np.float64

    def test_float32_fit_stays_float32(self, toy_dataset):
        model = OCuLaR(
            n_coclusters=3, max_iterations=10, random_state=0, dtype="float32"
        ).fit(toy_dataset.matrix)
        assert model.factors_.dtype == np.float32
        assert model.user_factors_.dtype == np.float32
        assert model.item_factors_.dtype == np.float32
        # The fit must still behave: objective monotone, scores sane.
        values = model.history_.objective_values
        assert values[-1] < values[0]
        scores = model.score_user(0)
        assert np.all((scores >= 0) & (scores <= 1))

    def test_float32_tracks_float64_solution(self, toy_dataset):
        shared = dict(n_coclusters=3, regularization=0.5, max_iterations=10, random_state=0)
        full = OCuLaR(dtype="float64", **shared).fit(toy_dataset.matrix)
        half = OCuLaR(dtype="float32", **shared).fit(toy_dataset.matrix)
        np.testing.assert_allclose(
            full.user_factors_, half.user_factors_, rtol=5e-2, atol=5e-2
        )

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ConfigurationError):
            OCuLaR(dtype="int32")
        with pytest.raises(ConfigurationError):
            OCuLaR(dtype="float16")

    def test_get_params_roundtrips_dtype_and_workers(self):
        model = OCuLaR(dtype="float32", backend="parallel", n_workers=2)
        params = model.get_params()
        assert params["dtype"] == "float32"
        assert params["n_workers"] == 2
        rebuilt = OCuLaR(**params)
        assert rebuilt.get_params() == params


class TestWarmStartFit:
    @pytest.fixture()
    def planted_matrix(self):
        return make_planted_coclusters(
            n_users=40,
            n_items=30,
            n_coclusters=3,
            users_per_cocluster=14,
            items_per_cocluster=10,
            random_state=11,
        ).matrix

    def _model(self, **overrides):
        settings = dict(
            n_coclusters=3,
            regularization=1.0,
            max_iterations=4,
            tolerance=0.0,
            random_state=0,
        )
        settings.update(overrides)
        return OCuLaR(**settings)

    def test_factor_model_and_tuple_seeds_are_equivalent(self, planted_matrix):
        seed = self._model().fit(planted_matrix)
        via_model = self._model().fit(planted_matrix, initial_factors=seed.factors_)
        via_tuple = self._model().fit(
            planted_matrix,
            initial_factors=(
                seed.factors_.user_factors,
                seed.factors_.item_factors,
            ),
        )
        np.testing.assert_array_equal(
            via_model.factors_.user_factors, via_tuple.factors_.user_factors
        )
        np.testing.assert_array_equal(
            via_model.factors_.item_factors, via_tuple.factors_.item_factors
        )
        assert via_model.history_.warm_started
        assert via_tuple.history_.warm_started
        assert not seed.history_.warm_started

    def test_seed_factors_are_copied_not_mutated(self, planted_matrix):
        seed = self._model().fit(planted_matrix)
        user_before = seed.factors_.user_factors.copy()
        item_before = seed.factors_.item_factors.copy()
        self._model().fit(planted_matrix, initial_factors=seed.factors_)
        np.testing.assert_array_equal(seed.factors_.user_factors, user_before)
        np.testing.assert_array_equal(seed.factors_.item_factors, item_before)

    def test_wrong_shape_rejected_with_extend_hint(self, planted_matrix):
        seed = self._model().fit(planted_matrix)
        grown = planted_matrix.extended_with([], n_new_users=2)
        with pytest.raises(ConfigurationError, match="extend_factors"):
            self._model().fit(grown, initial_factors=seed.factors_)

    def test_negative_seed_rejected(self, planted_matrix):
        user = np.full((planted_matrix.n_users, 3), 0.5)
        item = np.full((planted_matrix.n_items, 3), 0.5)
        user[0, 0] = -1e-6
        with pytest.raises(ConfigurationError, match="non-negative"):
            self._model().fit(planted_matrix, initial_factors=(user, item))

    def test_garbage_seed_rejected(self, planted_matrix):
        with pytest.raises(ConfigurationError, match="FactorModel"):
            self._model().fit(planted_matrix, initial_factors=42)

    def test_seed_cast_to_model_dtype(self, planted_matrix):
        seed = self._model().fit(planted_matrix)
        warm = self._model(dtype="float32").fit(
            planted_matrix, initial_factors=seed.factors_
        )
        assert warm.factors_.user_factors.dtype == np.float32

    def test_cold_fit_unchanged_by_warm_machinery(self, planted_matrix):
        # Two cold fits from the same seed are bit-identical — the presence
        # of the warm-start/plateau parameters must not perturb the default
        # path.
        a = self._model().fit(planted_matrix)
        b = self._model().fit(planted_matrix)
        np.testing.assert_array_equal(
            a.factors_.user_factors, b.factors_.user_factors
        )
        np.testing.assert_array_equal(
            a.factors_.item_factors, b.factors_.item_factors
        )
        assert a.history_.plateau_tolerance is None
