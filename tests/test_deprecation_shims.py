"""Deprecation shims: each legacy entrypoint warns once and matches the
unified request/response API exactly.

Eight shims are covered — ``topn``/``recommend_folded`` on both
:class:`~repro.runtime.RecommenderRuntime` and
:class:`~repro.runtime.ServingSession`, and ``submit``/``submit_folded``/
``topn_blocking``/``recommend_folded_blocking`` on
:class:`~repro.runtime.BatchingFrontEnd`.  The test suite otherwise runs
with ``DeprecationWarning`` escalated to an error for ``repro`` modules
(see ``tests/conftest.py``), so any internal caller that slips back onto a
shim fails loudly; this module is the one place the warnings are expected,
caught, and asserted on.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.api import RecommendRequest
from repro.core.ocular import OCuLaR
from repro.data.datasets import make_netflix_like
from repro.runtime import BatchingFrontEnd, RecommenderRuntime

USERS = [0, 3, 7, 11]
INTERACTIONS = [[1, 4, 9], [2, 5], [0, 6, 8, 10]]


@pytest.fixture(scope="module")
def runtime():
    matrix, _spec = make_netflix_like(n_users=120, n_items=50, random_state=0)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        model = OCuLaR(
            n_coclusters=6,
            regularization=5.0,
            max_iterations=3,
            tolerance=0.0,
            random_state=0,
        )
        with RecommenderRuntime(executor="serial") as rt:
            rt.fit(model, matrix)
            rt.publish()
            yield rt


def _call_shim(bound_method, *args, **kwargs):
    """Invoke a shim asserting exactly one DeprecationWarning is emitted."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = bound_method(*args, **kwargs)
    deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1, (
        f"{bound_method.__name__} emitted {len(deprecations)} DeprecationWarnings"
    )
    assert "deprecated" in str(deprecations[0].message)
    return result


def _assert_rankings_equal(actual, expected):
    assert len(actual) == len(expected)
    for got, want in zip(actual, expected):
        assert np.array_equal(got, want)


class TestRuntimeShims:
    def test_topn_matches_recommend(self, runtime):
        expected = runtime.recommend(RecommendRequest(users=USERS, n_items=5))
        result = _call_shim(runtime.topn, USERS, n_items=5)
        assert list(result.users) == USERS
        _assert_rankings_equal(result.rankings, expected.rankings)

    def test_recommend_folded_matches_recommend(self, runtime):
        expected = runtime.recommend(
            RecommendRequest(interactions=INTERACTIONS, n_items=5)
        )
        rankings = _call_shim(runtime.recommend_folded, INTERACTIONS, n_items=5)
        _assert_rankings_equal(rankings, expected.rankings)


class TestSessionShims:
    def test_topn_matches_recommend(self, runtime):
        with runtime.serving_session() as session:
            expected = session.recommend(RecommendRequest(users=USERS, n_items=5))
            result = _call_shim(session.topn, USERS, n_items=5)
        assert list(result.users) == USERS
        _assert_rankings_equal(result.rankings, expected.rankings)

    def test_recommend_folded_matches_recommend(self, runtime):
        with runtime.serving_session() as session:
            expected = session.recommend(
                RecommendRequest(interactions=INTERACTIONS, n_items=5)
            )
            rankings = _call_shim(session.recommend_folded, INTERACTIONS, n_items=5)
        _assert_rankings_equal(rankings, expected.rankings)


class TestFrontEndShims:
    @pytest.fixture()
    def front(self, runtime):
        with BatchingFrontEnd(runtime, max_delay_ms=1) as front:
            yield front

    def test_submit_matches_submit_request(self, runtime, front):
        expected = front.submit_request(
            RecommendRequest(users=USERS, n_items=5)
        ).result(timeout=30)
        response = _call_shim(front.submit, USERS, n_items=5).result(timeout=30)
        _assert_rankings_equal(response.rankings, expected.rankings)

    def test_submit_folded_matches_submit_request(self, runtime, front):
        expected = front.submit_request(
            RecommendRequest(interactions=INTERACTIONS, n_items=5)
        ).result(timeout=30)
        response = _call_shim(front.submit_folded, INTERACTIONS, n_items=5).result(
            timeout=30
        )
        _assert_rankings_equal(response.rankings, expected.rankings)

    def test_topn_blocking_matches_recommend(self, runtime, front):
        expected = front.recommend(
            RecommendRequest(users=USERS, n_items=5), timeout=30
        )
        rankings = _call_shim(front.topn_blocking, USERS, n_items=5, timeout=30)
        _assert_rankings_equal(rankings, expected.rankings)

    def test_recommend_folded_blocking_matches_recommend(self, runtime, front):
        expected = front.recommend(
            RecommendRequest(interactions=INTERACTIONS, n_items=5), timeout=30
        )
        rankings = _call_shim(
            front.recommend_folded_blocking, INTERACTIONS, n_items=5, timeout=30
        )
        _assert_rankings_equal(rankings, expected.rankings)
