"""Tests for the batch serving engine, fold-in cold-start and sharded serving."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.baselines.popularity import PopularityRecommender
from repro.core.bias import BiasedOCuLaR
from repro.core.ocular import OCuLaR
from repro.exceptions import DataError
from repro.core.recommend import batch_reports
from repro.exceptions import ConfigurationError, NotFittedError
from repro.parallel import ProcessExecutor, SerialExecutor, ThreadExecutor
import scipy.sparse as sp

from types import SimpleNamespace

from repro.core.factors import FactorModel
from repro.data.interactions import InteractionMatrix
from repro.serving import (
    TopNEngine,
    clear_fold_in_plan_cache,
    extend_factors,
    fold_in_factors,
    fold_in_items,
    fold_in_user,
    fold_in_users,
    recommend_folded,
    serve_sharded,
)


# --------------------------------------------------------------------------- #
# Chunked top-N parity with the per-user reference path
# --------------------------------------------------------------------------- #
class TestTopNEngineParity:
    @pytest.mark.parametrize("n_items", [1, 5, 50])
    @pytest.mark.parametrize("chunk_size", [1, 7, 64, 4096])
    def test_identical_to_per_user_recommend(
        self, fitted_movielens_model, n_items, chunk_size
    ):
        model = fitted_movielens_model
        engine = TopNEngine.from_model(model, chunk_size=chunk_size)
        users = list(range(model.train_matrix.n_users))
        batch = engine.recommend_batch(users, n_items=n_items, exclude_seen=True)
        assert len(batch) == len(users)
        for user, ranked in zip(users, batch):
            reference = model.recommend(user, n_items=n_items, exclude_seen=True)
            np.testing.assert_array_equal(ranked, reference)

    def test_seen_items_are_excluded(self, fitted_movielens_model):
        model = fitted_movielens_model
        engine = TopNEngine.from_model(model)
        users = list(range(model.train_matrix.n_users))
        for user, ranked in zip(users, engine.recommend_batch(users, n_items=50)):
            seen = set(model.train_matrix.items_of_user(user).tolist())
            assert not seen.intersection(ranked.tolist())

    def test_include_seen_parity(self, fitted_movielens_model):
        model = fitted_movielens_model
        engine = TopNEngine.from_model(model)
        users = [0, 3, 11]
        batch = engine.recommend_batch(users, n_items=10, exclude_seen=False)
        for user, ranked in zip(users, batch):
            reference = model.recommend(user, n_items=10, exclude_seen=False)
            np.testing.assert_array_equal(ranked, reference)

    def test_generic_model_path(self, movielens_small):
        _, _, split = movielens_small
        model = PopularityRecommender().fit(split.train)
        engine = TopNEngine.from_model(model)
        assert engine.factors is None  # no FactorModel -> score_users path
        users = list(range(0, split.train.n_users, 3))
        batch = engine.recommend_batch(users, n_items=20)
        for user, ranked in zip(users, batch):
            reference = model.recommend(user, n_items=20, exclude_seen=True)
            np.testing.assert_array_equal(ranked, reference)

    def test_biased_model_keeps_its_bias_terms(self, movielens_small):
        # BiasedOCuLaR scores through bias-augmented factors; the engine must
        # route through serving_factors_ (not the stripped factors_), so
        # engine rankings still equal per-user recommend for every user.
        _, _, split = movielens_small
        model = BiasedOCuLaR(
            n_coclusters=8, regularization=4.0, max_iterations=30, random_state=0
        ).fit(split.train)
        engine = TopNEngine.from_model(model)
        assert engine.factors is model.serving_factors_
        users = list(range(split.train.n_users))
        for user, ranked in zip(users, engine.recommend_batch(users, n_items=10)):
            np.testing.assert_array_equal(ranked, model.recommend(user, n_items=10))
        # And the vectorised score_users path agrees with score_user too
        # (it was bias-free before the serving_factors_ refactor).
        np.testing.assert_allclose(model.score_users([3])[0], model.score_user(3))

    def test_recommend_many_matches_base(self, fitted_movielens_model):
        model = fitted_movielens_model
        users = [5, 2, 9]
        via_base = model.recommend_many(users, n_items=8)
        engine = TopNEngine.from_model(model)
        via_engine = engine.recommend_many(users, n_items=8)
        assert set(via_base) == set(via_engine)
        for user in users:
            np.testing.assert_array_equal(via_base[user], via_engine[user])

    def test_short_lists_for_heavy_users(self, fitted_toy_model):
        # Toy users have seen most of the 12 items; asking for more than the
        # number of unknowns must return a short list, never padded.
        engine = TopNEngine.from_model(fitted_toy_model)
        matrix = fitted_toy_model.train_matrix
        for user, ranked in enumerate(engine.recommend_batch(range(matrix.n_users), n_items=12)):
            n_unknown = matrix.n_items - len(matrix.items_of_user(user))
            assert len(ranked) == min(12, n_unknown)

    def test_empty_user_list(self, fitted_movielens_model):
        engine = TopNEngine.from_model(fitted_movielens_model)
        assert engine.recommend_batch([], n_items=5) == []

    def test_out_of_range_user_rejected(self, fitted_movielens_model):
        engine = TopNEngine.from_model(fitted_movielens_model)
        with pytest.raises(ConfigurationError):
            engine.recommend_batch([10_000], n_items=5)

    def test_unfitted_model_rejected(self):
        with pytest.raises(NotFittedError):
            TopNEngine.from_model(OCuLaR())


# --------------------------------------------------------------------------- #
# Fold-in cold-start
# --------------------------------------------------------------------------- #
class TestFoldIn:
    def test_factors_non_negative_and_finite(self, fitted_movielens_model):
        model = fitted_movielens_model
        interactions = [
            model.train_matrix.items_of_user(user) for user in (0, 7, 23)
        ]
        folded = fold_in_users(model, interactions)
        assert folded.shape == (3, model.n_coclusters)
        assert np.isfinite(folded).all()
        assert (folded >= 0).all()

    def test_preserves_float32_model_dtype(self, fitted_movielens_model):
        # Fold-in on a reduced-precision model must not silently upcast.
        model = fitted_movielens_model
        half_items = model.factors_.item_factors.astype(np.float32)
        interactions = sp.csr_matrix(
            model.train_matrix.csr()[:3], dtype=np.float64
        )
        folded = fold_in_factors(half_items, interactions, regularization=model.regularization)
        assert folded.dtype == np.float32
        empty = fold_in_factors(
            half_items, sp.csr_matrix((0, half_items.shape[0])), regularization=1.0
        )
        assert empty.dtype == np.float32

    def test_reproduces_refit_users_top_n(self, fitted_movielens_model):
        # Fold a user's own training row back in against the fitted item
        # factors: the convex single-user subproblem converges to (a point
        # ranking-equivalent to) the fitted factor, so the served top-10 must
        # be exactly the refit user's top-10.
        model = fitted_movielens_model
        engine = TopNEngine.from_model(model)
        users = [5, 17, 40, 99]
        interactions = [model.train_matrix.items_of_user(user) for user in users]
        served = recommend_folded(engine, interactions, model=model, n_items=10)
        for user, ranked in zip(users, served):
            np.testing.assert_array_equal(ranked, model.recommend(user, n_items=10))

    def test_factor_close_to_fitted(self, fitted_movielens_model):
        model = fitted_movielens_model
        user = 5
        folded = fold_in_user(model, model.train_matrix.items_of_user(user))
        fitted = model.user_factors_[user]
        assert np.linalg.norm(folded - fitted) < 1e-2 * max(np.linalg.norm(fitted), 1.0)

    def test_masks_the_provided_interactions(self, fitted_movielens_model):
        model = fitted_movielens_model
        engine = TopNEngine.from_model(model)
        items = model.train_matrix.items_of_user(3)
        served = recommend_folded(engine, [items], model=model, n_items=50)[0]
        assert not set(items.tolist()).intersection(served.tolist())

    def test_empty_history_gives_empty_factor(self, fitted_movielens_model):
        # A brand-new user with no positives has nothing to fold in: the
        # subproblem's optimum is the zero vector (popularity fallbacks are a
        # caller concern).
        folded = fold_in_user(fitted_movielens_model, [])
        assert folded.shape == (fitted_movielens_model.n_coclusters,)
        assert np.allclose(folded, 0.0)

    def test_requires_fitted_model(self):
        with pytest.raises(NotFittedError):
            fold_in_users(OCuLaR(), [[0, 1]])

    def test_out_of_range_item_rejected(self, fitted_movielens_model):
        with pytest.raises(DataError):
            fold_in_users(fitted_movielens_model, [[0, 10_000]])

    def test_dense_matrix_interactions(self, fitted_movielens_model):
        # A dense 0/1 matrix must be read as a matrix (like the sparse form),
        # not as per-user lists of item indices.
        model = fitted_movielens_model
        n_items = model.train_matrix.n_items
        dense = np.zeros((1, n_items))
        dense[0, [3, 17, 41]] = 1.0
        via_dense = fold_in_users(model, dense)
        via_lists = fold_in_users(model, [[3, 17, 41]])
        np.testing.assert_allclose(via_dense, via_lists)


# --------------------------------------------------------------------------- #
# Fold-in plan caching
# --------------------------------------------------------------------------- #
class TestFoldInPlanCache:
    @pytest.fixture(autouse=True)
    def fresh_cache(self):
        clear_fold_in_plan_cache()
        yield
        clear_fold_in_plan_cache()

    @pytest.fixture
    def build_counter(self, monkeypatch):
        from repro.core.backends.plan import SweepSide

        calls = []
        original = SweepSide.build.__func__

        def counting_build(cls, *args, **kwargs):
            calls.append(1)
            return original(cls, *args, **kwargs)

        monkeypatch.setattr(SweepSide, "build", classmethod(counting_build))
        return calls

    def test_repeated_batch_skips_plan_rebuild(self, fitted_movielens_model, build_counter):
        model = fitted_movielens_model
        interactions = [[3, 17, 41], [2, 9]]
        first = fold_in_users(model, interactions)
        builds_after_first = len(build_counter)
        assert builds_after_first >= 1
        second = fold_in_users(model, interactions)
        assert len(build_counter) == builds_after_first  # cache hit: no rebuild
        np.testing.assert_array_equal(first, second)

    def test_different_batch_rebuilds(self, fitted_movielens_model, build_counter):
        model = fitted_movielens_model
        fold_in_users(model, [[3, 17, 41]])
        builds_after_first = len(build_counter)
        fold_in_users(model, [[3, 17, 40]])
        assert len(build_counter) > builds_after_first

    def test_dtype_keys_separately(self, fitted_movielens_model, build_counter):
        # A float32 model must not reuse a float64 batch's cached plan.
        model = fitted_movielens_model
        interactions = sp.csr_matrix(model.train_matrix.csr()[:2])
        fold_in_factors(
            model.factors_.item_factors, interactions, regularization=model.regularization
        )
        builds_after_first = len(build_counter)
        folded32 = fold_in_factors(
            model.factors_.item_factors.astype(np.float32),
            interactions,
            regularization=model.regularization,
        )
        assert len(build_counter) > builds_after_first
        assert folded32.dtype == np.float32

    def test_cached_results_match_uncached(self, fitted_movielens_model):
        model = fitted_movielens_model
        interactions = [[1, 4, 9], [0, 8]]
        warm = fold_in_users(model, interactions)
        clear_fold_in_plan_cache()
        cold = fold_in_users(model, interactions)
        np.testing.assert_array_equal(warm, cold)

    def test_cache_immune_to_caller_buffer_mutation(self, fitted_movielens_model):
        # The cached side must not alias the caller's CSR buffers: mutating a
        # previously folded matrix in place must not corrupt the cache entry
        # keyed on its original content.
        model = fitted_movielens_model
        item_factors = model.factors_.item_factors
        batch = sp.csr_matrix(model.train_matrix.csr()[:2])
        baseline = fold_in_factors(item_factors, batch.copy(), model.regularization)
        fold_in_factors(item_factors, batch, model.regularization)
        batch.data[:] = 7.0  # caller mutates their buffers after the call
        fresh = sp.csr_matrix(model.train_matrix.csr()[:2])  # original content
        refolded = fold_in_factors(item_factors, fresh, model.regularization)
        np.testing.assert_array_equal(refolded, baseline)

    def test_cache_safe_under_concurrent_fold_ins(self, fitted_movielens_model):
        # A serving runtime folds batches from many threads at once; the LRU
        # must neither corrupt (lost entries, evicted-key moves) nor change
        # results.  Distinct batches per thread overflow the 16-entry cache
        # while a shared batch exercises the hit path concurrently.
        import threading

        model = fitted_movielens_model
        batches = [[[i % 40, (3 * i + 1) % 40]] for i in range(24)]
        shared_batch = [[5, 11, 23]]
        expected = {
            index: fold_in_users(model, batch, n_sweeps=5)
            for index, batch in enumerate(batches)
        }
        expected_shared = fold_in_users(model, shared_batch, n_sweeps=5)
        clear_fold_in_plan_cache()

        results: dict = {}
        errors: list = []

        def fold(index: int) -> None:
            try:
                results[index] = fold_in_users(model, batches[index], n_sweeps=5)
                results[("shared", index)] = fold_in_users(
                    model, shared_batch, n_sweeps=5
                )
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        threads = [
            threading.Thread(target=fold, args=(index,))
            for index in range(len(batches))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for index in range(len(batches)):
            np.testing.assert_array_equal(results[index], expected[index])
            np.testing.assert_array_equal(
                results[("shared", index)], expected_shared
            )


# --------------------------------------------------------------------------- #
# Sharded serving
# --------------------------------------------------------------------------- #
class TestServeSharded:
    def test_order_stable_across_executors(self, fitted_movielens_model):
        engine = TopNEngine.from_model(fitted_movielens_model)
        users = list(range(fitted_movielens_model.train_matrix.n_users))

        serial = serve_sharded(engine, users, n_items=10, shard_size=16)
        with ThreadExecutor(max_workers=4) as threads:
            threaded = serve_sharded(engine, users, n_items=10, executor=threads, shard_size=16)
        with ProcessExecutor(max_workers=2) as processes:
            processed = serve_sharded(
                engine, users, n_items=10, executor=processes, shard_size=16
            )

        assert serial.users == threaded.users == processed.users == users
        assert serial.n_shards == threaded.n_shards == processed.n_shards
        for reference, a, b in zip(serial.rankings, threaded.rankings, processed.rankings):
            np.testing.assert_array_equal(reference, a)
            np.testing.assert_array_equal(reference, b)

    def test_matches_unsharded_engine(self, fitted_movielens_model):
        engine = TopNEngine.from_model(fitted_movielens_model)
        users = [9, 1, 44, 1]  # unsorted, with a duplicate
        result = serve_sharded(engine, users, n_items=7, executor=SerialExecutor(), shard_size=2)
        direct = engine.recommend_batch(users, n_items=7)
        assert result.n_shards == 2
        for reference, ranked in zip(direct, result.rankings):
            np.testing.assert_array_equal(reference, ranked)

    def test_as_dict(self, fitted_movielens_model):
        engine = TopNEngine.from_model(fitted_movielens_model)
        mapping = serve_sharded(engine, [4, 8], n_items=3).as_dict()
        assert set(mapping) == {4, 8}

    def test_executor_selected_by_registry_name(self, fitted_movielens_model):
        # serve_sharded routes names through the shard-scheduler registry and
        # owns the executor it builds (no pool leaks to worry about here).
        engine = TopNEngine.from_model(fitted_movielens_model)
        users = list(range(24))
        reference = serve_sharded(engine, users, n_items=5, shard_size=8)
        for name in ("serial", "thread", "process"):
            named = serve_sharded(engine, users, n_items=5, executor=name, shard_size=8)
            assert named.n_shards == reference.n_shards
            for expected, ranked in zip(reference.rankings, named.rankings):
                np.testing.assert_array_equal(expected, ranked)

    def test_unknown_executor_name_rejected(self, fitted_movielens_model):
        engine = TopNEngine.from_model(fitted_movielens_model)
        with pytest.raises(ConfigurationError):
            serve_sharded(engine, [0], executor="spark")

    def test_engine_is_picklable(self, fitted_movielens_model):
        engine = TopNEngine.from_model(fitted_movielens_model)
        clone = pickle.loads(pickle.dumps(engine))
        np.testing.assert_array_equal(
            clone.recommend_batch([3], n_items=5)[0],
            engine.recommend_batch([3], n_items=5)[0],
        )


# --------------------------------------------------------------------------- #
# Worker-side engine cache: A/B generations under the attachment byte budget
# --------------------------------------------------------------------------- #
class TestWorkerEngineCacheBudget:
    @pytest.fixture()
    def two_engines(self, movielens_small):
        matrix, _spec, split = movielens_small
        engines = []
        for seed in (0, 1):
            model = OCuLaR(
                n_coclusters=4,
                regularization=5.0,
                max_iterations=2,
                tolerance=0.0,
                random_state=seed,
            ).fit(split.train)
            engines.append(TopNEngine.from_model(model))
        return engines

    def test_ab_generations_cached_and_budget_evicts_lru(self, two_engines):
        # This test process plays the worker: attach both published
        # generations, prove A/B alternation reuses both cached engines,
        # then shrink the budget so only the recent generation stays mapped.
        from repro.parallel import shared_memory as shm
        from repro.parallel.shared_memory import SharedMemoryProcessExecutor
        from repro.serving import shared as serving_shared

        engine_a, engine_b = two_engines
        serving_shared._WORKER_ENGINES.clear()
        shm.close_stale_attachments(())
        try:
            with SharedMemoryProcessExecutor(max_workers=1) as executor:
                spec_a = serving_shared.publish_engine(executor, engine_a)
                spec_b = serving_shared.publish_engine(executor, engine_b)

                worker_a = serving_shared.attach_engine(spec_a)
                worker_b = serving_shared.attach_engine(spec_b)
                # A/B shape: re-serving generation A must NOT rebuild it —
                # both generations stay cached side by side.
                assert serving_shared.attach_engine(spec_a) is worker_a
                assert serving_shared.attach_engine(spec_b) is worker_b
                np.testing.assert_array_equal(
                    worker_a.recommend_batch([3], n_items=5)[0],
                    engine_a.recommend_batch([3], n_items=5)[0],
                )
                np.testing.assert_array_equal(
                    worker_b.recommend_batch([3], n_items=5)[0],
                    engine_b.recommend_batch([3], n_items=5)[0],
                )

                # Two live generations under a roomy budget: nothing evicted.
                both = shm.attached_bytes()
                serving_shared.attach_engine(spec_b, max_bytes=both)
                assert len(serving_shared._WORKER_ENGINES) == 2
                assert shm.attached_bytes() <= both

                # Budget below both generations: serving B evicts the LRU
                # generation (A) — engine dropped, mappings closed — while B
                # keeps serving from its intact attachments.
                shm.close_stale_attachments(
                    set(spec_b.segment_names()), max_bytes=both - 1
                )
                assert spec_a not in serving_shared._WORKER_ENGINES
                assert spec_b in serving_shared._WORKER_ENGINES
                assert shm.attached_bytes() <= both - 1
                for name in spec_a.segment_names():
                    assert name not in shm._ATTACHMENTS
                survivor = serving_shared.attach_engine(spec_b)
                np.testing.assert_array_equal(
                    survivor.recommend_batch([7], n_items=5)[0],
                    engine_b.recommend_batch([7], n_items=5)[0],
                )

                # A is still published, so it reattaches on demand.
                revived = serving_shared.attach_engine(spec_a)
                np.testing.assert_array_equal(
                    revived.recommend_batch([3], n_items=5)[0],
                    engine_a.recommend_batch([3], n_items=5)[0],
                )
        finally:
            serving_shared._WORKER_ENGINES.clear()
            shm.close_stale_attachments(())

    def test_cache_hit_refreshes_budget_recency(self, two_engines):
        # Serving a cached generation must refresh its mappings' recency:
        # the budget evicts the generation that stopped being served, not
        # the hot one that merely stopped re-attaching.
        from repro.parallel import shared_memory as shm
        from repro.parallel.shared_memory import SharedMemoryProcessExecutor
        from repro.serving import shared as serving_shared

        engine_a, engine_b = two_engines
        serving_shared._WORKER_ENGINES.clear()
        shm.close_stale_attachments(())
        try:
            with SharedMemoryProcessExecutor(max_workers=1) as executor:
                spec_a = serving_shared.publish_engine(executor, engine_a)
                spec_b = serving_shared.publish_engine(executor, engine_b)
                serving_shared.attach_engine(spec_a)
                serving_shared.attach_engine(spec_b)
                # A is attachment-LRU now; a cache-hit serve of A must make
                # B the eviction victim instead.
                serving_shared.attach_engine(spec_a)
                shm.close_stale_attachments(
                    set(spec_a.segment_names()),
                    max_bytes=shm.attached_bytes() - 1,
                )
                assert spec_a in serving_shared._WORKER_ENGINES
                assert spec_b not in serving_shared._WORKER_ENGINES
                for name in spec_b.segment_names():
                    assert name not in shm._ATTACHMENTS
        finally:
            serving_shared._WORKER_ENGINES.clear()
            shm.close_stale_attachments(())

    def test_unlinked_generations_pruned_on_swap(self, two_engines):
        # The refit-loop shape: one live generation at a time.  When the
        # publisher unlinks a generation, the next swap reaching the worker
        # drops its cached engine and mappings — steady-state worker memory
        # tracks the live model, not the last N models.
        import os as os_module

        from repro.parallel import shared_memory as shm
        from repro.parallel.shared_memory import SharedMemoryProcessExecutor
        from repro.serving import shared as serving_shared

        if not os_module.path.isdir("/dev/shm"):
            pytest.skip("requires a /dev/shm mount")
        engine_a, engine_b = two_engines
        serving_shared._WORKER_ENGINES.clear()
        shm.close_stale_attachments(())
        try:
            with SharedMemoryProcessExecutor(max_workers=1) as executor:
                spec_a = serving_shared.publish_engine(executor, engine_a)
                spec_b = serving_shared.publish_engine(executor, engine_b)
                serving_shared.attach_engine(spec_a)
                serving_shared.attach_engine(spec_b)
                serving_shared.unpublish_engine(executor, spec_a)  # swap out A
                spec_c = serving_shared.publish_engine(executor, engine_a)
                serving_shared.attach_engine(spec_c)  # the swap reaches us
                assert spec_a not in serving_shared._WORKER_ENGINES
                for name in spec_a.segment_names():
                    assert name not in shm._ATTACHMENTS
                # B is still published (A/B): kept cached and servable.
                assert spec_b in serving_shared._WORKER_ENGINES
                assert spec_c in serving_shared._WORKER_ENGINES
        finally:
            serving_shared._WORKER_ENGINES.clear()
            shm.close_stale_attachments(())

    def test_engine_cache_count_cap(self, two_engines):
        from repro.parallel import shared_memory as shm
        from repro.parallel.shared_memory import SharedMemoryProcessExecutor
        from repro.serving import shared as serving_shared

        engine_a, _engine_b = two_engines
        serving_shared._WORKER_ENGINES.clear()
        shm.close_stale_attachments(())
        try:
            with SharedMemoryProcessExecutor(max_workers=1) as executor:
                specs = [
                    serving_shared.publish_engine(executor, engine_a)
                    for _ in range(serving_shared.MAX_CACHED_ENGINES + 2)
                ]
                for spec in specs:
                    serving_shared.attach_engine(spec)
                # The count cap bounds cached engines even without a budget;
                # the most recent generations survive.
                assert (
                    len(serving_shared._WORKER_ENGINES)
                    == serving_shared.MAX_CACHED_ENGINES
                )
                assert specs[-1] in serving_shared._WORKER_ENGINES
                assert specs[0] not in serving_shared._WORKER_ENGINES
        finally:
            serving_shared._WORKER_ENGINES.clear()
            shm.close_stale_attachments(())

    def test_attachment_budget_env_parsing(self, monkeypatch):
        from repro.serving.shared import ATTACHMENT_BUDGET_ENV, attachment_budget_bytes

        monkeypatch.delenv(ATTACHMENT_BUDGET_ENV, raising=False)
        assert attachment_budget_bytes() is None
        monkeypatch.setenv(ATTACHMENT_BUDGET_ENV, "64")
        assert attachment_budget_bytes() == 64 * 1024 * 1024
        monkeypatch.setenv(ATTACHMENT_BUDGET_ENV, "0.5")
        assert attachment_budget_bytes() == 512 * 1024
        for bogus in ("", "not-a-number", "-3", "0"):
            monkeypatch.setenv(ATTACHMENT_BUDGET_ENV, bogus)
            assert attachment_budget_bytes() is None


# --------------------------------------------------------------------------- #
# Engine-routed consumers
# --------------------------------------------------------------------------- #
class TestEngineRoutedReports:
    def test_batch_reports_match_per_user_ranking(self, b2b_small):
        model = OCuLaR(
            n_coclusters=6, regularization=1.0, max_iterations=40, random_state=1
        ).fit(b2b_small.matrix)
        users = [0, 5, 10]
        reports = batch_reports(model, users, n_items=3, deal_values=b2b_small.deal_values)
        assert [report.user for report in reports] == users
        for report in reports:
            reference = model.recommend(report.user, n_items=3, exclude_seen=True)
            assert report.items == [int(item) for item in reference]


# --------------------------------------------------------------------------- #
# Item fold-in and warm-start factor extension
# --------------------------------------------------------------------------- #
class TestFoldInItems:
    def test_factor_close_to_fitted(self, fitted_movielens_model):
        # Fold an item's own training column back in against the fitted user
        # factors: the convex single-item subproblem lands (numerically) on
        # the fitted item factor, mirroring the user-side parity test.
        model = fitted_movielens_model
        csr = model.train_matrix.csr().tocsc()
        items = [3, 11, 42]
        interactions = [csr[:, item].nonzero()[0].tolist() for item in items]
        folded = fold_in_items(model, interactions)
        assert folded.shape == (len(items), model.n_coclusters)
        for row, item in zip(folded, items):
            fitted = model.factors_.item_factors[item]
            assert np.linalg.norm(row - fitted) < 1e-2 * max(
                np.linalg.norm(fitted), 1.0
            )

    def test_mirrors_fold_in_users_on_the_transposed_model(
        self, fitted_movielens_model
    ):
        # The objective is symmetric in the two factor blocks, so item
        # fold-in must be bit-identical to user fold-in with the roles
        # swapped.
        model = fitted_movielens_model
        transposed = SimpleNamespace(
            factors_=FactorModel(
                model.factors_.item_factors, model.factors_.user_factors
            ),
            regularization=model.regularization,
            backend=model.backend,
            sigma=model.sigma,
            beta=model.beta,
            max_backtracks=model.max_backtracks,
        )
        interactions = [[0, 5, 9], [2, 40], [7, 13, 77, 101]]
        np.testing.assert_array_equal(
            fold_in_items(model, interactions),
            fold_in_users(transposed, interactions),
        )

    def test_requires_fitted_model(self):
        with pytest.raises(NotFittedError):
            fold_in_items(OCuLaR(n_coclusters=3), [[0, 1]])


class TestExtendFactors:
    @pytest.fixture()
    def grown_pair(self, fitted_movielens_model):
        model = fitted_movielens_model
        grown = model.train_matrix.extended_with(
            [(120, 3), (120, 11), (121, 4), (0, 80), (17, 80)],
            n_new_users=2,
            n_new_items=1,
        )
        return model, grown

    def test_shapes_and_feasibility(self, grown_pair):
        model, grown = grown_pair
        extended = extend_factors(model, grown)
        assert extended.user_factors.shape == (grown.n_users, model.n_coclusters)
        assert extended.item_factors.shape == (grown.n_items, model.n_coclusters)
        assert (extended.user_factors >= 0).all()
        assert (extended.item_factors >= 0).all()
        assert np.isfinite(extended.user_factors).all()
        assert np.isfinite(extended.item_factors).all()

    def test_interior_zero_preserves_old_rows_verbatim(self, grown_pair):
        model, grown = grown_pair
        extended = extend_factors(model, grown, interior=0.0)
        np.testing.assert_array_equal(
            extended.user_factors[: model.factors_.n_users],
            model.factors_.user_factors,
        )
        np.testing.assert_array_equal(
            extended.item_factors[: model.factors_.n_items],
            model.factors_.item_factors,
        )

    def test_interior_lift_floors_only_the_zeros(self, grown_pair):
        model, grown = grown_pair
        interior = 0.01
        extended = extend_factors(model, grown, interior=interior)
        old = model.factors_.user_factors
        lifted = extended.user_factors[: model.factors_.n_users]
        floor = lifted[old == 0]
        assert floor.size and (floor > 0).all()
        # Entries already above the floor are untouched.
        np.testing.assert_array_equal(
            lifted[old >= floor.max()], old[old >= floor.max()]
        )
        # The floor stays tiny relative to the block's positive mass.
        assert floor.max() <= interior * old[old > 0].mean() + 1e-12

    def test_same_shape_matrix_is_identity_modulo_lift(self, fitted_movielens_model):
        model = fitted_movielens_model
        extended = extend_factors(model, model.train_matrix, interior=0.0)
        np.testing.assert_array_equal(
            extended.user_factors, model.factors_.user_factors
        )
        np.testing.assert_array_equal(
            extended.item_factors, model.factors_.item_factors
        )

    def test_smaller_matrix_rejected(self, fitted_movielens_model):
        model = fitted_movielens_model
        small = InteractionMatrix(np.eye(3))
        with pytest.raises(ConfigurationError, match="at least as large"):
            extend_factors(model, small)

    def test_requires_fitted_model(self, fitted_movielens_model):
        with pytest.raises(NotFittedError):
            extend_factors(OCuLaR(n_coclusters=3), fitted_movielens_model.train_matrix)

    def test_negative_interior_rejected(self, grown_pair):
        model, grown = grown_pair
        with pytest.raises(ConfigurationError):
            extend_factors(model, grown, interior=-0.5)
