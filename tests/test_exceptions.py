"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    ConfigurationError,
    ConvergenceWarning,
    DataError,
    EvaluationError,
    NotFittedError,
    ReproError,
)


def test_all_errors_derive_from_repro_error():
    for exc_type in (DataError, ConfigurationError, NotFittedError, EvaluationError):
        assert issubclass(exc_type, ReproError)


def test_repro_error_derives_from_exception():
    assert issubclass(ReproError, Exception)


def test_convergence_warning_is_a_warning_not_an_error():
    assert issubclass(ConvergenceWarning, UserWarning)
    assert not issubclass(ConvergenceWarning, ReproError)


def test_errors_can_be_raised_and_caught_as_base():
    with pytest.raises(ReproError):
        raise DataError("bad data")
    with pytest.raises(ReproError):
        raise ConfigurationError("bad config")


def test_error_message_is_preserved():
    error = NotFittedError("model not fitted")
    assert "model not fitted" in str(error)
