"""Tests for repro.utils.validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.utils.validation import (
    check_array_2d,
    check_non_negative_float,
    check_non_negative_int,
    check_positive_float,
    check_positive_int,
    check_probability,
    check_unit_interval_open,
)


class TestCheckPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(3, "k") == 3

    def test_accepts_numpy_integer(self):
        assert check_positive_int(np.int32(5), "k") == 5

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ConfigurationError):
            check_positive_int(0, "k")
        with pytest.raises(ConfigurationError):
            check_positive_int(-1, "k")

    def test_rejects_bool_and_float(self):
        with pytest.raises(ConfigurationError):
            check_positive_int(True, "k")
        with pytest.raises(ConfigurationError):
            check_positive_int(2.5, "k")

    def test_error_message_names_parameter(self):
        with pytest.raises(ConfigurationError, match="n_coclusters"):
            check_positive_int(-3, "n_coclusters")


class TestCheckNonNegative:
    def test_int_accepts_zero(self):
        assert check_non_negative_int(0, "count") == 0

    def test_int_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_non_negative_int(-2, "count")

    def test_float_accepts_zero_and_positive(self):
        assert check_non_negative_float(0.0, "lam") == 0.0
        assert check_non_negative_float(2.5, "lam") == 2.5

    def test_float_rejects_negative_nan_inf(self):
        for bad in (-0.1, float("nan"), float("inf")):
            with pytest.raises(ConfigurationError):
                check_non_negative_float(bad, "lam")

    def test_float_rejects_non_numeric(self):
        with pytest.raises(ConfigurationError):
            check_non_negative_float("abc", "lam")


class TestCheckPositiveFloat:
    def test_accepts_positive(self):
        assert check_positive_float(0.5, "lr") == 0.5

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            check_positive_float(0.0, "lr")


class TestCheckProbability:
    def test_accepts_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0

    def test_rejects_above_one(self):
        with pytest.raises(ConfigurationError):
            check_probability(1.5, "p")


class TestCheckUnitIntervalOpen:
    def test_accepts_interior(self):
        assert check_unit_interval_open(0.5, "sigma") == 0.5

    def test_rejects_bounds(self):
        with pytest.raises(ConfigurationError):
            check_unit_interval_open(0.0, "sigma")
        with pytest.raises(ConfigurationError):
            check_unit_interval_open(1.0, "sigma")


class TestCheckArray2d:
    def test_accepts_2d_list(self):
        result = check_array_2d([[1, 2], [3, 4]], "factors")
        assert result.shape == (2, 2)
        assert result.dtype == float

    def test_rejects_1d(self):
        with pytest.raises(ConfigurationError):
            check_array_2d([1, 2, 3], "factors")

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            check_array_2d([[1.0, float("nan")]], "factors")
