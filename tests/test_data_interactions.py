"""Tests for repro.data.interactions.InteractionMatrix."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.data.interactions import InteractionMatrix, interaction_statistics
from repro.exceptions import DataError


@pytest.fixture
def dense_example() -> np.ndarray:
    dense = np.zeros((4, 5))
    dense[0, 0] = 1.0
    dense[0, 2] = 1.0
    dense[1, 2] = 1.0
    dense[2, 4] = 1.0
    return dense


class TestConstruction:
    def test_from_dense_binarises_values(self):
        matrix = InteractionMatrix(np.array([[0.0, 2.5], [3.0, 0.0]]))
        np.testing.assert_array_equal(matrix.toarray(), [[0, 1], [1, 0]])

    def test_from_sparse(self, dense_example):
        matrix = InteractionMatrix(sp.csr_matrix(dense_example))
        assert matrix.nnz == 4

    def test_duplicate_entries_collapse_to_one(self):
        csr = sp.csr_matrix(([1.0, 1.0], ([0, 0], [1, 1])), shape=(2, 3))
        matrix = InteractionMatrix(csr)
        assert matrix.nnz == 1
        assert matrix.toarray()[0, 1] == 1.0

    def test_rejects_negative_values(self):
        with pytest.raises(DataError):
            InteractionMatrix(np.array([[1.0, -1.0]]))

    def test_rejects_empty_dimensions(self):
        with pytest.raises(DataError):
            InteractionMatrix(np.zeros((0, 3)))

    def test_from_pairs_infers_shape(self):
        matrix = InteractionMatrix.from_pairs([(0, 0), (2, 1)])
        assert matrix.shape == (3, 2)
        assert matrix.contains(2, 1)

    def test_from_pairs_explicit_shape(self):
        matrix = InteractionMatrix.from_pairs([(0, 0)], n_users=5, n_items=4)
        assert matrix.shape == (5, 4)

    def test_from_pairs_rejects_out_of_range(self):
        with pytest.raises(DataError):
            InteractionMatrix.from_pairs([(4, 0)], n_users=3, n_items=2)

    def test_from_pairs_rejects_negative_index(self):
        with pytest.raises(DataError):
            InteractionMatrix.from_pairs([(-1, 0)])

    def test_from_pairs_empty_requires_shape(self):
        with pytest.raises(DataError):
            InteractionMatrix.from_pairs([])

    def test_label_length_validation(self, dense_example):
        with pytest.raises(DataError):
            InteractionMatrix(dense_example, user_labels=["only one"])


class TestAccessors:
    def test_shape_properties(self, dense_example):
        matrix = InteractionMatrix(dense_example)
        assert matrix.n_users == 4
        assert matrix.n_items == 5
        assert matrix.shape == (4, 5)
        assert matrix.nnz == 4
        assert matrix.density == pytest.approx(4 / 20)

    def test_items_of_user(self, dense_example):
        matrix = InteractionMatrix(dense_example)
        np.testing.assert_array_equal(matrix.items_of_user(0), [0, 2])
        np.testing.assert_array_equal(matrix.items_of_user(3), [])

    def test_users_of_item(self, dense_example):
        matrix = InteractionMatrix(dense_example)
        np.testing.assert_array_equal(matrix.users_of_item(2), [0, 1])

    def test_degrees(self, dense_example):
        matrix = InteractionMatrix(dense_example)
        np.testing.assert_array_equal(matrix.user_degrees(), [2, 1, 1, 0])
        np.testing.assert_array_equal(matrix.item_degrees(), [1, 0, 2, 0, 1])

    def test_pairs_roundtrip(self, dense_example):
        matrix = InteractionMatrix(dense_example)
        pairs = matrix.pairs()
        rebuilt = InteractionMatrix.from_pairs(
            [tuple(pair) for pair in pairs], n_users=4, n_items=5
        )
        assert rebuilt == matrix

    def test_contains(self, dense_example):
        matrix = InteractionMatrix(dense_example)
        assert matrix.contains(0, 2)
        assert not matrix.contains(3, 3)

    def test_index_out_of_range(self, dense_example):
        matrix = InteractionMatrix(dense_example)
        with pytest.raises(DataError):
            matrix.items_of_user(99)
        with pytest.raises(DataError):
            matrix.users_of_item(-1)

    def test_labels_fallback_and_custom(self):
        labelled = InteractionMatrix(
            np.eye(2), user_labels=["Alice", "Bob"], item_labels=["X", "Y"]
        )
        assert labelled.label_of_user(0) == "Alice"
        assert labelled.label_of_item(1) == "Y"
        plain = InteractionMatrix(np.eye(2))
        assert plain.label_of_user(1) == "user 1"
        assert plain.label_of_item(0) == "item 0"


class TestTransformations:
    def test_subsample_keeps_fraction(self):
        dense = np.ones((10, 10))
        matrix = InteractionMatrix(dense)
        half = matrix.subsample(0.5, random_state=0)
        assert half.nnz == 50
        assert half.shape == matrix.shape

    def test_subsample_full_fraction_is_copy(self, dense_example):
        matrix = InteractionMatrix(dense_example)
        assert matrix.subsample(1.0, random_state=0) == matrix

    def test_subsample_rejects_bad_fraction(self, dense_example):
        matrix = InteractionMatrix(dense_example)
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(DataError):
                matrix.subsample(bad)

    def test_subsample_is_subset(self):
        matrix = InteractionMatrix(np.ones((6, 6)))
        sub = matrix.subsample(0.3, random_state=1)
        original_pairs = {tuple(p) for p in matrix.pairs()}
        assert all(tuple(p) in original_pairs for p in sub.pairs())

    def test_without_pairs_removes_only_requested(self, dense_example):
        matrix = InteractionMatrix(dense_example)
        reduced = matrix.without_pairs([(0, 0)])
        assert not reduced.contains(0, 0)
        assert reduced.contains(0, 2)
        assert reduced.nnz == matrix.nnz - 1

    def test_without_pairs_leaves_original_unchanged(self, dense_example):
        matrix = InteractionMatrix(dense_example)
        matrix.without_pairs([(0, 0)])
        assert matrix.contains(0, 0)

    def test_copy_is_independent(self, dense_example):
        matrix = InteractionMatrix(dense_example)
        copy = matrix.copy()
        assert copy == matrix
        assert copy is not matrix

    def test_equality_different_shape(self):
        assert InteractionMatrix(np.eye(2)) != InteractionMatrix(np.eye(3))


class TestStatistics:
    def test_interaction_statistics_keys_and_values(self, dense_example):
        stats = interaction_statistics(InteractionMatrix(dense_example))
        assert stats["n_users"] == 4
        assert stats["n_items"] == 5
        assert stats["n_positives"] == 4
        assert stats["density"] == pytest.approx(0.2)
        assert stats["mean_user_degree"] == pytest.approx(1.0)


class TestExtendedWith:
    def test_grows_shape_and_sets_pairs(self, dense_example):
        matrix = InteractionMatrix(dense_example)
        grown = matrix.extended_with(
            [(4, 5), (0, 5), (5, 0)], n_new_users=2, n_new_items=1
        )
        assert grown.shape == (6, 6)
        assert grown.nnz == matrix.nnz + 3
        assert grown.contains(4, 5) and grown.contains(0, 5) and grown.contains(5, 0)
        # Every original interaction survives in place.
        for user, item in matrix.pairs():
            assert grown.contains(int(user), int(item))

    def test_original_matrix_untouched(self, dense_example):
        matrix = InteractionMatrix(dense_example)
        before = matrix.toarray().copy()
        matrix.extended_with([(0, 1)], n_new_users=1)
        np.testing.assert_array_equal(matrix.toarray(), before)
        assert matrix.shape == (4, 5)

    def test_duplicate_pairs_are_idempotent(self, dense_example):
        matrix = InteractionMatrix(dense_example)
        grown = matrix.extended_with([(0, 0), (0, 0), (1, 2)])
        assert grown == matrix
        np.testing.assert_array_equal(grown.csr().data, 1.0)

    def test_empty_delta_no_growth_is_a_copy(self, dense_example):
        matrix = InteractionMatrix(dense_example)
        grown = matrix.extended_with([])
        assert grown == matrix
        assert grown is not matrix

    def test_pair_outside_extended_shape_rejected(self, dense_example):
        matrix = InteractionMatrix(dense_example)
        with pytest.raises(DataError, match="exceeds the extended shape"):
            matrix.extended_with([(4, 0)])  # no new user row appended
        with pytest.raises(DataError, match="exceeds the extended shape"):
            matrix.extended_with([(0, 6)], n_new_items=1)

    def test_negative_indices_and_counts_rejected(self, dense_example):
        matrix = InteractionMatrix(dense_example)
        with pytest.raises(DataError, match="non-negative"):
            matrix.extended_with([(-1, 0)], n_new_users=1)
        with pytest.raises(DataError, match="non-negative"):
            matrix.extended_with([], n_new_users=-1)

    def test_labels_extend_with_new_rows(self):
        matrix = InteractionMatrix(
            np.eye(2), user_labels=["u0", "u1"], item_labels=["i0", "i1"]
        )
        grown = matrix.extended_with(
            [(2, 2)],
            n_new_users=1,
            n_new_items=1,
            new_user_labels=["u2"],
            new_item_labels=["i2"],
        )
        assert grown.user_labels == ["u0", "u1", "u2"]
        assert grown.item_labels == ["i0", "i1", "i2"]

    def test_label_count_mismatch_rejected(self):
        matrix = InteractionMatrix(np.eye(2), user_labels=["u0", "u1"])
        with pytest.raises(DataError):
            matrix.extended_with([], n_new_users=2, new_user_labels=["only-one"])
