"""Tests for the benchmark perf-regression gate (``benchmarks/perf_gate.py``).

The gate script lives next to the benchmarks rather than inside the package,
so it is loaded here via importlib from its file path.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_GATE_PATH = Path(__file__).parent.parent / "benchmarks" / "perf_gate.py"


@pytest.fixture(scope="module")
def perf_gate():
    spec = importlib.util.spec_from_file_location("perf_gate", _GATE_PATH)
    module = importlib.util.module_from_spec(spec)
    # Registered before exec: @dataclass resolves postponed annotations via
    # sys.modules[cls.__module__].
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        yield module
    finally:
        sys.modules.pop(spec.name, None)


def _payload(metrics, smoke=True):
    return {"bench": "x", "smoke": smoke, "metrics": metrics, "context": {}}


def _write(directory, bench, metrics, smoke=True):
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{bench}.json"
    path.write_text(json.dumps(_payload(metrics, smoke=smoke)), encoding="utf-8")
    return path


class TestResolveRatio:
    def test_default(self, perf_gate, monkeypatch):
        monkeypatch.delenv(perf_gate.RATIO_ENV, raising=False)
        assert perf_gate.resolve_ratio() == perf_gate.DEFAULT_RATIO

    def test_env_override(self, perf_gate, monkeypatch):
        monkeypatch.setenv(perf_gate.RATIO_ENV, "3.5")
        assert perf_gate.resolve_ratio() == 3.5

    def test_argument_beats_env(self, perf_gate, monkeypatch):
        monkeypatch.setenv(perf_gate.RATIO_ENV, "3.5")
        assert perf_gate.resolve_ratio(7.0) == 7.0

    def test_garbage_env_falls_back(self, perf_gate, monkeypatch):
        monkeypatch.setenv(perf_gate.RATIO_ENV, "not-a-number")
        assert perf_gate.resolve_ratio() == perf_gate.DEFAULT_RATIO

    def test_degenerate_ratio_falls_back(self, perf_gate, monkeypatch):
        monkeypatch.delenv(perf_gate.RATIO_ENV, raising=False)
        assert perf_gate.resolve_ratio(0.5) == perf_gate.DEFAULT_RATIO


class TestEvaluateBench:
    def test_higher_within_ratio_passes(self, perf_gate):
        out = perf_gate.evaluate_bench(
            "b", "speedup", "higher", _payload({"speedup": 10.0}), _payload({"speedup": 4.0}), 5.0
        )
        assert out.status == "ok"

    def test_higher_regression_fails(self, perf_gate):
        out = perf_gate.evaluate_bench(
            "b", "speedup", "higher", _payload({"speedup": 10.0}), _payload({"speedup": 1.0}), 5.0
        )
        assert out.status == "fail"
        assert "speedup" in out.detail

    def test_lower_within_ratio_passes(self, perf_gate):
        out = perf_gate.evaluate_bench(
            "b", "p50_ms", "lower", _payload({"p50_ms": 2.0}), _payload({"p50_ms": 9.0}), 5.0
        )
        assert out.status == "ok"

    def test_lower_regression_fails(self, perf_gate):
        out = perf_gate.evaluate_bench(
            "b", "p50_ms", "lower", _payload({"p50_ms": 2.0}), _payload({"p50_ms": 11.0}), 5.0
        )
        assert out.status == "fail"

    def test_missing_baseline_skips(self, perf_gate):
        out = perf_gate.evaluate_bench("b", "m", "higher", None, _payload({"m": 1.0}), 5.0)
        assert out.status == "skip"

    def test_missing_result_skips(self, perf_gate):
        out = perf_gate.evaluate_bench("b", "m", "higher", _payload({"m": 1.0}), None, 5.0)
        assert out.status == "skip"

    def test_smoke_mismatch_skips(self, perf_gate):
        out = perf_gate.evaluate_bench(
            "b",
            "m",
            "higher",
            _payload({"m": 10.0}, smoke=False),
            _payload({"m": 0.1}, smoke=True),
            5.0,
        )
        assert out.status == "skip"
        assert "smoke" in out.detail

    def test_missing_metric_skips(self, perf_gate):
        out = perf_gate.evaluate_bench(
            "b", "m", "higher", _payload({"other": 1.0}), _payload({"m": 1.0}), 5.0
        )
        assert out.status == "skip"

    def test_boolean_metric_skips(self, perf_gate):
        out = perf_gate.evaluate_bench(
            "b", "m", "higher", _payload({"m": True}), _payload({"m": True}), 5.0
        )
        assert out.status == "skip"


class TestRunGateAndMain:
    def test_registry_names_match_committed_baselines(self, perf_gate):
        baselines = perf_gate.BASELINES_DIR
        assert baselines.is_dir(), "benchmarks/baselines/ must be committed"
        for bench in perf_gate.HEADLINES:
            assert (baselines / f"BENCH_{bench}.json").is_file(), bench

    def test_registry_metrics_exist_in_baselines(self, perf_gate):
        for bench, (metric, direction) in perf_gate.HEADLINES.items():
            assert direction in ("higher", "lower")
            payload = perf_gate.load_payload(
                perf_gate.BASELINES_DIR / f"BENCH_{bench}.json"
            )
            value = payload["metrics"].get(metric)
            assert isinstance(value, (int, float)) and not isinstance(value, bool), (
                f"{bench}: baseline metric {metric!r} missing or non-numeric"
            )

    def test_main_passes_on_clean_dirs(self, perf_gate, tmp_path, capsys):
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        _write(baselines, "serving_hotpath", {"speedup": 2.0})
        _write(results, "serving_hotpath", {"speedup": 1.9})
        code = perf_gate.main(["--results", str(results), "--baselines", str(baselines)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "1 ok" in captured

    def test_main_fails_on_regression(self, perf_gate, tmp_path, capsys):
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        _write(baselines, "serving_hotpath", {"speedup": 10.0})
        _write(results, "serving_hotpath", {"speedup": 0.5})
        code = perf_gate.main(["--results", str(results), "--baselines", str(baselines)])
        assert code == 1
        assert "FAILED" in capsys.readouterr().out

    def test_main_ratio_flag(self, perf_gate, tmp_path):
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        _write(baselines, "serving_hotpath", {"speedup": 10.0})
        _write(results, "serving_hotpath", {"speedup": 4.0})
        assert perf_gate.main(
            ["--results", str(results), "--baselines", str(baselines), "--ratio", "2.0"]
        ) == 1
        assert perf_gate.main(
            ["--results", str(results), "--baselines", str(baselines), "--ratio", "3.0"]
        ) == 0

    def test_unparseable_result_skips(self, perf_gate, tmp_path):
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        _write(baselines, "serving_hotpath", {"speedup": 2.0})
        results.mkdir()
        (results / "BENCH_serving_hotpath.json").write_text("{not json", encoding="utf-8")
        outcomes = perf_gate.run_gate(results, baselines)
        by_name = {o.bench: o for o in outcomes}
        assert by_name["serving_hotpath"].status == "skip"
        assert all(o.status != "fail" for o in outcomes)
