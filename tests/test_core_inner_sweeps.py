"""Tests for the inner-sweeps knob (the Section IV-B single-step design choice)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.init import initialize_factors
from repro.core.ocular import OCuLaR
from repro.core.optimizer import BlockCoordinateTrainer
from repro.exceptions import ConfigurationError


@pytest.fixture
def problem():
    rng = np.random.default_rng(8)
    dense = (rng.random((25, 18)) < 0.25).astype(float)
    dense[0, 0] = 1.0
    matrix = sp.csr_matrix(dense)
    factors = initialize_factors(matrix, 4, random_state=8)
    return matrix, factors


def test_inner_sweeps_must_be_positive():
    with pytest.raises(ConfigurationError):
        BlockCoordinateTrainer(inner_sweeps=0)
    with pytest.raises(ConfigurationError):
        OCuLaR(inner_sweeps=-1)


def test_more_inner_sweeps_never_worse_per_outer_iteration(problem):
    """Solving each block more exactly gives at least as much progress per outer iteration."""
    matrix, (user_factors, item_factors) = problem
    objectives = {}
    for inner in (1, 4):
        trainer = BlockCoordinateTrainer(
            regularization=1.0, max_iterations=2, tolerance=0.0, inner_sweeps=inner
        )
        _, _, history = trainer.train(matrix, user_factors, item_factors)
        objectives[inner] = history.final_objective
    assert objectives[4] <= objectives[1] + 1e-6


def test_inner_sweeps_objective_still_monotone(problem):
    matrix, (user_factors, item_factors) = problem
    trainer = BlockCoordinateTrainer(
        regularization=1.0, max_iterations=5, tolerance=0.0, inner_sweeps=3
    )
    _, _, history = trainer.train(matrix, user_factors, item_factors)
    values = history.objective_values
    assert all(later <= earlier + 1e-8 for earlier, later in zip(values, values[1:]))


def test_ocular_exposes_inner_sweeps_in_params(toy_dataset):
    model = OCuLaR(n_coclusters=3, max_iterations=5, inner_sweeps=2, random_state=0)
    assert model.get_params()["inner_sweeps"] == 2
    model.fit(toy_dataset.matrix)
    assert model.is_fitted
