"""Tests for evaluator, cross-validation and grid search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import PopularityRecommender, UserKNNRecommender
from repro.core.ocular import OCuLaR
from repro.data.splitting import train_test_split
from repro.evaluation.cross_validation import cross_validate, repeated_holdout
from repro.evaluation.evaluator import (
    compare_recommenders,
    evaluate_curves,
    evaluate_recommender,
)
from repro.evaluation.grid_search import grid_search, parameter_combinations
from repro.exceptions import ConfigurationError, EvaluationError
from repro.parallel import SerialExecutor, ThreadExecutor


@pytest.fixture(scope="module")
def fitted_split(request):
    """A split plus a fitted cheap model shared by the protocol tests."""
    from repro.data.datasets import make_movielens_like

    matrix, _ = make_movielens_like(n_users=100, n_items=60, random_state=0)
    split = train_test_split(matrix, random_state=0)
    model = UserKNNRecommender(n_neighbors=20).fit(split.train)
    return matrix, split, model


class TestEvaluateRecommender:
    def test_result_fields_and_ranges(self, fitted_split):
        _, split, model = fitted_split
        result = evaluate_recommender(model, split, m=10)
        assert result.m == 10
        assert result.n_users == len(split.test_items)
        for value in (result.recall, result.map, result.precision, result.ndcg, result.hit_rate):
            assert 0.0 <= value <= 1.0

    def test_as_dict(self, fitted_split):
        _, split, model = fitted_split
        summary = evaluate_recommender(model, split, m=10).as_dict()
        assert set(summary) == {"m", "n_users", "recall", "map", "precision", "ndcg", "hit_rate"}

    def test_user_subset(self, fitted_split):
        _, split, model = fitted_split
        subset = sorted(split.test_items.keys())[:10]
        result = evaluate_recommender(model, split, m=10, users=subset)
        assert result.n_users == 10

    def test_per_user_breakdown(self, fitted_split):
        _, split, model = fitted_split
        result = evaluate_recommender(model, split, m=10, keep_per_user=True)
        assert len(result.per_user) == result.n_users
        some_user = next(iter(result.per_user.values()))
        assert {"recall", "ap", "precision", "ndcg", "hit"} <= set(some_user)

    def test_unfitted_model_rejected(self, fitted_split):
        _, split, _ = fitted_split
        with pytest.raises(EvaluationError):
            evaluate_recommender(PopularityRecommender(), split, m=10)

    def test_invalid_m_rejected(self, fitted_split):
        _, split, model = fitted_split
        with pytest.raises(EvaluationError):
            evaluate_recommender(model, split, m=0)

    def test_unknown_users_rejected(self, fitted_split):
        _, split, model = fitted_split
        with pytest.raises(EvaluationError):
            evaluate_recommender(model, split, m=5, users=[-1])

    def test_larger_m_never_decreases_recall(self, fitted_split):
        _, split, model = fitted_split
        small = evaluate_recommender(model, split, m=5).recall
        large = evaluate_recommender(model, split, m=30).recall
        assert large >= small


class TestEvaluateCurves:
    def test_matches_single_evaluations(self, fitted_split):
        _, split, model = fitted_split
        curves = evaluate_curves(model, split, m_values=[5, 20])
        for m in (5, 20):
            single = evaluate_recommender(model, split, m=m)
            assert curves[m].recall == pytest.approx(single.recall)
            assert curves[m].map == pytest.approx(single.map)

    def test_recall_monotone_in_m(self, fitted_split):
        _, split, model = fitted_split
        curves = evaluate_curves(model, split, m_values=[5, 10, 20, 40])
        recalls = [curves[m].recall for m in sorted(curves)]
        assert all(later >= earlier for earlier, later in zip(recalls, recalls[1:]))

    def test_empty_m_values_rejected(self, fitted_split):
        _, split, model = fitted_split
        with pytest.raises(EvaluationError):
            evaluate_curves(model, split, m_values=[])


class TestCompareRecommenders:
    def test_returns_result_per_model(self, fitted_split):
        _, split, model = fitted_split
        popularity = PopularityRecommender().fit(split.train)
        results = compare_recommenders({"knn": model, "pop": popularity}, split, m=10)
        assert set(results) == {"knn", "pop"}
        assert results["knn"].recall >= results["pop"].recall


class TestCrossValidation:
    def test_cross_validate_aggregates(self, fitted_split):
        matrix, _, _ = fitted_split
        result = cross_validate(
            lambda: UserKNNRecommender(n_neighbors=10), matrix, n_folds=3, m=10, random_state=0
        )
        assert result.n_folds == 3
        assert 0.0 <= result.mean("recall") <= 1.0
        assert result.std("recall") >= 0.0
        summary = result.as_dict()
        assert summary["n_folds"] == 3.0
        assert "recall_mean" in summary and "map_std" in summary

    def test_repeated_holdout(self, fitted_split):
        matrix, _, _ = fitted_split
        result = repeated_holdout(
            lambda: PopularityRecommender(), matrix, n_repeats=2, m=10, random_state=0
        )
        assert result.n_folds == 2

    def test_max_users_caps_evaluation(self, fitted_split):
        matrix, _, _ = fitted_split
        result = cross_validate(
            lambda: PopularityRecommender(), matrix, n_folds=2, m=10, max_users=5, random_state=0
        )
        assert all(fold.n_users <= 5 for fold in result.fold_results)

    def test_invalid_folds_rejected(self, fitted_split):
        matrix, _, _ = fitted_split
        with pytest.raises(EvaluationError):
            cross_validate(lambda: PopularityRecommender(), matrix, n_folds=1)


class TestGridSearch:
    def test_parameter_combinations_order_and_count(self):
        combos = parameter_combinations({"a": [1, 2], "b": ["x", "y", "z"]})
        assert len(combos) == 6
        assert combos[0] == {"a": 1, "b": "x"}
        assert combos[-1] == {"a": 2, "b": "z"}

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            parameter_combinations({})
        with pytest.raises(ConfigurationError):
            parameter_combinations({"a": []})

    def test_grid_search_finds_better_neighborhood(self, fitted_split):
        matrix, _, _ = fitted_split
        result = grid_search(
            UserKNNRecommender,
            {"n_neighbors": [1, 20]},
            matrix,
            metric="recall",
            m=10,
            random_state=0,
        )
        assert result.best_params["n_neighbors"] == 20
        assert len(result.table) == 2
        assert result.best_score == max(entry["score"] for entry in result.table)

    def test_scores_as_grid_pivot(self, fitted_split):
        matrix, _, _ = fitted_split
        result = grid_search(
            lambda n_coclusters, regularization: OCuLaR(
                n_coclusters=n_coclusters,
                regularization=regularization,
                max_iterations=10,
                random_state=0,
            ),
            {"n_coclusters": [2, 4], "regularization": [1.0, 10.0]},
            matrix,
            m=10,
            random_state=0,
        )
        rows, cols, grid = result.scores_as_grid("n_coclusters", "regularization")
        assert rows == [2, 4]
        assert cols == [1.0, 10.0]
        assert grid.shape == (2, 2)
        assert not np.isnan(grid).any()

    def test_unknown_metric_rejected(self, fitted_split):
        matrix, _, _ = fitted_split
        with pytest.raises(ConfigurationError):
            grid_search(UserKNNRecommender, {"n_neighbors": [5]}, matrix, metric="auc")

    def test_executor_paths_agree(self, fitted_split):
        matrix, _, _ = fitted_split
        grid = {"n_neighbors": [5, 15]}
        serial = grid_search(
            UserKNNRecommender, grid, matrix, m=10, executor=SerialExecutor(), random_state=1
        )
        with ThreadExecutor(max_workers=2) as executor:
            threaded = grid_search(
                UserKNNRecommender, grid, matrix, m=10, executor=executor, random_state=1
            )
        assert serial.best_params == threaded.best_params
        assert serial.best_score == pytest.approx(threaded.best_score)

    def test_executor_selected_by_registry_name(self, fitted_split):
        # Names route through the shard-scheduler registry; the built
        # executor is owned by the call and shut down afterwards.
        matrix, _, _ = fitted_split
        grid = {"n_neighbors": [5, 15]}
        inline = grid_search(UserKNNRecommender, grid, matrix, m=10, random_state=1)
        named = grid_search(
            UserKNNRecommender, grid, matrix, m=10, executor="thread", random_state=1
        )
        assert named.best_params == inline.best_params
        assert named.best_score == pytest.approx(inline.best_score)
        with pytest.raises(ConfigurationError):
            grid_search(
                UserKNNRecommender, grid, matrix, m=10, executor="spark", random_state=1
            )
