"""Tests for repro.data.loaders (ratings files and CSV purchase logs)."""

from __future__ import annotations

import pytest

from repro.data.loaders import (
    binarize_ratings,
    interactions_from_ratings,
    load_interactions_csv,
    load_movielens_ratings,
)
from repro.exceptions import DataError


class TestBinarizeRatings:
    def test_threshold_rule_matches_paper(self):
        ratings = [("u1", "i1", 5.0), ("u1", "i2", 2.0), ("u2", "i1", 3.0)]
        positives = binarize_ratings(ratings, threshold=3.0)
        assert ("u1", "i1") in positives
        assert ("u2", "i1") in positives
        assert ("u1", "i2") not in positives

    def test_custom_threshold(self):
        ratings = [("u", "i", 4.0)]
        assert binarize_ratings(ratings, threshold=4.5) == []


class TestInteractionsFromRatings:
    def test_builds_matrix_with_labels(self):
        ratings = [("alice", "book", 5.0), ("bob", "film", 4.0), ("alice", "film", 1.0)]
        matrix = interactions_from_ratings(ratings, threshold=3.0)
        assert matrix.shape == (2, 2)
        assert matrix.label_of_user(0) == "alice"
        assert matrix.contains(0, 0)
        assert not matrix.contains(0, 1)  # alice/film was below threshold

    def test_all_below_threshold_raises(self):
        with pytest.raises(DataError):
            interactions_from_ratings([("u", "i", 1.0)], threshold=3.0)


class TestLoadMovielensRatings:
    def test_double_colon_format(self, tmp_path):
        path = tmp_path / "ratings.dat"
        path.write_text("1::10::5::978300760\n1::20::2::978300761\n2::10::4::978300762\n")
        matrix = load_movielens_ratings(path)
        assert matrix.shape == (2, 1)  # item 20 dropped (rating 2 < 3)
        assert matrix.nnz == 2

    def test_tab_format(self, tmp_path):
        path = tmp_path / "u.data"
        path.write_text("1\t10\t4\t881250949\n2\t10\t3\t881250950\n")
        matrix = load_movielens_ratings(path)
        assert matrix.nnz == 2

    def test_explicit_separator(self, tmp_path):
        path = tmp_path / "ratings.csv"
        path.write_text("1,10,5\n2,11,4\n")
        matrix = load_movielens_ratings(path, separator=",")
        assert matrix.shape == (2, 2)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError):
            load_movielens_ratings(tmp_path / "missing.dat")

    def test_malformed_line_raises_with_line_number(self, tmp_path):
        path = tmp_path / "bad.dat"
        path.write_text("1::10::5\nnot a rating line\n")
        with pytest.raises(DataError, match="line 2"):
            load_movielens_ratings(path)

    def test_non_numeric_rating_raises(self, tmp_path):
        path = tmp_path / "bad.dat"
        path.write_text("1::10::five::0\n")
        with pytest.raises(DataError, match="not numeric"):
            load_movielens_ratings(path)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "ratings.dat"
        path.write_text("1::10::5::0\n\n2::10::5::0\n")
        assert load_movielens_ratings(path).nnz == 2


class TestLoadInteractionsCsv:
    def test_purchase_log_without_ratings(self, tmp_path):
        path = tmp_path / "purchases.csv"
        path.write_text("user,item\nacme,cloud\nacme,storage\nglobex,cloud\n")
        matrix = load_interactions_csv(path)
        assert matrix.shape == (2, 2)
        assert matrix.nnz == 3
        assert matrix.label_of_user(0) == "acme"

    def test_with_rating_column_and_threshold(self, tmp_path):
        path = tmp_path / "ratings.csv"
        path.write_text("user,item,stars\nu1,i1,5\nu1,i2,1\n")
        matrix = load_interactions_csv(path, rating_column="stars", threshold=3.0)
        assert matrix.nnz == 1

    def test_custom_column_names(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("client,product\nc1,p1\n")
        matrix = load_interactions_csv(path, user_column="client", item_column="product")
        assert matrix.nnz == 1

    def test_missing_column_raises(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(DataError, match="missing required columns"):
            load_interactions_csv(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DataError):
            load_interactions_csv(tmp_path / "nope.csv")

    def test_bad_rating_value_raises(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("user,item,stars\nu,i,high\n")
        with pytest.raises(DataError, match="not numeric"):
            load_interactions_csv(path, rating_column="stars")
