"""Tests for the experiment harness (small-scale runs of every experiment)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    MODEL_NAMES,
    PAPER_CLAIMS,
    TABLE1_PAPER,
    build_model_zoo,
    run_backend_comparison,
    run_deployment_example,
    run_grid_search_experiment,
    run_parameter_study,
    run_precision_study,
    run_recall_curves,
    run_scalability_study,
    run_table1,
    run_toy_example,
    run_worker_scaling_study,
)
from repro.experiments.paper_reference import paper_table1_rows
from repro.experiments.zoo import default_parameter_grids


class TestPaperReference:
    def test_table1_contains_all_methods_and_datasets(self):
        for dataset in ("movielens", "citeulike", "b2b"):
            rows = paper_table1_rows(dataset)
            for metric in ("MAP@50", "recall@50"):
                assert set(rows[metric]) == set(MODEL_NAMES)

    def test_table1_values_in_unit_interval(self):
        for dataset_rows in TABLE1_PAPER.values():
            for metric_rows in dataset_rows.values():
                for value in metric_rows.values():
                    assert 0.0 < value < 1.0

    def test_claims_present(self):
        for key in ("fig3_confidence", "fig7_scaling", "fig8_speedup"):
            assert key in PAPER_CLAIMS


class TestModelZoo:
    def test_zoo_has_all_table1_methods(self):
        zoo = build_model_zoo(random_state=0)
        assert set(zoo) == set(MODEL_NAMES)

    def test_factories_produce_fresh_instances(self):
        zoo = build_model_zoo(random_state=0)
        assert zoo["OCuLaR"]() is not zoo["OCuLaR"]()

    def test_popularity_optional(self):
        assert "popularity" in build_model_zoo(include_popularity=True)

    def test_parameter_grids_cover_all_methods(self):
        for small in (True, False):
            grids = default_parameter_grids(small=small)
            assert set(grids) == set(MODEL_NAMES)


class TestToyExperiment:
    def test_reproduces_paper_headline(self):
        result = run_toy_example(random_state=0)
        # Paper: "Item 4 is recommended to User 6 with confidence 0.83".
        assert result.headline_rank == 1
        assert result.headline_confidence == pytest.approx(0.83, abs=0.08)
        assert result.holes_recovered_at_1 == 3
        assert result.explanation.n_supporting_coclusters >= 2

    def test_renderings_present(self):
        result = run_toy_example(random_state=0)
        assert "#" in result.matrix_text
        assert "%" in result.probability_text


class TestTable1Experiment:
    @pytest.fixture(scope="class")
    def small_table(self):
        return run_table1(
            dataset="movielens",
            m=20,
            n_repeats=1,
            scale=0.35,
            max_users=60,
            random_state=0,
        )

    def test_all_methods_evaluated(self, small_table):
        assert set(small_table.metrics) == set(MODEL_NAMES)
        for metrics in small_table.metrics.values():
            assert 0.0 <= metrics["recall"] <= 1.0
            assert 0.0 <= metrics["map"] <= 1.0

    def test_ocular_is_competitive(self, small_table):
        # Paper shape: the OCuLaR variants are best or second-best.
        ranking = small_table.ranking("recall")
        best_ocular_rank = min(ranking.index("OCuLaR"), ranking.index("R-OCuLaR"))
        assert best_ocular_rank <= 2

    def test_to_text_mentions_paper_values(self, small_table):
        text = small_table.to_text()
        assert "paper" in text
        assert "OCuLaR" in text

    def test_method_subset(self):
        result = run_table1(
            dataset="movielens",
            m=10,
            n_repeats=1,
            scale=0.2,
            max_users=30,
            methods=["OCuLaR", "user-based"],
            random_state=0,
        )
        assert set(result.metrics) == {"OCuLaR", "user-based"}


class TestRecallCurves:
    def test_curves_monotone_and_complete(self):
        result = run_recall_curves(
            m_values=(5, 20, 40),
            scale=0.25,
            max_users=40,
            methods=["OCuLaR", "user-based"],
            random_state=0,
        )
        assert result.m_values == [5, 20, 40]
        for name, curves in result.curves.items():
            recalls = curves["recall"]
            assert all(later >= earlier - 1e-9 for earlier, later in zip(recalls, recalls[1:]))
        assert "Figure 5" in result.to_text()


class TestParameterStudy:
    def test_sweep_structure(self):
        result = run_parameter_study(
            k_values=(4, 8),
            lambda_values=(0.0, 5.0),
            m=10,
            scale=0.2,
            max_users=30,
            max_iterations=25,
            random_state=0,
        )
        assert len(result.points) == 4
        assert result.lambdas() == [0.0, 5.0]
        assert len(result.series_for_lambda(5.0)) == 2
        best = result.best_point()
        assert best.recall == max(point.recall for point in result.points)
        assert "Figure 6" in result.to_text()

    def test_larger_k_gives_smaller_coclusters(self):
        result = run_parameter_study(
            k_values=(4, 16),
            lambda_values=(5.0,),
            m=10,
            scale=0.25,
            max_users=30,
            max_iterations=30,
            random_state=0,
        )
        series = result.series_for_lambda(5.0)
        assert series[0].mean_users_per_cocluster >= series[-1].mean_users_per_cocluster * 0.8


class TestScalability:
    def test_linear_scaling_shape(self):
        result = run_scalability_study(
            fractions=(0.25, 0.5, 0.75, 1.0),
            k_values=(8,),
            n_iterations=3,
            n_users=800,
            n_items=300,
            random_state=0,
        )
        series = result.series_for_k(8)
        assert len(series) == 4
        assert series[0].n_positives < series[-1].n_positives
        # Per-iteration timings at unit-test scale are a few milliseconds, so
        # the fit is noisy; the strict R^2 check lives in the Figure 7
        # benchmark, which runs on a much larger corpus.  Here we check the
        # trend: more positives never make an iteration dramatically cheaper,
        # and the full corpus costs more than the smallest fraction.
        assert result.linearity_r2(8) > 0.3
        assert series[-1].seconds_per_iteration > series[0].seconds_per_iteration * 0.8
        assert "Figure 7" in result.to_text()

    def test_larger_k_costs_more(self):
        # Wall-clock comparison: K=32 does ~16x the work of K=2 per
        # iteration, but a CPU-steal spike on a loaded host can still invert
        # a single measurement, so allow a couple of re-measurements.  A
        # genuine complexity regression fails every attempt.
        for _ in range(3):
            result = run_scalability_study(
                fractions=(1.0,),
                k_values=(2, 32),
                n_iterations=2,
                n_users=400,
                n_items=200,
                random_state=0,
            )
            small_k = result.series_for_k(2)[0].seconds_per_iteration
            large_k = result.series_for_k(32)[0].seconds_per_iteration
            if large_k > small_k:
                break
        assert large_k > small_k


class TestBackendComparison:
    def test_vectorized_faster_and_same_likelihood(self):
        result = run_backend_comparison(
            n_users=200, n_items=80, n_coclusters=10, n_iterations=3, random_state=0
        )
        assert result.speedup_per_iteration() > 1.0
        reference = result.trajectories["reference"].log_likelihoods
        vectorized = result.trajectories["vectorized"].log_likelihoods
        np.testing.assert_allclose(reference, vectorized, rtol=1e-6)
        assert "speed-up" in result.to_text()

    def test_parallel_included_with_identical_trajectory(self):
        result = run_backend_comparison(
            n_users=150,
            n_items=60,
            n_coclusters=8,
            n_iterations=3,
            n_workers=2,
            random_state=0,
        )
        assert set(result.trajectories) == {"reference", "vectorized", "parallel"}
        # Parallel is bit-identical to vectorized, so the likelihood paths
        # must be exactly equal, not just close.
        np.testing.assert_array_equal(
            result.trajectories["parallel"].log_likelihoods,
            result.trajectories["vectorized"].log_likelihoods,
        )
        assert "parallel over vectorized" in result.to_text()


class TestWorkerScaling:
    def test_study_shape_and_reporting(self):
        result = run_worker_scaling_study(
            worker_counts=(1, 2),
            n_coclusters=6,
            n_iterations=2,
            n_users=150,
            n_items=60,
            random_state=0,
        )
        assert result.baseline_seconds > 0
        assert result.worker_counts() == [1, 2]
        for n_workers in (1, 2):
            assert result.seconds_at(n_workers) > 0
            assert result.speedup_at(n_workers) > 0
        text = result.to_text()
        assert "workers" in text and "vectorized baseline" in text
        with pytest.raises(KeyError):
            result.seconds_at(64)

    def test_executor_axis_covers_thread_and_process(self):
        # Figure 8-style scaling curves over both sharding substrates.
        result = run_worker_scaling_study(
            worker_counts=(2,),
            n_coclusters=5,
            n_iterations=1,
            n_users=100,
            n_items=40,
            executors=("thread", "process"),
            random_state=0,
        )
        assert result.executors() == ["process", "thread"]
        assert result.worker_counts() == [2]
        for executor in ("thread", "process"):
            assert result.seconds_at(2, executor) > 0
            assert result.speedup_at(2, executor) > 0
        assert "process" in result.to_text()
        with pytest.raises(KeyError):
            result.seconds_at(2, "serial")


class TestGridSearchExperiment:
    def test_grid_and_best_params(self):
        result = run_grid_search_experiment(
            k_values=(4, 8),
            lambda_values=(1.0, 10.0),
            m=10,
            n_clients=80,
            n_products=20,
            max_iterations=20,
            random_state=0,
        )
        assert result.grid.shape == (2, 2)
        assert not np.isnan(result.grid).any()
        assert result.best_fine["score"] >= np.nanmax(result.grid) - 1e-12
        assert "Figure 9" in result.to_text()


class TestPrecisionStudy:
    def test_float32_halves_memory_with_matching_structure(self):
        result = run_precision_study(
            scale=0.15,
            max_users=40,
            n_coclusters=8,
            max_iterations=15,
            tolerance=1e-4,
            random_state=0,
        )
        assert set(result.metrics) == {"float32", "float64"}
        for dtype in ("float32", "float64"):
            assert 0.0 <= result.metrics[dtype]["recall"] <= 1.0
            assert 0.0 <= result.metrics[dtype]["map"] <= 1.0
        # The memory claim is exact by construction; the accuracy-parity
        # claim at full benchmark scale lives in bench_float32_accuracy.py.
        assert result.memory_ratio() == 0.5
        assert result.factor_bytes["float64"] > 0
        text = result.to_text()
        assert "float32" in text and "memory ratio" in text


class TestDeploymentExperiment:
    def test_reports_have_rationale_and_prices(self):
        result = run_deployment_example(
            n_clients=100, n_products=25, n_reports=2, random_state=0
        )
        assert result.n_recommendations == 2 * 3
        assert result.n_recommendations_with_rationale >= 4
        assert result.n_recommendations_with_price >= 4
        text = result.to_text()
        assert "Figure 10" in text
        assert "confidence" in text
