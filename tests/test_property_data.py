"""Property-based tests for the data substrate (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.data.interactions import InteractionMatrix
from repro.data.splitting import train_test_split
from repro.exceptions import DataError


@st.composite
def binary_matrices(draw, min_side=2, max_side=12):
    """Random dense binary matrices (possibly with empty rows/columns)."""
    n_users = draw(st.integers(min_value=min_side, max_value=max_side))
    n_items = draw(st.integers(min_value=min_side, max_value=max_side))
    dense = draw(
        hnp.arrays(
            np.int8,
            shape=(n_users, n_items),
            elements=st.integers(min_value=0, max_value=1),
        )
    )
    return dense.astype(float)


@given(binary_matrices())
@settings(max_examples=60, deadline=None)
def test_interaction_matrix_preserves_positives(dense):
    matrix = InteractionMatrix(dense)
    np.testing.assert_array_equal(matrix.toarray(), dense)
    assert matrix.nnz == int(dense.sum())


@given(binary_matrices())
@settings(max_examples=60, deadline=None)
def test_degree_sums_equal_nnz(dense):
    matrix = InteractionMatrix(dense)
    assert matrix.user_degrees().sum() == matrix.nnz
    assert matrix.item_degrees().sum() == matrix.nnz


@given(binary_matrices())
@settings(max_examples=60, deadline=None)
def test_pairs_match_dense_positions(dense):
    matrix = InteractionMatrix(dense)
    for user, item in matrix.iter_pairs():
        assert dense[user, item] == 1.0


@given(binary_matrices(), st.floats(min_value=0.1, max_value=1.0))
@settings(max_examples=60, deadline=None)
def test_subsample_is_subset_with_expected_size(dense, fraction):
    assume(dense.sum() >= 1)
    matrix = InteractionMatrix(dense)
    sub = matrix.subsample(fraction, random_state=0)
    original = {tuple(pair) for pair in matrix.pairs()}
    assert all(tuple(pair) in original for pair in sub.pairs())
    expected = max(1, int(round(fraction * matrix.nnz)))
    assert sub.nnz == expected


@given(binary_matrices())
@settings(max_examples=60, deadline=None)
def test_without_pairs_removes_exactly_those_pairs(dense):
    assume(dense.sum() >= 2)
    matrix = InteractionMatrix(dense)
    pairs = [tuple(pair) for pair in matrix.pairs()[:2]]
    reduced = matrix.without_pairs(pairs)
    assert reduced.nnz == matrix.nnz - len(set(pairs))
    for user, item in pairs:
        assert not reduced.contains(user, item)


@given(binary_matrices(min_side=4, max_side=15), st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_train_test_split_partitions_positives(dense, seed):
    # Need enough interactions per user for a split to exist at all.
    assume(dense.sum() >= 8)
    assume((dense.sum(axis=1) >= 4).any())
    matrix = InteractionMatrix(dense)
    try:
        split = train_test_split(matrix, test_fraction=0.25, random_state=seed)
    except DataError:
        # Legitimately impossible for this draw (too few positives per user).
        return
    assert split.train.nnz + split.n_test_pairs == matrix.nnz
    for user, item in split.test_pairs():
        assert matrix.contains(user, item)
        assert not split.train.contains(user, item)
    # No user lost their entire training history.
    degrees_before = matrix.user_degrees()
    degrees_after = split.train.user_degrees()
    for user in split.test_items:
        assert degrees_after[user] >= 1 or degrees_before[user] == 0
