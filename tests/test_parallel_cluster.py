"""Tests for the multi-machine RPC cluster executor.

Covers the acceptance criteria of the cluster tentpole: serving and
training parity with the single-process paths at 1/2/3 nodes, fault
injection (a node dying mid-``serve_sharded`` and mid-sweep re-dispatches
its in-flight shards with no duplicated or missing users), the per-node
object store's fetch-once-per-generation guarantee, eviction on
retirement, and the executor lifecycle contract (typed post-shutdown
errors, :class:`~repro.exceptions.WorkerCrashError` when every node is
gone).
"""

from __future__ import annotations

import threading
import time
from multiprocessing import get_context

import numpy as np
import pytest

from repro.api import RecommendRequest
from repro.core.backends import ParallelBackend
from repro.core.ocular import OCuLaR
from repro.data.datasets import make_netflix_like
from repro.exceptions import (
    ConfigurationError,
    ExecutorShutDownError,
    WorkerCrashError,
)
from repro.parallel import ClusterExecutor
from repro.parallel.cluster import TASK_DELAY_ENV, _agent_main
from repro.runtime import RecommenderRuntime
from repro.serving.batch import serve_sharded
from repro.serving.engine import TopNEngine

N_ITEMS = 10
MODEL_KWARGS = dict(
    n_coclusters=6, regularization=5.0, max_iterations=3, tolerance=0.0, random_state=0
)


def slow_square(value: int) -> int:
    """Slow enough that a mid-call kill lands while shards are in flight."""
    time.sleep(0.05)
    return value * value


def boom(tag: str) -> None:
    raise ValueError(f"task failed: {tag}")


def sleep_forever() -> None:  # pragma: no cover - killed by the timeout path
    time.sleep(3600)


def fetch_sum(ref) -> float:
    """Attach a published ref inside the agent and reduce it."""
    return float(ref.attach().sum())


@pytest.fixture(scope="module")
def corpus():
    matrix, _ = make_netflix_like(n_users=150, n_items=60, random_state=0)
    return matrix


@pytest.fixture(scope="module")
def model(corpus):
    return OCuLaR(**MODEL_KWARGS).fit(corpus)


@pytest.fixture(scope="module")
def reference(corpus, model):
    """Single-process ground truth: the engine's own rankings."""
    engine = TopNEngine.from_model(model)
    users = list(range(corpus.shape[0]))
    return engine, users, engine.topn(users, n_items=N_ITEMS)


def assert_rankings_equal(result, users, expected):
    """Exact-parity check: every user present once, every list identical."""
    assert result.users == users
    assert len(result.rankings) == len(users)
    for got, want in zip(result.rankings, expected):
        assert np.array_equal(got, want)


class TestClusterBasics:
    def test_map_and_starmap_roundtrip(self):
        with ClusterExecutor(n_nodes=2, task_timeout=60) as executor:
            assert executor.map(slow_square, range(8)) == [v * v for v in range(8)]
            assert executor.max_workers == 2

    def test_task_exception_propagates_and_nodes_survive(self):
        # A failing *task* is the task's problem, not the node's: the error
        # arrives as itself (remote traceback attached as the cause) and
        # both nodes keep serving.
        with ClusterExecutor(n_nodes=2, task_timeout=60) as executor:
            with pytest.raises(ValueError, match="task failed: a") as excinfo:
                executor.starmap(boom, [("a",), ("b",)])
            assert excinfo.value.__cause__ is not None
            assert len(executor._live_nodes()) == 2
            assert executor.map(slow_square, [3]) == [9]

    def test_publish_after_shutdown_raises_typed_error(self):
        executor = ClusterExecutor(n_nodes=1, task_timeout=60)
        executor.shutdown()
        with pytest.raises(ExecutorShutDownError):
            executor.publish("slot", np.ones(3))
        assert executor.unpublish("slot") is False

    def test_agent_processes_are_reaped_on_shutdown(self):
        executor = ClusterExecutor(n_nodes=2, task_timeout=60)
        processes = [node.process for node in executor._nodes]
        assert all(process.is_alive() for process in processes)
        executor.shutdown()
        assert all(not process.is_alive() for process in processes)


class TestServingParity:
    @pytest.mark.parametrize("n_nodes", [1, 2, 3])
    def test_serve_sharded_matches_single_process_engine(self, reference, n_nodes):
        # The acceptance criterion: rankings through executor="cluster" at
        # 1/2/3 nodes are np.array_equal to the single-process TopNEngine.
        engine, users, expected = reference
        with ClusterExecutor(n_nodes=n_nodes, task_timeout=60) as executor:
            result = serve_sharded(
                engine, users, n_items=N_ITEMS, executor=executor, shard_size=16
            )
        assert_rankings_equal(result, users, expected)
        assert result.n_shards == 10

    def test_node_death_mid_serve_redispatches_shards(self, reference, monkeypatch):
        # Deterministic machine loss: node 0 exits hard right before
        # replying to its first shard (the per-task delay keeps the other
        # nodes busy long enough that node 0 is guaranteed to draw work).
        # The driver must re-dispatch that shard (and anything else queued
        # on the node) to the survivors — identical rankings, no duplicated
        # or missing users.
        monkeypatch.setenv(TASK_DELAY_ENV, "50")
        engine, users, expected = reference
        with ClusterExecutor(n_nodes=3, task_timeout=30) as executor:
            executor.inject_death_after(0, 0)
            result = serve_sharded(
                engine, users, n_items=N_ITEMS, executor=executor, shard_size=16
            )
            assert len(executor._live_nodes()) == 2
        assert_rankings_equal(result, users, expected)

    def test_sigkill_mid_call_redispatches(self, monkeypatch):
        # The undeterministic variant: SIGKILL one agent while a starmap is
        # in flight; the driver discovers the death organically (EOF on the
        # task channel) and re-dispatches.
        monkeypatch.setenv(TASK_DELAY_ENV, "30")
        executor = ClusterExecutor(n_nodes=2, task_timeout=30)
        try:
            outcome = {}

            def run():
                outcome["results"] = executor.starmap(
                    slow_square, [(i,) for i in range(40)]
                )

            worker = threading.Thread(target=run)
            worker.start()
            time.sleep(0.3)
            executor.kill_node(0)
            worker.join(timeout=90)
            assert not worker.is_alive()
            assert outcome["results"] == [i * i for i in range(40)]
            assert len(executor._live_nodes()) == 1
        finally:
            executor.shutdown()


class TestTrainingParity:
    def test_node_death_mid_sweep_matches_vectorized_factors(self, corpus, monkeypatch):
        # Training sweeps fan shards over the same executor; killing a node
        # mid-fit must leave the learned factors bit-identical to the
        # single-process backend (shards re-dispatch, order-stable stitch).
        # The per-task delay guarantees node 1 draws work before dying.
        monkeypatch.setenv(TASK_DELAY_ENV, "30")
        expected = OCuLaR(**MODEL_KWARGS).fit(corpus).factors_
        with ClusterExecutor(n_nodes=2, task_timeout=30) as executor:
            executor.inject_death_after(1, 0)
            backend = ParallelBackend(n_shards=4, executor=executor)
            model = OCuLaR(**MODEL_KWARGS).fit(corpus, backend=backend)
            assert len(executor._live_nodes()) == 1
        assert np.array_equal(model.factors_.user_factors, expected.user_factors)
        assert np.array_equal(model.factors_.item_factors, expected.item_factors)


class TestObjectStore:
    def test_each_node_fetches_a_generation_once(self, corpus, reference):
        # The acceptance criterion on the store: for one published
        # generation, every node pulls each descriptor's bytes at most once
        # no matter how many shards reference it.
        engine, users, expected = reference
        runtime = RecommenderRuntime(executor="cluster", max_workers=2)
        try:
            runtime.fit(OCuLaR(**MODEL_KWARGS), corpus)
            runtime.publish()
            for _ in range(2):  # repeat calls must hit the node caches
                response = runtime.recommend(
                    RecommendRequest(users=users, n_items=N_ITEMS)
                )
                for got, want in zip(response.rankings, expected):
                    assert np.array_equal(got, want)
            stats = runtime._executor.node_stats()
            assert len(stats) == 2
            for node_stats in stats.values():
                assert node_stats["fetch_counts"], "node never fetched anything"
                assert all(
                    count == 1 for count in node_stats["fetch_counts"].values()
                ), node_stats["fetch_counts"]
        finally:
            runtime.close()

    def test_refresh_mints_new_key_and_retires_old(self):
        with ClusterExecutor(n_nodes=2, task_timeout=60) as executor:
            first = executor.publish("slot", np.arange(6, dtype=np.float64))
            total = executor.starmap(fetch_sum, [(first,), (first,)])
            assert total == [15.0, 15.0]
            second = executor.publish("slot", np.arange(8, dtype=np.float64))
            assert second.key != first.key
            assert executor.active_store_keys() == [second.key]
            # Every node that cached the old generation evicted it.
            for node_stats in executor.node_stats().values():
                if first.key in node_stats["fetch_counts"]:
                    assert first.key in node_stats["evicted"]
                assert first.key not in node_stats["store_keys"]

    def test_unpublish_evicts_node_caches(self):
        with ClusterExecutor(n_nodes=2, task_timeout=60) as executor:
            ref = executor.publish("slot", np.ones(4))
            executor.starmap(fetch_sum, [(ref,), (ref,)])
            assert executor.unpublish("slot") is True
            assert executor.active_store_keys() == []
            for node_stats in executor.node_stats().values():
                if ref.key in node_stats["fetch_counts"]:
                    assert ref.key in node_stats["evicted"]

    def test_publish_snapshots_the_array(self):
        # Mutating the source after publish must not leak into what nodes
        # fetch — same snapshot semantics as the shared-memory memcpy.
        with ClusterExecutor(n_nodes=1, task_timeout=60) as executor:
            source = np.ones(5)
            ref = executor.publish("slot", source)
            source[:] = 99.0
            assert executor.map(fetch_sum, [ref]) == [5.0]


class TestFaultExhaustion:
    def test_all_nodes_dead_raises_worker_crash_with_index(self):
        executor = ClusterExecutor(n_nodes=1, task_timeout=30, max_task_retries=2)
        try:
            executor.inject_death_after(0, 0)
            with pytest.raises(WorkerCrashError) as excinfo:
                executor.starmap(slow_square, [(i,) for i in range(4)])
            assert excinfo.value.executor == "ClusterExecutor"
            assert excinfo.value.task_index == 0
        finally:
            executor.shutdown()

    def test_hung_node_is_declared_dead_by_timeout(self):
        # A node that accepts a task and never replies must not hang the
        # driver: task_timeout declares it dead; with no survivors the call
        # fails fast with the typed crash error.
        executor = ClusterExecutor(n_nodes=1, task_timeout=1.0, max_task_retries=1)
        try:
            start = time.monotonic()
            with pytest.raises(WorkerCrashError):
                executor.starmap(sleep_forever, [()])
            assert time.monotonic() - start < 20.0
        finally:
            executor.shutdown()

    def test_retry_budget_exhaustion_raises(self):
        # Two nodes, zero retries allowed: the first death immediately
        # fails its in-flight task instead of silently re-dispatching.
        executor = ClusterExecutor(n_nodes=2, task_timeout=30, max_task_retries=0)
        try:
            executor.inject_death_after(0, 0)
            executor.inject_death_after(1, 0)
            with pytest.raises(WorkerCrashError):
                executor.starmap(slow_square, [(i,) for i in range(6)])
        finally:
            executor.shutdown()


class TestExternalAgents:
    def test_connects_to_externally_started_agents(self):
        # The true multi-machine path: agents started out-of-band (here: a
        # spawn-context process running the module entry point), the driver
        # given only addresses + authkey.
        authkey = b"repro-test-authkey"
        context = get_context("spawn")
        parent, child = context.Pipe(duplex=False)
        agent = context.Process(
            target=_agent_main, args=("127.0.0.1", 0, authkey, child), daemon=True
        )
        agent.start()
        child.close()
        assert parent.poll(30), "external agent never reported its address"
        address = tuple(parent.recv())
        parent.close()
        try:
            with ClusterExecutor(
                addresses=[address], authkey=authkey, task_timeout=60
            ) as executor:
                assert executor.max_workers == 1
                assert executor.map(slow_square, [7]) == [49]
                with pytest.raises(ConfigurationError):
                    executor.kill_node(0)  # not ours to SIGKILL
        finally:
            agent.terminate()
            agent.join(timeout=10)

    def test_external_addresses_require_authkey(self):
        with pytest.raises(ConfigurationError, match="authkey"):
            ClusterExecutor(addresses=["127.0.0.1:1"])
