"""Tests for the unified request/response API: validation, the option
grouping key, the JSON codecs (strict requests, lenient responses), and the
runtime's single ``recommend(request)`` dispatcher with its deprecation
shims."""

from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

from repro.api import (
    DEFAULT_TENANT,
    BatchedResponse,
    RecommendRequest,
    RecommendResponse,
)
from repro.core.ocular import OCuLaR
from repro.data.datasets import make_netflix_like
from repro.exceptions import ConfigurationError
from repro.runtime import RecommenderRuntime


# --------------------------------------------------------------------------- #
# RecommendRequest
# --------------------------------------------------------------------------- #
class TestRecommendRequest:
    def test_exactly_one_payload_required(self):
        with pytest.raises(ConfigurationError, match="exactly one"):
            RecommendRequest()
        with pytest.raises(ConfigurationError, match="exactly one"):
            RecommendRequest(users=(1,), interactions=((2,),))

    def test_users_normalised_to_int_tuple(self):
        request = RecommendRequest(users=[np.int32(3), 1.0, "2"])
        assert request.users == (3, 1, 2)
        assert request.kind == "topn"
        assert request.rows == (3, 1, 2)
        assert request.n_rows == 3

    def test_interactions_normalised_per_row(self):
        request = RecommendRequest(interactions=[[1, 2], (np.int64(5),), []])
        assert request.interactions == ((1, 2), (5,), ())
        assert request.kind == "folded"
        assert request.n_rows == 3

    def test_empty_users_allowed(self):
        assert RecommendRequest(users=()).n_rows == 0

    def test_bad_payloads_rejected(self):
        with pytest.raises(ConfigurationError):
            RecommendRequest(users=["three"])
        with pytest.raises(ConfigurationError):
            RecommendRequest(interactions=[3])  # rows must be sequences
        with pytest.raises(ConfigurationError):
            RecommendRequest(users=(1,), n_items=0)
        with pytest.raises(ConfigurationError):
            RecommendRequest(users=(1,), n_sweeps=0)
        with pytest.raises(ConfigurationError):
            RecommendRequest(users=(1,), tolerance=-1.0)
        with pytest.raises(ConfigurationError):
            RecommendRequest(users=(1,), tenant="")

    def test_request_is_hashable_and_frozen(self):
        request = RecommendRequest(users=(1, 2))
        assert hash(request) == hash(RecommendRequest(users=(1, 2)))
        with pytest.raises(AttributeError):
            request.n_items = 5

    def test_options_merge_key_excludes_tenant_and_payload(self):
        a = RecommendRequest(users=(1,), n_items=7, tenant="acme")
        b = RecommendRequest(users=(2, 3), n_items=7, tenant="globex")
        assert a.options == b.options
        assert a.options != RecommendRequest(users=(1,), n_items=8).options
        assert a.options != RecommendRequest(users=(1,), n_items=7, with_scores=True).options

    def test_folded_options_include_solver_budget(self):
        a = RecommendRequest(interactions=((1,),), n_sweeps=10)
        b = RecommendRequest(interactions=((2,),), n_sweeps=20)
        assert a.options != b.options
        assert a.options != RecommendRequest(users=(1,)).options

    def test_merged_with_rows(self):
        a = RecommendRequest(users=(1,), n_items=7, tenant="acme")
        merged = a.merged_with_rows([1, 5, 9])
        assert merged.users == (1, 5, 9)
        assert merged.options == a.options
        assert merged.tenant == "acme"
        folded = RecommendRequest(interactions=((1, 2),), n_sweeps=5)
        assert folded.merged_with_rows([(1, 2), (3,)]).interactions == ((1, 2), (3,))


class TestRequestCodec:
    def test_json_roundtrip_topn(self):
        request = RecommendRequest(users=(4, 2), n_items=3, exclude_seen=False, tenant="acme")
        assert RecommendRequest.from_json(request.to_json()) == request

    def test_json_roundtrip_folded(self):
        request = RecommendRequest(
            interactions=((1, 2), ()), n_sweeps=7, tolerance=1e-6, with_scores=True
        )
        assert RecommendRequest.from_json(request.to_json()) == request

    def test_to_dict_omits_defaults(self):
        payload = RecommendRequest(users=(1,)).to_dict()
        assert "tenant" not in payload and "with_scores" not in payload
        assert "n_sweeps" not in payload  # top-N requests carry no solver budget

    def test_unknown_field_is_a_typed_error(self):
        with pytest.raises(ConfigurationError, match="nitems"):
            RecommendRequest.from_dict({"users": [1], "nitems": 5})

    def test_non_object_frames_rejected(self):
        with pytest.raises(ConfigurationError):
            RecommendRequest.from_dict([1, 2])
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            RecommendRequest.from_json("{oops")


# --------------------------------------------------------------------------- #
# RecommendResponse
# --------------------------------------------------------------------------- #
class TestRecommendResponse:
    def test_json_roundtrip(self):
        response = RecommendResponse(
            rankings=[np.array([3, 1, 2]), np.array([5])],
            generation=4,
            scores=[np.array([0.9, 0.5, 0.1]), np.array([0.7])],
            queue_ms=1.5,
            serve_ms=2.5,
            batch_id=9,
            batch_requests=3,
            batch_users=12,
        )
        decoded = RecommendResponse.from_json(response.to_json())
        assert all(np.array_equal(a, b) for a, b in zip(decoded.rankings, response.rankings))
        assert all(np.allclose(a, b) for a, b in zip(decoded.scores, response.scores))
        assert decoded.generation == 4
        assert decoded.batch_id == 9
        assert decoded.queue_seconds == pytest.approx(0.0015)

    def test_lenient_decode_ignores_gateway_envelope(self):
        frame = {"id": 7, "ok": True, "rankings": [[1, 2]], "generation": 3}
        decoded = RecommendResponse.from_dict(frame)
        assert decoded.generation == 3
        assert decoded.scores is None
        assert np.array_equal(decoded.rankings[0], [1, 2])

    def test_batched_response_is_the_same_type(self):
        # The pre-gateway name must keep resolving to the unified response.
        assert BatchedResponse is RecommendResponse

    def test_wire_frames_are_compact_json(self):
        text = RecommendRequest(users=(1,)).to_json()
        assert "\n" not in text and " " not in text
        json.loads(text)


# --------------------------------------------------------------------------- #
# The runtime dispatcher and its deprecation shims
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def runtime():
    matrix, _ = make_netflix_like(n_users=100, n_items=40, random_state=0)
    model = OCuLaR(
        n_coclusters=5, regularization=5.0, max_iterations=3, tolerance=0.0, random_state=0
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        with RecommenderRuntime(executor="serial") as rt:
            rt.fit(model, matrix)
            rt.publish()
            yield rt


class TestRuntimeDispatcher:
    def test_topn_request_matches_engine(self, runtime):
        request = RecommendRequest(users=(0, 3, 7), n_items=5)
        response = runtime.recommend(request)
        expected = runtime.engine.recommend_batch([0, 3, 7], n_items=5)
        assert all(np.array_equal(a, b) for a, b in zip(response.rankings, expected))
        assert response.generation == runtime.generation
        assert response.scores is None
        assert response.batch_requests == 1
        assert response.batch_users == 3
        assert response.serve_ms >= 0.0

    def test_with_scores_matches_engine(self, runtime):
        request = RecommendRequest(users=(1, 4), n_items=6, with_scores=True)
        response = runtime.recommend(request)
        ranked, scores = runtime.engine.recommend_batch(
            [1, 4], n_items=6, return_scores=True
        )
        assert all(np.array_equal(a, b) for a, b in zip(response.rankings, ranked))
        assert all(np.allclose(a, b) for a, b in zip(response.scores, scores))

    def test_folded_request_dispatches(self, runtime):
        request = RecommendRequest(interactions=((1, 2, 3), (5,)), n_items=5)
        response = runtime.recommend(request)
        assert len(response.rankings) == 2
        assert all(len(row) == 5 for row in response.rankings)

    def test_session_pins_generation(self, runtime):
        request = RecommendRequest(users=(2,), n_items=3)
        with runtime.serving_session() as session:
            response = session.recommend(request)
        assert response.generation == session.generation

    def test_rejects_non_request(self, runtime):
        with pytest.raises(ConfigurationError, match="RecommendRequest"):
            runtime.recommend([0, 1, 2])

    def test_old_topn_warns_but_works(self, runtime):
        with pytest.warns(DeprecationWarning, match="topn"):
            result = runtime.topn([0, 1], n_items=4)
        expected = runtime.recommend(RecommendRequest(users=(0, 1), n_items=4))
        assert all(np.array_equal(a, b) for a, b in zip(result.rankings, expected.rankings))

    def test_old_recommend_folded_warns_but_works(self, runtime):
        with pytest.warns(DeprecationWarning, match="recommend_folded"):
            rankings = runtime.recommend_folded([[1, 2]], n_items=4)
        expected = runtime.recommend(
            RecommendRequest(interactions=((1, 2),), n_items=4)
        )
        assert np.array_equal(rankings[0], expected.rankings[0])

    def test_old_session_entrypoints_warn(self, runtime):
        with runtime.serving_session() as session:
            with pytest.warns(DeprecationWarning):
                session.topn([0], n_items=3)
            with pytest.warns(DeprecationWarning):
                session.recommend_folded([[1]], n_items=3)

    def test_default_tenant_constant(self):
        assert RecommendRequest(users=(1,)).tenant == DEFAULT_TENANT
