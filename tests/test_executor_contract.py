"""Executor-contract conformance suite, run against every registered name.

Every executor in the scheduler registry — serial, thread, process
(shared-memory), cluster, and whatever gets registered next — must honour
one contract: order-stable ``map``/``starmap``, deterministic first-failure
propagation in submission order, idempotent ``shutdown``, a typed
:class:`~repro.exceptions.ExecutorShutDownError` on post-shutdown
submission, and context-manager teardown.  Parameterizing over
:func:`~repro.parallel.available_executors` means a future executor
inherits the whole suite by being registered.
"""

from __future__ import annotations

import time

import pytest

from repro.exceptions import ExecutorShutDownError, ReproError
from repro.parallel import available_executors, resolve_executor


def square(value: int) -> int:
    """Module-level helper (picklable for process/cluster substrates)."""
    return value * value


def add(left: int, right: int) -> int:
    """Module-level helper (picklable for process/cluster substrates)."""
    return left + right


def fail_tagged(tag: str, delay: float = 0.0) -> None:
    """Raise a tagged error after an optional delay (picklable)."""
    if delay:
        time.sleep(delay)
    raise ValueError(f"worker failed: {tag}")


@pytest.fixture(params=sorted(available_executors()))
def executor_name(request) -> str:
    return request.param


def build(name: str):
    """One small instance of the named executor (2 workers/nodes)."""
    return resolve_executor(name, max_workers=2)


class TestExecutorContract:
    def test_map_preserves_submission_order(self, executor_name):
        with build(executor_name) as executor:
            assert executor.map(square, range(7)) == [v * v for v in range(7)]

    def test_starmap_preserves_submission_order(self, executor_name):
        with build(executor_name) as executor:
            pairs = [(i, 2 * i) for i in range(7)]
            assert executor.starmap(add, pairs) == [a + b for a, b in pairs]

    def test_empty_input(self, executor_name):
        with build(executor_name) as executor:
            assert executor.map(square, []) == []
            assert executor.starmap(add, []) == []

    def test_first_failure_in_submission_order_wins(self, executor_name):
        # The first-submitted task fails slowly, the second instantly; the
        # propagated error must deterministically be the first task's.
        with build(executor_name) as executor:
            with pytest.raises(ValueError, match="worker failed: first"):
                executor.starmap(fail_tagged, [("first", 0.3), ("second", 0.0)])

    def test_executor_survives_a_task_failure(self, executor_name):
        # A failing *task* must not poison the executor: workers/nodes stay
        # alive and the next call succeeds.
        with build(executor_name) as executor:
            with pytest.raises(ValueError):
                executor.map(fail_tagged, ["once"])
            assert executor.map(square, [4]) == [16]

    def test_shutdown_is_idempotent(self, executor_name):
        executor = build(executor_name)
        executor.shutdown()
        executor.shutdown()
        assert executor.is_shut_down

    def test_post_shutdown_submission_raises_typed_error(self, executor_name):
        executor = build(executor_name)
        executor.shutdown()
        with pytest.raises(ExecutorShutDownError) as excinfo:
            executor.map(square, [1])
        assert isinstance(excinfo.value, ReproError)
        with pytest.raises(ExecutorShutDownError):
            executor.starmap(add, [(1, 2)])

    def test_context_manager_exit_shuts_down(self, executor_name):
        with build(executor_name) as executor:
            assert executor.starmap(add, [(2, 3)]) == [5]
        assert executor.is_shut_down
        with pytest.raises(ExecutorShutDownError):
            executor.map(square, [1])
