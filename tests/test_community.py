"""Tests for the community-detection comparators (Figure 2 substrate)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.community.bigclam import BigClam
from repro.community.bipartite import BipartiteGraph
from repro.community.modularity import GreedyModularityCommunities, modularity
from repro.data.interactions import InteractionMatrix
from repro.data.synthetic import make_paper_toy_example, make_planted_coclusters
from repro.exceptions import DataError, NotFittedError


@pytest.fixture
def two_block_matrix():
    """Two disjoint user-item blocks: the easiest possible community structure."""
    dense = np.zeros((8, 6))
    dense[0:4, 0:3] = 1.0
    dense[4:8, 3:6] = 1.0
    return InteractionMatrix(dense)


class TestBipartiteGraph:
    def test_node_layout_and_counts(self, two_block_matrix):
        graph = BipartiteGraph(two_block_matrix)
        assert graph.n_users == 8
        assert graph.n_items == 6
        assert graph.n_nodes == 14
        assert graph.n_edges == two_block_matrix.nnz

    def test_adjacency_symmetric_and_bipartite(self, two_block_matrix):
        graph = BipartiteGraph(two_block_matrix)
        adjacency = graph.adjacency().toarray()
        np.testing.assert_array_equal(adjacency, adjacency.T)
        # No user-user or item-item edges.
        assert adjacency[:8, :8].sum() == 0
        assert adjacency[8:, 8:].sum() == 0

    def test_degrees_match_interaction_degrees(self, two_block_matrix):
        graph = BipartiteGraph(two_block_matrix)
        degrees = graph.degrees()
        np.testing.assert_array_equal(degrees[:8], two_block_matrix.user_degrees())
        np.testing.assert_array_equal(degrees[8:], two_block_matrix.item_degrees())

    def test_neighbors_of_user_node_are_item_nodes(self, two_block_matrix):
        graph = BipartiteGraph(two_block_matrix)
        neighbors = graph.neighbors(0)
        assert all(not graph.is_user_node(int(node)) for node in neighbors)
        items = sorted(graph.item_of_node(int(node)) for node in neighbors)
        assert items == [0, 1, 2]

    def test_node_index_conversions(self, two_block_matrix):
        graph = BipartiteGraph(two_block_matrix)
        assert graph.user_of_node(3) == 3
        assert graph.item_of_node(8) == 0
        with pytest.raises(DataError):
            graph.user_of_node(8)
        with pytest.raises(DataError):
            graph.item_of_node(2)

    def test_split_nodes(self, two_block_matrix):
        graph = BipartiteGraph(two_block_matrix)
        community = graph.split_nodes([0, 1, 8, 9])
        np.testing.assert_array_equal(community.users, [0, 1])
        np.testing.assert_array_equal(community.items, [0, 1])
        assert community.is_cocluster
        assert community.size == 4

    def test_communities_from_labels_validation(self, two_block_matrix):
        graph = BipartiteGraph(two_block_matrix)
        with pytest.raises(DataError):
            graph.communities_from_labels([0, 1])


class TestModularity:
    def test_modularity_of_perfect_partition_positive(self, two_block_matrix):
        graph = BipartiteGraph(two_block_matrix)
        labels = np.array([0] * 4 + [1] * 4 + [0] * 3 + [1] * 3)
        assert modularity(graph, labels) > 0.3

    def test_modularity_of_single_community_is_zero(self, two_block_matrix):
        graph = BipartiteGraph(two_block_matrix)
        assert modularity(graph, np.zeros(graph.n_nodes)) == pytest.approx(0.0)

    def test_greedy_recovers_disjoint_blocks(self, two_block_matrix):
        detector = GreedyModularityCommunities().fit(two_block_matrix)
        communities = [c for c in detector.communities() if c.size > 1]
        assert len(communities) == 2
        user_sets = [set(c.users.tolist()) for c in communities]
        assert {0, 1, 2, 3} in user_sets
        assert {4, 5, 6, 7} in user_sets
        assert detector.modularity_ > 0.3

    def test_partition_is_non_overlapping(self, two_block_matrix):
        detector = GreedyModularityCommunities().fit(two_block_matrix)
        labels = detector.labels_
        assert labels is not None
        assert len(labels) == 14  # every node gets exactly one label

    def test_empty_graph_rejected(self):
        empty = InteractionMatrix(np.zeros((3, 4)))
        with pytest.raises(DataError):
            GreedyModularityCommunities().fit(empty)

    def test_access_before_fit_raises(self):
        with pytest.raises(DataError):
            GreedyModularityCommunities().communities()

    def test_min_communities_respected(self, two_block_matrix):
        detector = GreedyModularityCommunities(min_communities=4).fit(two_block_matrix)
        assert detector.n_communities >= 4


class TestBigClam:
    def test_fit_on_disjoint_blocks(self, two_block_matrix):
        model = BigClam(n_communities=2, max_iterations=60, random_state=0).fit(two_block_matrix)
        assert model.affiliations_ is not None
        assert model.affiliations_.shape == (14, 2)
        assert (model.affiliations_ >= 0).all()

    def test_log_likelihood_increases(self, two_block_matrix):
        model = BigClam(n_communities=2, max_iterations=40, random_state=0).fit(two_block_matrix)
        assert model.log_likelihoods_[-1] >= model.log_likelihoods_[0]

    def test_communities_do_not_mix_blocks(self, two_block_matrix):
        model = BigClam(n_communities=2, max_iterations=80, random_state=1).fit(two_block_matrix)
        communities = model.communities(threshold=0.4)
        assert len(communities) == 2
        assert all(community.size > 0 for community in communities)
        # Members of one community should come from a single planted block —
        # BIGCLAM may under-cover (the paper's point) but should not mix them.
        for community in communities:
            items = set(community.items.tolist())
            assert not (items & {0, 1, 2}) or not (items & {3, 4, 5})
            users = set(community.users.tolist())
            assert not (users & {0, 1, 2, 3}) or not (users & {4, 5, 6, 7})

    def test_overlap_allowed(self):
        planted = make_planted_coclusters(
            n_users=40, n_items=30, n_coclusters=2, users_per_cocluster=25,
            items_per_cocluster=20, within_density=0.9, background_density=0.0,
            random_state=0,
        )
        model = BigClam(n_communities=2, max_iterations=60, random_state=0).fit(planted.matrix)
        communities = model.communities()
        users_sets = [set(c.users.tolist()) for c in communities]
        # Overlapping affiliation model: membership counts may exceed n_users.
        assert sum(len(s) for s in users_sets) >= len(set().union(*users_sets))

    def test_empty_graph_rejected(self):
        with pytest.raises(DataError):
            BigClam(n_communities=2).fit(InteractionMatrix(np.zeros((2, 2))))

    def test_access_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            BigClam(n_communities=2).communities()

    def test_deterministic_given_seed(self, two_block_matrix):
        first = BigClam(n_communities=2, max_iterations=10, random_state=3).fit(two_block_matrix)
        second = BigClam(n_communities=2, max_iterations=10, random_state=3).fit(two_block_matrix)
        np.testing.assert_allclose(first.affiliations_, second.affiliations_)


class TestFigure2Shape:
    """Qualitative reproduction of Figure 2 on the paper's toy example."""

    def test_non_overlapping_partition_cannot_express_overlap(self):
        toy = make_paper_toy_example()
        detector = GreedyModularityCommunities().fit(toy.matrix)
        # User 6 truly belongs to two co-clusters, but a partition gives it one label.
        labels = detector.labels_
        assert labels is not None
        assert len(np.unique(labels)) >= 2

    def test_community_baselines_miss_most_candidate_recommendations(self):
        from repro.experiments.toy import run_community_comparison

        result = run_community_comparison(random_state=0)
        assert result.n_candidates == 3
        # The paper reports the baselines identify only 1 of the 3; allow <= 1.
        assert result.coverage["modularity"] <= 1
        assert result.coverage["bigclam"] <= 1
        # OCuLaR's ranked recommendations recover all three.
        assert result.coverage["ocular"] == 3
