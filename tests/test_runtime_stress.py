"""Concurrency stress tests: the micro-batching front-end and the PR-4
runtime under simultaneous serving traffic and generation churn.

The contract under test: with >= 16 threads submitting mixed known-user and
fold-in requests while a background thread refits and swaps model versions
in a loop, (a) nothing raises, (b) every response's rankings are exactly the
rankings of the generation it was batched against — not a torn mix of two
versions — and (c) ``/dev/shm`` is clean after the runtime exits."""

from __future__ import annotations

import os
import threading
import warnings
from types import SimpleNamespace

import numpy as np
import pytest
import scipy.sparse as sp

from repro.api import RecommendRequest
from repro.core.ocular import OCuLaR
from repro.data.datasets import make_netflix_like
from repro.runtime import BatchingFrontEnd, RecommenderRuntime
from repro.serving import TopNEngine, recommend_folded

#: Join/future timeout: a deadlock fails the assertion instead of hanging.
STRESS_TIMEOUT = 120.0

N_CLIENTS = 16
REQUESTS_PER_CLIENT = 6
MIN_GENERATIONS = 3

N_USERS, N_ITEMS = 150, 60


def _dev_shm_entries() -> set:
    if not os.path.isdir("/dev/shm"):
        return set()
    return set(os.listdir("/dev/shm"))


def _model(seed: int) -> OCuLaR:
    return OCuLaR(
        n_coclusters=6,
        regularization=5.0,
        max_iterations=2,
        tolerance=0.0,
        random_state=seed,
    )


@pytest.fixture(scope="module")
def corpus():
    matrix, _spec = make_netflix_like(
        n_users=N_USERS, n_items=N_ITEMS, random_state=0
    )
    return matrix


class _GenerationLedger:
    """Per-generation reference snapshots, recorded at publish time.

    The updater thread records the engine and fold-in solver view of every
    generation it publishes; verification replays each response against the
    snapshot of the generation that served it.  ``factors_`` is safe to
    reference without copying: every fit builds a fresh ``FactorModel``, so
    a later refit never mutates a snapshotted one.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._snapshots: dict = {}

    def record(self, generation: int, model) -> None:
        engine = TopNEngine.from_model(model)
        solver = SimpleNamespace(
            factors_=model.factors_,
            regularization=model.regularization,
            sigma=model.sigma,
            beta=model.beta,
            max_backtracks=model.max_backtracks,
        )
        with self._lock:
            self._snapshots[generation] = (engine, solver)

    def __len__(self) -> int:
        with self._lock:
            return len(self._snapshots)

    def expect_topn(self, generation: int, users, n_items: int):
        engine, _solver = self._snapshots[generation]
        return engine.recommend_batch(users, n_items=n_items)

    def expect_folded(self, generation: int, interactions, n_items: int, n_sweeps: int):
        engine, solver = self._snapshots[generation]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            return recommend_folded(
                engine, interactions, model=solver, n_items=n_items, n_sweeps=n_sweeps
            )


def _run_updater(runtime, ledger, stop_event, errors):
    """Refit + update in a loop (at least MIN_GENERATIONS swaps)."""
    try:
        seed = 1
        while seed <= MIN_GENERATIONS or not stop_event.is_set():
            runtime.model.random_state = seed  # distinct factors per version
            runtime.refit()
            generation = runtime.update()
            ledger.record(generation, runtime.model)
            seed += 1
            if seed > 200:  # pragma: no cover - runaway guard
                break
    except Exception as exc:  # pragma: no cover - failure mode
        errors.append(exc)


def _join_all(threads):
    for thread in threads:
        thread.join(timeout=STRESS_TIMEOUT)
    assert not any(thread.is_alive() for thread in threads), "stress thread hung"


@pytest.mark.skipif(not os.path.isdir("/dev/shm"), reason="requires a /dev/shm mount")
class TestFrontEndUnderChurn:
    def test_mixed_requests_vs_refit_update_loop(self, corpus):
        before = _dev_shm_entries()
        ledger = _GenerationLedger()
        errors: list = []
        responses: list = []  # (kind, payload, BatchedResponse); append is atomic

        with RecommenderRuntime(executor="process", max_workers=2) as runtime:
            runtime.fit(_model(0), corpus)
            ledger.record(runtime.publish(), runtime.model)
            stop_updates = threading.Event()
            updater = threading.Thread(
                target=_run_updater, args=(runtime, ledger, stop_updates, errors)
            )

            def client(index: int) -> None:
                rng = np.random.default_rng(index)
                try:
                    with warnings.catch_warnings():
                        warnings.simplefilter("ignore")
                        for round_no in range(REQUESTS_PER_CLIENT):
                            if (index + round_no) % 3 == 2:
                                batch = [
                                    sorted(
                                        int(x)
                                        for x in rng.choice(
                                            N_ITEMS, size=3, replace=False
                                        )
                                    )
                                ]
                                future = front.submit_request(
                                    RecommendRequest(
                                        interactions=batch, n_items=5, n_sweeps=4
                                    )
                                )
                                responses.append(
                                    ("folded", batch, future.result(STRESS_TIMEOUT))
                                )
                            else:
                                users = [
                                    int(x) for x in rng.integers(0, N_USERS, size=2)
                                ]
                                future = front.submit_request(
                                    RecommendRequest(users=users, n_items=5)
                                )
                                responses.append(
                                    ("topn", users, future.result(STRESS_TIMEOUT))
                                )
                except Exception as exc:  # pragma: no cover - failure mode
                    errors.append(exc)

            with BatchingFrontEnd(
                runtime, max_delay_ms=2, max_batch_users=64
            ) as front:
                updater.start()
                clients = [
                    threading.Thread(target=client, args=(index,))
                    for index in range(N_CLIENTS)
                ]
                for thread in clients:
                    thread.start()
                _join_all(clients)
                # The front-end drains (context exit) while the updater is
                # still churning generations — the harshest close ordering.
            stop_updates.set()
            _join_all([updater])

            assert not errors
            assert len(ledger) >= MIN_GENERATIONS + 1
            assert len(responses) == N_CLIENTS * REQUESTS_PER_CLIENT
            # Every response replays exactly against the generation that
            # served it: a batch sealed against version N answered from N.
            for kind, payload, response in responses:
                if kind == "topn":
                    want = ledger.expect_topn(response.generation, payload, 5)
                else:
                    want = ledger.expect_folded(response.generation, payload, 5, 4)
                assert len(response.rankings) == len(payload)
                for got, ref in zip(response.rankings, want):
                    assert np.array_equal(got, ref), (kind, response.generation)
            # All retired generations drained: the executor owns exactly the
            # live publication (2 factor arrays + 3 seen-mask arrays).
            assert len(runtime.executor.active_segment_names()) == 5
        assert _dev_shm_entries() <= before


@pytest.mark.skipif(not os.path.isdir("/dev/shm"), reason="requires a /dev/shm mount")
class TestRuntimeSessionsUnderChurn:
    def test_pinned_sessions_vs_refit_update_loop(self, corpus):
        """PR-4 runtime + session hook race-freedom, no front-end involved."""
        before = _dev_shm_entries()
        ledger = _GenerationLedger()
        errors: list = []
        observed: list = []  # (generation, users, rankings)

        with RecommenderRuntime(executor="process", max_workers=2) as runtime:
            runtime.fit(_model(0), corpus)
            ledger.record(runtime.publish(), runtime.model)
            stop_updates = threading.Event()
            updater = threading.Thread(
                target=_run_updater, args=(runtime, ledger, stop_updates, errors)
            )

            def client(index: int) -> None:
                rng = np.random.default_rng(1000 + index)
                try:
                    for _ in range(REQUESTS_PER_CLIENT):
                        users = [int(x) for x in rng.integers(0, N_USERS, size=3)]
                        with runtime.serving_session() as session:
                            result = session.recommend(
                                RecommendRequest(users=users, n_items=5)
                            )
                            observed.append(
                                (session.generation, users, result.rankings)
                            )
                except Exception as exc:  # pragma: no cover - failure mode
                    errors.append(exc)

            updater.start()
            clients = [
                threading.Thread(target=client, args=(index,))
                for index in range(N_CLIENTS)
            ]
            for thread in clients:
                thread.start()
            _join_all(clients)
            stop_updates.set()
            _join_all([updater])

            assert not errors
            assert len(observed) == N_CLIENTS * REQUESTS_PER_CLIENT
            for generation, users, rankings in observed:
                want = ledger.expect_topn(generation, users, 5)
                for got, ref in zip(rankings, want):
                    assert np.array_equal(got, ref), generation
            assert len(runtime.executor.active_segment_names()) == 5
        assert _dev_shm_entries() <= before

    def test_ab_serving_two_pinned_generations(self, corpus):
        """A/B shape: two generations pinned and served alternately.

        The older generation is retired by the swap but stays attachable
        while its session holds a reference; workers keep engines for both
        cached (MAX_CACHED_ENGINES >= 2), so alternation does not thrash."""
        before = _dev_shm_entries()
        with RecommenderRuntime(executor="process", max_workers=2) as runtime:
            model_a = _model(0)
            runtime.fit(model_a, corpus)
            runtime.publish()
            engine_a = TopNEngine.from_model(model_a)
            session_a = runtime.serving_session()
            names_a = set(session_a._spec.segment_names())

            model_b = _model(7)
            runtime.fit(model_b, corpus)
            runtime.update()
            engine_b = TopNEngine.from_model(model_b)
            session_b = runtime.serving_session()

            users = list(range(40))
            want_a = engine_a.recommend_batch(users, n_items=5)
            want_b = engine_b.recommend_batch(users, n_items=5)
            for _round in range(3):  # alternate: A, B, A, B, ...
                request = RecommendRequest(users=users, n_items=5)
                got_a = session_a.recommend(request, shard_size=10).rankings
                got_b = session_b.recommend(request, shard_size=10).rankings
                for got, ref in zip(got_a, want_a):
                    assert np.array_equal(got, ref)
                for got, ref in zip(got_b, want_b):
                    assert np.array_equal(got, ref)
            # While pinned, the retired A generation is still in /dev/shm...
            assert names_a <= _dev_shm_entries()
            session_a.release()
            # ...and unlinks as soon as its last reference drains.
            assert not (names_a & _dev_shm_entries())
            session_b.release()
            assert runtime.recommend(
                RecommendRequest(users=users[:5], n_items=5)
            ).rankings  # still serving
        assert _dev_shm_entries() <= before


@pytest.mark.skipif(not os.path.isdir("/dev/shm"), reason="requires a /dev/shm mount")
class TestIngestWarmRefitChurn:
    def test_ingest_and_warm_refit_loop_vs_serving_traffic(self, corpus):
        """Incremental lifecycle under load: ingest → serve-fresh-now → warm
        refit → update, in a background loop, while 16 client threads hammer
        known-user requests through pinned sessions.

        Contract: (a) nothing raises, (b) every client response and every
        mixed known+fresh response replays exactly against the generation
        that served it, (c) each background refit really warm-started, and
        (d) /dev/shm is clean after the runtime exits."""
        before = _dev_shm_entries()
        ledger = _GenerationLedger()
        errors: list = []
        observed: list = []  # client (generation, users, rankings)
        mixed: list = []  # updater (response, fresh_items)
        N_ROUNDS = 4
        N_SWEEPS = 6

        with RecommenderRuntime(executor="process", max_workers=2) as runtime:
            runtime.fit(_model(0), corpus)
            ledger.record(runtime.publish(), runtime.model)
            rounds_done = threading.Event()

            def updater() -> None:
                try:
                    for round_no in range(N_ROUNDS):
                        rng = np.random.default_rng(5000 + round_no)
                        fresh_user = runtime.train_matrix.n_users
                        fresh_items = sorted(
                            int(x)
                            for x in rng.choice(N_ITEMS, size=4, replace=False)
                        )
                        delta = [(fresh_user, item) for item in fresh_items]
                        # A little drift among existing users too.
                        delta += [
                            (int(u), int(i))
                            for u, i in zip(
                                rng.integers(0, N_USERS, size=20),
                                rng.integers(0, N_ITEMS, size=20),
                            )
                        ]
                        runtime.ingest(delta, n_new_users=1)
                        # The just-ingested user is servable immediately,
                        # batched with a known user against one generation.
                        response = runtime.recommend(
                            RecommendRequest(
                                users=[0, fresh_user], n_items=5, n_sweeps=N_SWEEPS
                            )
                        )
                        mixed.append((response, fresh_items))
                        runtime.refit(mode="warm")
                        assert runtime.model.history_.warm_started
                        ledger.record(runtime.update(), runtime.model)
                except Exception as exc:  # pragma: no cover - failure mode
                    errors.append(exc)
                finally:
                    rounds_done.set()

            def client(index: int) -> None:
                rng = np.random.default_rng(2000 + index)
                try:
                    while not rounds_done.is_set():
                        users = [int(x) for x in rng.integers(0, N_USERS, size=3)]
                        with runtime.serving_session() as session:
                            result = session.recommend(
                                RecommendRequest(users=users, n_items=5)
                            )
                            observed.append(
                                (session.generation, users, result.rankings)
                            )
                except Exception as exc:  # pragma: no cover - failure mode
                    errors.append(exc)

            update_thread = threading.Thread(target=updater)
            update_thread.start()
            clients = [
                threading.Thread(target=client, args=(index,))
                for index in range(N_CLIENTS)
            ]
            for thread in clients:
                thread.start()
            _join_all([update_thread])
            _join_all(clients)

            assert not errors
            assert len(ledger) == N_ROUNDS + 1
            assert observed
            for generation, users, rankings in observed:
                want = ledger.expect_topn(generation, users, 5)
                for got, ref in zip(rankings, want):
                    assert np.array_equal(got, ref), generation
            # The mixed known+fresh responses are generation-consistent too:
            # the known half replays through the engine, the fresh half
            # through fold-in of the ingested interactions, both against the
            # single generation the response reports.
            assert len(mixed) == N_ROUNDS
            for response, fresh_items in mixed:
                want_known = ledger.expect_topn(response.generation, [0], 5)
                assert np.array_equal(response.rankings[0], want_known[0])
                want_fresh = ledger.expect_folded(
                    response.generation, [fresh_items], 5, N_SWEEPS
                )
                assert np.array_equal(response.rankings[1], want_fresh[0])
            assert len(runtime.executor.active_segment_names()) == 5
        assert _dev_shm_entries() <= before


class TestWarmBackendFoldInRefitChurn:
    """Concurrent fold-ins and warm refits through ONE warm thread backend.

    The pooled sweep workspaces hang off plan sides that both paths cache —
    the fold-in side cache reuses one side across identical batches, and a
    warm refit builds plans through the same backend's thread pool.  The
    contract: arenas are handed out exclusively, so every concurrent result
    is bit-identical to its serial reference and no sweep ever sees another
    sweep's scratch."""

    def test_concurrent_fold_in_and_warm_refit_share_backend(self, corpus):
        from repro.core.backends import ParallelBackend
        from repro.serving.fold_in import (
            clear_fold_in_plan_cache,
            fold_in_factors,
        )

        base = _model(0)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            base.fit(corpus)
        item_factors = base.factors_.item_factors
        rng = np.random.default_rng(42)
        batches = []
        for _ in range(4):
            rows = np.repeat(np.arange(3), 4)
            cols = np.concatenate(
                [
                    np.sort(rng.choice(N_ITEMS, size=4, replace=False))
                    for _ in range(3)
                ]
            )
            batches.append(
                sp.csr_matrix(
                    (np.ones(rows.size), (rows, cols)), shape=(3, N_ITEMS)
                )
            )

        clear_fold_in_plan_cache()
        expected_folds = [
            fold_in_factors(item_factors, batch, base.regularization, n_sweeps=8)
            for batch in batches
        ]
        reference_refit = _model(1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            reference_refit.fit(
                corpus, initial_factors=base.factors_
            )

        errors: list = []
        fold_results: list = []
        refit_results: list = []
        stop = threading.Event()

        with ParallelBackend(n_workers=2, executor="thread") as backend:

            def folder(index: int) -> None:
                rng = np.random.default_rng(index)
                try:
                    while not stop.is_set():
                        pick = int(rng.integers(0, len(batches)))
                        folded = fold_in_factors(
                            item_factors,
                            batches[pick],
                            base.regularization,
                            backend=backend,
                            n_sweeps=8,
                        )
                        fold_results.append((pick, folded))
                except Exception as exc:  # pragma: no cover - failure mode
                    errors.append(exc)

            def refitter() -> None:
                try:
                    for _ in range(3):
                        model = _model(1)
                        with warnings.catch_warnings():
                            warnings.simplefilter("ignore")
                            model.fit(
                                corpus,
                                backend=backend,
                                initial_factors=base.factors_,
                            )
                        assert model.history_.warm_started
                        refit_results.append(model.factors_)
                except Exception as exc:  # pragma: no cover - failure mode
                    errors.append(exc)
                finally:
                    stop.set()

            refit_thread = threading.Thread(target=refitter)
            fold_threads = [
                threading.Thread(target=folder, args=(index,))
                for index in range(6)
            ]
            refit_thread.start()
            for thread in fold_threads:
                thread.start()
            _join_all([refit_thread])
            _join_all(fold_threads)

        clear_fold_in_plan_cache()
        assert not errors
        assert fold_results
        # Every concurrent fold-in is bit-identical to its serial reference
        # (parallel sweeps are bit-identical to vectorized ones, and arenas
        # are exclusive, so concurrency must not change a single byte).
        for pick, folded in fold_results:
            assert np.array_equal(folded, expected_folds[pick]), pick
        # Every warm refit through the contended backend equals the serial
        # warm refit: same seed, same init, same math.
        assert len(refit_results) == 3
        for factors in refit_results:
            assert np.array_equal(
                factors.user_factors, reference_refit.factors_.user_factors
            )
            assert np.array_equal(
                factors.item_factors, reference_refit.factors_.item_factors
            )
