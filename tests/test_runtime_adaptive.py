"""Unit tests for the adaptive-delay controller and the weighted fair queue.

Both components are deliberately clock-free / synchronous so these tests
can drive them with synthetic timestamps and queues — no sleeping, no
jitter, fully deterministic."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.runtime.adaptive import AdaptiveDelayController
from repro.runtime.fairness import WeightedFairQueue


def make_controller(**overrides):
    settings = dict(
        floor_ms=1.0,
        ceiling_ms=16.0,
        slo_p95_ms=20.0,
        window_s=2.0,
        adjust_interval_s=0.01,
        grow=2.0,
        shrink=0.5,
        min_companions=2.0,
        slo_fraction=0.5,
    )
    settings.update(overrides)
    return AdaptiveDelayController(**settings)


def feed_arrivals(controller, now, rate_rps, duration=2.0):
    """Fill the arrival window ending at ``now`` with a steady ``rate_rps``."""
    n = max(1, int(rate_rps * duration))
    step = duration / n
    for i in range(n):
        controller.observe_arrival(now - duration + (i + 1) * step)


class TestAdaptiveDelayController:
    def test_starts_at_ceiling(self):
        assert make_controller().delay_ms == 16.0

    def test_light_load_shrinks_to_floor(self):
        controller = make_controller()
        # A trickle of lone requests: companions << min_companions every
        # control period, so the delay halves down to the floor.
        for step in range(8):
            now = 100.0 + step * 0.05
            controller.observe_arrival(now)
            controller.observe_batch(now, [0.001])
        assert controller.delay_ms == controller.floor_ms
        assert controller.adjustments >= 4

    def test_heavy_load_with_headroom_grows(self):
        controller = make_controller()
        # One light observation shrinks 16 -> 8 (room to grow back).
        controller.observe_batch(100.0, [0.001])
        assert controller.delay_ms == 8.0
        # 2000 rps with tiny waits: companions = 2000 * 8 ms = 16 >> 2 and
        # the p95 sits far under slo_fraction * SLO, so the delay doubles.
        feed_arrivals(controller, 100.2, rate_rps=2000)
        controller.observe_batch(100.2, [0.002] * 8)
        assert controller.delay_ms == controller.ceiling_ms

    def test_slo_breach_shrinks_even_under_heavy_load(self):
        controller = make_controller()
        feed_arrivals(controller, 100.0, rate_rps=2000)
        # Plenty of companions, but the p95 blows through the 20 ms SLO:
        # SLO pressure must win and shrink 16 -> 8.
        controller.observe_batch(100.0, [0.050] * 8)
        assert controller.delay_ms == 8.0

    def test_in_band_p95_holds_delay_steady(self):
        controller = make_controller()
        controller.observe_batch(100.0, [0.001])
        assert controller.delay_ms == 8.0
        # Heavy load with the p95 between slo_fraction*SLO (10 ms) and the
        # SLO (20 ms): neither shrink nor grow fires.
        feed_arrivals(controller, 100.2, rate_rps=2000)
        controller.observe_batch(100.2, [0.015] * 76)
        assert controller.delay_ms == 8.0

    def test_adjusts_at_most_once_per_interval(self):
        controller = make_controller(adjust_interval_s=10.0)
        controller.observe_arrival(100.0)
        for step in range(50):
            controller.observe_batch(100.0 + step * 0.01, [0.001])
        assert controller.adjustments == 1

    def test_windowed_signals(self):
        controller = make_controller(window_s=1.0)
        for i in range(10):
            controller.observe_arrival(100.0 + i * 0.1)
        controller.observe_batch(100.9, [0.005, 0.010])
        assert controller.arrival_rate(100.9) == pytest.approx(10.0, abs=2.0)
        assert controller.queue_p95_ms(100.9) >= 5.0
        # Far in the future the window is empty again.
        assert controller.arrival_rate(200.0) == 0.0
        assert controller.queue_p95_ms(200.0) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_controller(floor_ms=10.0, ceiling_ms=5.0)
        with pytest.raises(ConfigurationError):
            make_controller(grow=0.9)
        with pytest.raises(ConfigurationError):
            make_controller(shrink=1.5)
        with pytest.raises(ConfigurationError):
            make_controller(slo_fraction=0.0)


class TestWeightedFairQueue:
    def test_fifo_for_single_tenant(self):
        queue = WeightedFairQueue()
        for i in range(5):
            queue.push("a", i)
        assert [queue.pop() for _ in range(5)] == [0, 1, 2, 3, 4]
        assert queue.pop() is None

    def test_equal_weights_interleave_one_per_tenant(self):
        queue = WeightedFairQueue()
        for i in range(6):
            queue.push("flood", f"f{i}")
        queue.push("quiet", "q0")
        queue.push("quiet", "q1")
        order = [queue.pop() for _ in range(8)]
        # The quiet tenant's two items are served within the first four
        # pops despite arriving behind six flooding items.
        assert "q0" in order[:4] and "q1" in order[:4]
        assert len(queue) == 0

    def test_integer_weight_grants_multiple_per_cycle(self):
        queue = WeightedFairQueue(weights={"gold": 3.0})
        for i in range(9):
            queue.push("gold", f"g{i}")
            queue.push("base", f"b{i}")
        first_cycle = [queue.pop() for _ in range(8)]
        gold = sum(1 for item in first_cycle if item.startswith("g"))
        base = sum(1 for item in first_cycle if item.startswith("b"))
        assert gold == pytest.approx(3 * base, abs=1)

    def test_fractional_weight_admits_every_other_cycle(self):
        queue = WeightedFairQueue(weights={"slow": 0.5})
        for i in range(4):
            queue.push("slow", f"s{i}")
            queue.push("base", f"b{i}")
        order = [queue.pop() for _ in range(8)]
        # Base gets roughly two admissions per slow admission.
        assert order.index("s0") > order.index("b0")
        assert sorted(order) == sorted(f"{t}{i}" for t in "sb" for i in range(4))

    def test_pending_and_tenants(self):
        queue = WeightedFairQueue()
        queue.push("a", 1)
        queue.push("a", 2)
        queue.push("b", 3)
        assert len(queue) == 3
        assert queue.pending("a") == 2
        assert queue.pending("b") == 1
        assert queue.pending("missing") == 0
        assert set(queue.tenants()) == {"a", "b"}

    def test_drain_empties_everything(self):
        queue = WeightedFairQueue()
        queue.push("a", 1)
        queue.push("b", 2)
        assert sorted(queue.drain()) == [1, 2]
        assert len(queue) == 0
        assert queue.pop() is None

    def test_set_weight_applies_later(self):
        queue = WeightedFairQueue()
        queue.set_weight("vip", 2.0)
        assert queue.weight("vip") == 2.0
        assert queue.weight("other") == 1.0

    def test_validation(self):
        queue = WeightedFairQueue()
        with pytest.raises(ConfigurationError):
            queue.push("", 1)
        with pytest.raises(ConfigurationError):
            queue.set_weight("a", 0.0)
        with pytest.raises(ConfigurationError):
            WeightedFairQueue(default_weight=-1.0)
        with pytest.raises(ConfigurationError):
            WeightedFairQueue(weights={"a": 0.0})

    def test_drained_tenant_leaves_ring(self):
        queue = WeightedFairQueue()
        queue.push("a", 1)
        assert queue.pop() == 1
        queue.push("b", 2)
        assert queue.pop() == 2
        assert queue.tenants() == ()
