"""Pooled sweep workspaces: legacy bit-exactness, lifecycle, dtype rules.

Four contracts of the zero-allocation training rewrite:

* **Bit-exactness** — the pooled kernels produce float64 factors
  ``np.array_equal`` to the pre-rewrite allocating kernel (frozen verbatim
  as ``experiments.training_hotpath._LegacySweepBackend``) at every shard
  count, under every executor, weighted and unweighted.
* **Zero allocations after warm-up** — repeated sweeps through one plan
  reuse their arenas; the store counters are the witness.
* **Lifecycle** — workspaces live exactly as long as their plan: reused
  across the sweeps of a fit, never leaked across fits, rebuilt fresh in
  process-executor workers (stores pickle empty), handed out exclusively
  under concurrency.
* **Dtype consistency** — float32 training keeps objective reductions in
  float32 (the old ``np.bincount`` / ``np.zeros`` silently upcast), and the
  in-place objective helpers are bitwise equal to their allocating forms.
"""

from __future__ import annotations

import os
import pickle
import threading

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.backends import (
    ParallelBackend,
    SweepStats,
    SweepWorkspaceStore,
    VectorizedBackend,
    workspace_cache_size,
)
from repro.core.backends.plan import SweepSide
from repro.core.backends.workspace import (
    WORKSPACE_CACHE_ENV,
    csr_matmul_into,
    csr_row_sums_into,
)
from repro.core.objective import (
    gradient_ratio,
    gradient_ratio_into,
    safe_log1mexp,
    safe_log1mexp_into,
)
from repro.core.ocular import OCuLaR
from repro.data.datasets import make_netflix_like
from repro.experiments.training_hotpath import _LegacySweepBackend


def _random_problem(seed, n_rows=23, n_cols=14, k=4, density=0.3):
    """A reproducible sweep problem with guaranteed empty rows."""
    rng = np.random.default_rng(seed)
    dense = (rng.random((n_rows, n_cols)) < density).astype(float)
    dense[0] = 0.0
    dense[rng.integers(1, n_rows)] = 0.0
    matrix = sp.csr_matrix(dense)
    row_factors = rng.uniform(0.05, 0.9, size=(n_rows, k))
    col_factors = rng.uniform(0.05, 0.9, size=(n_cols, k))
    row_weights = rng.uniform(0.5, 2.5, n_rows)
    return matrix, row_factors, col_factors, row_weights


# --------------------------------------------------------------------------- #
# Bit-exactness against the frozen legacy kernel
# --------------------------------------------------------------------------- #
class TestLegacyParity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("weighted", [False, True])
    def test_pooled_matches_legacy_serial(self, seed, weighted):
        matrix, row_factors, col_factors, row_weights = _random_problem(
            seed, n_rows=17 + 5 * seed, n_cols=9 + 3 * seed, k=3 + seed
        )
        kwargs = dict(regularization=0.4)
        if weighted:
            kwargs["row_positive_weights"] = row_weights
        legacy, legacy_stats = _LegacySweepBackend().sweep(
            matrix, row_factors, col_factors, **kwargs
        )
        pooled, pooled_stats = VectorizedBackend().sweep(
            matrix, row_factors, col_factors, **kwargs
        )
        assert np.array_equal(legacy, pooled)
        assert legacy_stats == pooled_stats  # workspace fields excluded

    @pytest.mark.parametrize("n_shards", [1, 2, 5])
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    @pytest.mark.parametrize("weighted", [False, True])
    def test_pooled_matches_legacy_sharded(self, n_shards, executor, weighted):
        matrix, row_factors, col_factors, row_weights = _random_problem(3)
        kwargs = dict(regularization=0.3)
        if weighted:
            kwargs["row_positive_weights"] = row_weights
        legacy, _ = _LegacySweepBackend().sweep(
            matrix, row_factors, col_factors, **kwargs
        )
        with ParallelBackend(
            n_workers=2, n_shards=n_shards, executor=executor
        ) as backend:
            sharded, _ = backend.sweep(matrix, row_factors, col_factors, **kwargs)
        assert np.array_equal(legacy, sharded)

    @pytest.mark.skipif(
        not os.path.isdir("/dev/shm"), reason="requires a /dev/shm mount"
    )
    @pytest.mark.parametrize("weighted", [False, True])
    def test_pooled_matches_legacy_process(self, weighted):
        matrix, row_factors, col_factors, row_weights = _random_problem(4)
        kwargs = dict(regularization=0.3)
        if weighted:
            kwargs["row_positive_weights"] = row_weights
        legacy, _ = _LegacySweepBackend().sweep(
            matrix, row_factors, col_factors, **kwargs
        )
        with ParallelBackend(n_workers=2, n_shards=3, executor="process") as backend:
            sharded, _ = backend.sweep(matrix, row_factors, col_factors, **kwargs)
        assert np.array_equal(legacy, sharded)

    def test_pooled_matches_legacy_on_row_range(self):
        # Partial ranges exercise the rebased workspace (start > 0) and the
        # shrinking-active-set sub-CSR machinery on a shard boundary.
        matrix, row_factors, col_factors, _ = _random_problem(5)
        plan_legacy = SweepSide.build(matrix)
        plan_pooled = SweepSide.build(matrix)
        legacy, _ = _LegacySweepBackend().sweep(
            None, row_factors, col_factors, 0.2,
            plan=plan_legacy, row_range=(4, 15),
        )  # fmt: skip
        pooled, _ = VectorizedBackend().sweep(
            None, row_factors, col_factors, 0.2,
            plan=plan_pooled, row_range=(4, 15),
        )  # fmt: skip
        assert legacy.shape == (11, row_factors.shape[1])
        assert np.array_equal(legacy, pooled)

    def test_multi_sweep_trajectory_stays_exact(self):
        # Errors would compound across alternating sweeps if any single
        # sweep diverged by even one ulp.
        matrix, row_factors, col_factors, _ = _random_problem(6)
        legacy_rows, legacy_cols = row_factors, col_factors
        pooled_rows, pooled_cols = row_factors, col_factors
        legacy = _LegacySweepBackend()
        pooled = VectorizedBackend()
        plan_l = SweepSide.build(matrix)
        plan_p = SweepSide.build(matrix)
        for _ in range(4):
            legacy_rows, _ = legacy.sweep(
                None, legacy_rows, legacy_cols, 0.1, plan=plan_l
            )
            pooled_rows, _ = pooled.sweep(
                None, pooled_rows, pooled_cols, 0.1, plan=plan_p
            )
            assert np.array_equal(legacy_rows, pooled_rows)


# --------------------------------------------------------------------------- #
# Dtype consistency (the float32 reduction fix) and in-place helpers
# --------------------------------------------------------------------------- #
class TestDtypeConsistency:
    def test_float32_sweep_stays_float32(self):
        matrix, row_factors, col_factors, _ = _random_problem(7)
        plan = SweepSide.build(matrix, dtype=np.float32)
        new_factors, _ = VectorizedBackend().sweep(
            None,
            row_factors.astype(np.float32),
            col_factors.astype(np.float32),
            0.2,
            plan=plan,
        )
        assert new_factors.dtype == np.float32

    def test_float32_tracks_float64_closely(self):
        matrix, row_factors, col_factors, _ = _random_problem(8)
        full, _ = VectorizedBackend().sweep(matrix, row_factors, col_factors, 0.2)
        plan = SweepSide.build(matrix, dtype=np.float32)
        half, _ = VectorizedBackend().sweep(
            None,
            row_factors.astype(np.float32),
            col_factors.astype(np.float32),
            0.2,
            plan=plan,
        )
        np.testing.assert_allclose(full, half, rtol=1e-3, atol=1e-4)

    def test_mixed_dtype_falls_back_to_allocating_kernel(self):
        # float64 factors against a float32 plan is unsupported-but-legal:
        # it must keep the old upcasting kernel, not crash in pooled buffers.
        matrix, row_factors, col_factors, _ = _random_problem(9)
        plan = SweepSide.build(matrix, dtype=np.float32)
        mixed, stats = VectorizedBackend().sweep(
            None, row_factors, col_factors, 0.2, plan=plan
        )
        assert mixed.dtype == np.float64
        assert stats.workspace_allocations == 0  # never touched the store
        assert plan.workspaces.stats().allocations == 0

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_row_sums_keep_dtype_and_match_bincount(self, dtype):
        rng = np.random.default_rng(0)
        matrix = sp.csr_matrix((rng.random((9, 6)) < 0.4).astype(float)).astype(dtype)
        data = rng.standard_normal(matrix.nnz).astype(dtype)
        rows = np.repeat(np.arange(9), np.diff(matrix.indptr))
        out = np.empty(9, dtype=dtype)
        csr_row_sums_into(
            matrix.indptr.astype(np.int64),
            matrix.indices.astype(np.int64),
            data,
            (9, 6),
            np.ones(6, dtype=dtype),
            out,
        )
        assert out.dtype == dtype
        reference = np.bincount(rows, weights=data.astype(np.float64), minlength=9)
        if dtype == np.float64:
            # bincount reduces in float64; on float64 data the pooled
            # reduction must be bit-identical to it.
            assert np.array_equal(out, reference)
        else:
            np.testing.assert_allclose(out, reference.astype(dtype), rtol=1e-5)

    def test_csr_matmul_into_is_bitwise_scipy(self):
        rng = np.random.default_rng(1)
        matrix = sp.csr_matrix((rng.random((12, 8)) < 0.4).astype(float))
        matrix.data[:] = rng.standard_normal(matrix.nnz)
        dense = rng.standard_normal((8, 5))
        out = np.empty((12, 5))
        csr_matmul_into(
            matrix.indptr.astype(np.int64),
            matrix.indices.astype(np.int64),
            matrix.data,
            (12, 8),
            dense,
            out,
        )
        assert np.array_equal(out, matrix @ dense)

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_inplace_objective_helpers_are_bitwise(self, dtype):
        rng = np.random.default_rng(2)
        affinity = rng.uniform(0.0, 3.0, size=257).astype(dtype)
        affinity[:5] = [0.0, 1e-12, 60.0, 0.5, 2.0]

        out = np.empty_like(affinity)
        assert np.array_equal(
            safe_log1mexp_into(affinity.copy(), out=out), safe_log1mexp(affinity)
        )
        # Aliased form (the kernel overwrites the affinities in place).
        aliased = affinity.copy()
        assert np.array_equal(
            safe_log1mexp_into(aliased, out=aliased), safe_log1mexp(affinity)
        )

        scratch = np.empty_like(affinity)
        assert np.array_equal(
            gradient_ratio_into(affinity.copy(), out=out, scratch=scratch),
            gradient_ratio(affinity),
        )


# --------------------------------------------------------------------------- #
# Workspace store lifecycle
# --------------------------------------------------------------------------- #
class TestWorkspaceStore:
    def test_repeated_sweeps_allocate_once(self):
        matrix, row_factors, col_factors, _ = _random_problem(10)
        plan = SweepSide.build(matrix)
        backend = VectorizedBackend()
        for _ in range(5):
            row_factors, _ = backend.sweep(
                None, row_factors, col_factors, 0.2, plan=plan
            )
        stats = plan.workspaces.stats()
        assert stats.allocations == 1
        assert stats.reuses == 4
        assert stats.outstanding == 0
        assert stats.peak_bytes > 0

    def test_sweep_stats_carry_workspace_counters(self):
        matrix, row_factors, col_factors, _ = _random_problem(11)
        plan = SweepSide.build(matrix)
        backend = VectorizedBackend()
        _, first = backend.sweep(None, row_factors, col_factors, 0.2, plan=plan)
        _, second = backend.sweep(None, row_factors, col_factors, 0.2, plan=plan)
        assert first.workspace_allocations == 1 and first.workspace_reuses == 0
        assert second.workspace_allocations == 0 and second.workspace_reuses == 1
        assert first.workspace_bytes == second.workspace_bytes > 0

    def test_workspace_fields_do_not_break_stats_equality(self):
        a = SweepStats(n_rows=5, n_accepted=4, n_backtracks=1)
        b = SweepStats(
            n_rows=5,
            n_accepted=4,
            n_backtracks=1,
            workspace_bytes=1234,
            workspace_allocations=1,
            workspace_reuses=7,
        )
        assert a == b  # diagnostics, not results

    def test_combined_sums_workspace_counters(self):
        parts = [
            SweepStats(1, 1, 0, workspace_bytes=10, workspace_allocations=1),
            SweepStats(2, 1, 3, workspace_bytes=20, workspace_reuses=2),
        ]
        total = SweepStats.combined(parts)
        assert total.workspace_bytes == 30
        assert total.workspace_allocations == 1
        assert total.workspace_reuses == 2

    def test_acquire_is_exclusive(self):
        matrix, *_ = _random_problem(12)
        plan = SweepSide.build(matrix)
        store = plan.workspaces
        first = store.acquire(plan, 0, plan.n_rows, 4, np.float64)
        second = store.acquire(plan, 0, plan.n_rows, 4, np.float64)
        assert first is not second
        assert store.stats().outstanding == 2
        store.release(first)
        store.release(second)
        assert store.stats().outstanding == 0
        assert store.acquire(plan, 0, plan.n_rows, 4, np.float64) in (first, second)

    def test_distinct_ranges_get_distinct_arenas(self):
        matrix, *_ = _random_problem(13)
        plan = SweepSide.build(matrix)
        store = plan.workspaces
        full = store.acquire(plan, 0, plan.n_rows, 3, np.float64)
        half = store.acquire(plan, 0, plan.n_rows // 2, 3, np.float64)
        assert full.n_local != half.n_local
        store.release(full)
        store.release(half)
        assert store.stats().allocations == 2

    def test_free_list_cap_drops_extras(self):
        matrix, *_ = _random_problem(14)
        plan = SweepSide.build(matrix)
        store = SweepWorkspaceStore(max_cached=1)
        arenas = [store.acquire(plan, 0, plan.n_rows, 3, np.float64) for _ in range(3)]
        for arena in arenas:
            store.release(arena)
        stats = store.stats()
        assert stats.cached == 1
        assert stats.bytes_in_use == arenas[0].nbytes

    def test_clear_drops_cached_arenas(self):
        matrix, *_ = _random_problem(15)
        plan = SweepSide.build(matrix)
        store = plan.workspaces
        store.release(store.acquire(plan, 0, plan.n_rows, 3, np.float64))
        assert store.stats().cached == 1
        store.clear()
        assert store.stats().cached == 0
        assert store.stats().bytes_in_use == 0

    def test_cache_size_env_knob(self, monkeypatch):
        monkeypatch.setenv(WORKSPACE_CACHE_ENV, "3")
        assert workspace_cache_size() == 3
        monkeypatch.setenv(WORKSPACE_CACHE_ENV, "not-a-number")
        assert workspace_cache_size() == 8
        monkeypatch.delenv(WORKSPACE_CACHE_ENV)
        assert workspace_cache_size(5) == 5

    def test_store_pickles_fresh(self):
        # Process-executor workers receive plan sides by pickle; their
        # stores must arrive empty (worker-local arenas, no dead buffers).
        matrix, row_factors, col_factors, _ = _random_problem(16)
        plan = SweepSide.build(matrix)
        VectorizedBackend().sweep(None, row_factors, col_factors, 0.2, plan=plan)
        assert plan.workspaces.stats().allocations == 1
        clone = pickle.loads(pickle.dumps(plan))
        stats = clone.workspaces.stats()
        assert stats.allocations == 0
        assert stats.cached == 0
        assert clone.workspaces.max_cached == plan.workspaces.max_cached

    def test_concurrent_sweeps_share_one_plan_safely(self):
        # Eight threads sweeping one warm side concurrently: every result
        # must equal the serial sweep (arenas are exclusive, never shared).
        matrix, row_factors, col_factors, _ = _random_problem(17, n_rows=40)
        plan = SweepSide.build(matrix)
        backend = VectorizedBackend()
        expected, _ = backend.sweep(None, row_factors, col_factors, 0.2, plan=plan)
        results: list = [None] * 8
        errors: list = []

        def sweep(index: int) -> None:
            try:
                got, _ = backend.sweep(
                    None, row_factors, col_factors, 0.2, plan=plan
                )
                results[index] = got
            except Exception as exc:  # pragma: no cover - failure mode
                errors.append(exc)

        threads = [threading.Thread(target=sweep, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors
        for got in results:
            assert np.array_equal(got, expected)
        assert plan.workspaces.stats().outstanding == 0


# --------------------------------------------------------------------------- #
# Fit lifecycle: history plumbing and cross-fit isolation
# --------------------------------------------------------------------------- #
class TestFitLifecycle:
    @pytest.fixture(scope="class")
    def corpus(self):
        matrix, _spec = make_netflix_like(n_users=80, n_items=30, random_state=0)
        return matrix

    def _fit(self, corpus, seed=0):
        model = OCuLaR(
            n_coclusters=4,
            regularization=5.0,
            max_iterations=3,
            tolerance=0.0,
            random_state=seed,
        )
        with pytest.warns(Warning):
            model.fit(corpus)
        return model

    def test_history_records_workspace_stats(self, corpus):
        model = self._fit(corpus)
        history = model.history_
        assert history.peak_workspace_bytes > 0
        # One arena per side, built on the first sweep, reused afterwards.
        assert history.total_workspace_allocations >= 2
        assert history.total_workspace_reuses > 0
        assert history.item_sweep_stats[0].workspace_allocations == 1
        assert history.item_sweep_stats[-1].workspace_reuses == 1

    def test_no_cross_fit_leakage(self, corpus):
        # Each fit builds its own plan (and with it, fresh stores): the
        # second fit's first sweeps must allocate again, proving the first
        # fit's arenas were dropped with its plan rather than inherited.
        model = self._fit(corpus)
        first_fit_allocations = model.history_.total_workspace_allocations
        with pytest.warns(Warning):
            model.fit(corpus)
        assert model.history_.total_workspace_allocations == first_fit_allocations
        assert model.history_.item_sweep_stats[0].workspace_allocations == 1

    def test_refit_and_fold_in_share_nothing_with_training_plans(self, corpus):
        from repro.serving.fold_in import clear_fold_in_plan_cache, fold_in_factors

        model = self._fit(corpus)
        clear_fold_in_plan_cache()
        interactions = sp.csr_matrix(
            (np.ones(3), ([0, 0, 1], [2, 5, 7])), shape=(2, corpus.shape[1])
        )
        first = fold_in_factors(
            model.factors_.item_factors, interactions, model.regularization
        )
        # Same batch again rides the cached side's warm workspaces and must
        # reproduce the identical factors.
        second = fold_in_factors(
            model.factors_.item_factors, interactions, model.regularization
        )
        assert np.array_equal(first, second)
        clear_fold_in_plan_cache()
