"""Tests for the factor container and the initialisation strategies."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.factors import FactorModel
from repro.core.init import degree_scaled_init, initialize_factors, random_init
from repro.exceptions import ConfigurationError


class TestFactorModel:
    def test_shapes_and_counts(self):
        model = FactorModel(np.ones((5, 3)), np.ones((7, 3)))
        assert model.n_users == 5
        assert model.n_items == 7
        assert model.n_coclusters == 3

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            FactorModel(np.ones((5, 3)), np.ones((7, 4)))

    def test_negative_factors_rejected(self):
        with pytest.raises(ConfigurationError):
            FactorModel(-np.ones((2, 2)), np.ones((2, 2)))

    def test_probability_formula(self):
        user_factors = np.array([[1.0, 0.0], [0.5, 0.5]])
        item_factors = np.array([[2.0, 0.0], [0.0, 0.0]])
        model = FactorModel(user_factors, item_factors)
        assert model.affinity(0, 0) == pytest.approx(2.0)
        assert model.predict_proba(0, 0) == pytest.approx(1 - np.exp(-2.0))
        assert model.predict_proba(0, 1) == pytest.approx(0.0)

    def test_user_scores_vector(self):
        model = FactorModel(np.array([[1.0]]), np.array([[0.5], [2.0]]))
        scores = model.user_scores(0)
        np.testing.assert_allclose(scores, 1 - np.exp(-np.array([0.5, 2.0])))

    def test_score_matrix_consistency(self):
        rng = np.random.default_rng(0)
        model = FactorModel(rng.uniform(0, 1, (4, 2)), rng.uniform(0, 1, (6, 2)))
        matrix = model.score_matrix()
        for user in range(4):
            np.testing.assert_allclose(matrix[user], model.user_scores(user))

    def test_score_matrix_subset(self):
        rng = np.random.default_rng(0)
        model = FactorModel(rng.uniform(0, 1, (4, 2)), rng.uniform(0, 1, (6, 2)))
        subset = model.score_matrix(np.array([1, 3]))
        np.testing.assert_allclose(subset[0], model.user_scores(1))
        np.testing.assert_allclose(subset[1], model.user_scores(3))

    def test_cocluster_contributions_sum_to_affinity(self):
        rng = np.random.default_rng(1)
        model = FactorModel(rng.uniform(0, 1, (3, 4)), rng.uniform(0, 1, (3, 4)))
        contributions = model.cocluster_contributions(1, 2)
        assert contributions.sum() == pytest.approx(model.affinity(1, 2))

    def test_probabilities_in_unit_interval(self):
        rng = np.random.default_rng(2)
        model = FactorModel(rng.uniform(0, 3, (5, 3)), rng.uniform(0, 3, (4, 3)))
        scores = model.score_matrix()
        assert np.all(scores >= 0) and np.all(scores < 1)

    def test_copy_is_deep(self):
        model = FactorModel(np.ones((2, 2)), np.ones((2, 2)))
        clone = model.copy()
        clone.user_factors[0, 0] = 5.0
        assert model.user_factors[0, 0] == 1.0


@pytest.fixture
def sparse_matrix():
    rng = np.random.default_rng(3)
    return sp.csr_matrix((rng.random((40, 30)) < 0.1).astype(float))


class TestInitialization:
    def test_random_init_shapes_and_positivity(self, sparse_matrix):
        users, items = random_init(sparse_matrix, 6, random_state=0)
        assert users.shape == (40, 6)
        assert items.shape == (30, 6)
        assert (users >= 0).all() and (items >= 0).all()

    def test_random_init_deterministic(self, sparse_matrix):
        first = random_init(sparse_matrix, 4, random_state=9)
        second = random_init(sparse_matrix, 4, random_state=9)
        np.testing.assert_array_equal(first[0], second[0])

    def test_random_init_calibrated_to_density(self, sparse_matrix):
        users, items = random_init(sparse_matrix, 8, random_state=0)
        density = sparse_matrix.nnz / (40 * 30)
        expected_affinity = -np.log(1 - density)
        mean_affinity = float(np.mean(users @ items.T))
        assert 0.2 * expected_affinity < mean_affinity < 5 * expected_affinity

    def test_degree_scaled_init_orders_by_degree(self, sparse_matrix):
        users, _ = degree_scaled_init(sparse_matrix, 5, random_state=0)
        degrees = np.asarray(sparse_matrix.sum(axis=1)).ravel()
        norms = np.linalg.norm(users, axis=1)
        heavy = norms[degrees >= np.percentile(degrees, 80)].mean()
        light = norms[degrees <= np.percentile(degrees, 20)].mean()
        assert heavy > light

    def test_initialize_factors_dispatch(self, sparse_matrix):
        users, items = initialize_factors(sparse_matrix, 3, method="degree", random_state=0)
        assert users.shape == (40, 3) and items.shape == (30, 3)

    def test_unknown_method_raises(self, sparse_matrix):
        with pytest.raises(ConfigurationError):
            initialize_factors(sparse_matrix, 3, method="svd")

    def test_invalid_parameters_raise(self, sparse_matrix):
        with pytest.raises(ConfigurationError):
            random_init(sparse_matrix, 0)
        with pytest.raises(ConfigurationError):
            random_init(sparse_matrix, 3, scale=0.0)


class TestDtypeThreading:
    """float32 support without silent upcasts through init and FactorModel."""

    @pytest.mark.parametrize("method", ["random", "degree"])
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_initialize_factors_dtype(self, sparse_matrix, method, dtype):
        users, items = initialize_factors(
            sparse_matrix, 4, method=method, random_state=0, dtype=dtype
        )
        assert users.dtype == dtype
        assert items.dtype == dtype

    def test_float32_init_is_rounded_float64_init(self, sparse_matrix):
        full = initialize_factors(sparse_matrix, 4, random_state=7)
        half = initialize_factors(sparse_matrix, 4, random_state=7, dtype=np.float32)
        np.testing.assert_array_equal(full[0].astype(np.float32), half[0])

    def test_initialize_factors_rejects_bad_dtype(self, sparse_matrix):
        with pytest.raises(ConfigurationError):
            initialize_factors(sparse_matrix, 4, dtype=np.int64)

    def test_factor_model_preserves_float32(self):
        rng = np.random.default_rng(0)
        model = FactorModel(
            rng.random((5, 3)).astype(np.float32),
            rng.random((4, 3)).astype(np.float32),
        )
        assert model.dtype == np.float32
        assert model.user_factors.dtype == np.float32
        assert model.score_matrix().dtype == np.float32

    def test_factor_model_upcasts_mixed_dtypes_to_common(self):
        rng = np.random.default_rng(0)
        model = FactorModel(
            rng.random((5, 3)).astype(np.float32), rng.random((4, 3))
        )
        assert model.dtype == np.float64
        assert model.item_factors.dtype == np.float64

    def test_factor_model_astype(self):
        rng = np.random.default_rng(0)
        model = FactorModel(rng.random((5, 3)), rng.random((4, 3)))
        half = model.astype(np.float32)
        assert half.dtype == np.float32
        np.testing.assert_allclose(
            half.user_factors, model.user_factors, rtol=1e-6, atol=1e-6
        )


class TestGeneratorContract:
    """The documented RNG contract of initialize_factors.

    An int seed materialises a fresh Generator per call (two calls agree); a
    Generator instance is used *as is*, so its stream advances — the property
    the incremental-refit study leans on to drive a base fit and a cold
    refit from one seed.
    """

    def test_int_seed_is_reproducible_per_call(self, sparse_matrix):
        a = initialize_factors(sparse_matrix, 4, random_state=123)
        b = initialize_factors(sparse_matrix, 4, random_state=123)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_generator_stream_advances_across_calls(self, sparse_matrix):
        rng = np.random.default_rng(123)
        first = initialize_factors(sparse_matrix, 4, random_state=rng)
        second = initialize_factors(sparse_matrix, 4, random_state=rng)
        assert not np.array_equal(first[0], second[0])

    def test_generator_is_not_reseeded(self, sparse_matrix):
        # Passing a Generator draws exactly what an int-seeded call would
        # have drawn first — the function must not wrap or re-seed it.
        from_int = initialize_factors(sparse_matrix, 4, random_state=123)
        from_gen = initialize_factors(
            sparse_matrix, 4, random_state=np.random.default_rng(123)
        )
        np.testing.assert_array_equal(from_int[0], from_gen[0])
        np.testing.assert_array_equal(from_int[1], from_gen[1])

    def test_caller_stream_is_consumed(self, sparse_matrix):
        rng = np.random.default_rng(123)
        untouched = np.random.default_rng(123)
        initialize_factors(sparse_matrix, 4, random_state=rng)
        # The caller's stream moved past the draws the init consumed.
        assert rng.random() != untouched.random()
