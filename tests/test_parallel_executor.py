"""Tests for the parallel executors."""

from __future__ import annotations

import os

import pytest

from repro.exceptions import ConfigurationError
from repro.parallel import ProcessExecutor, SerialExecutor, ThreadExecutor


def square(value: int) -> int:
    """Module-level helper (picklable for the process pool)."""
    return value * value


def add(left: int, right: int) -> int:
    """Module-level helper (picklable for the process pool)."""
    return left + right


class TestSerialExecutor:
    def test_map_preserves_order(self):
        assert SerialExecutor().map(square, [1, 2, 3]) == [1, 4, 9]

    def test_starmap(self):
        assert SerialExecutor().starmap(add, [(1, 2), (3, 4)]) == [3, 7]

    def test_shutdown_is_noop(self):
        SerialExecutor().shutdown()


class TestThreadExecutor:
    def test_map_matches_serial(self):
        with ThreadExecutor(max_workers=3) as executor:
            assert executor.map(square, range(6)) == [square(v) for v in range(6)]

    def test_starmap(self):
        with ThreadExecutor(max_workers=2) as executor:
            assert executor.starmap(add, [(1, 1), (2, 2), (3, 3)]) == [2, 4, 6]

    def test_invalid_workers(self):
        with pytest.raises(ConfigurationError):
            ThreadExecutor(max_workers=0)


class TestProcessExecutor:
    def test_map_matches_serial(self):
        with ProcessExecutor(max_workers=2) as executor:
            assert executor.map(square, [2, 3, 4]) == [4, 9, 16]

    def test_starmap(self):
        with ProcessExecutor(max_workers=2) as executor:
            assert executor.starmap(add, [(10, 5), (1, 1)]) == [15, 2]

    def test_invalid_workers(self):
        with pytest.raises(ConfigurationError):
            ProcessExecutor(max_workers=-1)
