"""Tests for the parallel executors."""

from __future__ import annotations

import os
import time
import traceback

import pytest

from repro.exceptions import ConfigurationError
from repro.parallel import ProcessExecutor, SerialExecutor, ThreadExecutor


def square(value: int) -> int:
    """Module-level helper (picklable for the process pool)."""
    return value * value


def add(left: int, right: int) -> int:
    """Module-level helper (picklable for the process pool)."""
    return left + right


def fail_tagged(tag: str, delay: float = 0.0) -> None:
    """Module-level helper that raises a tagged error after an optional delay."""
    if delay:
        time.sleep(delay)
    raise ValueError(f"worker failed: {tag}")


class TestSerialExecutor:
    def test_map_preserves_order(self):
        assert SerialExecutor().map(square, [1, 2, 3]) == [1, 4, 9]

    def test_starmap(self):
        assert SerialExecutor().starmap(add, [(1, 2), (3, 4)]) == [3, 7]

    def test_shutdown_is_noop(self):
        SerialExecutor().shutdown()

    def test_context_manager_protocol(self):
        # Interchangeable with the pooled executors in ``with`` blocks.
        with SerialExecutor() as executor:
            assert executor.map(square, [3]) == [9]
        with pytest.raises(ValueError, match="worker failed: ctx"):
            with SerialExecutor() as executor:
                executor.starmap(fail_tagged, [("ctx",)])


class TestThreadExecutor:
    def test_map_matches_serial(self):
        with ThreadExecutor(max_workers=3) as executor:
            assert executor.map(square, range(6)) == [square(v) for v in range(6)]

    def test_starmap(self):
        with ThreadExecutor(max_workers=2) as executor:
            assert executor.starmap(add, [(1, 1), (2, 2), (3, 3)]) == [2, 4, 6]

    def test_invalid_workers(self):
        with pytest.raises(ConfigurationError):
            ThreadExecutor(max_workers=0)


class TestProcessExecutor:
    def test_map_matches_serial(self):
        with ProcessExecutor(max_workers=2) as executor:
            assert executor.map(square, [2, 3, 4]) == [4, 9, 16]

    def test_starmap(self):
        with ProcessExecutor(max_workers=2) as executor:
            assert executor.starmap(add, [(10, 5), (1, 1)]) == [15, 2]

    def test_invalid_workers(self):
        with pytest.raises(ConfigurationError):
            ProcessExecutor(max_workers=-1)


class TestWorkerDefaults:
    def test_thread_default_workers_is_cpu_count(self):
        with ThreadExecutor() as executor:
            assert executor._pool._max_workers == (os.cpu_count() or 1)

    def test_process_default_workers_is_cpu_count(self):
        with ProcessExecutor() as executor:
            assert executor._pool._max_workers == (os.cpu_count() or 1)
            executor.map(square, [1])  # the pool is actually usable


class TestFailurePropagation:
    def test_first_submitted_failure_wins(self):
        # The second-submitted task fails immediately; the first fails after a
        # delay.  The propagated error must deterministically be the first
        # task's (submission order), not whichever failed first in time.
        with ThreadExecutor(max_workers=2) as executor:
            with pytest.raises(ValueError, match="worker failed: first"):
                executor.starmap(fail_tagged, [("first", 0.2), ("second", 0.0)])

    def test_traceback_reaches_the_worker_frame(self):
        with ThreadExecutor(max_workers=2) as executor:
            with pytest.raises(ValueError) as excinfo:
                executor.starmap(fail_tagged, [("traced", 0.0)])
        frames = traceback.extract_tb(excinfo.value.__traceback__)
        assert any(frame.name == "fail_tagged" for frame in frames)

    def test_process_pool_propagates_failure(self):
        with ProcessExecutor(max_workers=2) as executor:
            with pytest.raises(ValueError, match="worker failed: only"):
                executor.starmap(fail_tagged, [("only", 0.0)])
