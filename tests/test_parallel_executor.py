"""Tests for the parallel executors."""

from __future__ import annotations

import os
import time
import traceback

import pytest

from repro.exceptions import (
    ConfigurationError,
    ExecutorShutDownError,
    ReproError,
    WorkerCrashError,
)
from repro.parallel import ProcessExecutor, SerialExecutor, ThreadExecutor


def square(value: int) -> int:
    """Module-level helper (picklable for the process pool)."""
    return value * value


def exit_hard(code: int) -> None:
    """Module-level helper that kills its worker process outright."""
    os._exit(code)


def add(left: int, right: int) -> int:
    """Module-level helper (picklable for the process pool)."""
    return left + right


def fail_tagged(tag: str, delay: float = 0.0) -> None:
    """Module-level helper that raises a tagged error after an optional delay."""
    if delay:
        time.sleep(delay)
    raise ValueError(f"worker failed: {tag}")


class TestSerialExecutor:
    def test_map_preserves_order(self):
        assert SerialExecutor().map(square, [1, 2, 3]) == [1, 4, 9]

    def test_starmap(self):
        assert SerialExecutor().starmap(add, [(1, 2), (3, 4)]) == [3, 7]

    def test_shutdown_is_idempotent(self):
        executor = SerialExecutor()
        executor.shutdown()
        executor.shutdown()
        assert executor.is_shut_down

    def test_rejects_work_after_shutdown(self):
        # The serial executor used to keep accepting work after shutdown(),
        # diverging from the pooled executors; the contract is now uniform.
        executor = SerialExecutor()
        executor.shutdown()
        with pytest.raises(ExecutorShutDownError):
            executor.map(square, [1])
        with pytest.raises(ExecutorShutDownError):
            executor.starmap(add, [(1, 2)])

    def test_context_manager_protocol(self):
        # Interchangeable with the pooled executors in ``with`` blocks.
        with SerialExecutor() as executor:
            assert executor.map(square, [3]) == [9]
        with pytest.raises(ValueError, match="worker failed: ctx"):
            with SerialExecutor() as executor:
                executor.starmap(fail_tagged, [("ctx",)])


class TestThreadExecutor:
    def test_map_matches_serial(self):
        with ThreadExecutor(max_workers=3) as executor:
            assert executor.map(square, range(6)) == [square(v) for v in range(6)]

    def test_starmap(self):
        with ThreadExecutor(max_workers=2) as executor:
            assert executor.starmap(add, [(1, 1), (2, 2), (3, 3)]) == [2, 4, 6]

    def test_invalid_workers(self):
        with pytest.raises(ConfigurationError):
            ThreadExecutor(max_workers=0)


class TestProcessExecutor:
    def test_map_matches_serial(self):
        with ProcessExecutor(max_workers=2) as executor:
            assert executor.map(square, [2, 3, 4]) == [4, 9, 16]

    def test_starmap(self):
        with ProcessExecutor(max_workers=2) as executor:
            assert executor.starmap(add, [(10, 5), (1, 1)]) == [15, 2]

    def test_invalid_workers(self):
        with pytest.raises(ConfigurationError):
            ProcessExecutor(max_workers=-1)


class TestWorkerDefaults:
    def test_thread_default_workers_is_cpu_count(self):
        with ThreadExecutor() as executor:
            assert executor._pool._max_workers == (os.cpu_count() or 1)

    def test_process_default_workers_is_cpu_count(self):
        with ProcessExecutor() as executor:
            assert executor._pool._max_workers == (os.cpu_count() or 1)
            executor.map(square, [1])  # the pool is actually usable


class TestFailurePropagation:
    def test_first_submitted_failure_wins(self):
        # The second-submitted task fails immediately; the first fails after a
        # delay.  The propagated error must deterministically be the first
        # task's (submission order), not whichever failed first in time.
        with ThreadExecutor(max_workers=2) as executor:
            with pytest.raises(ValueError, match="worker failed: first"):
                executor.starmap(fail_tagged, [("first", 0.2), ("second", 0.0)])

    def test_traceback_reaches_the_worker_frame(self):
        with ThreadExecutor(max_workers=2) as executor:
            with pytest.raises(ValueError) as excinfo:
                executor.starmap(fail_tagged, [("traced", 0.0)])
        frames = traceback.extract_tb(excinfo.value.__traceback__)
        assert any(frame.name == "fail_tagged" for frame in frames)

    def test_process_pool_propagates_failure(self):
        with ProcessExecutor(max_workers=2) as executor:
            with pytest.raises(ValueError, match="worker failed: only"):
                executor.starmap(fail_tagged, [("only", 0.0)])


class TestLifecycleContract:
    """The post-shutdown and worker-death bugfixes (typed errors everywhere)."""

    @pytest.mark.parametrize("build", [ThreadExecutor, ProcessExecutor])
    def test_pooled_submission_after_shutdown_raises_typed_error(self, build):
        # Used to leak concurrent.futures' raw RuntimeError("cannot schedule
        # new futures after shutdown"); now a typed repro error.
        executor = build(max_workers=2)
        executor.shutdown()
        with pytest.raises(ExecutorShutDownError):
            executor.map(square, [1])
        with pytest.raises(ExecutorShutDownError):
            executor.starmap(add, [(1, 2)])

    def test_shutdown_error_is_repro_and_runtime_error(self):
        # ReproError so library callers catch one base class; RuntimeError so
        # pre-existing code written against the pools' raw error keeps working.
        executor = ThreadExecutor(max_workers=1)
        executor.shutdown()
        with pytest.raises(ReproError):
            executor.map(square, [1])
        executor = ThreadExecutor(max_workers=1)
        executor.shutdown()
        with pytest.raises(RuntimeError):
            executor.map(square, [1])

    def test_worker_death_is_translated_with_task_index(self):
        # A dying worker process used to surface as a bare BrokenProcessPool
        # with no context; now WorkerCrashError names the executor and the
        # submission index of the task whose worker died.
        with ProcessExecutor(max_workers=2) as executor:
            with pytest.raises(WorkerCrashError) as excinfo:
                executor.starmap(exit_hard, [(3,)])
        assert excinfo.value.executor == "ProcessExecutor"
        assert excinfo.value.task_index == 0
        assert isinstance(excinfo.value, ReproError)

    def test_task_exception_is_not_a_worker_crash(self):
        # The distinction runtime callers rely on: "node died" (retryable on
        # cluster) arrives as WorkerCrashError, a plain task failure as itself.
        with ProcessExecutor(max_workers=2) as executor:
            with pytest.raises(ValueError, match="worker failed: plain"):
                executor.starmap(fail_tagged, [("plain", 0.0)])
