"""Tests for the asyncio serving gateway: wire-protocol correctness (gateway
responses exactly equal the in-process engine), per-frame failure containment
(malformed frames, disconnects, unpublished models), generation pinning
through the network layer across mid-flight model swaps, drain-on-close, and
per-tenant fairness under a flooding tenant."""

from __future__ import annotations

import threading
import time
import warnings

import numpy as np
import pytest

from repro.api import RecommendRequest
from repro.core.ocular import OCuLaR
from repro.data.datasets import make_netflix_like
from repro.runtime import (
    BatchingFrontEnd,
    GatewayClient,
    GatewayError,
    GatewayThread,
    RecommenderRuntime,
    WeightedFairQueue,
)
from repro.runtime.adaptive import AdaptiveDelayController

#: Generous wall-clock bound for any blocking wait in this suite: far above
#: every configured delay, far below the CI job timeout, so a deadlock fails
#: the test instead of hanging the run.
RESULT_TIMEOUT = 60.0


def _model(**overrides):
    settings = dict(
        n_coclusters=5,
        regularization=5.0,
        max_iterations=3,
        tolerance=0.0,
        random_state=0,
    )
    settings.update(overrides)
    return OCuLaR(**settings)


def _wait_until(predicate, timeout=RESULT_TIMEOUT, interval=0.002):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


@pytest.fixture(scope="module")
def corpus():
    matrix, _spec = make_netflix_like(n_users=120, n_items=50, random_state=0)
    return matrix


@pytest.fixture(scope="module")
def runtime(corpus):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        with RecommenderRuntime(executor="serial") as rt:
            rt.fit(_model(), corpus)
            rt.publish()
            yield rt


@pytest.fixture()
def gateway(runtime):
    with BatchingFrontEnd(runtime, max_delay_ms=2) as front:
        with GatewayThread(front) as gw:
            yield gw


@pytest.fixture()
def client(gateway):
    host, port = gateway.address
    with GatewayClient(host, port, timeout=RESULT_TIMEOUT) as c:
        yield c


# --------------------------------------------------------------------------- #
# Wire-protocol correctness
# --------------------------------------------------------------------------- #
class TestWireProtocol:
    def test_topn_parity_with_engine(self, runtime, client):
        request = RecommendRequest(users=(0, 3, 7, 7), n_items=6)
        response = client.recommend(request)
        expected = runtime.engine.recommend_batch([0, 3, 7, 7], n_items=6)
        assert len(response.rankings) == 4
        assert all(np.array_equal(a, b) for a, b in zip(response.rankings, expected))
        assert response.generation == runtime.generation

    def test_folded_parity_with_runtime(self, runtime, client):
        request = RecommendRequest(interactions=((1, 2, 3), (9,)), n_items=5)
        response = client.recommend(request)
        expected = runtime.recommend(request)
        assert all(
            np.array_equal(a, b)
            for a, b in zip(response.rankings, expected.rankings)
        )

    def test_scores_travel_the_wire(self, runtime, client):
        request = RecommendRequest(users=(2, 5), n_items=4, with_scores=True)
        response = client.recommend(request)
        _ranked, scores = runtime.engine.recommend_batch(
            [2, 5], n_items=4, return_scores=True
        )
        assert all(np.allclose(a, b) for a, b in zip(response.scores, scores))

    def test_empty_request_serves_empty(self, client):
        response = client.recommend(RecommendRequest(users=(), n_items=3))
        assert response.rankings == []

    def test_pipelined_frames_echo_ids(self, gateway):
        host, port = gateway.address
        with GatewayClient(host, port, timeout=RESULT_TIMEOUT) as c:
            for i in range(10):
                c.send_frame({"id": f"frame-{i}", "users": [i], "n_items": 3})
            seen = {c.recv_frame()["id"] for _ in range(10)}
        assert seen == {f"frame-{i}" for i in range(10)}

    def test_stats_frame(self, client):
        client.recommend(RecommendRequest(users=(1,), n_items=3))
        stats = client.stats()
        assert stats["gateway"]["responses"] >= 1
        assert stats["gateway"]["connections"] >= 1
        assert stats["batching"]["requests"] >= 1
        assert "current_delay_ms" in stats["batching"]
        assert stats["generation"] >= 1
        # The fitted model's sweep-workspace counters ride along: the fit
        # built at least one pooled arena and reused it across sweeps.
        assert stats["training"]["iterations"] >= 1
        assert stats["training"]["peak_workspace_bytes"] > 0
        assert stats["training"]["workspace_allocations"] >= 1
        assert stats["training"]["workspace_reuses"] > 0

    def test_concurrent_connections_all_served(self, runtime, gateway):
        host, port = gateway.address
        expected = runtime.engine.recommend_batch(list(range(20)), n_items=4)
        failures = []

        def one_client(user: int) -> None:
            try:
                with GatewayClient(host, port, timeout=RESULT_TIMEOUT) as c:
                    response = c.recommend(
                        RecommendRequest(users=(user,), n_items=4)
                    )
                    if not np.array_equal(response.rankings[0], expected[user]):
                        failures.append((user, "mismatch"))
            except Exception as error:  # pragma: no cover - failure reporting
                failures.append((user, repr(error)))

        threads = [
            threading.Thread(target=one_client, args=(user,)) for user in range(20)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=RESULT_TIMEOUT)
        assert not failures


# --------------------------------------------------------------------------- #
# Failure containment
# --------------------------------------------------------------------------- #
class TestFailureModes:
    def test_malformed_json_is_per_frame(self, client):
        client._file.write(b"{this is not json\n")
        client._file.flush()
        frame = client.recv_frame()
        assert frame["ok"] is False
        assert frame["error"]["code"] == "bad-json"
        # The connection survived: the next frame serves normally.
        response = client.recommend(RecommendRequest(users=(1,), n_items=3))
        assert len(response.rankings) == 1

    def test_non_object_frame_rejected(self, client):
        client.send_frame([1, 2, 3])
        frame = client.recv_frame()
        assert frame["error"]["code"] == "bad-json"

    def test_unknown_field_is_bad_request(self, client):
        frame = client.request({"users": [1], "nitems": 5})
        assert frame["ok"] is False
        assert frame["error"]["code"] == "bad-request"
        assert "nitems" in frame["error"]["message"]

    def test_invalid_payload_is_bad_request(self, client):
        frame = client.request({"users": [1], "interactions": [[2]]})
        assert frame["error"]["code"] == "bad-request"

    def test_client_raises_typed_error(self, client):
        with pytest.raises(GatewayError, match="bad-request") as excinfo:
            # Bypass client-side validation with a raw frame round-trip.
            frame = client.request({"n_items": 3})
            if not frame.get("ok"):
                error = frame["error"]
                raise GatewayError(error["code"], error["message"])
        assert excinfo.value.code == "bad-request"

    def test_unknown_op(self, client):
        frame = client.request({"op": "explode"})
        assert frame["error"]["code"] == "unknown-op"

    def test_unpublished_runtime_answers_not_fitted(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with RecommenderRuntime(executor="serial") as rt:
                with BatchingFrontEnd(rt, max_delay_ms=1) as front:
                    with GatewayThread(front) as gw:
                        host, port = gw.address
                        with GatewayClient(host, port, timeout=RESULT_TIMEOUT) as c:
                            with pytest.raises(GatewayError) as excinfo:
                                c.recommend(RecommendRequest(users=(0,)))
                            assert excinfo.value.code == "not-fitted"
                            # The connection (and gateway) survived.
                            frame = c.request({"op": "stats"})
                            assert frame["ok"] is True

    def test_closing_gateway_rejects_new_frames(self, gateway, client):
        gateway.gateway._closing = True
        try:
            frame = client.request({"users": [1], "n_items": 3})
            assert frame["error"]["code"] == "closing"
        finally:
            gateway.gateway._closing = False
        response = client.recommend(RecommendRequest(users=(1,), n_items=3))
        assert len(response.rankings) == 1

    def test_disconnect_cancels_only_that_connection(self, runtime):
        # A huge accumulation delay parks requests in the batcher; the batch
        # only seals via the size cap.  Client A enqueues one row and
        # disconnects; its future is cancelled and dropped at dispatch, and
        # client B (sealing the batch by size) is served normally.
        with BatchingFrontEnd(runtime, max_delay_ms=30_000, max_batch_users=4) as front:
            with GatewayThread(front) as gw:
                host, port = gw.address
                doomed = GatewayClient(host, port, timeout=RESULT_TIMEOUT)
                doomed.send_frame({"users": [0], "n_items": 3})
                assert _wait_until(lambda: front.pending_requests == 1)
                assert gw.gateway.inflight == 1
                doomed.close()
                # The gateway notices the EOF, cancels A's frame task and
                # releases its admission slot.
                assert _wait_until(lambda: gw.gateway.inflight == 0)
                with GatewayClient(host, port, timeout=RESULT_TIMEOUT) as survivor:
                    response = survivor.recommend(
                        RecommendRequest(users=(1, 2, 3, 4), n_items=3)
                    )
                    assert len(response.rankings) == 4
                # Only the survivor's request was dispatched: A's cancelled
                # future was dropped before it could count as served.
                stats = front.stats()
                assert stats.requests == 1
                assert stats.users == 4

    def test_drain_on_close_resolves_in_flight(self, runtime):
        # Requests parked in the batcher when close() begins must resolve
        # and reach the socket before the connection shuts.
        with BatchingFrontEnd(runtime, max_delay_ms=400, max_batch_users=512) as front:
            gw = GatewayThread(front).start()
            host, port = gw.address
            client = GatewayClient(host, port, timeout=RESULT_TIMEOUT)
            try:
                for i in range(3):
                    client.send_frame({"id": i, "users": [i], "n_items": 3})
                assert _wait_until(lambda: front.pending_requests == 3)
                gw.close()  # drains: all three frames resolve during close
                frames = [client.recv_frame() for _ in range(3)]
                assert sorted(frame["id"] for frame in frames) == [0, 1, 2]
                assert all(frame["ok"] for frame in frames)
            finally:
                client.close()
                gw.close()


# --------------------------------------------------------------------------- #
# Generation pinning through the network layer
# --------------------------------------------------------------------------- #
class TestGenerationPinning:
    def test_responses_match_their_generation_across_swap(self, corpus):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with RecommenderRuntime(executor="serial") as rt:
                rt.fit(_model(), corpus)
                rt.publish()
                engines = {rt.generation: rt.engine}
                with BatchingFrontEnd(rt, max_delay_ms=1) as front:
                    with GatewayThread(front) as gw:
                        host, port = gw.address
                        collected = []
                        with GatewayClient(host, port, timeout=RESULT_TIMEOUT) as c:
                            users = (0, 5, 9)
                            request = RecommendRequest(users=users, n_items=5)
                            for _ in range(10):
                                collected.append(c.recommend(request))
                            # Mid-flight model swap: refit on the warm pool,
                            # then publish a structurally different model.
                            rt.refit()
                            rt.fit(_model(n_coclusters=8, random_state=7), corpus)
                            rt.update()
                            engines[rt.generation] = rt.engine
                            for _ in range(10):
                                collected.append(c.recommend(request))
                        generations = {response.generation for response in collected}
                        assert generations == set(engines)
                        for response in collected:
                            expected = engines[response.generation].recommend_batch(
                                list(users), n_items=5
                            )
                            assert all(
                                np.array_equal(a, b)
                                for a, b in zip(response.rankings, expected)
                            )


# --------------------------------------------------------------------------- #
# Fairness and adaptive delay through the gateway
# --------------------------------------------------------------------------- #
class TestFairnessAndAdaptivity:
    def test_flooding_tenant_does_not_starve_quiet_tenant(self, runtime):
        flood_n, quiet_n = 80, 5
        with BatchingFrontEnd(runtime, max_delay_ms=5, max_batch_users=8) as front:
            with GatewayThread(
                front, max_inflight=4, fair_queue=WeightedFairQueue()
            ) as gw:
                host, port = gw.address
                flood_done = []

                def flood() -> None:
                    with GatewayClient(host, port, timeout=RESULT_TIMEOUT) as c:
                        for i in range(flood_n):
                            c.send_frame(
                                {"id": i, "users": [i % 20], "n_items": 3,
                                 "tenant": "flood"}
                            )
                        for _ in range(flood_n):
                            c.recv_frame()
                            flood_done.append(time.monotonic())

                flooder = threading.Thread(target=flood)
                flooder.start()
                # Let the flood saturate the admission slots and pile deep
                # into the fair queue before the quiet tenant shows up.
                assert _wait_until(lambda: gw.gateway.queued > 20)
                with GatewayClient(host, port, timeout=RESULT_TIMEOUT) as c:
                    for i in range(quiet_n):
                        c.send_frame(
                            {"id": i, "users": [i], "n_items": 3,
                             "tenant": "quiet"}
                        )
                    frames = [c.recv_frame() for _ in range(quiet_n)]
                    floods_done_at_quiet_end = len(flood_done)
                assert all(frame["ok"] for frame in frames)
                flooder.join(timeout=RESULT_TIMEOUT)
                assert len(flood_done) == flood_n
                # DRR: the quiet tenant's requests interleave with the
                # flood instead of queueing behind its ~70 parked frames —
                # the last quiet response must land while most of the flood
                # is still waiting.
                assert floods_done_at_quiet_end < flood_n - 20

    def test_adaptive_delay_drops_under_light_load_through_gateway(self, runtime):
        controller = AdaptiveDelayController(
            floor_ms=0.25, ceiling_ms=12.0, slo_p95_ms=50.0, adjust_interval_s=0.005
        )
        with BatchingFrontEnd(runtime, max_delay_ms=12, adaptive=controller) as front:
            with GatewayThread(front) as gw:
                host, port = gw.address
                assert front.current_delay_ms == 12.0
                with GatewayClient(host, port, timeout=RESULT_TIMEOUT) as c:
                    for i in range(10):
                        c.recommend(RecommendRequest(users=(i,), n_items=3))
                        time.sleep(0.01)
                # Lone requests bought no occupancy: the controller walked
                # the delay down toward its floor.
                assert front.current_delay_ms < 12.0
                assert controller.adjustments > 0
                stats = front.stats()
                assert stats.current_delay_ms == front.current_delay_ms
