"""Tests for the shard-scheduler layer: nnz-balanced boundaries, the executor
registry, shared-memory process execution, and cross-executor factor parity."""

from __future__ import annotations

import os

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.backends import (
    ParallelBackend,
    VectorizedBackend,
    get_backend,
    nnz_balanced_ranges,
)
from repro.core.backends.plan import SweepSide
from repro.core.ocular import OCuLaR
from repro.data.datasets import make_netflix_like
from repro.exceptions import ConfigurationError
from repro.parallel import (
    SerialExecutor,
    ShardScheduler,
    SharedMemoryProcessExecutor,
    ThreadExecutor,
    attach_shared_array,
    available_executors,
    register_executor,
    resolve_executor,
)
from repro.parallel import scheduler as scheduler_module


def _dev_shm_entries() -> set:
    """Current /dev/shm entries (empty set where the mount does not exist)."""
    if not os.path.isdir("/dev/shm"):
        return set()
    return set(os.listdir("/dev/shm"))


# --------------------------------------------------------------------------- #
# nnz-balanced shard boundaries (pure function of the plan)
# --------------------------------------------------------------------------- #
class TestNnzBalancedRanges:
    def test_deterministic_pure_function(self):
        rng = np.random.default_rng(0)
        counts = rng.integers(0, 50, size=200)
        indptr = np.concatenate(([0], np.cumsum(counts)))
        first = nnz_balanced_ranges(indptr, 10, 180, 7)
        second = nnz_balanced_ranges(indptr, 10, 180, 7)
        assert first == second

    @pytest.mark.parametrize("n_shards", [1, 2, 3, 5, 8])
    def test_exact_cover_without_gaps(self, n_shards):
        rng = np.random.default_rng(1)
        counts = rng.integers(0, 20, size=37)
        indptr = np.concatenate(([0], np.cumsum(counts)))
        ranges = nnz_balanced_ranges(indptr, 0, 37, n_shards)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 37
        for (_, left_stop), (right_start, _) in zip(ranges, ranges[1:]):
            assert left_stop == right_start
        assert all(stop > start for start, stop in ranges)

    def test_balances_nnz_not_rows(self):
        # 4 heavy rows followed by 60 empty rows: row-count sharding would
        # give one worker all the nnz; nnz balancing spreads the heavy rows.
        counts = np.array([100] * 4 + [0] * 60)
        indptr = np.concatenate(([0], np.cumsum(counts)))
        ranges = nnz_balanced_ranges(indptr, 0, 64, 4)
        per_shard_nnz = [int(indptr[stop] - indptr[start]) for start, stop in ranges]
        assert max(per_shard_nnz) <= 200  # never more than 2 heavy rows together
        assert min(per_shard_nnz) >= 100  # every shard gets at least 1 heavy row

    def test_all_nnz_in_one_row(self):
        indptr = np.array([0, 1000, 1000, 1000, 1000, 1000])
        ranges = nnz_balanced_ranges(indptr, 0, 5, 3)
        assert ranges[0] == (0, 1)  # the giant row is isolated
        assert ranges[-1][1] == 5
        assert len(ranges) == 3

    def test_empty_rows_only(self):
        indptr = np.zeros(11, dtype=np.int64)
        ranges = nnz_balanced_ranges(indptr, 0, 10, 4)
        assert len(ranges) == 4
        assert ranges[0][0] == 0 and ranges[-1][1] == 10

    def test_more_shards_than_rows(self):
        indptr = np.array([0, 2, 4, 6])
        ranges = nnz_balanced_ranges(indptr, 0, 3, 10)
        assert ranges == [(0, 1), (1, 2), (2, 3)]

    def test_empty_row_range(self):
        indptr = np.array([0, 2, 4, 6])
        assert nnz_balanced_ranges(indptr, 2, 2, 3) == []

    def test_sub_range_offsets(self):
        indptr = np.array([0, 5, 6, 7, 8, 30])
        ranges = nnz_balanced_ranges(indptr, 1, 5, 2)
        assert ranges[0][0] == 1 and ranges[-1][1] == 5

    def test_invalid_inputs_rejected(self):
        indptr = np.array([0, 1, 2])
        with pytest.raises(ConfigurationError):
            nnz_balanced_ranges(indptr, 0, 3, 2)
        with pytest.raises(ConfigurationError):
            nnz_balanced_ranges(indptr, -1, 2, 2)
        with pytest.raises(ConfigurationError):
            nnz_balanced_ranges(indptr, 0, 2, 0)

    def test_sweep_side_method_matches_function(self):
        matrix = sp.csr_matrix((np.random.default_rng(2).random((9, 6)) < 0.4).astype(float))
        side = SweepSide.build(matrix)
        assert side.shard_ranges(3) == nnz_balanced_ranges(matrix.indptr, 0, 9, 3)
        assert side.shard_ranges(2, (1, 7)) == nnz_balanced_ranges(matrix.indptr, 1, 7, 2)

    @staticmethod
    def _assert_partition(ranges, start, stop):
        """Every result must tile [start, stop) with non-empty ranges."""
        assert ranges[0][0] == start and ranges[-1][1] == stop
        for (_, left_stop), (right_start, _) in zip(ranges, ranges[1:]):
            assert left_stop == right_start
        assert all(range_stop > range_start for range_start, range_stop in ranges)

    def test_giant_row_in_the_middle_with_many_shards(self):
        # One row owns all the weight, surrounded by empties; the clamping
        # must still hand every shard at least one row on both sides of it.
        counts = np.array([0] * 5 + [10_000] + [0] * 5)
        indptr = np.concatenate(([0], np.cumsum(counts)))
        ranges = nnz_balanced_ranges(indptr, 0, 11, 8)
        self._assert_partition(ranges, 0, 11)
        assert len(ranges) == 8

    def test_all_empty_rows_with_more_shards_than_rows(self):
        indptr = np.zeros(5, dtype=np.int64)
        ranges = nnz_balanced_ranges(indptr, 0, 4, 9)
        assert ranges == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_single_row_any_shard_count(self):
        indptr = np.array([0, 123])
        for n_shards in (1, 2, 16):
            assert nnz_balanced_ranges(indptr, 0, 1, n_shards) == [(0, 1)]

    def test_giant_row_inside_a_sub_range(self):
        # Sub-range sharding around a giant row: the offsets must hold and
        # the giant row may not leak rows from outside [start, stop).
        counts = np.array([3, 0, 5_000, 0, 0, 2, 1])
        indptr = np.concatenate(([0], np.cumsum(counts)))
        ranges = nnz_balanced_ranges(indptr, 1, 6, 3)
        self._assert_partition(ranges, 1, 6)
        assert len(ranges) == 3
        # The giant row (index 2) is isolated in its own shard.
        giant = [r for r in ranges if r[0] <= 2 < r[1]]
        assert giant == [(2, 3)] or giant[0][1] - giant[0][0] <= 2


# --------------------------------------------------------------------------- #
# Executor registry and scheduler
# --------------------------------------------------------------------------- #
class TestExecutorRegistry:
    def test_builtin_executors_registered(self):
        assert {"serial", "thread", "process"} <= set(available_executors())

    def test_resolve_by_name(self):
        serial = resolve_executor("serial")
        assert isinstance(serial, SerialExecutor)
        with resolve_executor("thread", max_workers=2) as threads:
            assert isinstance(threads, ThreadExecutor)

    def test_resolve_passthrough_instance(self):
        executor = SerialExecutor()
        assert resolve_executor(executor) is executor

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError) as excinfo:
            resolve_executor("spark")
        # The error teaches: every registered name is listed.
        for name in available_executors():
            assert name in str(excinfo.value)

    def test_non_executor_error_lists_registered_names(self):
        with pytest.raises(ConfigurationError) as excinfo:
            resolve_executor(object())
        assert "serial" in str(excinfo.value)
        assert "process" in str(excinfo.value)

    def test_instance_with_max_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_executor(SerialExecutor(), max_workers=2)

    def test_non_executor_object_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_executor(42)

    def test_register_custom_executor(self, monkeypatch):
        monkeypatch.setitem(
            scheduler_module._EXECUTOR_FACTORIES,
            "inline-test",
            lambda max_workers: SerialExecutor(),
        )
        assert "inline-test" in available_executors()
        assert isinstance(resolve_executor("inline-test"), SerialExecutor)

    def test_register_validates_inputs(self):
        with pytest.raises(ConfigurationError):
            register_executor("", lambda max_workers: SerialExecutor())
        with pytest.raises(ConfigurationError):
            register_executor("bad", None)


class TestShardScheduler:
    def test_lazy_construction_and_reuse_after_shutdown(self):
        scheduler = ShardScheduler("serial")
        assert scheduler.executor_name == "serial"
        assert scheduler.starmap(divmod, [(7, 3), (9, 2)]) == [(2, 1), (4, 1)]
        scheduler.shutdown()
        # A shut-down scheduler transparently rebuilds its executor.
        assert scheduler.map(abs, [-1, -2]) == [1, 2]
        scheduler.shutdown()

    def test_unknown_name_rejected_at_construction(self):
        with pytest.raises(ConfigurationError):
            ShardScheduler("gpu")

    def test_borrowed_instance_not_shut_down(self):
        with ThreadExecutor(max_workers=2) as executor:
            scheduler = ShardScheduler(executor)
            assert scheduler.executor is executor
            assert not scheduler.owns_executor
            scheduler.shutdown()
            scheduler.shutdown()  # idempotent on a borrowed instance too
            # The borrowed executor must survive the scheduler's shutdown.
            assert executor.map(abs, [-3]) == [3]

    def test_owned_scheduler_reports_ownership_and_live_executor(self):
        scheduler = ShardScheduler("serial")
        assert scheduler.owns_executor
        assert scheduler.live_executor is None  # lazy: nothing built yet
        scheduler.map(abs, [-1])
        assert scheduler.live_executor is not None
        scheduler.shutdown()
        assert scheduler.live_executor is None
        scheduler.shutdown()  # double shutdown is a no-op

    def test_context_manager(self):
        with ShardScheduler("thread", max_workers=2) as scheduler:
            assert scheduler.starmap(max, [(1, 2)]) == [2]

    def test_max_workers_with_instance_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardScheduler(SerialExecutor(), max_workers=2)


class TestGetBackendExecutor:
    def test_executor_configures_parallel(self):
        backend = get_backend("parallel", n_workers=2, executor="serial")
        assert isinstance(backend, ParallelBackend)
        assert backend.executor == "serial"

    def test_executor_rejected_for_other_backends(self):
        with pytest.raises(ConfigurationError):
            get_backend("vectorized", executor="thread")
        with pytest.raises(ConfigurationError):
            get_backend(ParallelBackend(n_workers=1), executor="thread")

    def test_unknown_executor_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelBackend(n_workers=1, executor="spark")

    def test_n_workers_with_executor_instance_rejected(self):
        # The instance's own pool size would silently win otherwise.
        with pytest.raises(ConfigurationError):
            ParallelBackend(n_workers=2, executor=SerialExecutor())

    def test_executor_instance_without_n_workers_accepted(self):
        matrix, row_factors, col_factors = _sweep_problem(3)
        vectorized, _ = VectorizedBackend().sweep(
            matrix, row_factors, col_factors, regularization=0.4
        )
        with ThreadExecutor(max_workers=2) as executor:
            backend = ParallelBackend(n_shards=3, executor=executor)
            sharded, _ = backend.sweep(matrix, row_factors, col_factors, regularization=0.4)
            backend.shutdown()  # borrowed: must leave the instance running
            assert executor.map(abs, [-1]) == [1]
        assert np.array_equal(vectorized, sharded)


# --------------------------------------------------------------------------- #
# Shared-memory executor mechanics
# --------------------------------------------------------------------------- #
class TestSharedMemoryPublication:
    def test_publish_roundtrip_and_slot_reuse(self):
        with SharedMemoryProcessExecutor(max_workers=1) as executor:
            array = np.arange(12, dtype=np.float64).reshape(3, 4)
            spec = executor.publish("slot", array)
            assert spec.shape == (3, 4)
            np.testing.assert_array_equal(attach_shared_array(spec), array)

            # Same key and shape: the segment is reused, the bytes refreshed.
            refreshed = executor.publish("slot", array * 2)
            assert refreshed.shm_name == spec.shm_name
            np.testing.assert_array_equal(attach_shared_array(refreshed), array * 2)

            # A shape change reallocates under the same key.
            regrown = executor.publish("slot", np.ones((5, 2)))
            assert regrown.shm_name != spec.shm_name
            assert len(executor.active_segment_names()) == 1

    def test_publish_static_copies_once(self):
        with SharedMemoryProcessExecutor(max_workers=1) as executor:
            array = np.arange(6, dtype=np.float64)
            first = executor.publish_static(array)
            second = executor.publish_static(array)
            assert first == second
            assert len(executor.active_segment_names()) == 1
            # Copy-once semantics: later in-place mutation of the source is
            # deliberately not propagated (plan arrays never mutate in a fit).
            array[0] = 99.0
            assert attach_shared_array(first)[0] == 0.0

    def test_publish_static_requires_contiguous(self):
        with SharedMemoryProcessExecutor(max_workers=1) as executor:
            with pytest.raises(ValueError):
                executor.publish_static(np.zeros((4, 4))[:, ::2])

    def test_shutdown_unlinks_all_segments(self):
        before = _dev_shm_entries()
        executor = SharedMemoryProcessExecutor(max_workers=1)
        executor.publish("a", np.zeros(1000))
        executor.publish_static(np.ones(1000))
        assert len(executor.active_segment_names()) == 2
        executor.shutdown()
        assert executor.active_segment_names() == []
        assert _dev_shm_entries() <= before

    def test_segment_cap_evicts_oldest(self):
        with SharedMemoryProcessExecutor(max_workers=1, max_segments=2) as executor:
            executor.publish("a", np.zeros(4))
            executor.publish("b", np.zeros(4))
            executor.publish("c", np.zeros(4))
            assert len(executor.active_segment_names()) == 2

    def test_non_evictable_segments_survive_lru_churn(self):
        with SharedMemoryProcessExecutor(max_workers=1, max_segments=3) as executor:
            pinned = executor.publish("model", np.arange(4.0), evictable=False)
            for call in range(6):  # churn past the cap with per-call slots
                executor.publish(("call", call), np.zeros(4))
            # The pinned publication is never the eviction victim...
            assert pinned.shm_name in executor.active_segment_names()
            np.testing.assert_array_equal(attach_shared_array(pinned), np.arange(4.0))
            # ...but an explicit unpublish still removes it.
            assert executor.unpublish("model") is True

    def test_all_non_evictable_exceeds_soft_cap(self):
        with SharedMemoryProcessExecutor(max_workers=1, max_segments=2) as executor:
            for index in range(4):
                executor.publish(("pin", index), np.zeros(2), evictable=False)
            # max_segments is a soft cap: pinned slots are not sacrificed.
            assert len(executor.active_segment_names()) == 4

    def test_attachment_budget_evicts_lru_claimed_mappings(self):
        # The worker-side byte budget: holder-claimed mappings (the shape a
        # cached engine generation has) are evicted least-recently-used
        # first, via the holder's evict callback, until the worker fits the
        # budget — the active set is never touched.
        from repro.parallel import shared_memory as shm

        claims: dict = {}  # name -> True, the fake worker-side cache

        def provider():
            return set(claims)

        def evict(name):
            claims.pop(name, None)

        holder = (provider, evict)
        # Flush unclaimed mappings earlier tests left in this process, so
        # the byte accounting below sees exactly our three segments.
        shm.close_stale_attachments(())
        shm._ATTACHMENT_HOLDERS.append(holder)
        try:
            with SharedMemoryProcessExecutor(max_workers=1) as executor:
                specs = [
                    executor.publish(("budget", index), np.zeros(1024))
                    for index in range(3)
                ]
                for spec in specs:
                    attach_shared_array(spec)
                    claims[spec.shm_name] = True
                # Refresh recency of the first mapping: 1 is now the LRU.
                attach_shared_array(specs[0])
                names = [spec.shm_name for spec in specs]
                sizes = {
                    name: shm._ATTACHMENTS[name].size for name in names
                }
                assert shm.attached_bytes() >= sum(sizes.values())

                # Budget admits two mappings; 2 is active, so the LRU
                # non-active mapping (1) is evicted, then the pass is under
                # budget and 0 survives despite being older than 2.
                budget = shm.attached_bytes() - 1
                closed = shm.close_stale_attachments({names[2]}, max_bytes=budget)
                assert closed == 1
                assert names[1] not in shm._ATTACHMENTS
                assert names[0] in shm._ATTACHMENTS
                assert names[2] in shm._ATTACHMENTS
                assert names[1] not in claims  # the cache was asked to drop it
                assert shm.attached_bytes() <= budget

                # An evict-less holder's claims are never evicted: its views
                # would segfault.  Budget 0 closes everything else but not
                # the active name or the permanently claimed one.
                shm._ATTACHMENT_HOLDERS.remove(holder)
                permanent = (lambda: {names[0]}, None)
                shm._ATTACHMENT_HOLDERS.append(permanent)
                try:
                    shm.close_stale_attachments({names[2]}, max_bytes=0)
                    assert names[0] in shm._ATTACHMENTS  # claimed, no evictor
                    assert names[2] in shm._ATTACHMENTS  # active
                finally:
                    shm._ATTACHMENT_HOLDERS.remove(permanent)
                    shm._ATTACHMENT_HOLDERS.append(holder)
        finally:
            claims.clear()
            shm._ATTACHMENT_HOLDERS.remove(holder)
            shm.close_stale_attachments(())

    def test_no_budget_keeps_claimed_mappings(self):
        # Without max_bytes the original contract holds: claimed mappings
        # stay open no matter how many there are.
        from repro.parallel import shared_memory as shm

        claims: set = set()
        holder = (lambda: set(claims), claims.discard)
        shm._ATTACHMENT_HOLDERS.append(holder)
        try:
            with SharedMemoryProcessExecutor(max_workers=1) as executor:
                specs = [
                    executor.publish(("nobudget", index), np.zeros(256))
                    for index in range(4)
                ]
                for spec in specs:
                    attach_shared_array(spec)
                    claims.add(spec.shm_name)
                assert shm.close_stale_attachments(()) == 0
                for spec in specs:
                    assert spec.shm_name in shm._ATTACHMENTS
        finally:
            claims.clear()
            shm._ATTACHMENT_HOLDERS.remove(holder)
            shm.close_stale_attachments(())

    def test_plain_starmap_still_works(self):
        # The process entry of the registry doubles as an ordinary process
        # pool for pickled tasks (serving shards, grid-search combinations).
        with SharedMemoryProcessExecutor(max_workers=2) as executor:
            assert executor.starmap(divmod, [(7, 3), (9, 2)]) == [(2, 1), (4, 1)]

    def test_unpublish_single_slot(self):
        before = _dev_shm_entries()
        with SharedMemoryProcessExecutor(max_workers=1) as executor:
            spec = executor.publish("slot", np.zeros(8))
            assert spec.shm_name in _dev_shm_entries()
            assert executor.unpublish("slot") is True
            assert spec.shm_name not in _dev_shm_entries()
            assert executor.active_segment_names() == []
            # Unknown keys report False instead of raising.
            assert executor.unpublish("slot") is False
            assert executor.unpublish("never-published") is False
        assert _dev_shm_entries() <= before

    def test_release_static_only_drops_static_segments(self):
        with SharedMemoryProcessExecutor(max_workers=1) as executor:
            slot = executor.publish("slot", np.zeros(4))
            executor.publish_static(np.ones(4))
            executor.publish_static(np.full(4, 2.0))
            assert executor.release_static() == 2
            assert executor.active_segment_names() == [slot.shm_name]
            assert executor.release_static() == 0

    def test_double_shutdown_is_idempotent(self):
        executor = SharedMemoryProcessExecutor(max_workers=1)
        executor.publish("slot", np.zeros(4))
        executor.shutdown()
        assert executor.is_shut_down
        executor.shutdown()  # second call must be a no-op, not an error
        assert executor.active_segment_names() == []

    def test_publish_after_shutdown_rejected(self):
        executor = SharedMemoryProcessExecutor(max_workers=1)
        executor.shutdown()
        with pytest.raises(RuntimeError):
            executor.publish("slot", np.zeros(4))
        with pytest.raises(RuntimeError):
            executor.publish_static(np.zeros(4))


# --------------------------------------------------------------------------- #
# Cross-executor factor parity (the acceptance criterion)
# --------------------------------------------------------------------------- #
def _sweep_problem(seed, n_rows=23, n_cols=11, k=4):
    rng = np.random.default_rng(seed)
    dense = (rng.random((n_rows, n_cols)) < 0.3).astype(float)
    if n_rows > 2:
        dense[0] = 0.0  # keep an empty row in play
    matrix = sp.csr_matrix(dense)
    row_factors = rng.uniform(0.05, 0.9, size=(n_rows, k))
    col_factors = rng.uniform(0.05, 0.9, size=(n_cols, k))
    return matrix, row_factors, col_factors


class TestThreeWayExecutorParity:
    @pytest.mark.parametrize("n_shards", [1, 2, 5])
    def test_single_sweep_parity(self, n_shards):
        matrix, row_factors, col_factors = _sweep_problem(n_shards)
        vectorized, vec_stats = VectorizedBackend().sweep(
            matrix, row_factors, col_factors, regularization=0.4
        )
        for executor in ("serial", "thread", "process"):
            with ParallelBackend(n_workers=2, n_shards=n_shards, executor=executor) as backend:
                sharded, stats = backend.sweep(
                    matrix, row_factors, col_factors, regularization=0.4
                )
            assert np.array_equal(vectorized, sharded), executor
            assert stats == vec_stats, executor

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    @pytest.mark.parametrize("n_shards", [1, 2, 5])
    def test_process_training_parity(self, dtype, n_shards):
        matrix, _spec = make_netflix_like(n_users=120, n_items=50, random_state=0)

        def fit(backend):
            model = OCuLaR(
                n_coclusters=6,
                regularization=5.0,
                max_iterations=2,
                tolerance=0.0,
                backend=backend,
                dtype=dtype,
                random_state=0,
            )
            with pytest.warns(Warning):
                model.fit(matrix)
            return model

        vectorized = fit("vectorized")
        with ParallelBackend(n_workers=2, n_shards=n_shards, executor="process") as backend:
            process = fit(backend)

        assert process.factors_.user_factors.dtype == np.dtype(dtype)
        assert np.array_equal(
            vectorized.factors_.user_factors, process.factors_.user_factors
        )
        assert np.array_equal(
            vectorized.factors_.item_factors, process.factors_.item_factors
        )
        np.testing.assert_array_equal(
            vectorized.history_.objective_values, process.history_.objective_values
        )

    def test_weighted_sweep_process_parity(self):
        # R-OCuLaR weights are baked into the plan; the shared-memory path
        # must ship them too.
        matrix, row_factors, col_factors = _sweep_problem(7)
        rng = np.random.default_rng(7)
        kwargs = dict(
            regularization=0.4,
            row_positive_weights=rng.uniform(0.5, 2.0, matrix.shape[0]),
            col_positive_weights=rng.uniform(0.5, 2.0, matrix.shape[1]),
        )
        vectorized, _ = VectorizedBackend().sweep(matrix, row_factors, col_factors, **kwargs)
        with ParallelBackend(n_workers=2, n_shards=3, executor="process") as backend:
            sharded, _ = backend.sweep(matrix, row_factors, col_factors, **kwargs)
        assert np.array_equal(vectorized, sharded)


# --------------------------------------------------------------------------- #
# Shared-memory lifecycle across a fit (no /dev/shm leaks)
# --------------------------------------------------------------------------- #
@pytest.mark.skipif(not os.path.isdir("/dev/shm"), reason="requires a /dev/shm mount")
class TestSharedMemoryFitLifecycle:
    def test_name_configured_fit_unlinks_everything(self):
        matrix, _spec = make_netflix_like(n_users=100, n_items=40, random_state=1)
        before = _dev_shm_entries()
        model = OCuLaR(
            n_coclusters=5,
            regularization=5.0,
            max_iterations=2,
            tolerance=0.0,
            backend="parallel",
            executor="process",
            n_workers=2,
            random_state=0,
        )
        with pytest.warns(Warning):
            model.fit(matrix)
        assert _dev_shm_entries() <= before

    def test_borrowed_backend_cleans_up_on_exit(self):
        matrix, _spec = make_netflix_like(n_users=100, n_items=40, random_state=1)
        before = _dev_shm_entries()
        with ParallelBackend(n_workers=2, n_shards=2, executor="process") as backend:
            model = OCuLaR(
                n_coclusters=5,
                regularization=5.0,
                max_iterations=2,
                tolerance=0.0,
                backend=backend,
                random_state=0,
            )
            with pytest.warns(Warning):
                model.fit(matrix)
            # The fit borrowed the backend, so its segments live until the
            # owner releases them...
            assert len(_dev_shm_entries() - before) > 0
        # ...which the context exit just did.
        assert _dev_shm_entries() <= before
