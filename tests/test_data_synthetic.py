"""Tests for repro.data.synthetic (planted co-clusters and the paper toy)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import (
    make_paper_toy_example,
    make_planted_coclusters,
    membership_recovery_score,
)
from repro.exceptions import DataError


class TestPaperToyExample:
    def test_shape_and_holes(self):
        toy = make_paper_toy_example()
        assert toy.matrix.shape == (12, 12)
        assert len(toy.heldout_pairs) == 3
        # The paper's headline candidate recommendation is (user 6, item 4).
        assert (6, 4) in toy.heldout_pairs
        for user, item in toy.heldout_pairs:
            assert not toy.matrix.contains(user, item)

    def test_three_overlapping_coclusters(self):
        toy = make_paper_toy_example()
        assert toy.n_coclusters == 3
        # User 6 overlaps co-clusters 2 and 3; item 4 appears in all three.
        user_member_count = sum(1 for users in toy.user_memberships if 6 in users)
        item_member_count = sum(1 for items in toy.item_memberships if 4 in items)
        assert user_member_count == 2
        assert item_member_count == 3

    def test_users_and_items_outside_all_coclusters_are_empty(self):
        toy = make_paper_toy_example()
        degrees = toy.matrix.user_degrees()
        for user in (3, 10, 11):
            assert degrees[user] == 0

    def test_membership_indicator_matrices(self):
        toy = make_paper_toy_example()
        user_indicator = toy.membership_matrix_users()
        item_indicator = toy.membership_matrix_items()
        assert user_indicator.shape == (12, 3)
        assert item_indicator.shape == (12, 3)
        assert user_indicator[6].sum() == 2
        assert item_indicator[4].sum() == 3

    def test_deterministic(self):
        assert make_paper_toy_example().matrix == make_paper_toy_example().matrix


class TestPlantedCoClusters:
    def test_basic_shape_and_memberships(self):
        planted = make_planted_coclusters(
            n_users=60, n_items=40, n_coclusters=3, users_per_cocluster=20,
            items_per_cocluster=10, random_state=0,
        )
        assert planted.matrix.shape == (60, 40)
        assert planted.n_coclusters == 3
        for users, items in zip(planted.user_memberships, planted.item_memberships):
            assert len(users) == 20
            assert len(items) == 10

    def test_within_density_dominates_background(self):
        planted = make_planted_coclusters(
            n_users=80, n_items=60, n_coclusters=2, users_per_cocluster=30,
            items_per_cocluster=20, within_density=0.9, background_density=0.01,
            random_state=1,
        )
        dense = planted.matrix.toarray()
        inside_mask = np.zeros_like(dense, dtype=bool)
        for users, items in zip(planted.user_memberships, planted.item_memberships):
            inside_mask[np.ix_(users, items)] = True
        inside_density = dense[inside_mask].mean()
        outside_density = dense[~inside_mask].mean()
        assert inside_density > 0.7
        assert outside_density < 0.1

    def test_holdout_pairs_removed_from_matrix(self):
        planted = make_planted_coclusters(
            holdout_fraction=0.2, random_state=2, n_users=50, n_items=40,
            users_per_cocluster=20, items_per_cocluster=15, n_coclusters=2,
        )
        assert planted.heldout_pairs
        for user, item in planted.heldout_pairs:
            assert not planted.matrix.contains(user, item)

    def test_non_overlapping_mode_partitions(self):
        planted = make_planted_coclusters(
            n_users=60, n_items=40, n_coclusters=3, users_per_cocluster=20,
            items_per_cocluster=10, overlap=False, random_state=3,
        )
        all_users = np.concatenate(planted.user_memberships)
        assert len(all_users) == len(set(all_users.tolist()))

    def test_deterministic_given_seed(self):
        first = make_planted_coclusters(random_state=11)
        second = make_planted_coclusters(random_state=11)
        assert first.matrix == second.matrix

    def test_rejects_oversized_coclusters(self):
        with pytest.raises(DataError):
            make_planted_coclusters(n_users=10, users_per_cocluster=20)

    def test_rejects_bad_holdout_fraction(self):
        with pytest.raises(DataError):
            make_planted_coclusters(holdout_fraction=1.0)

    def test_rejects_disjoint_that_does_not_fit(self):
        with pytest.raises(DataError):
            make_planted_coclusters(
                n_users=30, n_coclusters=4, users_per_cocluster=10, overlap=False
            )


class TestMembershipRecoveryScore:
    def test_perfect_recovery_is_one(self):
        truth = [np.array([0, 1, 2]), np.array([3, 4])]
        assert membership_recovery_score(truth, truth, universe=5) == pytest.approx(1.0)

    def test_disjoint_recovery_is_zero(self):
        truth = [np.array([0, 1])]
        estimate = [np.array([2, 3])]
        assert membership_recovery_score(truth, estimate, universe=4) == 0.0

    def test_partial_overlap(self):
        truth = [np.array([0, 1, 2, 3])]
        estimate = [np.array([2, 3, 4, 5])]
        score = membership_recovery_score(truth, estimate, universe=6)
        assert score == pytest.approx(2 / 6)

    def test_requires_valid_indices(self):
        with pytest.raises(DataError):
            membership_recovery_score([np.array([0, 99])], [np.array([0])], universe=5)

    def test_requires_non_empty_truth(self):
        with pytest.raises(DataError):
            membership_recovery_score([], [np.array([0])], universe=5)
