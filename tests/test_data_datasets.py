"""Tests for the synthetic dataset generators (repro.data.datasets)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.datasets import (
    dataset_by_name,
    make_b2b,
    make_citeulike_like,
    make_movielens_like,
    make_netflix_like,
)
from repro.exceptions import DataError


class TestMovieLensLike:
    def test_shape_and_spec(self):
        matrix, spec = make_movielens_like(n_users=100, n_items=60, random_state=0)
        assert matrix.shape == (100, 60)
        assert spec.name == "movielens-like"
        assert spec.n_users == 100
        assert "MovieLens" in spec.paper_reference

    def test_density_in_reasonable_range(self):
        matrix, spec = make_movielens_like(n_users=200, n_items=150, random_state=0)
        assert 0.01 < matrix.density < 0.30
        assert spec.target_density == pytest.approx(matrix.density, abs=1e-9)

    def test_no_empty_users_or_items(self):
        matrix, _ = make_movielens_like(n_users=150, n_items=100, random_state=1)
        assert matrix.user_degrees().min() >= 1
        assert matrix.item_degrees().min() >= 1

    def test_deterministic_given_seed(self):
        first, _ = make_movielens_like(n_users=80, n_items=50, random_state=5)
        second, _ = make_movielens_like(n_users=80, n_items=50, random_state=5)
        assert first == second

    def test_different_seeds_differ(self):
        first, _ = make_movielens_like(n_users=80, n_items=50, random_state=5)
        second, _ = make_movielens_like(n_users=80, n_items=50, random_state=6)
        assert first != second

    def test_has_labels(self):
        matrix, _ = make_movielens_like(n_users=30, n_items=20, random_state=0)
        assert matrix.label_of_item(0).startswith("Movie")
        assert matrix.label_of_user(0).startswith("Viewer")


class TestCiteULikeLike:
    def test_more_items_than_users_and_sparser(self):
        cul, cul_spec = make_citeulike_like(n_users=120, n_items=300, random_state=0)
        ml, _ = make_movielens_like(n_users=120, n_items=300, random_state=0)
        assert cul.shape == (120, 300)
        assert cul.density < ml.density

    def test_popularity_skew(self):
        matrix, _ = make_citeulike_like(n_users=150, n_items=400, random_state=0)
        degrees = np.sort(matrix.item_degrees())[::-1]
        top_share = degrees[: len(degrees) // 10].sum() / degrees.sum()
        assert top_share > 0.15  # the popular tenth carries a clear share


class TestNetflixLike:
    def test_is_largest_default_corpus(self):
        matrix, spec = make_netflix_like(n_users=400, n_items=200, random_state=0)
        assert matrix.shape == (400, 200)
        assert spec.name == "netflix-like"
        assert matrix.nnz > 1000


class TestB2B:
    def test_structure_and_metadata(self):
        dataset = make_b2b(n_clients=60, n_products=15, random_state=0)
        assert dataset.matrix.shape == (60, 15)
        assert len(dataset.client_names) == 60
        assert len(dataset.client_industries) == 60
        assert len(dataset.product_names) == 15
        assert dataset.spec is not None and dataset.spec.name == "b2b-like"

    def test_deal_values_cover_every_positive(self):
        dataset = make_b2b(n_clients=40, n_products=12, random_state=1)
        for user, item in dataset.matrix.iter_pairs():
            assert (user, item) in dataset.deal_values
            assert dataset.deal_values[(user, item)] > 0

    def test_historical_prices(self):
        dataset = make_b2b(n_clients=40, n_products=12, random_state=1)
        some_item = int(dataset.matrix.pairs()[0][1])
        prices = dataset.historical_prices(some_item)
        assert prices
        assert all(price > 0 for price in prices)

    def test_client_names_reflect_industry(self):
        dataset = make_b2b(n_clients=30, n_products=10, random_state=2)
        for name, industry in zip(dataset.client_names, dataset.client_industries):
            assert industry in name

    def test_matrix_labels_are_names(self):
        dataset = make_b2b(n_clients=30, n_products=10, random_state=2)
        assert dataset.matrix.label_of_user(0) == dataset.client_names[0]
        assert dataset.matrix.label_of_item(3) == dataset.product_names[3]


class TestDatasetByName:
    @pytest.mark.parametrize("name", ["movielens", "citeulike", "netflix", "b2b"])
    def test_known_names(self, name):
        matrix, spec = dataset_by_name(name, random_state=0, scale=0.05)
        assert matrix.nnz > 0
        assert spec.n_users == matrix.n_users

    def test_scale_changes_size(self):
        small, _ = dataset_by_name("movielens", random_state=0, scale=0.05)
        large, _ = dataset_by_name("movielens", random_state=0, scale=0.1)
        assert large.n_users > small.n_users

    def test_unknown_name_raises(self):
        with pytest.raises(DataError):
            dataset_by_name("lastfm")

    def test_non_positive_scale_raises(self):
        with pytest.raises(DataError):
            dataset_by_name("movielens", scale=0.0)
