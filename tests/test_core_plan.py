"""Tests for the precomputed sweep plans (SweepSide / SweepPlan)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.backends import (
    SweepPlan,
    SweepSide,
    VectorizedBackend,
)
from repro.exceptions import ConfigurationError


@pytest.fixture
def matrix():
    rng = np.random.default_rng(3)
    dense = (rng.random((15, 9)) < 0.3).astype(float)
    dense[4] = 0.0  # an empty row
    return sp.csr_matrix(dense)


class TestSweepSide:
    def test_row_index_matches_tocoo(self, matrix):
        side = SweepSide.build(matrix)
        np.testing.assert_array_equal(side.row_index, matrix.tocoo().row)
        assert side.nnz == matrix.nnz
        assert side.n_rows == matrix.shape[0]
        assert side.n_cols == matrix.shape[1]

    def test_no_weights_means_none(self, matrix):
        assert SweepSide.build(matrix).entry_weights is None

    def test_entry_weights_are_products(self, matrix):
        rng = np.random.default_rng(0)
        row_weights = rng.uniform(0.5, 2.0, matrix.shape[0])
        col_weights = rng.uniform(0.5, 2.0, matrix.shape[1])
        side = SweepSide.build(
            matrix, row_positive_weights=row_weights, col_positive_weights=col_weights
        )
        coo = matrix.tocoo()
        np.testing.assert_allclose(
            side.entry_weights, row_weights[coo.row] * col_weights[coo.col]
        )

    def test_weight_length_validated(self, matrix):
        with pytest.raises(ConfigurationError):
            SweepSide.build(matrix, row_positive_weights=np.ones(3))
        with pytest.raises(ConfigurationError):
            SweepSide.build(matrix, col_positive_weights=np.ones(3))

    def test_dtype_cast(self, matrix):
        side = SweepSide.build(matrix, dtype=np.float32)
        assert side.dtype == np.float32
        assert side.matrix.data.dtype == np.float32
        weighted = SweepSide.build(
            matrix, row_positive_weights=np.ones(matrix.shape[0]), dtype=np.float32
        )
        assert weighted.entry_weights.dtype == np.float32

    def test_rejects_non_float_dtype(self, matrix):
        with pytest.raises(ConfigurationError):
            SweepSide.build(matrix, dtype=np.int32)

    def test_empty_matrix(self):
        side = SweepSide.build(sp.csr_matrix((0, 7)))
        assert side.n_rows == 0
        assert side.nnz == 0
        assert len(side.row_index) == 0


class TestSweepPlan:
    def test_sides_are_transposes(self, matrix):
        plan = SweepPlan.build(matrix)
        assert plan.n_users == matrix.shape[0]
        assert plan.n_items == matrix.shape[1]
        assert plan.nnz == matrix.nnz
        np.testing.assert_array_equal(
            plan.item_side.matrix.toarray(), plan.user_side.matrix.toarray().T
        )

    def test_user_weights_ride_the_right_side(self, matrix):
        weights = np.linspace(0.5, 3.0, matrix.shape[0])
        plan = SweepPlan.build(matrix, user_weights=weights)
        user_coo = plan.user_side.matrix.tocoo()
        np.testing.assert_allclose(
            plan.user_side.entry_weights, weights[user_coo.row]
        )
        item_coo = plan.item_side.matrix.tocoo()
        np.testing.assert_allclose(
            plan.item_side.entry_weights, weights[item_coo.col]
        )

    def test_plan_dtype(self, matrix):
        assert SweepPlan.build(matrix).dtype == np.float64
        assert SweepPlan.build(matrix, dtype="float32").dtype == np.float32


class TestPlanDrivenSweep:
    """Backend.sweep consumes a prebuilt plan identically to a raw matrix."""

    def _factors(self, matrix, k=4, seed=1):
        rng = np.random.default_rng(seed)
        return (
            rng.uniform(0.05, 0.8, size=(matrix.shape[0], k)),
            rng.uniform(0.05, 0.8, size=(matrix.shape[1], k)),
        )

    def test_plan_sweep_equals_matrix_sweep(self, matrix):
        row_factors, col_factors = self._factors(matrix)
        backend = VectorizedBackend()
        from_matrix, _ = backend.sweep(matrix, row_factors, col_factors, 0.5)
        side = SweepSide.build(matrix)
        from_plan, _ = backend.sweep(None, row_factors, col_factors, 0.5, plan=side)
        np.testing.assert_array_equal(from_matrix, from_plan)

    def test_row_range_returns_the_slice(self, matrix):
        row_factors, col_factors = self._factors(matrix)
        backend = VectorizedBackend()
        full, _ = backend.sweep(matrix, row_factors, col_factors, 0.5)
        side = SweepSide.build(matrix)
        partial, stats = backend.sweep(
            None, row_factors, col_factors, 0.5, plan=side, row_range=(3, 9)
        )
        assert partial.shape == (6, row_factors.shape[1])
        np.testing.assert_array_equal(partial, full[3:9])
        assert stats.n_rows == 6

    def test_missing_matrix_and_plan_raises(self, matrix):
        row_factors, col_factors = self._factors(matrix)
        with pytest.raises(ConfigurationError):
            VectorizedBackend().sweep(None, row_factors, col_factors, 0.5)

    def test_matrix_with_plan_raises(self, matrix):
        # A plan owns its matrix; a second one would be silently ignored.
        row_factors, col_factors = self._factors(matrix)
        side = SweepSide.build(matrix)
        with pytest.raises(ConfigurationError):
            VectorizedBackend().sweep(matrix, row_factors, col_factors, 0.5, plan=side)

    def test_weights_with_plan_raises(self, matrix):
        row_factors, col_factors = self._factors(matrix)
        side = SweepSide.build(matrix)
        with pytest.raises(ConfigurationError):
            VectorizedBackend().sweep(
                None,
                row_factors,
                col_factors,
                0.5,
                plan=side,
                row_positive_weights=np.ones(matrix.shape[0]),
            )

    def test_mismatched_factors_raise(self, matrix):
        row_factors, col_factors = self._factors(matrix)
        side = SweepSide.build(matrix)
        with pytest.raises(ConfigurationError):
            VectorizedBackend().sweep(
                None, row_factors[:-1], col_factors, 0.5, plan=side
            )
        with pytest.raises(ConfigurationError):
            VectorizedBackend().sweep(
                None, row_factors, col_factors[:-1], 0.5, plan=side
            )

    @pytest.mark.parametrize(
        "row_range", [(-1, 5), (5, 3), (0, 99), ("a", 2)]
    )
    def test_bad_row_range_raises(self, matrix, row_range):
        row_factors, col_factors = self._factors(matrix)
        side = SweepSide.build(matrix)
        with pytest.raises(ConfigurationError):
            VectorizedBackend().sweep(
                None, row_factors, col_factors, 0.5, plan=side, row_range=row_range
            )

    def test_no_tocoo_in_plan_driven_sweep(self, matrix, monkeypatch):
        """The hot path must not rebuild COO structure per sweep."""
        side = SweepSide.build(matrix)
        row_factors, col_factors = self._factors(matrix)

        def boom(self, *args, **kwargs):  # pragma: no cover - trap
            raise AssertionError("tocoo() called inside a plan-driven sweep")

        monkeypatch.setattr(sp.csr_matrix, "tocoo", boom)
        monkeypatch.setattr(sp.csr_array, "tocoo", boom, raising=False)
        VectorizedBackend().sweep(None, row_factors, col_factors, 0.5, plan=side)
