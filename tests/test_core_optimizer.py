"""Tests for the block-coordinate trainer."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.init import initialize_factors
from repro.core.objective import full_objective
from repro.core.optimizer import BlockCoordinateTrainer, TrainingHistory
from repro.exceptions import ConfigurationError


@pytest.fixture
def training_problem():
    rng = np.random.default_rng(4)
    dense = (rng.random((30, 20)) < 0.2).astype(float)
    dense[0, 0] = 1.0
    matrix = sp.csr_matrix(dense)
    user_factors, item_factors = initialize_factors(matrix, 5, random_state=4)
    return matrix, user_factors, item_factors


class TestConstructorValidation:
    def test_rejects_negative_regularization(self):
        with pytest.raises(ConfigurationError):
            BlockCoordinateTrainer(regularization=-1.0)

    def test_rejects_bad_sigma_beta(self):
        with pytest.raises(ConfigurationError):
            BlockCoordinateTrainer(sigma=0.0)
        with pytest.raises(ConfigurationError):
            BlockCoordinateTrainer(beta=1.0)

    def test_rejects_non_positive_iterations(self):
        with pytest.raises(ConfigurationError):
            BlockCoordinateTrainer(max_iterations=0)

    def test_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError):
            BlockCoordinateTrainer(backend="gpu")


class TestTraining:
    def test_objective_monotonically_non_increasing(self, training_problem):
        matrix, user_factors, item_factors = training_problem
        trainer = BlockCoordinateTrainer(regularization=1.0, max_iterations=20, tolerance=0.0)
        _, _, history = trainer.train(matrix, user_factors, item_factors)
        values = history.objective_values
        assert all(later <= earlier + 1e-8 for earlier, later in zip(values, values[1:]))

    def test_factors_remain_non_negative(self, training_problem):
        matrix, user_factors, item_factors = training_problem
        trainer = BlockCoordinateTrainer(regularization=1.0, max_iterations=10)
        fitted_users, fitted_items, _ = trainer.train(matrix, user_factors, item_factors)
        assert (fitted_users >= 0).all()
        assert (fitted_items >= 0).all()

    def test_inputs_not_modified(self, training_problem):
        matrix, user_factors, item_factors = training_problem
        user_copy, item_copy = user_factors.copy(), item_factors.copy()
        BlockCoordinateTrainer(max_iterations=3).train(matrix, user_factors, item_factors)
        np.testing.assert_array_equal(user_factors, user_copy)
        np.testing.assert_array_equal(item_factors, item_copy)

    def test_history_bookkeeping(self, training_problem):
        matrix, user_factors, item_factors = training_problem
        trainer = BlockCoordinateTrainer(max_iterations=5, tolerance=0.0)
        _, _, history = trainer.train(matrix, user_factors, item_factors)
        assert isinstance(history, TrainingHistory)
        assert history.n_iterations == 5
        assert len(history.objective_values) == 6  # initial value + one per iteration
        assert len(history.log_likelihoods) == 6
        assert len(history.iteration_seconds) == 5
        assert len(history.elapsed_seconds) == 5
        assert history.final_objective == history.objective_values[-1]
        assert history.mean_seconds_per_iteration > 0

    def test_convergence_flag_set_when_tolerance_met(self, training_problem):
        matrix, user_factors, item_factors = training_problem
        trainer = BlockCoordinateTrainer(regularization=1.0, max_iterations=200, tolerance=1e-3)
        _, _, history = trainer.train(matrix, user_factors, item_factors)
        assert history.converged
        assert history.n_iterations < 200

    def test_warns_when_budget_exhausted(self, training_problem):
        matrix, user_factors, item_factors = training_problem
        trainer = BlockCoordinateTrainer(max_iterations=1, tolerance=0.0)
        with pytest.warns(UserWarning):
            trainer.train(matrix, user_factors, item_factors)

    def test_callback_can_stop_early(self, training_problem):
        matrix, user_factors, item_factors = training_problem
        trainer = BlockCoordinateTrainer(max_iterations=50, tolerance=0.0)
        _, _, history = trainer.train(
            matrix, user_factors, item_factors, callback=lambda it, hist: it >= 2
        )
        assert history.n_iterations == 2

    def test_backends_produce_identical_training(self, training_problem):
        matrix, user_factors, item_factors = training_problem
        results = {}
        for backend in ("reference", "vectorized"):
            trainer = BlockCoordinateTrainer(
                regularization=1.0, max_iterations=5, tolerance=0.0, backend=backend
            )
            fitted_users, fitted_items, history = trainer.train(
                matrix, user_factors, item_factors
            )
            results[backend] = (fitted_users, fitted_items, history.objective_values)
        np.testing.assert_allclose(
            results["reference"][0], results["vectorized"][0], rtol=1e-7, atol=1e-9
        )
        np.testing.assert_allclose(
            results["reference"][2], results["vectorized"][2], rtol=1e-7
        )

    @pytest.mark.parametrize("n_workers", [1, 2, 5])
    def test_parallel_training_is_bit_identical(self, training_problem, n_workers):
        matrix, user_factors, item_factors = training_problem
        fitted = {}
        for backend in ("vectorized", "parallel"):
            trainer = BlockCoordinateTrainer(
                regularization=1.0,
                max_iterations=5,
                tolerance=0.0,
                backend=backend,
                n_workers=n_workers if backend == "parallel" else None,
            )
            fitted[backend] = trainer.train(matrix, user_factors, item_factors)
        np.testing.assert_array_equal(fitted["vectorized"][0], fitted["parallel"][0])
        np.testing.assert_array_equal(fitted["vectorized"][1], fitted["parallel"][1])
        np.testing.assert_array_equal(
            fitted["vectorized"][2].objective_values,
            fitted["parallel"][2].objective_values,
        )

    def test_n_workers_rejected_for_non_parallel_backend(self):
        with pytest.raises(ConfigurationError):
            BlockCoordinateTrainer(backend="vectorized", n_workers=2)

    def test_sweep_stats_recorded(self, training_problem):
        matrix, user_factors, item_factors = training_problem
        trainer = BlockCoordinateTrainer(max_iterations=4, tolerance=0.0)
        _, _, history = trainer.train(matrix, user_factors, item_factors)
        assert len(history.item_sweep_stats) == 4
        assert len(history.user_sweep_stats) == 4
        assert all(stats.n_rows == matrix.shape[1] for stats in history.item_sweep_stats)
        assert all(stats.n_rows == matrix.shape[0] for stats in history.user_sweep_stats)
        assert 0.0 <= history.mean_item_acceptance_rate <= 1.0
        assert 0.0 <= history.mean_user_acceptance_rate <= 1.0
        assert history.total_backtracks >= 0
        # Well-conditioned toy problems accept nearly every step.
        assert history.mean_user_acceptance_rate > 0.5

    def test_sweep_stats_count_inner_sweeps(self, training_problem):
        matrix, user_factors, item_factors = training_problem
        trainer = BlockCoordinateTrainer(max_iterations=3, tolerance=0.0, inner_sweeps=2)
        _, _, history = trainer.train(matrix, user_factors, item_factors)
        assert len(history.item_sweep_stats) == 6
        assert len(history.user_sweep_stats) == 6

    def test_float32_training_stays_float32(self, training_problem):
        matrix, user_factors, item_factors = training_problem
        trainer = BlockCoordinateTrainer(max_iterations=3, tolerance=0.0)
        fitted_users, fitted_items, history = trainer.train(
            matrix,
            user_factors.astype(np.float32),
            item_factors.astype(np.float32),
        )
        assert fitted_users.dtype == np.float32
        assert fitted_items.dtype == np.float32
        values = history.objective_values
        assert all(later <= earlier + 1e-3 for earlier, later in zip(values, values[1:]))

    def test_mixed_dtype_factors_rejected(self, training_problem):
        matrix, user_factors, item_factors = training_problem
        trainer = BlockCoordinateTrainer(max_iterations=2)
        with pytest.raises(ConfigurationError):
            trainer.train(matrix, user_factors.astype(np.float32), item_factors)

    def test_non_finite_factors_rejected(self, training_problem):
        matrix, user_factors, item_factors = training_problem
        trainer = BlockCoordinateTrainer(max_iterations=2)
        bad = user_factors.copy()
        bad[0, 0] = np.nan
        with pytest.raises(ConfigurationError):
            trainer.train(matrix, bad, item_factors)

    def test_prebuilt_plan_gives_identical_training(self, training_problem):
        from repro.core.backends import SweepPlan

        matrix, user_factors, item_factors = training_problem
        trainer = BlockCoordinateTrainer(max_iterations=4, tolerance=0.0)
        baseline = trainer.train(matrix, user_factors, item_factors)
        plan = SweepPlan.build(matrix)
        reused = trainer.train(None, user_factors, item_factors, plan=plan)
        np.testing.assert_array_equal(baseline[0], reused[0])
        np.testing.assert_array_equal(baseline[1], reused[1])

    def test_matrix_with_plan_rejected(self, training_problem):
        # The plan owns its matrix; a second one would be silently ignored.
        from repro.core.backends import SweepPlan

        matrix, user_factors, item_factors = training_problem
        plan = SweepPlan.build(matrix)
        trainer = BlockCoordinateTrainer(max_iterations=2)
        with pytest.raises(ConfigurationError):
            trainer.train(matrix, user_factors, item_factors, plan=plan)

    def test_neither_matrix_nor_plan_rejected(self, training_problem):
        _, user_factors, item_factors = training_problem
        trainer = BlockCoordinateTrainer(max_iterations=2)
        with pytest.raises(ConfigurationError):
            trainer.train(None, user_factors, item_factors)

    def test_mismatched_plan_rejected(self, training_problem):
        from repro.core.backends import SweepPlan

        matrix, user_factors, item_factors = training_problem
        plan = SweepPlan.build(matrix[:10])
        trainer = BlockCoordinateTrainer(max_iterations=2)
        with pytest.raises(ConfigurationError):
            trainer.train(None, user_factors, item_factors, plan=plan)

    def test_plan_with_user_weights_rejected(self, training_problem):
        # Weights are baked into a plan; passing both would silently train
        # unweighted, so the redundant combination is an error.
        from repro.core.backends import SweepPlan

        matrix, user_factors, item_factors = training_problem
        plan = SweepPlan.build(matrix)
        trainer = BlockCoordinateTrainer(max_iterations=2)
        with pytest.raises(ConfigurationError):
            trainer.train(
                None,
                user_factors,
                item_factors,
                user_weights=np.ones(matrix.shape[0]),
                plan=plan,
            )

    def test_plan_dtype_mismatch_rejected(self, training_problem):
        from repro.core.backends import SweepPlan

        matrix, user_factors, item_factors = training_problem
        plan = SweepPlan.build(matrix)  # float64
        trainer = BlockCoordinateTrainer(max_iterations=2)
        with pytest.raises(ConfigurationError):
            trainer.train(
                None,
                user_factors.astype(np.float32),
                item_factors.astype(np.float32),
                plan=plan,
            )

    def test_shape_mismatch_raises(self, training_problem):
        matrix, user_factors, item_factors = training_problem
        trainer = BlockCoordinateTrainer(max_iterations=2)
        with pytest.raises(ConfigurationError):
            trainer.train(matrix, user_factors[:-1], item_factors)
        with pytest.raises(ConfigurationError):
            trainer.train(matrix, user_factors, item_factors[:-1])
        with pytest.raises(ConfigurationError):
            trainer.train(matrix, user_factors, item_factors, user_weights=np.ones(3))

    def test_training_reduces_objective_substantially(self, training_problem):
        matrix, user_factors, item_factors = training_problem
        initial = full_objective(matrix, user_factors, item_factors, 1.0)
        trainer = BlockCoordinateTrainer(regularization=1.0, max_iterations=30, tolerance=0.0)
        _, _, history = trainer.train(matrix, user_factors, item_factors)
        assert history.final_objective < initial * 0.9

    def test_weighted_training_monotone(self, training_problem):
        matrix, user_factors, item_factors = training_problem
        weights = np.linspace(0.5, 4.0, matrix.shape[0])
        trainer = BlockCoordinateTrainer(regularization=1.0, max_iterations=10, tolerance=0.0)
        _, _, history = trainer.train(
            matrix, user_factors, item_factors, user_weights=weights
        )
        values = history.objective_values
        assert all(later <= earlier + 1e-8 for earlier, later in zip(values, values[1:]))


class TestWarmStartAndPlateau:
    def test_initial_factors_records_warm_started(self, training_problem):
        matrix, user_factors, item_factors = training_problem
        trainer = BlockCoordinateTrainer(max_iterations=3, tolerance=0.0)
        _, _, history = trainer.train(
            matrix, initial_factors=(user_factors, item_factors)
        )
        assert history.warm_started
        _, _, cold_history = trainer.train(matrix, user_factors, item_factors)
        assert not cold_history.warm_started

    def test_initial_factors_mutually_exclusive_with_positional(self, training_problem):
        matrix, user_factors, item_factors = training_problem
        trainer = BlockCoordinateTrainer(max_iterations=2)
        with pytest.raises(ConfigurationError, match="not both"):
            trainer.train(
                matrix,
                user_factors,
                item_factors,
                initial_factors=(user_factors, item_factors),
            )

    def test_warm_start_equals_positional_start(self, training_problem):
        # The warm path is a naming convenience: the sweeps from the same
        # starting point must be bit-identical either way.
        matrix, user_factors, item_factors = training_problem
        trainer = BlockCoordinateTrainer(max_iterations=3, tolerance=0.0)
        warm_u, warm_v, _ = trainer.train(
            matrix, initial_factors=(user_factors.copy(), item_factors.copy())
        )
        cold_u, cold_v, _ = trainer.train(
            matrix, user_factors.copy(), item_factors.copy()
        )
        np.testing.assert_array_equal(warm_u, cold_u)
        np.testing.assert_array_equal(warm_v, cold_v)

    def test_plateau_stop_fires_and_is_recorded(self, training_problem):
        matrix, user_factors, item_factors = training_problem
        trainer = BlockCoordinateTrainer(
            max_iterations=50,
            tolerance=0.0,
            plateau_tolerance=1.0,  # any iteration counts as a plateau
            plateau_patience=2,
        )
        _, _, history = trainer.train(
            matrix, user_factors.copy(), item_factors.copy()
        )
        assert history.stopped_on_plateau
        assert history.plateau_tolerance == 1.0
        assert history.n_iterations < 50

    def test_plateau_patience_delays_the_stop(self, training_problem):
        matrix, user_factors, item_factors = training_problem

        def run(patience):
            trainer = BlockCoordinateTrainer(
                max_iterations=50,
                tolerance=0.0,
                plateau_tolerance=1.0,
                plateau_patience=patience,
            )
            _, _, history = trainer.train(
                matrix, user_factors.copy(), item_factors.copy()
            )
            return history

        assert run(4).n_iterations > run(2).n_iterations

    def test_plateau_off_by_default(self, training_problem):
        matrix, user_factors, item_factors = training_problem
        trainer = BlockCoordinateTrainer(max_iterations=3, tolerance=0.0)
        _, _, history = trainer.train(
            matrix, user_factors.copy(), item_factors.copy()
        )
        assert history.plateau_tolerance is None
        assert not history.stopped_on_plateau
        assert history.n_iterations == 3

    def test_plateau_tolerance_validated(self):
        with pytest.raises(ConfigurationError):
            BlockCoordinateTrainer(plateau_tolerance=-0.1)
        with pytest.raises(ConfigurationError):
            BlockCoordinateTrainer(plateau_patience=0)
