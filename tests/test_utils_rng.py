"""Tests for repro.utils.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_seeds


def test_ensure_rng_none_returns_generator():
    rng = ensure_rng(None)
    assert isinstance(rng, np.random.Generator)


def test_ensure_rng_int_is_deterministic():
    first = ensure_rng(42).integers(0, 1000, size=5)
    second = ensure_rng(42).integers(0, 1000, size=5)
    np.testing.assert_array_equal(first, second)


def test_ensure_rng_different_seeds_differ():
    first = ensure_rng(1).integers(0, 10**6, size=10)
    second = ensure_rng(2).integers(0, 10**6, size=10)
    assert not np.array_equal(first, second)


def test_ensure_rng_passes_through_generator():
    generator = np.random.default_rng(0)
    assert ensure_rng(generator) is generator


def test_ensure_rng_accepts_legacy_random_state():
    legacy = np.random.RandomState(0)
    rng = ensure_rng(legacy)
    assert isinstance(rng, np.random.Generator)


def test_ensure_rng_rejects_strings():
    with pytest.raises(TypeError):
        ensure_rng("not a seed")


def test_ensure_rng_accepts_numpy_integer():
    rng = ensure_rng(np.int64(7))
    assert isinstance(rng, np.random.Generator)


def test_spawn_seeds_deterministic_and_distinct():
    seeds_a = spawn_seeds(123, 10)
    seeds_b = spawn_seeds(123, 10)
    assert seeds_a == seeds_b
    assert len(set(seeds_a)) == len(seeds_a)


def test_spawn_seeds_count():
    assert len(spawn_seeds(0, 4)) == 4
    assert spawn_seeds(0, 0) == []
