"""Shared fixtures for the test-suite.

Fixtures that require fitting a model are session-scoped so the many tests
that only inspect a fitted model do not each pay for training.  All fixtures
use fixed seeds; the suite is fully deterministic.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core.ocular import OCuLaR
from repro.data.datasets import make_b2b, make_movielens_like
from repro.data.interactions import InteractionMatrix
from repro.data.splitting import train_test_split
from repro.data.synthetic import make_paper_toy_example, make_planted_coclusters


@pytest.fixture(autouse=True)
def _silence_convergence_warnings():
    """Tests use tiny iteration budgets; convergence warnings are expected.

    Deprecations raised from ``repro`` itself stay fatal: internal code must
    never call its own deprecated shims.  ``tests/test_deprecation_shims.py``
    overrides the filter locally to exercise them.
    """
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        warnings.filterwarnings(
            "error", category=DeprecationWarning, module=r"repro(\..*)?$"
        )
        yield


@pytest.fixture(scope="session")
def toy_dataset():
    """The paper's 12x12 toy example (three overlapping co-clusters)."""
    return make_paper_toy_example()


@pytest.fixture(scope="session")
def small_matrix():
    """A small deterministic interaction matrix with two obvious blocks."""
    dense = np.zeros((8, 6))
    dense[0:4, 0:3] = 1.0
    dense[4:8, 3:6] = 1.0
    dense[0, 5] = 1.0  # one cross-block interaction
    return InteractionMatrix.from_dense(dense)


@pytest.fixture(scope="session")
def planted():
    """Planted overlapping co-clusters with held-out positives."""
    return make_planted_coclusters(
        n_users=80,
        n_items=50,
        n_coclusters=3,
        users_per_cocluster=25,
        items_per_cocluster=15,
        within_density=0.9,
        background_density=0.01,
        holdout_fraction=0.1,
        random_state=7,
    )


@pytest.fixture(scope="session")
def movielens_small():
    """A small MovieLens-like corpus plus a train/test split."""
    matrix, spec = make_movielens_like(n_users=120, n_items=80, random_state=3)
    split = train_test_split(matrix, test_fraction=0.25, random_state=3)
    return matrix, spec, split


@pytest.fixture(scope="session")
def b2b_small():
    """A small named B2B corpus (for explanation / deployment tests)."""
    return make_b2b(n_clients=80, n_products=20, random_state=5)


@pytest.fixture(scope="session")
def fitted_toy_model(toy_dataset):
    """OCuLaR fitted on the toy matrix (K = 3, light regularisation)."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return OCuLaR(
            n_coclusters=3, regularization=0.05, max_iterations=400, random_state=2
        ).fit(toy_dataset.matrix)


@pytest.fixture(scope="session")
def fitted_movielens_model(movielens_small):
    """OCuLaR fitted on the small MovieLens-like training split."""
    _, _, split = movielens_small
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return OCuLaR(
            n_coclusters=12, regularization=8.0, max_iterations=60, random_state=0
        ).fit(split.train)
