"""Tests for the zero-allocation serving hot path.

Covers the flat :class:`TopNResult` container, the score-buffer pool and its
zero-allocation steady state, the chunk-size autotuner, pipelined chunking
parity, the writable ``rank_scored`` path, the unified empty-input contract,
and float32 serving parity against float64 across seen-masking, fold-in and
sharded process serving.
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.ocular import OCuLaR
from repro.exceptions import ConfigurationError
from repro.serving import (
    BUFFER_BUDGET_ENV,
    ScoreBufferPool,
    TopNEngine,
    TopNResult,
    recommend_folded,
    score_buffer_budget_bytes,
    serve_sharded,
)


def _ranking_overlap(a, b) -> float:
    """Mean per-row Jaccard-free overlap |A ∩ B| / |A| between two results."""
    overlaps = []
    for row_a, row_b in zip(a, b):
        if len(row_a) == 0:
            continue
        overlaps.append(len(set(row_a.tolist()) & set(row_b.tolist())) / len(row_a))
    return float(np.mean(overlaps)) if overlaps else 1.0


@pytest.fixture(scope="module")
def float32_model(movielens_small):
    """OCuLaR trained in float32 on the small MovieLens-like split."""
    import warnings

    _, _, split = movielens_small
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return OCuLaR(
            n_coclusters=12,
            regularization=8.0,
            max_iterations=60,
            random_state=0,
            dtype="float32",
        ).fit(split.train)


# --------------------------------------------------------------------------- #
# TopNResult container
# --------------------------------------------------------------------------- #
class TestTopNResult:
    def test_from_rows_round_trip(self):
        rows = [np.array([3, 1, 4]), np.array([1, 5]), np.array([], dtype=np.int64)]
        result = TopNResult.from_rows(rows)
        assert result.n_rows == 3
        assert result.width == 3
        assert list(result.lengths) == [3, 2, 0]
        assert result == rows
        assert result.as_lists()[0].tolist() == [3, 1, 4]
        # Padding positions hold the sentinel.
        assert result.items[1, 2] == -1

    def test_sequence_protocol(self):
        result = TopNResult.from_rows([np.array([7, 8]), np.array([9])])
        assert len(result) == 2
        np.testing.assert_array_equal(result[0], [7, 8])
        np.testing.assert_array_equal(result[-1], [9])
        assert [row.tolist() for row in result] == [[7, 8], [9]]
        with pytest.raises(IndexError):
            result[2]

    def test_slicing_returns_view(self):
        result = TopNResult.from_rows(
            [np.array([1, 2]), np.array([3, 4]), np.array([5])]
        )
        tail = result[1:]
        assert isinstance(tail, TopNResult)
        assert len(tail) == 2
        np.testing.assert_array_equal(tail[0], [3, 4])
        # Zero-copy: the slice shares the parent's buffer.
        assert tail.items.base is result.items

    def test_equality_against_lists(self):
        rows = [np.array([2, 0]), np.array([1])]
        result = TopNResult.from_rows(rows)
        assert result == rows
        assert result == [[2, 0], [1]]
        assert result != [[2, 0], [1, 3]]
        assert (result == object()) is False or (result != object()) is True

    def test_empty(self):
        result = TopNResult.empty(width=5)
        assert len(result) == 0
        assert result == []
        scored = TopNResult.empty(width=5, with_scores=True)
        assert scored.scores is not None and scored.scores.shape == (0, 5)

    def test_concat_equal_widths(self):
        a = TopNResult.from_rows([np.array([1, 2])], width=2)
        b = TopNResult.from_rows([np.array([3])], width=2)
        merged = TopNResult.concat([a, b])
        assert merged == [[1, 2], [3]]

    def test_concat_mixed_widths_pads(self):
        a = TopNResult.from_rows([np.array([1])], width=1)
        b = TopNResult.from_rows([np.array([2, 3, 4])], width=3)
        merged = TopNResult.concat([a, b])
        assert merged.width == 3
        assert merged == [[1], [2, 3, 4]]

    def test_concat_empty_input(self):
        assert TopNResult.concat([]) == []

    def test_scores_alignment(self):
        result = TopNResult.from_rows(
            [np.array([4, 2]), np.array([9])],
            scores=[np.array([0.9, 0.5]), np.array([0.7])],
        )
        np.testing.assert_allclose(result.row_scores(0), [0.9, 0.5])
        assert [row.tolist() for row in result.score_rows()] == [[0.9, 0.5], [0.7]]

    def test_to_lists_json_ready(self):
        result = TopNResult.from_rows([np.array([1, 2]), np.array([3])])
        lists = result.to_lists()
        assert lists == [[1, 2], [3]]
        assert all(isinstance(v, int) for row in lists for v in row)

    def test_pickle_round_trip(self):
        result = TopNResult.from_rows(
            [np.array([5, 6]), np.array([7])], scores=[np.array([0.2, 0.1]), np.array([0.3])]
        )
        clone = pickle.loads(pickle.dumps(result))
        assert clone == result
        np.testing.assert_allclose(clone.scores, result.scores)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            TopNResult(np.zeros(3, dtype=np.int32), np.zeros(3, dtype=np.int32))
        with pytest.raises(ValueError):
            TopNResult(
                np.zeros((2, 3), dtype=np.int32),
                np.zeros(1, dtype=np.int32),
            )
        with pytest.raises(ValueError):
            TopNResult(
                np.zeros((2, 3), dtype=np.int32),
                np.zeros(2, dtype=np.int32),
                scores=np.zeros((2, 4)),
            )


# --------------------------------------------------------------------------- #
# Score-buffer pool
# --------------------------------------------------------------------------- #
class TestScoreBufferPool:
    def test_take_release_reuses(self):
        pool = ScoreBufferPool()
        block = pool.take(4, 8, np.float64)
        assert block.shape == (4, 8) and block.flags.c_contiguous
        pool.release(block)
        again = pool.take(4, 8, np.float64)
        stats = pool.stats()
        assert stats.allocations == 1
        assert stats.reuses == 1
        pool.release(again)

    def test_shorter_rows_reuse_larger_block(self):
        pool = ScoreBufferPool()
        pool.release(pool.take(10, 6, np.float64))
        short = pool.take(3, 6, np.float64)
        assert short.shape == (3, 6)
        assert pool.stats().allocations == 1
        pool.release(short)
        assert pool.stats().cached_blocks == 1

    def test_dtype_and_width_keying(self):
        pool = ScoreBufferPool()
        pool.release(pool.take(4, 8, np.float64))
        f32 = pool.take(4, 8, np.float32)  # different dtype -> new block
        narrow = pool.take(4, 4, np.float64)  # different width -> new block
        assert pool.stats().allocations == 3
        pool.release(f32)
        pool.release(narrow)

    def test_max_cached_cap(self):
        pool = ScoreBufferPool(max_cached=2)
        blocks = [pool.take(2, 3, np.float64) for _ in range(4)]
        for block in blocks:
            pool.release(block)
        assert pool.stats().cached_blocks == 2

    def test_outstanding_counter(self):
        pool = ScoreBufferPool()
        block = pool.take(2, 2, np.float64)
        assert pool.stats().outstanding == 1
        pool.release(block)
        assert pool.stats().outstanding == 0

    def test_clear_keeps_counters(self):
        pool = ScoreBufferPool()
        pool.release(pool.take(2, 2, np.float64))
        pool.clear()
        stats = pool.stats()
        assert stats.cached_blocks == 0
        assert stats.allocations == 1

    def test_pickles_to_fresh_pool(self):
        pool = ScoreBufferPool(max_cached=3)
        pool.release(pool.take(2, 2, np.float64))
        clone = pickle.loads(pickle.dumps(pool))
        assert clone.max_cached == 3
        assert clone.stats().allocations == 0


# --------------------------------------------------------------------------- #
# Budget resolution and chunk autotune
# --------------------------------------------------------------------------- #
class TestChunkAutotune:
    def test_budget_priority(self, monkeypatch):
        monkeypatch.delenv(BUFFER_BUDGET_ENV, raising=False)
        assert score_buffer_budget_bytes(1.0) == 1024 * 1024
        monkeypatch.setenv(BUFFER_BUDGET_ENV, "2")
        assert score_buffer_budget_bytes() == 2 * 1024 * 1024
        assert score_buffer_budget_bytes(1.0) == 1024 * 1024  # param wins
        monkeypatch.setenv(BUFFER_BUDGET_ENV, "not-a-number")
        assert score_buffer_budget_bytes() == 128 * 1024 * 1024
        assert score_buffer_budget_bytes(-5) == 128 * 1024 * 1024

    def test_effective_chunk_capped_by_budget(self, fitted_movielens_model):
        # 80 items x 8 bytes = 640 B per row; a 64 KiB budget caps at 102 rows.
        engine = TopNEngine.from_model(
            fitted_movielens_model, chunk_size=4096, buffer_budget_mb=64 / 1024
        )
        row_bytes = engine.n_items * engine.serving_dtype.itemsize
        assert engine.effective_chunk_size() == (64 * 1024) // row_bytes
        # An ample budget leaves the requested chunk unchanged.
        roomy = TopNEngine.from_model(fitted_movielens_model, chunk_size=64)
        assert roomy.effective_chunk_size() == 64

    def test_effective_chunk_floor_is_one(self, fitted_movielens_model):
        engine = TopNEngine.from_model(
            fitted_movielens_model, buffer_budget_mb=1e-9
        )
        assert engine.effective_chunk_size() == 1

    def test_env_budget_reaches_engine(self, fitted_movielens_model, monkeypatch):
        monkeypatch.setenv(BUFFER_BUDGET_ENV, str(64 / 1024))
        engine = TopNEngine.from_model(fitted_movielens_model, chunk_size=4096)
        assert engine.buffer_budget_bytes == 64 * 1024
        assert engine.effective_chunk_size() < 4096

    def test_float32_doubles_the_chunk(self, fitted_movielens_model):
        f64 = TopNEngine.from_model(
            fitted_movielens_model, chunk_size=1 << 20, buffer_budget_mb=1.0
        )
        f32 = TopNEngine.from_model(
            fitted_movielens_model,
            chunk_size=1 << 20,
            buffer_budget_mb=1.0,
            dtype="float32",
        )
        assert f32.effective_chunk_size() == 2 * f64.effective_chunk_size()


# --------------------------------------------------------------------------- #
# Engine hot path: flat results, empty contract, zero allocation, pipeline
# --------------------------------------------------------------------------- #
class TestEngineHotPath:
    def test_recommend_batch_returns_flat_result(self, fitted_movielens_model):
        engine = TopNEngine.from_model(fitted_movielens_model)
        result = engine.recommend_batch(range(20), n_items=7)
        assert isinstance(result, TopNResult)
        assert result.items.dtype == np.int32
        for user, ranked in zip(range(20), result):
            reference = fitted_movielens_model.recommend(user, n_items=7)
            np.testing.assert_array_equal(ranked, reference)

    def test_empty_input_contract_unified(self, fitted_movielens_model):
        engine = TopNEngine.from_model(fitted_movielens_model)
        bare = engine.recommend_batch([], n_items=5)
        assert isinstance(bare, TopNResult) and bare == []
        scored, scores = engine.recommend_batch([], n_items=5, return_scores=True)
        assert isinstance(scored, TopNResult) and scored == []
        assert scores == []

    def test_return_scores_alignment(self, fitted_movielens_model):
        model = fitted_movielens_model
        engine = TopNEngine.from_model(model)
        users = [0, 5, 17]
        result, scores = engine.recommend_batch(users, n_items=9, return_scores=True)
        for user, ranked, row_scores in zip(users, result, scores):
            full = model.score_users([user])[0]
            np.testing.assert_allclose(row_scores, full[ranked], rtol=1e-12)
            assert np.all(np.diff(row_scores) <= 0)

    def test_zero_allocations_after_warmup(self, fitted_movielens_model):
        engine = TopNEngine.from_model(fitted_movielens_model, chunk_size=32)
        users = list(range(120))
        engine.topn(users, n_items=10)  # warm-up pass
        warm = engine.pool.stats().allocations
        for _ in range(3):
            engine.topn(users, n_items=10)
        after = engine.pool.stats()
        assert after.allocations == warm
        assert after.reuses > 0
        assert after.outstanding == 0

    def test_pipelined_matches_serial_exactly(self, fitted_movielens_model):
        engine = TopNEngine.from_model(fitted_movielens_model, chunk_size=16)
        users = list(range(120))
        serial = engine.topn(users, n_items=12, pipeline=False)
        piped = engine.topn(users, n_items=12, pipeline=True)
        np.testing.assert_array_equal(serial.items, piped.items)
        np.testing.assert_array_equal(serial.lengths, piped.lengths)
        with_scores = engine.topn(users, n_items=12, pipeline=True, with_scores=True)
        np.testing.assert_array_equal(serial.items, with_scores.items)

    def test_pipeline_flag_at_construction(self, fitted_movielens_model):
        engine = TopNEngine.from_model(
            fitted_movielens_model, chunk_size=16, pipeline=True
        )
        reference = TopNEngine.from_model(fitted_movielens_model)
        users = list(range(60))
        assert engine.topn(users, n_items=8) == reference.topn(users, n_items=8)

    def test_rank_scored_writable_parity(self, fitted_movielens_model):
        engine = TopNEngine.from_model(fitted_movielens_model)
        rng = np.random.default_rng(11)
        scores = rng.random((9, engine.n_items))
        seen = sp.random(9, engine.n_items, density=0.1, random_state=3, format="csr")
        copied = engine.rank_scored(scores.copy(), n_items=6, seen=seen)
        original = scores.copy()
        owned = scores.copy()
        in_place = engine.rank_scored(owned, n_items=6, seen=seen, writable=True)
        assert copied == in_place
        # writable=True may destroy its input...
        assert not np.array_equal(owned, original)
        # ...but the default must not.
        untouched = scores.copy()
        engine.rank_scored(untouched, n_items=6, seen=seen)
        np.testing.assert_array_equal(untouched, scores)

    def test_rank_scored_empty_rows(self, fitted_movielens_model):
        engine = TopNEngine.from_model(fitted_movielens_model)
        empty = np.zeros((0, engine.n_items))
        assert engine.rank_scored(empty, n_items=4) == []
        result, scores = engine.rank_scored(empty, n_items=4, return_scores=True)
        assert result == [] and scores == []

    def test_recommend_batch_lists_shim_warns(self, fitted_movielens_model):
        import warnings as _warnings

        engine = TopNEngine.from_model(fitted_movielens_model)
        with _warnings.catch_warnings():
            _warnings.simplefilter("error", DeprecationWarning)
            with pytest.raises(DeprecationWarning):
                engine.recommend_batch_lists([0, 1], n_items=5)
        with _warnings.catch_warnings():
            _warnings.simplefilter("ignore", DeprecationWarning)
            lists = engine.recommend_batch_lists([0, 1], n_items=5)
        assert isinstance(lists, list)
        assert TopNResult.from_rows(lists) == engine.recommend_batch([0, 1], n_items=5)

    def test_invalid_serving_dtype_rejected(self, fitted_movielens_model):
        with pytest.raises(ConfigurationError):
            TopNEngine.from_model(fitted_movielens_model, dtype="int32")

    def test_engine_pickles_with_fresh_pool(self, fitted_movielens_model):
        engine = TopNEngine.from_model(fitted_movielens_model, dtype="float32")
        engine.topn(range(10), n_items=5)
        clone = pickle.loads(pickle.dumps(engine))
        assert clone.serving_dtype == np.dtype(np.float32)
        assert clone.pool.stats().allocations == 0
        assert clone.topn(range(10), n_items=5) == engine.topn(range(10), n_items=5)


# --------------------------------------------------------------------------- #
# Float32 serving parity (satellite S3)
# --------------------------------------------------------------------------- #
class TestFloat32Parity:
    OVERLAP_FLOOR = 0.9

    @pytest.mark.parametrize("exclude_seen", [True, False])
    def test_float32_vs_float64_overlap(self, fitted_movielens_model, exclude_seen):
        f64 = TopNEngine.from_model(fitted_movielens_model)
        f32 = TopNEngine.from_model(fitted_movielens_model, dtype="float32")
        assert f32.serving_dtype == np.dtype(np.float32)
        # The trained factors are untouched; only the serving copies cast.
        assert f32.factors.dtype == np.dtype(np.float64)
        assert f32.serving_user_factors.dtype == np.dtype(np.float32)
        users = list(range(fitted_movielens_model.train_matrix.n_users))
        a = f64.recommend_batch(users, n_items=20, exclude_seen=exclude_seen)
        b = f32.recommend_batch(users, n_items=20, exclude_seen=exclude_seen)
        assert _ranking_overlap(a, b) >= self.OVERLAP_FLOOR

    def test_float32_native_factors_are_bit_exact_default(self, float32_model):
        engine = TopNEngine.from_model(float32_model)
        assert engine.serving_dtype == np.dtype(np.float32)
        # Native dtype: no cast copy at all.
        assert engine.serving_user_factors is engine.factors.user_factors

    def test_float32_fold_in_overlap(self, fitted_movielens_model):
        f64 = TopNEngine.from_model(fitted_movielens_model)
        f32 = TopNEngine.from_model(fitted_movielens_model, dtype="float32")
        interactions = [[0, 3, 9], [1, 2], [5]]
        a = recommend_folded(f64, interactions, model=fitted_movielens_model, n_items=15)
        b = recommend_folded(f32, interactions, model=fitted_movielens_model, n_items=15)
        assert isinstance(a, TopNResult)
        assert _ranking_overlap(a, b) >= self.OVERLAP_FLOOR

    @pytest.mark.parametrize("n_shards", [1, 2, 5])
    def test_float32_sharded_process_serving(self, fitted_movielens_model, n_shards):
        from repro.parallel import SharedMemoryProcessExecutor

        engine = TopNEngine.from_model(fitted_movielens_model, dtype="float32")
        users = list(range(fitted_movielens_model.train_matrix.n_users))
        shard_size = -(-len(users) // n_shards)
        local = engine.topn(users, n_items=10)
        with SharedMemoryProcessExecutor(max_workers=2) as executor:
            sharded = serve_sharded(
                engine, users, n_items=10, executor=executor, shard_size=shard_size
            )
        assert sharded.n_shards == n_shards
        # Workers attach the very float32 bytes the publisher serves, so the
        # process-sharded rankings are exactly the local float32 ones.
        assert sharded.rankings == local
        f64 = TopNEngine.from_model(fitted_movielens_model).topn(users, n_items=10)
        assert _ranking_overlap(f64, sharded.rankings) >= self.OVERLAP_FLOOR


# --------------------------------------------------------------------------- #
# Flat results through serve_sharded
# --------------------------------------------------------------------------- #
class TestShardedFlatResults:
    def test_serve_sharded_returns_flat_result(self, fitted_movielens_model):
        engine = TopNEngine.from_model(fitted_movielens_model)
        users = list(range(30))
        outcome = serve_sharded(engine, users, n_items=8, shard_size=7)
        assert isinstance(outcome.rankings, TopNResult)
        reference = engine.recommend_batch(users, n_items=8)
        assert outcome.rankings == reference

    def test_scatter_results_slices_flat_blocks(self):
        from repro.serving.batch import merge_request_lists, scatter_results

        merged, spans = merge_request_lists([[0, 1], [2], [3, 4, 5]])
        result = TopNResult.from_rows([np.array([i, i + 1]) for i in merged])
        scattered = scatter_results(result, spans)
        assert all(isinstance(part, TopNResult) for part in scattered)
        assert [len(part) for part in scattered] == [2, 1, 3]
        np.testing.assert_array_equal(scattered[2][0], [3, 4])


# --------------------------------------------------------------------------- #
# Mask kernel (satellite S1)
# --------------------------------------------------------------------------- #
class TestMaskSeen:
    def test_masks_exactly_the_row_positives(self):
        rng = np.random.default_rng(5)
        dense = (rng.random((7, 11)) < 0.3).astype(float)
        csr = sp.csr_matrix(dense)
        neg_scores = rng.standard_normal((7, 11))
        expected = neg_scores.copy()
        expected[dense.astype(bool)] = np.inf
        TopNEngine._mask_seen(neg_scores, np.arange(7), csr)
        np.testing.assert_array_equal(neg_scores, expected)

    def test_row_subset_masking(self):
        dense = np.zeros((5, 6))
        dense[3, [1, 4]] = 1.0
        dense[4, 2] = 1.0
        csr = sp.csr_matrix(dense)
        neg_scores = np.zeros((2, 6))
        TopNEngine._mask_seen(neg_scores, np.array([3, 4]), csr)
        assert np.isinf(neg_scores[0, 1]) and np.isinf(neg_scores[0, 4])
        assert np.isinf(neg_scores[1, 2])
        assert np.isfinite(neg_scores).sum() == 12 - 3


# --------------------------------------------------------------------------- #
# Prefetch executor fork hygiene
# --------------------------------------------------------------------------- #
class TestPrefetchForkSafety:
    @pytest.mark.skipif(not hasattr(os, "fork"), reason="requires fork")
    def test_child_does_not_inherit_executor(self, fitted_movielens_model):
        from repro.serving import engine as engine_module

        engine = TopNEngine.from_model(fitted_movielens_model, chunk_size=16)
        engine.topn(range(60), n_items=5, pipeline=True)  # warm the executor
        assert engine_module._PREFETCH is not None
        pid = os.fork()
        if pid == 0:  # child
            status = 1
            try:
                if engine_module._PREFETCH is None:
                    child = TopNEngine.from_model(fitted_movielens_model, chunk_size=16)
                    child.topn(range(60), n_items=5, pipeline=True)
                    status = 0
            finally:
                os._exit(status)
        _, raw_status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(raw_status) == 0
