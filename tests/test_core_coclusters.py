"""Tests for co-cluster extraction and statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coclusters import (
    DEFAULT_MEMBERSHIP_THRESHOLD,
    CoCluster,
    cocluster_statistics,
    coclusters_of_item,
    coclusters_of_user,
    extract_coclusters,
)
from repro.core.factors import FactorModel
from repro.data.interactions import InteractionMatrix
from repro.exceptions import ConfigurationError


@pytest.fixture
def block_factors():
    """Hand-built factors with two clean co-clusters and one empty column."""
    user_factors = np.zeros((6, 3))
    item_factors = np.zeros((5, 3))
    user_factors[0:3, 0] = 2.0
    item_factors[0:2, 0] = 2.0
    user_factors[3:6, 1] = 1.5
    item_factors[2:5, 1] = 1.5
    # Column 2 stays empty (below any threshold).
    user_factors[:, 2] = 0.01
    item_factors[:, 2] = 0.01
    return FactorModel(user_factors, item_factors)


@pytest.fixture
def block_matrix():
    dense = np.zeros((6, 5))
    dense[0:3, 0:2] = 1.0
    dense[3:6, 2:5] = 1.0
    dense[3, 4] = 0.0  # one missing entry inside the second block
    return InteractionMatrix(dense)


class TestDefaultThreshold:
    def test_value_matches_half_probability_rule(self):
        # Two borderline members produce P = 1 - exp(-delta^2) = 0.5.
        assert DEFAULT_MEMBERSHIP_THRESHOLD == pytest.approx(np.sqrt(np.log(2.0)))


class TestExtractCoClusters:
    def test_members_and_order(self, block_factors, block_matrix):
        coclusters = extract_coclusters(block_factors, block_matrix)
        assert len(coclusters) == 3
        first, second, third = coclusters
        assert set(first.users.tolist()) == {0, 1, 2}
        assert set(first.items.tolist()) == {0, 1}
        assert set(second.users.tolist()) == {3, 4, 5}
        assert set(second.items.tolist()) == {2, 3, 4}
        assert third.is_empty

    def test_strengths_aligned_and_sorted(self, block_factors):
        coclusters = extract_coclusters(block_factors)
        first = coclusters[0]
        assert len(first.user_strengths) == first.n_users
        assert all(
            earlier >= later
            for earlier, later in zip(first.user_strengths, first.user_strengths[1:])
        )

    def test_density_computation(self, block_factors, block_matrix):
        coclusters = extract_coclusters(block_factors, block_matrix)
        assert coclusters[0].density == pytest.approx(1.0)
        assert coclusters[1].density == pytest.approx(8 / 9)

    def test_density_nan_without_matrix(self, block_factors):
        coclusters = extract_coclusters(block_factors)
        assert np.isnan(coclusters[0].density)

    def test_drop_empty(self, block_factors):
        kept = extract_coclusters(block_factors, drop_empty=True)
        assert len(kept) == 2

    def test_custom_threshold_changes_membership(self, block_factors):
        generous = extract_coclusters(block_factors, membership_threshold=0.005)
        assert generous[2].n_users == 6  # the weak column becomes full under a tiny threshold

    def test_negative_threshold_rejected(self, block_factors):
        with pytest.raises(ConfigurationError):
            extract_coclusters(block_factors, membership_threshold=-1.0)

    def test_overlap_possible(self):
        user_factors = np.array([[2.0, 2.0], [2.0, 0.0]])
        item_factors = np.array([[2.0, 0.0], [0.0, 2.0]])
        coclusters = extract_coclusters(FactorModel(user_factors, item_factors))
        # User 0 belongs to both co-clusters: overlap.
        assert 0 in coclusters[0].users and 0 in coclusters[1].users

    def test_top_members_helpers(self, block_factors):
        cocluster = extract_coclusters(block_factors)[0]
        assert cocluster.top_users(2) == cocluster.users[:2].tolist()
        assert cocluster.top_items(1) == cocluster.items[:1].tolist()


class TestStatistics:
    def test_aggregates(self, block_factors, block_matrix):
        coclusters = extract_coclusters(block_factors, block_matrix)
        stats = cocluster_statistics(coclusters, n_users=6, n_items=5)
        assert stats.n_coclusters == 2  # the empty one is excluded
        assert stats.mean_users == pytest.approx(3.0)
        assert stats.mean_items == pytest.approx(2.5)
        assert 0.8 < stats.mean_density <= 1.0
        assert stats.mean_user_memberships == pytest.approx(1.0)
        assert stats.mean_item_memberships == pytest.approx(1.0)

    def test_as_dict_keys(self, block_factors):
        stats = cocluster_statistics(extract_coclusters(block_factors), n_users=6, n_items=5)
        summary = stats.as_dict()
        for key in ("n_coclusters", "mean_users", "mean_items", "mean_user_memberships"):
            assert key in summary

    def test_membership_lookup_helpers(self, block_factors):
        coclusters = extract_coclusters(block_factors)
        assert [c.index for c in coclusters_of_user(coclusters, 0)] == [0]
        assert [c.index for c in coclusters_of_item(coclusters, 3)] == [1]

    def test_empty_cocluster_properties(self):
        empty = CoCluster(
            index=0,
            users=np.array([], dtype=np.int64),
            items=np.array([1]),
            user_strengths=np.array([]),
            item_strengths=np.array([1.0]),
        )
        assert empty.is_empty
        assert empty.n_users == 0 and empty.n_items == 1


class TestOnFittedModel:
    def test_toy_model_produces_overlapping_coclusters(self, fitted_toy_model, toy_dataset):
        coclusters = fitted_toy_model.coclusters(membership_threshold=0.5)
        non_empty = [c for c in coclusters if not c.is_empty]
        assert len(non_empty) == 3
        stats = cocluster_statistics(coclusters, n_users=12, n_items=12)
        # User 6 and item 4 overlap several co-clusters in the toy example, so
        # the average number of memberships must exceed pure partitioning.
        assert stats.mean_item_memberships > 0.5
