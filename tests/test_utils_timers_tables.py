"""Tests for repro.utils.timers and repro.utils.tables."""

from __future__ import annotations

import time

import pytest

from repro.utils.tables import format_series, format_table
from repro.utils.timers import Timer, TimingLog


class TestTimer:
    def test_measures_elapsed_time(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.009

    def test_elapsed_zero_before_use(self):
        assert Timer().elapsed == 0.0


class TestTimingLog:
    def test_record_and_total(self):
        log = TimingLog()
        log.record("sweep", 0.5)
        log.record("sweep", 1.5)
        assert log.total("sweep") == pytest.approx(2.0)
        assert log.mean("sweep") == pytest.approx(1.0)
        assert log.count("sweep") == 2

    def test_unknown_name_defaults(self):
        log = TimingLog()
        assert log.total("missing") == 0.0
        assert log.mean("missing") == 0.0
        assert log.count("missing") == 0

    def test_as_dict_is_a_copy(self):
        log = TimingLog()
        log.record("a", 1.0)
        snapshot = log.as_dict()
        snapshot["a"].append(99.0)
        assert log.records["a"] == [1.0]


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["name", "value"], [["alpha", 1.23456], ["b", 2]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert "name" in lines[0] and "value" in lines[0]
        assert "1.2346" in text  # default precision 4

    def test_precision_control(self):
        text = format_table(["x"], [[1.23456]], precision=2)
        assert "1.23" in text and "1.2346" not in text

    def test_row_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_handles_bool_and_str(self):
        text = format_table(["flag", "label"], [[True, "yes"]])
        assert "True" in text and "yes" in text


class TestFormatSeries:
    def test_includes_name_and_pairs(self):
        text = format_series("curve", [1, 2], [0.1, 0.2])
        assert text.startswith("curve")
        assert "0.1000" in text and "0.2000" in text
