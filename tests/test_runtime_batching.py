"""Tests for the micro-batching request front-end: coalescing correctness
(batched rankings exactly equal the unbatched per-request path), the latency
bound and size cap, drain-on-close semantics, the batching stats snapshot,
and the deprecated pre-gateway entrypoints."""

from __future__ import annotations

import threading
import time
import warnings

import numpy as np
import pytest

from repro.api import RecommendRequest
from repro.core.ocular import OCuLaR
from repro.data.datasets import make_netflix_like
from repro.exceptions import ConfigurationError, NotFittedError
from repro.runtime import BatchingFrontEnd, BatchingStats, RecommenderRuntime
from repro.serving.batch import merge_request_lists, scatter_results

#: Generous wall-clock bound for any future in this suite: far above every
#: configured max_delay_ms, far below the CI job timeout, so a deadlocked
#: dispatcher fails the test instead of hanging the run.
RESULT_TIMEOUT = 60.0


def _model(**overrides):
    settings = dict(
        n_coclusters=6,
        regularization=5.0,
        max_iterations=3,
        tolerance=0.0,
        random_state=0,
    )
    settings.update(overrides)
    return OCuLaR(**settings)


@pytest.fixture(scope="module")
def corpus():
    matrix, _spec = make_netflix_like(n_users=150, n_items=60, random_state=0)
    return matrix


@pytest.fixture(scope="module")
def runtime(corpus):
    """One published process-backed runtime shared by the whole module."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        with RecommenderRuntime(executor="process", max_workers=2) as rt:
            rt.fit(_model(), corpus)
            rt.publish()
            yield rt


def _topn(runtime, users, **kwargs):
    return runtime.recommend(RecommendRequest(users=users, **kwargs)).rankings


def _folded(runtime, interactions, **kwargs):
    return runtime.recommend(
        RecommendRequest(interactions=interactions, **kwargs)
    ).rankings


# --------------------------------------------------------------------------- #
# Merge / scatter helpers
# --------------------------------------------------------------------------- #
class TestMergeScatter:
    def test_roundtrip(self):
        lists = [[1, 2, 3], [], [4], [5, 6]]
        merged, spans = merge_request_lists(lists)
        assert merged == [1, 2, 3, 4, 5, 6]
        assert spans == [(0, 3), (3, 3), (3, 4), (4, 6)]
        assert scatter_results(merged, spans) == [list(x) for x in lists]

    def test_duplicates_keep_their_spans(self):
        merged, spans = merge_request_lists([[7, 8], [8, 7]])
        assert merged == [7, 8, 8, 7]
        first, second = scatter_results(["a", "b", "c", "d"], spans)
        assert first == ["a", "b"] and second == ["c", "d"]

    def test_short_results_rejected(self):
        _merged, spans = merge_request_lists([[1, 2], [3]])
        with pytest.raises(ValueError):
            scatter_results(["only-one"], spans)

    def test_empty(self):
        assert merge_request_lists([]) == ([], [])
        assert scatter_results([], []) == []


# --------------------------------------------------------------------------- #
# Coalescing correctness: batched == unbatched, request by request
# --------------------------------------------------------------------------- #
class TestBatchedCorrectness:
    def test_topn_equals_unbatched_per_request(self, runtime):
        requests = [[0, 1], [5], [10, 11, 12], [1, 0], [40]]
        expected = [_topn(runtime, users, n_items=6) for users in requests]
        with BatchingFrontEnd(runtime, max_delay_ms=20, max_batch_users=64) as front:
            futures = [
                front.submit_request(RecommendRequest(users=users, n_items=6))
                for users in requests
            ]
            for users, future, want in zip(requests, futures, expected):
                response = future.result(timeout=RESULT_TIMEOUT)
                assert len(response.rankings) == len(users)
                for got, ref in zip(response.rankings, want):
                    assert np.array_equal(got, ref)

    def test_duplicate_users_across_requests(self, runtime):
        # Three clients ask for overlapping user sets; each gets complete,
        # correct rankings for exactly the users it asked for.
        requests = [[3, 4, 5], [5, 4], [4]]
        expected = _topn(runtime, [4], n_items=5)[0]
        with BatchingFrontEnd(runtime, max_delay_ms=20) as front:
            futures = [
                front.submit_request(RecommendRequest(users=users, n_items=5))
                for users in requests
            ]
            responses = [f.result(timeout=RESULT_TIMEOUT) for f in futures]
        assert np.array_equal(responses[0].rankings[1], expected)
        assert np.array_equal(responses[1].rankings[1], expected)
        assert np.array_equal(responses[2].rankings[0], expected)

    def test_folded_equals_unbatched_per_request(self, runtime):
        requests = [[[1, 5, 9], [2, 3]], [[0, 10, 20]], [[], [7]]]
        expected = [
            _folded(runtime, batch, n_items=6, n_sweeps=8) for batch in requests
        ]
        with BatchingFrontEnd(runtime, max_delay_ms=20) as front:
            futures = [
                front.submit_request(
                    RecommendRequest(interactions=batch, n_items=6, n_sweeps=8)
                )
                for batch in requests
            ]
            for batch, future, want in zip(requests, futures, expected):
                response = future.result(timeout=RESULT_TIMEOUT)
                assert len(response.rankings) == len(batch)
                for got, ref in zip(response.rankings, want):
                    assert np.array_equal(got, ref)

    def test_mixed_kinds_and_options_in_one_batch(self, runtime):
        # Different n_items and kinds coalesce into one micro-batch but are
        # grouped per option set; each request still gets its own shape.
        expected_5 = _topn(runtime, [2, 3], n_items=5)
        expected_9 = _topn(runtime, [2], n_items=9)
        expected_fold = _folded(runtime, [[1, 2]], n_items=4, n_sweeps=5)
        with BatchingFrontEnd(runtime, max_delay_ms=50) as front:
            f5 = front.submit_request(RecommendRequest(users=(2, 3), n_items=5))
            f9 = front.submit_request(RecommendRequest(users=(2,), n_items=9))
            ff = front.submit_request(
                RecommendRequest(interactions=((1, 2),), n_items=4, n_sweeps=5)
            )
            r5 = f5.result(timeout=RESULT_TIMEOUT)
            r9 = f9.result(timeout=RESULT_TIMEOUT)
            rf = ff.result(timeout=RESULT_TIMEOUT)
        assert r5.batch_id == r9.batch_id == rf.batch_id  # one batch...
        assert r5.batch_requests == 3
        for got, ref in zip(r5.rankings, expected_5):
            assert np.array_equal(got, ref)  # ...but per-request options hold
        assert len(r9.rankings[0]) == 9
        assert np.array_equal(r9.rankings[0], expected_9[0])
        assert np.array_equal(rf.rankings[0], expected_fold[0])

    def test_scores_scatter_per_request(self, runtime):
        # Two with_scores requests coalesce; each gets exactly its own
        # score rows, aligned with its rankings.
        with BatchingFrontEnd(runtime, max_delay_ms=20) as front:
            fa = front.submit_request(
                RecommendRequest(users=(0, 1), n_items=5, with_scores=True)
            )
            fb = front.submit_request(
                RecommendRequest(users=(2,), n_items=5, with_scores=True)
            )
            ra = fa.result(timeout=RESULT_TIMEOUT)
            rb = fb.result(timeout=RESULT_TIMEOUT)
        _ranked, expected = runtime.engine.recommend_batch(
            [0, 1, 2], n_items=5, return_scores=True
        )
        assert len(ra.scores) == 2 and len(rb.scores) == 1
        assert np.allclose(ra.scores[0], expected[0])
        assert np.allclose(ra.scores[1], expected[1])
        assert np.allclose(rb.scores[0], expected[2])

    def test_empty_request_resolves_empty(self, runtime):
        with BatchingFrontEnd(runtime, max_delay_ms=5) as front:
            response = front.submit_request(RecommendRequest(users=())).result(
                timeout=RESULT_TIMEOUT
            )
            assert response.rankings == []

    def test_blocking_recommend(self, runtime):
        expected = _topn(runtime, [8, 9], n_items=5)
        expected_fold = _folded(runtime, [[4, 5]], n_items=5, n_sweeps=5)
        with BatchingFrontEnd(runtime, max_delay_ms=5) as front:
            got = front.recommend(
                RecommendRequest(users=(8, 9), n_items=5), timeout=RESULT_TIMEOUT
            )
            for have, want in zip(got.rankings, expected):
                assert np.array_equal(have, want)
            folded = front.recommend(
                RecommendRequest(interactions=((4, 5),), n_items=5, n_sweeps=5),
                timeout=RESULT_TIMEOUT,
            )
            assert np.array_equal(folded.rankings[0], expected_fold[0])

    def test_coalescing_reduces_runtime_calls(self, runtime):
        before = runtime.serving_calls
        n_requests = 12
        with BatchingFrontEnd(runtime, max_delay_ms=200, max_batch_users=512) as front:
            futures = [
                front.submit_request(RecommendRequest(users=(u,), n_items=5))
                for u in range(n_requests)
            ]
            for future in futures:
                future.result(timeout=RESULT_TIMEOUT)
        # 12 requests must not have cost 12 sharded dispatches.
        assert runtime.serving_calls - before < n_requests

    def test_local_path_runtime_also_batches(self, corpus):
        # The front-end is executor-agnostic: a thread runtime (local serving
        # path, no shared memory) coalesces identically.
        with RecommenderRuntime(executor="thread", max_workers=2) as rt:
            rt.fit(_model(), corpus)
            rt.publish()
            expected = _topn(rt, [0, 1, 2], n_items=5)
            with BatchingFrontEnd(rt, max_delay_ms=10) as front:
                response = front.submit_request(
                    RecommendRequest(users=(0, 1, 2), n_items=5)
                ).result(timeout=RESULT_TIMEOUT)
            for got, ref in zip(response.rankings, expected):
                assert np.array_equal(got, ref)


# --------------------------------------------------------------------------- #
# Latency bound and size cap
# --------------------------------------------------------------------------- #
class TestBatchFormation:
    def test_lone_request_not_held_past_delay(self, runtime):
        # With a 10s latency bound a lone request would sit for 10s if the
        # bound were the only trigger... and with a 50ms bound it must not.
        with BatchingFrontEnd(runtime, max_delay_ms=50, max_batch_users=512) as front:
            start = time.monotonic()
            response = front.submit_request(
                RecommendRequest(users=(1, 2), n_items=5)
            ).result(timeout=RESULT_TIMEOUT)
            elapsed = time.monotonic() - start
        assert response.batch_requests == 1
        # Dispatch + serving margin on a loaded CI box; the point is that it
        # is nowhere near a multiple of the bound, let alone unbounded.
        assert elapsed < 10.0
        assert response.queue_seconds < 10.0

    def test_size_cap_seals_before_deadline(self, runtime):
        # The latency bound is far beyond the test timeout; only the size
        # cap can seal the batch, so resolving at all proves the cap works.
        with BatchingFrontEnd(
            runtime, max_delay_ms=300_000, max_batch_users=8
        ) as front:
            futures = [
                front.submit_request(RecommendRequest(users=(u, u + 1), n_items=5))
                for u in range(4)
            ]
            responses = [f.result(timeout=RESULT_TIMEOUT) for f in futures]
        assert responses[0].batch_users == 8

    def test_oversized_request_dispatched_alone(self, runtime):
        with BatchingFrontEnd(
            runtime, max_delay_ms=300_000, max_batch_users=4
        ) as front:
            big = front.submit_request(
                RecommendRequest(users=tuple(range(10)), n_items=5)
            )
            response = big.result(timeout=RESULT_TIMEOUT)
        assert response.batch_requests == 1
        assert response.batch_users == 10
        assert len(response.rankings) == 10

    def test_cap_leftover_rides_next_batch(self, runtime):
        # 3 x 3 users against a cap of 6: the third request exceeds the cap
        # and must ride a second batch — never be split across batches.
        with BatchingFrontEnd(runtime, max_delay_ms=100, max_batch_users=6) as front:
            futures = [
                front.submit_request(
                    RecommendRequest(users=(u, u + 1, u + 2), n_items=5)
                )
                for u in (0, 10, 20)
            ]
            responses = [f.result(timeout=RESULT_TIMEOUT) for f in futures]
        assert responses[0].batch_id == responses[1].batch_id
        assert responses[2].batch_id != responses[0].batch_id
        assert all(len(r.rankings) == 3 for r in responses)

    def test_generation_recorded_on_response(self, runtime):
        with BatchingFrontEnd(runtime, max_delay_ms=5) as front:
            response = front.submit_request(
                RecommendRequest(users=(0,), n_items=5)
            ).result(timeout=RESULT_TIMEOUT)
        assert response.generation == runtime.generation

    def test_queue_ms_reported_on_response(self, runtime):
        with BatchingFrontEnd(runtime, max_delay_ms=5) as front:
            response = front.submit_request(
                RecommendRequest(users=(0,), n_items=5)
            ).result(timeout=RESULT_TIMEOUT)
        assert response.queue_ms >= 0.0
        assert response.queue_seconds == pytest.approx(response.queue_ms / 1000.0)
        assert response.serve_ms >= 0.0


# --------------------------------------------------------------------------- #
# Lifecycle: drain-on-close, rejection after close, error propagation
# --------------------------------------------------------------------------- #
class TestLifecycle:
    def test_close_drains_pending_requests(self, runtime):
        expected = _topn(runtime, [3], n_items=5)[0]
        # The latency bound alone would hold these for five minutes; close()
        # must dispatch them instead of abandoning their futures.
        front = BatchingFrontEnd(runtime, max_delay_ms=300_000, max_batch_users=10_000)
        futures = [
            front.submit_request(RecommendRequest(users=(3,), n_items=5))
            for _ in range(5)
        ]
        front.close()
        for future in futures:
            response = future.result(timeout=RESULT_TIMEOUT)
            assert np.array_equal(response.rankings[0], expected)
        assert front.pending_requests == 0

    def test_context_exit_drains(self, runtime):
        with BatchingFrontEnd(runtime, max_delay_ms=300_000) as front:
            future = front.submit_request(RecommendRequest(users=(1,), n_items=5))
        assert future.result(timeout=RESULT_TIMEOUT).rankings

    def test_closed_front_end_rejects_submissions(self, runtime):
        front = BatchingFrontEnd(runtime, max_delay_ms=5)
        front.close()
        front.close()  # idempotent
        assert front.closed
        with pytest.raises(ConfigurationError):
            front.submit_request(RecommendRequest(users=(0,)))

    def test_unpublished_runtime_fails_futures_not_frontend(self, corpus):
        # A batch against a runtime with no published version resolves every
        # future with NotFittedError; the front-end itself stays usable.
        with RecommenderRuntime(executor="serial") as rt:
            with BatchingFrontEnd(rt, max_delay_ms=5) as front:
                future = front.submit_request(RecommendRequest(users=(0,), n_items=5))
                with pytest.raises(NotFittedError):
                    future.result(timeout=RESULT_TIMEOUT)
                rt.fit(_model(), corpus)
                rt.publish()
                assert front.submit_request(
                    RecommendRequest(users=(0,), n_items=5)
                ).result(timeout=RESULT_TIMEOUT).rankings

    def test_cancelled_request_does_not_poison_the_batch(self, runtime):
        # A client that cancels while its request is queued must not kill
        # the dispatcher: the cancelled future is dropped and every other
        # request in the same batch still resolves correctly.
        expected = _topn(runtime, [6], n_items=5)[0]
        with BatchingFrontEnd(runtime, max_delay_ms=150, max_batch_users=512) as front:
            doomed = front.submit_request(RecommendRequest(users=(0, 1), n_items=5))
            survivor = front.submit_request(RecommendRequest(users=(6,), n_items=5))
            assert doomed.cancel()  # still PENDING in the queue
            response = survivor.result(timeout=RESULT_TIMEOUT)
            assert np.array_equal(response.rankings[0], expected)
            assert doomed.cancelled()
            # The dispatcher survived: the front-end keeps serving.
            again = front.submit_request(
                RecommendRequest(users=(6,), n_items=5)
            ).result(timeout=RESULT_TIMEOUT)
            assert np.array_equal(again.rankings[0], expected)

    def test_queue_seconds_excludes_serving_time(self, runtime):
        # queue_ms is submission-to-dispatch, consistent with the
        # BatchingStats percentiles — bounded by the latency window even
        # though serving the batch itself takes additional time.
        with BatchingFrontEnd(runtime, max_delay_ms=30, max_batch_users=512) as front:
            response = front.submit_request(
                RecommendRequest(users=tuple(range(100)), n_items=5)
            ).result(timeout=RESULT_TIMEOUT)
            stats = front.stats()
        assert response.queue_ms <= stats.queue_max_ms + 1e-6

    def test_invalid_parameters_rejected(self, runtime):
        with pytest.raises(ConfigurationError):
            BatchingFrontEnd(runtime, max_delay_ms=-1)
        with pytest.raises(ConfigurationError):
            BatchingFrontEnd(runtime, max_batch_users=0)
        with pytest.raises(ConfigurationError):
            BatchingFrontEnd(runtime, adaptive="yes")
        with BatchingFrontEnd(runtime) as front:
            with pytest.raises(ConfigurationError):
                front.submit_request([0, 1])  # not a RecommendRequest


# --------------------------------------------------------------------------- #
# Deprecated pre-gateway entrypoints
# --------------------------------------------------------------------------- #
class TestDeprecatedShims:
    def test_submit_warns_but_coalesces(self, runtime):
        expected = _topn(runtime, [0, 1], n_items=5)
        with BatchingFrontEnd(runtime, max_delay_ms=5) as front:
            with pytest.warns(DeprecationWarning, match="submit_request"):
                future = front.submit([0, 1], n_items=5)
            response = future.result(timeout=RESULT_TIMEOUT)
        for got, ref in zip(response.rankings, expected):
            assert np.array_equal(got, ref)

    def test_submit_folded_warns_but_coalesces(self, runtime):
        expected = _folded(runtime, [[4, 5]], n_items=5, n_sweeps=5)
        with BatchingFrontEnd(runtime, max_delay_ms=5) as front:
            with pytest.warns(DeprecationWarning, match="submit_request"):
                future = front.submit_folded([[4, 5]], n_items=5, n_sweeps=5)
            response = future.result(timeout=RESULT_TIMEOUT)
        assert np.array_equal(response.rankings[0], expected[0])

    def test_blocking_helpers_warn_but_work(self, runtime):
        expected = _topn(runtime, [8, 9], n_items=5)
        expected_fold = _folded(runtime, [[4, 5]], n_items=5, n_sweeps=5)
        with BatchingFrontEnd(runtime, max_delay_ms=5) as front:
            with pytest.warns(DeprecationWarning, match="recommend"):
                got = front.topn_blocking([8, 9], n_items=5, timeout=RESULT_TIMEOUT)
            for have, want in zip(got, expected):
                assert np.array_equal(have, want)
            with pytest.warns(DeprecationWarning, match="recommend"):
                folded = front.recommend_folded_blocking(
                    [[4, 5]], n_items=5, n_sweeps=5, timeout=RESULT_TIMEOUT
                )
            assert np.array_equal(folded[0], expected_fold[0])


# --------------------------------------------------------------------------- #
# Stats
# --------------------------------------------------------------------------- #
class TestBatchingStats:
    def test_counts_and_occupancy(self, runtime):
        with BatchingFrontEnd(runtime, max_delay_ms=100, max_batch_users=512) as front:
            futures = [
                front.submit_request(RecommendRequest(users=(u, u + 1), n_items=5))
                for u in range(6)
            ]
            for future in futures:
                future.result(timeout=RESULT_TIMEOUT)
            stats = front.stats()
        assert isinstance(stats, BatchingStats)
        assert stats.requests == 6
        assert stats.users == 12
        assert 1 <= stats.batches <= 6
        assert stats.mean_occupancy == stats.users / stats.batches
        assert stats.mean_requests_per_batch == stats.requests / stats.batches
        assert 0.0 <= stats.queue_p50_ms <= stats.queue_p95_ms <= stats.queue_max_ms

    def test_fresh_front_end_reports_zeros(self, runtime):
        with BatchingFrontEnd(runtime, max_delay_ms=5) as front:
            stats = front.stats()
        assert stats.batches == 0
        assert stats.requests == 0
        assert stats.mean_occupancy == 0.0
        assert stats.queue_max_ms == 0.0
        assert stats.pending_requests == 0

    def test_snapshot_reports_delay_pending_and_rate(self, runtime):
        with BatchingFrontEnd(runtime, max_delay_ms=7) as front:
            future = front.submit_request(RecommendRequest(users=(0,), n_items=5))
            stats = front.stats()
            assert stats.current_delay_ms == 7.0
            assert stats.arrival_rate_rps > 0.0
            future.result(timeout=RESULT_TIMEOUT)
        payload = front.stats().as_dict()
        assert payload["current_delay_ms"] == 7.0
        assert set(payload) == {
            "batches",
            "requests",
            "users",
            "mean_occupancy",
            "mean_requests_per_batch",
            "queue_p50_ms",
            "queue_p95_ms",
            "queue_max_ms",
            "current_delay_ms",
            "pending_requests",
            "arrival_rate_rps",
        }

    def test_queue_latency_reflects_accumulation(self, runtime):
        # Two requests submitted together: the first opens the window, both
        # wait ~max_delay_ms (the cap is far away), so p50 >= the bound.
        with BatchingFrontEnd(runtime, max_delay_ms=40, max_batch_users=512) as front:
            futures = [
                front.submit_request(RecommendRequest(users=(u,), n_items=5))
                for u in (0, 1)
            ]
            for future in futures:
                future.result(timeout=RESULT_TIMEOUT)
            stats = front.stats()
        assert stats.queue_p50_ms >= 25.0  # scheduling jitter margin below 40

    def test_concurrent_submitters_all_answered(self, runtime):
        # A smaller sibling of the stress suite that always runs: 8 threads
        # x 5 requests through one front-end, every future correct.
        expected = {u: _topn(runtime, [u], n_items=5)[0] for u in range(8)}
        errors: list = []
        with BatchingFrontEnd(runtime, max_delay_ms=5, max_batch_users=64) as front:

            def client(user: int) -> None:
                try:
                    for _ in range(5):
                        response = front.recommend(
                            RecommendRequest(users=(user,), n_items=5),
                            timeout=RESULT_TIMEOUT,
                        )
                        assert np.array_equal(response.rankings[0], expected[user])
                except Exception as exc:  # pragma: no cover - failure mode
                    errors.append(exc)

            threads = [threading.Thread(target=client, args=(u,)) for u in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=RESULT_TIMEOUT)
            assert not any(thread.is_alive() for thread in threads)
        assert not errors
        assert front.stats().requests == 40


# --------------------------------------------------------------------------- #
# Adaptive delay wired into the front-end
# --------------------------------------------------------------------------- #
class TestAdaptiveFrontEnd:
    def test_adaptive_true_builds_controller(self, runtime):
        with BatchingFrontEnd(runtime, max_delay_ms=8, adaptive=True) as front:
            assert front.controller is not None
            assert front.controller.ceiling_ms == 8.0
            assert front.current_delay_ms == 8.0

    def test_static_front_end_has_no_controller(self, runtime):
        with BatchingFrontEnd(runtime, max_delay_ms=8) as front:
            assert front.controller is None
            assert front.current_delay_ms == 8.0

    def test_light_load_walks_delay_down(self, runtime):
        from repro.runtime.adaptive import AdaptiveDelayController

        controller = AdaptiveDelayController(
            floor_ms=0.25, ceiling_ms=10.0, slo_p95_ms=50.0, adjust_interval_s=0.005
        )
        with BatchingFrontEnd(runtime, max_delay_ms=10, adaptive=controller) as front:
            assert front.controller is controller
            for i in range(10):
                front.recommend(
                    RecommendRequest(users=(i,), n_items=5), timeout=RESULT_TIMEOUT
                )
                time.sleep(0.01)
            # Lone requests cannot buy occupancy: the controller must have
            # shrunk the delay below the configured ceiling.
            assert front.current_delay_ms < 10.0
            assert controller.adjustments > 0
            assert front.stats().current_delay_ms == front.current_delay_ms
