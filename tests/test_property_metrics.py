"""Property-based tests for the ranking metrics (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.metrics import (
    average_precision_at_m,
    hit_rate_at_m,
    ndcg_at_m,
    precision_at_m,
    recall_at_m,
)

N_ITEMS = 30


@st.composite
def ranking_and_relevant(draw):
    """A ranked list without duplicates plus a non-empty relevant set."""
    catalogue = list(range(N_ITEMS))
    ranked = draw(
        st.lists(st.sampled_from(catalogue), min_size=1, max_size=15, unique=True)
    )
    relevant = draw(
        st.sets(st.sampled_from(catalogue), min_size=1, max_size=10)
    )
    m = draw(st.integers(min_value=1, max_value=20))
    return ranked, relevant, m


@given(ranking_and_relevant())
@settings(max_examples=60, deadline=None)
def test_all_metrics_lie_in_unit_interval(case):
    ranked, relevant, m = case
    assert 0.0 <= recall_at_m(ranked, relevant, m) <= 1.0
    assert 0.0 <= precision_at_m(ranked, relevant, m) <= 1.0
    assert 0.0 <= average_precision_at_m(ranked, relevant, m) <= 1.0
    assert 0.0 <= ndcg_at_m(ranked, relevant, m) <= 1.0
    assert hit_rate_at_m(ranked, relevant, m) in (0.0, 1.0)


@given(ranking_and_relevant())
@settings(max_examples=60, deadline=None)
def test_recall_monotone_in_m(case):
    ranked, relevant, m = case
    if m < 2:
        return
    assert recall_at_m(ranked, relevant, m) >= recall_at_m(ranked, relevant, m - 1) - 1e-12


@given(ranking_and_relevant())
@settings(max_examples=60, deadline=None)
def test_hit_rate_is_indicator_of_positive_recall(case):
    ranked, relevant, m = case
    recall = recall_at_m(ranked, relevant, m)
    hit = hit_rate_at_m(ranked, relevant, m)
    assert (recall > 0) == (hit == 1.0)


@given(ranking_and_relevant())
@settings(max_examples=60, deadline=None)
def test_metrics_ignore_items_beyond_cutoff(case):
    ranked, relevant, m = case
    truncated = ranked[:m]
    assert recall_at_m(ranked, relevant, m) == recall_at_m(truncated, relevant, m)
    assert average_precision_at_m(ranked, relevant, m) == average_precision_at_m(
        truncated, relevant, m
    )


@given(ranking_and_relevant())
@settings(max_examples=60, deadline=None)
def test_perfect_prefix_ranking_maximises_ap(case):
    """Placing all relevant items first yields AP@M = 1 (given enough slots)."""
    _, relevant, _ = case
    relevant_list = sorted(relevant)
    filler = [item for item in range(N_ITEMS) if item not in relevant][: N_ITEMS // 2]
    perfect = relevant_list + filler
    m = max(len(relevant_list), 1)
    assert average_precision_at_m(perfect, relevant, m) == 1.0


@given(
    st.sets(st.integers(min_value=0, max_value=N_ITEMS - 1), min_size=1, max_size=10),
    st.integers(min_value=1, max_value=20),
)
@settings(max_examples=40, deadline=None)
def test_reversed_ranking_never_improves_ap(relevant, m):
    """Moving a relevant item earlier never lowers average precision."""
    relevant_list = sorted(relevant)
    others = [item for item in range(N_ITEMS) if item not in relevant]
    worst = others[:10] + relevant_list
    best = relevant_list + others[:10]
    assert average_precision_at_m(best, relevant, m) >= average_precision_at_m(
        worst, relevant, m
    )
