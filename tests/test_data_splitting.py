"""Tests for repro.data.splitting (hold-out and k-fold protocols)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.interactions import InteractionMatrix
from repro.data.splitting import kfold_splits, leave_k_out_split, train_test_split
from repro.exceptions import DataError


@pytest.fixture
def dense_matrix() -> InteractionMatrix:
    rng = np.random.default_rng(0)
    dense = (rng.random((40, 30)) < 0.3).astype(float)
    dense[dense.sum(axis=1) == 0, 0] = 1.0  # no empty users
    return InteractionMatrix(dense)


class TestTrainTestSplit:
    def test_preserves_shape_and_partitions_positives(self, dense_matrix):
        split = train_test_split(dense_matrix, test_fraction=0.25, random_state=0)
        assert split.train.shape == dense_matrix.shape
        assert split.train.nnz + split.n_test_pairs == dense_matrix.nnz

    def test_test_pairs_absent_from_train_and_present_in_full(self, dense_matrix):
        split = train_test_split(dense_matrix, test_fraction=0.25, random_state=0)
        for user, item in split.test_pairs():
            assert not split.train.contains(user, item)
            assert dense_matrix.contains(user, item)

    def test_every_test_user_keeps_training_history(self, dense_matrix):
        split = train_test_split(
            dense_matrix, test_fraction=0.25, min_train_positives=1, random_state=1
        )
        train_degrees = split.train.user_degrees()
        for user in split.test_items:
            assert train_degrees[user] >= 1

    def test_fraction_approximately_respected(self, dense_matrix):
        split = train_test_split(dense_matrix, test_fraction=0.25, random_state=2)
        ratio = split.n_test_pairs / dense_matrix.nnz
        assert 0.10 <= ratio <= 0.30

    def test_deterministic_given_seed(self, dense_matrix):
        first = train_test_split(dense_matrix, random_state=3)
        second = train_test_split(dense_matrix, random_state=3)
        assert first.test_pairs() == second.test_pairs()

    def test_invalid_fraction_raises(self, dense_matrix):
        for bad in (0.0, 1.0, -0.2):
            with pytest.raises(DataError):
                train_test_split(dense_matrix, test_fraction=bad)

    def test_too_sparse_matrix_raises(self):
        matrix = InteractionMatrix(np.eye(4))  # one positive per user
        with pytest.raises(DataError):
            train_test_split(matrix, test_fraction=0.25)


class TestLeaveKOut:
    def test_exactly_k_per_eligible_user(self, dense_matrix):
        split = leave_k_out_split(dense_matrix, k=2, random_state=0)
        for user, items in split.test_items.items():
            assert len(items) == 2
            assert dense_matrix.user_degrees()[user] >= 3

    def test_k_must_be_positive(self, dense_matrix):
        with pytest.raises(DataError):
            leave_k_out_split(dense_matrix, k=0)

    def test_raises_when_nothing_to_hold_out(self):
        matrix = InteractionMatrix(np.eye(3))
        with pytest.raises(DataError):
            leave_k_out_split(matrix, k=1, min_train_positives=1)


class TestKFold:
    def test_yields_requested_folds(self, dense_matrix):
        folds = list(kfold_splits(dense_matrix, n_folds=4, random_state=0))
        assert len(folds) == 4

    def test_each_fold_is_valid_split(self, dense_matrix):
        for split in kfold_splits(dense_matrix, n_folds=3, random_state=1):
            assert split.n_test_pairs > 0
            for user, item in split.test_pairs():
                assert not split.train.contains(user, item)
                assert dense_matrix.contains(user, item)

    def test_test_sets_are_disjoint_across_folds(self, dense_matrix):
        seen = set()
        for split in kfold_splits(dense_matrix, n_folds=3, random_state=2):
            pairs = set(split.test_pairs())
            assert not (pairs & seen)
            seen |= pairs

    def test_users_keep_at_least_one_training_positive(self, dense_matrix):
        for split in kfold_splits(dense_matrix, n_folds=4, random_state=3):
            degrees = split.train.user_degrees()
            for user in split.test_items:
                assert degrees[user] >= 1

    def test_requires_two_folds(self, dense_matrix):
        with pytest.raises(DataError):
            list(kfold_splits(dense_matrix, n_folds=1))
