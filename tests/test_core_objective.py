"""Tests for repro.core.objective: the regularised NLL and its gradients."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.objective import (
    armijo_accept,
    full_objective,
    gradient_ratio,
    negative_log_likelihood,
    positive_affinities,
    relative_user_weights,
    row_gradient,
    row_objective,
    safe_log1mexp,
    split_known_unknown_sums,
)


@pytest.fixture
def tiny_problem():
    """A 3x4 matrix with random non-negative factors (K=2)."""
    rng = np.random.default_rng(0)
    matrix = sp.csr_matrix(
        np.array(
            [
                [1, 0, 1, 0],
                [0, 1, 0, 0],
                [1, 1, 0, 1],
            ],
            dtype=float,
        )
    )
    user_factors = rng.uniform(0.1, 1.0, size=(3, 2))
    item_factors = rng.uniform(0.1, 1.0, size=(4, 2))
    return matrix, user_factors, item_factors


def brute_force_objective(matrix, user_factors, item_factors, lam, user_weights=None):
    """Direct O(n_users * n_items) evaluation of Q for cross-checking."""
    dense = matrix.toarray()
    total = 0.0
    for user in range(dense.shape[0]):
        weight = 1.0 if user_weights is None else user_weights[user]
        for item in range(dense.shape[1]):
            affinity = float(user_factors[user] @ item_factors[item])
            if dense[user, item] > 0:
                total -= weight * np.log(1.0 - np.exp(-max(affinity, 1e-10)))
            else:
                total += affinity
    total += lam * (np.sum(user_factors**2) + np.sum(item_factors**2))
    return total


class TestNumericalHelpers:
    def test_safe_log1mexp_matches_naive_for_moderate_values(self):
        x = np.array([0.5, 1.0, 3.0])
        np.testing.assert_allclose(safe_log1mexp(x), np.log(1 - np.exp(-x)), rtol=1e-10)

    def test_safe_log1mexp_finite_at_zero(self):
        assert np.isfinite(safe_log1mexp(np.array([0.0]))).all()

    def test_gradient_ratio_matches_naive(self):
        x = np.array([0.5, 2.0])
        np.testing.assert_allclose(
            gradient_ratio(x), np.exp(-x) / (1 - np.exp(-x)), rtol=1e-10
        )

    def test_gradient_ratio_finite_at_zero_and_large(self):
        values = gradient_ratio(np.array([0.0, 1e3]))
        assert np.all(np.isfinite(values))
        assert values[1] < 1e-10


class TestFullObjective:
    def test_matches_brute_force(self, tiny_problem):
        matrix, user_factors, item_factors = tiny_problem
        for lam in (0.0, 0.5):
            fast = full_objective(matrix, user_factors, item_factors, lam)
            slow = brute_force_objective(matrix, user_factors, item_factors, lam)
            assert fast == pytest.approx(slow, rel=1e-8)

    def test_matches_brute_force_with_user_weights(self, tiny_problem):
        matrix, user_factors, item_factors = tiny_problem
        weights = np.array([2.0, 0.5, 3.0])
        fast = full_objective(matrix, user_factors, item_factors, 0.3, user_weights=weights)
        slow = brute_force_objective(matrix, user_factors, item_factors, 0.3, user_weights=weights)
        assert fast == pytest.approx(slow, rel=1e-8)

    def test_regularization_increases_objective(self, tiny_problem):
        matrix, user_factors, item_factors = tiny_problem
        without = full_objective(matrix, user_factors, item_factors, 0.0)
        with_reg = full_objective(matrix, user_factors, item_factors, 1.0)
        assert with_reg > without

    def test_negative_log_likelihood_is_unregularised(self, tiny_problem):
        matrix, user_factors, item_factors = tiny_problem
        assert negative_log_likelihood(matrix, user_factors, item_factors) == pytest.approx(
            full_objective(matrix, user_factors, item_factors, 0.0)
        )

    def test_perfect_fit_has_small_objective(self):
        # A rank-1 all-ones matrix with large factors: all probabilities ~1.
        matrix = sp.csr_matrix(np.ones((3, 3)))
        factors = np.full((3, 1), 5.0)
        assert full_objective(matrix, factors, factors, 0.0) < 0.01


class TestRowObjectiveAndGradient:
    def test_row_objective_consistent_with_full(self, tiny_problem):
        matrix, user_factors, item_factors = tiny_problem
        lam = 0.4
        # Sum of per-item row objectives + user penalty = full objective.
        matrix_t = sp.csr_matrix(matrix.T)
        total = lam * float(np.sum(user_factors**2))
        col_total = user_factors.sum(axis=0)
        for item in range(matrix.shape[1]):
            users = matrix_t.indices[matrix_t.indptr[item] : matrix_t.indptr[item + 1]]
            positive = user_factors[users]
            unknown = col_total - positive.sum(axis=0)
            total += row_objective(item_factors[item], positive, None, unknown, lam)
        assert total == pytest.approx(full_objective(matrix, user_factors, item_factors, lam))

    def test_row_gradient_matches_finite_differences(self, tiny_problem):
        matrix, user_factors, item_factors = tiny_problem
        matrix_t = sp.csr_matrix(matrix.T)
        item = 0
        users = matrix_t.indices[matrix_t.indptr[item] : matrix_t.indptr[item + 1]]
        positive = user_factors[users]
        unknown = user_factors.sum(axis=0) - positive.sum(axis=0)
        factor = item_factors[item].copy()
        lam = 0.2

        analytic = row_gradient(factor, positive, None, unknown, lam)
        numeric = np.zeros_like(factor)
        epsilon = 1e-6
        for index in range(len(factor)):
            plus = factor.copy()
            plus[index] += epsilon
            minus = factor.copy()
            minus[index] -= epsilon
            numeric[index] = (
                row_objective(plus, positive, None, unknown, lam)
                - row_objective(minus, positive, None, unknown, lam)
            ) / (2 * epsilon)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-6)

    def test_row_gradient_with_weights_matches_finite_differences(self, tiny_problem):
        matrix, user_factors, item_factors = tiny_problem
        matrix_t = sp.csr_matrix(matrix.T)
        item = 1
        users = matrix_t.indices[matrix_t.indptr[item] : matrix_t.indptr[item + 1]]
        positive = user_factors[users]
        weights = np.linspace(0.5, 2.0, len(users))
        unknown = user_factors.sum(axis=0) - positive.sum(axis=0)
        factor = item_factors[item].copy()
        lam = 0.1

        analytic = row_gradient(factor, positive, weights, unknown, lam)
        epsilon = 1e-6
        numeric = np.zeros_like(factor)
        for index in range(len(factor)):
            plus, minus = factor.copy(), factor.copy()
            plus[index] += epsilon
            minus[index] -= epsilon
            numeric[index] = (
                row_objective(plus, positive, weights, unknown, lam)
                - row_objective(minus, positive, weights, unknown, lam)
            ) / (2 * epsilon)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-6)


class TestHelpers:
    def test_positive_affinities_alignment(self, tiny_problem):
        matrix, user_factors, item_factors = tiny_problem
        affinities = positive_affinities(matrix, user_factors, item_factors)
        coo = matrix.tocoo()
        for value, user, item in zip(affinities, coo.row, coo.col):
            assert value == pytest.approx(float(user_factors[user] @ item_factors[item]))

    def test_split_known_unknown_sums(self, tiny_problem):
        matrix, user_factors, item_factors = tiny_problem
        positive_sums, unknown_sums = split_known_unknown_sums(matrix, item_factors)
        dense = matrix.toarray()
        for user in range(dense.shape[0]):
            expected_pos = item_factors[dense[user] > 0].sum(axis=0)
            expected_unknown = item_factors[dense[user] == 0].sum(axis=0)
            np.testing.assert_allclose(positive_sums[user], expected_pos)
            np.testing.assert_allclose(unknown_sums[user], expected_unknown, atol=1e-12)

    def test_relative_user_weights_formula(self):
        matrix = sp.csr_matrix(np.array([[1, 1, 0, 0], [1, 0, 0, 0], [0, 0, 0, 0]], dtype=float))
        weights = relative_user_weights(matrix)
        assert weights[0] == pytest.approx(2 / 2)
        assert weights[1] == pytest.approx(3 / 1)
        assert weights[2] == pytest.approx(1.0)  # degenerate user gets finite weight

    def test_armijo_accept_rule(self):
        gradient = np.array([1.0, -2.0])
        step = np.array([-0.1, 0.2])
        predicted_decrease = float(gradient @ step)  # = -0.5
        # Accepted: the achieved decrease (0.6 * predicted) beats sigma * predicted.
        assert armijo_accept(10.0, 10.0 + 0.6 * predicted_decrease, gradient, step, sigma=0.5)
        # Rejected: a decrease of only 0.1 is weaker than sigma * predicted = -0.25.
        assert not armijo_accept(10.0, 10.0 - 0.1, gradient, step, sigma=0.5)
