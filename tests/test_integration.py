"""End-to-end integration tests across the whole library.

These tests exercise the complete pipelines a user of the library would run:
generate (or load) data, split, fit several models, evaluate, extract
co-clusters, explain recommendations and run a small grid search — asserting
the cross-module contracts rather than any single unit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import OCuLaR, ROCuLaR
from repro.baselines import (
    ItemKNNRecommender,
    PopularityRecommender,
    UserKNNRecommender,
    WeightedALSRecommender,
)
from repro.core.coclusters import cocluster_statistics, extract_coclusters
from repro.core.recommend import recommend_with_explanations
from repro.data.datasets import make_b2b, make_movielens_like
from repro.data.loaders import load_movielens_ratings
from repro.data.splitting import train_test_split
from repro.data.synthetic import make_planted_coclusters
from repro.evaluation.evaluator import compare_recommenders, evaluate_recommender
from repro.evaluation.grid_search import grid_search


class TestFullPipelineOnSyntheticMovielens:
    @pytest.fixture(scope="class")
    def pipeline(self):
        matrix, _ = make_movielens_like(n_users=150, n_items=100, random_state=1)
        split = train_test_split(matrix, test_fraction=0.25, random_state=1)
        models = {
            "OCuLaR": OCuLaR(
                n_coclusters=15, regularization=10.0, max_iterations=80, random_state=0
            ),
            "R-OCuLaR": ROCuLaR(
                n_coclusters=15, regularization=10.0, max_iterations=80, random_state=0
            ),
            "wALS": WeightedALSRecommender(n_factors=16, n_iterations=8, random_state=0),
            "user-based": UserKNNRecommender(n_neighbors=30),
            "item-based": ItemKNNRecommender(n_neighbors=30),
            "popularity": PopularityRecommender(),
        }
        for model in models.values():
            model.fit(split.train)
        results = compare_recommenders(models, split, m=20)
        return matrix, split, models, results

    def test_all_models_evaluate(self, pipeline):
        _, _, _, results = pipeline
        assert len(results) == 6
        for result in results.values():
            assert 0.0 <= result.recall <= 1.0

    def test_personalised_models_beat_popularity(self, pipeline):
        _, _, _, results = pipeline
        floor = results["popularity"].recall
        for name in ("OCuLaR", "R-OCuLaR", "wALS", "user-based", "item-based"):
            assert results[name].recall >= floor * 0.9

    def test_ocular_competitive_with_baselines(self, pipeline):
        _, _, _, results = pipeline
        best_baseline = max(
            results[name].recall for name in ("wALS", "user-based", "item-based")
        )
        assert results["OCuLaR"].recall >= 0.8 * best_baseline

    def test_explanations_available_for_top_recommendations(self, pipeline):
        _, split, models, _ = pipeline
        model = models["OCuLaR"]
        user = int(np.argmax(split.train.user_degrees()))
        report = recommend_with_explanations(model, user, n_items=3)
        assert len(report.explanations) == 3
        assert all(0 <= explanation.confidence < 1 for explanation in report.explanations)

    def test_cocluster_statistics_are_consistent(self, pipeline):
        matrix, split, models, _ = pipeline
        coclusters = extract_coclusters(models["OCuLaR"].factors_, split.train)
        stats = cocluster_statistics(coclusters, n_users=matrix.n_users, n_items=matrix.n_items)
        assert stats.n_coclusters >= 1
        assert stats.mean_users <= matrix.n_users
        assert stats.mean_items <= matrix.n_items


class TestPlantedStructureRecovery:
    def test_heldout_recall_high_on_clean_planted_data(self):
        planted = make_planted_coclusters(
            n_users=100,
            n_items=60,
            n_coclusters=4,
            users_per_cocluster=30,
            items_per_cocluster=18,
            within_density=0.85,
            background_density=0.005,
            holdout_fraction=0.15,
            random_state=5,
        )
        model = OCuLaR(
            n_coclusters=6, regularization=2.0, max_iterations=120, random_state=0
        ).fit(planted.matrix)
        hits = 0
        per_user_holdout = {}
        for user, item in planted.heldout_pairs:
            per_user_holdout.setdefault(user, set()).add(item)
        for user, items in per_user_holdout.items():
            ranked = set(int(i) for i in model.recommend(user, n_items=20))
            hits += len(ranked & items)
        total = sum(len(items) for items in per_user_holdout.values())
        assert hits / total > 0.5


class TestEndToEndFromRatingsFile:
    def test_movielens_file_pipeline(self, tmp_path):
        # Build a tiny MovieLens-format file with block structure, then run the
        # exact loader -> split -> fit -> evaluate chain the README documents.
        rng = np.random.default_rng(0)
        lines = []
        for user in range(30):
            block = user % 2
            items = range(0, 15) if block == 0 else range(15, 30)
            for item in items:
                if rng.random() < 0.7:
                    rating = int(rng.integers(3, 6))
                    lines.append(f"{user}::{item}::{rating}::0")
                elif rng.random() < 0.3:
                    lines.append(f"{user}::{item}::2::0")
        path = tmp_path / "ratings.dat"
        path.write_text("\n".join(lines) + "\n")

        matrix = load_movielens_ratings(path, threshold=3.0)
        split = train_test_split(matrix, test_fraction=0.25, random_state=0)
        model = OCuLaR(
            n_coclusters=4, regularization=1.0, max_iterations=60, random_state=0
        ).fit(split.train)
        result = evaluate_recommender(model, split, m=10)
        popularity = PopularityRecommender().fit(split.train)
        floor = evaluate_recommender(popularity, split, m=10)
        assert result.recall > floor.recall


class TestGridSearchIntegration:
    def test_grid_search_selects_regularised_model_on_b2b(self):
        dataset = make_b2b(n_clients=120, n_products=24, random_state=2)
        result = grid_search(
            lambda n_coclusters, regularization: OCuLaR(
                n_coclusters=n_coclusters,
                regularization=regularization,
                max_iterations=40,
                random_state=0,
            ),
            {"n_coclusters": [4, 10], "regularization": [0.5, 5.0]},
            dataset.matrix,
            metric="recall",
            m=8,
            random_state=0,
        )
        assert len(result.table) == 4
        assert result.best_params["n_coclusters"] in (4, 10)
        assert 0.0 <= result.best_score <= 1.0


class TestB2BDeploymentFlow:
    def test_named_reports_with_price_estimates(self):
        dataset = make_b2b(n_clients=120, n_products=25, random_state=3)
        model = OCuLaR(
            n_coclusters=10, regularization=2.0, max_iterations=60, random_state=0
        ).fit(dataset.matrix)
        client = int(np.argmax(dataset.matrix.user_degrees()))
        report = recommend_with_explanations(
            model, client, n_items=3, deal_values=dataset.deal_values
        )
        text = report.to_text()
        assert dataset.client_names[client] in text
        assert any(
            explanation.price_estimate is not None for explanation in report.explanations
        )
