"""Tests for the shared Recommender interface (via a minimal dummy model)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.base import Recommender
from repro.data.interactions import InteractionMatrix
from repro.exceptions import NotFittedError


class ConstantScoreRecommender(Recommender):
    """Scores every item by its index — the simplest deterministic ranker."""

    def fit(self, matrix: InteractionMatrix) -> "ConstantScoreRecommender":
        self._set_train_matrix(matrix)
        return self

    def score_user(self, user: int) -> np.ndarray:
        return np.arange(self.train_matrix.n_items, dtype=float)


class BadShapeRecommender(Recommender):
    """Returns a score vector of the wrong length (to test validation)."""

    def fit(self, matrix: InteractionMatrix) -> "BadShapeRecommender":
        self._set_train_matrix(matrix)
        return self

    def score_user(self, user: int) -> np.ndarray:
        return np.zeros(3)


@pytest.fixture
def simple_matrix():
    dense = np.zeros((3, 6))
    dense[0, [0, 5]] = 1.0
    dense[1, [1, 2, 3]] = 1.0
    return InteractionMatrix(dense)


class TestFittedState:
    def test_unfitted_access_raises(self, simple_matrix):
        model = ConstantScoreRecommender()
        assert not model.is_fitted
        with pytest.raises(NotFittedError):
            _ = model.train_matrix
        with pytest.raises(NotFittedError):
            model.recommend(0)
        with pytest.raises(NotFittedError):
            model.score_users([0])

    def test_fit_records_matrix(self, simple_matrix):
        model = ConstantScoreRecommender().fit(simple_matrix)
        assert model.is_fitted
        assert model.train_matrix is simple_matrix


class TestRecommend:
    def test_ranking_order_and_exclusion(self, simple_matrix):
        model = ConstantScoreRecommender().fit(simple_matrix)
        # Highest index wins; user 0 has seen items 0 and 5.
        np.testing.assert_array_equal(model.recommend(0, n_items=3), [4, 3, 2])

    def test_include_seen(self, simple_matrix):
        model = ConstantScoreRecommender().fit(simple_matrix)
        np.testing.assert_array_equal(
            model.recommend(0, n_items=3, exclude_seen=False), [5, 4, 3]
        )

    def test_short_list_when_few_unknowns(self, simple_matrix):
        model = ConstantScoreRecommender().fit(simple_matrix)
        # User 1 has 3 unknown items (0, 4, 5); asking for 10 returns only 3.
        ranked = model.recommend(1, n_items=10)
        assert len(ranked) == 3
        assert set(ranked.tolist()) == {0, 4, 5}

    def test_wrong_score_shape_raises(self, simple_matrix):
        model = BadShapeRecommender().fit(simple_matrix)
        with pytest.raises(ValueError):
            model.recommend(0)

    def test_recommend_many_keys(self, simple_matrix):
        model = ConstantScoreRecommender().fit(simple_matrix)
        result = model.recommend_many([0, 2], n_items=2)
        assert set(result) == {0, 2}


class TestScoreUsers:
    def test_default_stacks_score_user(self, simple_matrix):
        model = ConstantScoreRecommender().fit(simple_matrix)
        batch = model.score_users([0, 1])
        assert batch.shape == (2, 6)
        np.testing.assert_array_equal(batch[0], batch[1])

    def test_empty_user_list(self, simple_matrix):
        model = ConstantScoreRecommender().fit(simple_matrix)
        assert model.score_users([]).shape == (0, 6)
