"""Tests for the baseline recommenders (popularity, kNN, wALS, BPR)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    BPRRecommender,
    ItemKNNRecommender,
    PopularityRecommender,
    UserKNNRecommender,
    WeightedALSRecommender,
)
from repro.baselines.user_knn import cosine_similarity_rows
from repro.data.interactions import InteractionMatrix
from repro.evaluation.evaluator import evaluate_recommender
from repro.exceptions import ConfigurationError, NotFittedError
import scipy.sparse as sp


@pytest.fixture
def block_matrix():
    """Two disjoint user/item blocks plus a couple of bridge interactions."""
    dense = np.zeros((10, 8))
    dense[0:5, 0:4] = 1.0
    dense[5:10, 4:8] = 1.0
    dense[0, 0] = 0.0  # hole inside block 1
    dense[7, 6] = 0.0  # hole inside block 2
    dense[4, 4] = 1.0  # bridge
    return InteractionMatrix(dense)


ALL_BASELINES = [
    ("popularity", lambda: PopularityRecommender()),
    ("user_knn", lambda: UserKNNRecommender(n_neighbors=3)),
    ("item_knn", lambda: ItemKNNRecommender(n_neighbors=3)),
    ("wals", lambda: WeightedALSRecommender(n_factors=4, n_iterations=5, random_state=0)),
    ("bpr", lambda: BPRRecommender(n_factors=4, n_epochs=10, random_state=0)),
]


@pytest.mark.parametrize("name,factory", ALL_BASELINES)
class TestCommonBehaviour:
    def test_fit_score_recommend(self, name, factory, block_matrix):
        model = factory().fit(block_matrix)
        scores = model.score_user(0)
        assert scores.shape == (8,)
        assert np.all(np.isfinite(scores))
        ranked = model.recommend(0, n_items=3)
        assert len(ranked) <= 3
        seen = set(block_matrix.items_of_user(0).tolist())
        assert not (set(int(i) for i in ranked) & seen)

    def test_unfitted_raises(self, name, factory):
        with pytest.raises(NotFittedError):
            factory().score_user(0)

    def test_block_structure_respected(self, name, factory, block_matrix):
        if name == "popularity":
            pytest.skip("popularity is non-personalised by design")
        model = factory().fit(block_matrix)
        # User 1 lives in block 1 (items 0-3); its top recommendation should be
        # the hole (0,0)-side item rather than something from the other block.
        scores = model.score_user(0)
        block_score = scores[0]
        other_block_mean = scores[4:8].mean()
        assert block_score >= other_block_mean


class TestPopularity:
    def test_scores_equal_item_degrees(self, block_matrix):
        model = PopularityRecommender().fit(block_matrix)
        np.testing.assert_allclose(model.score_user(3), block_matrix.item_degrees())

    def test_same_ranking_for_all_users(self, block_matrix):
        model = PopularityRecommender().fit(block_matrix)
        np.testing.assert_array_equal(
            model.recommend(0, n_items=2, exclude_seen=False),
            model.recommend(9, n_items=2, exclude_seen=False),
        )


class TestCosineSimilarity:
    def test_self_similarity_zeroed(self, block_matrix):
        similarity = cosine_similarity_rows(block_matrix.csr())
        assert np.allclose(np.diag(similarity), 0.0)

    def test_identical_rows_have_similarity_one(self):
        matrix = sp.csr_matrix(np.array([[1, 1, 0], [1, 1, 0], [0, 0, 1]], dtype=float))
        similarity = cosine_similarity_rows(matrix)
        assert similarity[0, 1] == pytest.approx(1.0)
        assert similarity[0, 2] == pytest.approx(0.0)

    def test_empty_row_has_zero_similarity(self):
        matrix = sp.csr_matrix(np.array([[1, 1], [0, 0]], dtype=float))
        similarity = cosine_similarity_rows(matrix)
        assert similarity[0, 1] == 0.0 and similarity[1, 0] == 0.0

    def test_symmetry(self, block_matrix):
        similarity = cosine_similarity_rows(block_matrix.csr())
        np.testing.assert_allclose(similarity, similarity.T)


class TestUserKNN:
    def test_neighbors_come_from_same_block(self, block_matrix):
        model = UserKNNRecommender(n_neighbors=3).fit(block_matrix)
        neighbors = model.explain_neighbors(1, count=3)
        assert set(neighbors) <= {0, 2, 3, 4}

    def test_invalid_neighbors_raises(self):
        with pytest.raises(ConfigurationError):
            UserKNNRecommender(n_neighbors=0)

    def test_hole_recovery(self, block_matrix):
        model = UserKNNRecommender(n_neighbors=4).fit(block_matrix)
        assert int(model.recommend(0, n_items=1)[0]) == 0  # the (0, 0) hole


class TestItemKNN:
    def test_similar_items_within_block(self, block_matrix):
        model = ItemKNNRecommender(n_neighbors=3).fit(block_matrix)
        similar = model.similar_items(1, count=3)
        assert set(similar) <= {0, 2, 3, 4}

    def test_hole_recovery(self, block_matrix):
        model = ItemKNNRecommender(n_neighbors=4).fit(block_matrix)
        assert int(model.recommend(7, n_items=1)[0]) == 6  # the (7, 6) hole

    def test_invalid_neighbors_raises(self):
        with pytest.raises(ConfigurationError):
            ItemKNNRecommender(n_neighbors=-1)


class TestWeightedALS:
    def test_loss_decreases_over_iterations(self, block_matrix):
        model = WeightedALSRecommender(n_factors=4, n_iterations=8, random_state=0)
        model.fit(block_matrix)
        losses = model.loss_history_
        assert len(losses) == 8
        assert losses[-1] <= losses[0]

    def test_positives_scored_above_unknowns(self, block_matrix):
        model = WeightedALSRecommender(n_factors=6, n_iterations=10, random_state=0)
        model.fit(block_matrix)
        positive_scores, unknown_scores = [], []
        dense = block_matrix.toarray()
        for user in range(block_matrix.n_users):
            scores = model.score_user(user)
            positive_scores.extend(scores[dense[user] > 0])
            unknown_scores.extend(scores[dense[user] == 0])
        assert np.mean(positive_scores) > np.mean(unknown_scores)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            WeightedALSRecommender(n_factors=0)
        with pytest.raises(ConfigurationError):
            WeightedALSRecommender(unknown_weight=1.5)

    def test_deterministic(self, block_matrix):
        first = WeightedALSRecommender(n_factors=4, n_iterations=3, random_state=1).fit(block_matrix)
        second = WeightedALSRecommender(n_factors=4, n_iterations=3, random_state=1).fit(block_matrix)
        np.testing.assert_allclose(first.user_factors_, second.user_factors_)


class TestBPR:
    def test_positives_ranked_above_sampled_negatives(self, block_matrix):
        model = BPRRecommender(n_factors=8, n_epochs=40, random_state=0).fit(block_matrix)
        dense = block_matrix.toarray()
        correct = 0
        total = 0
        rng = np.random.default_rng(0)
        for user in range(block_matrix.n_users):
            scores = model.score_user(user)
            positives = np.flatnonzero(dense[user] > 0)
            unknowns = np.flatnonzero(dense[user] == 0)
            if len(positives) == 0 or len(unknowns) == 0:
                continue
            for positive in positives:
                negative = rng.choice(unknowns)
                total += 1
                if scores[positive] > scores[negative]:
                    correct += 1
        assert correct / total > 0.75

    def test_deterministic(self, block_matrix):
        first = BPRRecommender(n_factors=4, n_epochs=5, random_state=2).fit(block_matrix)
        second = BPRRecommender(n_factors=4, n_epochs=5, random_state=2).fit(block_matrix)
        np.testing.assert_allclose(first.user_factors_, second.user_factors_)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            BPRRecommender(learning_rate=0.0)
        with pytest.raises(ConfigurationError):
            BPRRecommender(n_epochs=0)

    def test_empty_matrix_rejected(self):
        from repro.exceptions import ReproError

        empty = InteractionMatrix(np.zeros((3, 3)))
        with pytest.raises(ReproError):
            BPRRecommender(n_epochs=1).fit(empty)


class TestBaselinesBeatRandomOnStructuredData:
    """Every personalised baseline should beat popularity on block-structured data."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: UserKNNRecommender(n_neighbors=10),
            lambda: ItemKNNRecommender(n_neighbors=10),
            lambda: WeightedALSRecommender(n_factors=16, n_iterations=10, random_state=0),
        ],
    )
    def test_beats_popularity(self, factory, movielens_small):
        _, _, split = movielens_small
        personalised = factory().fit(split.train)
        popularity = PopularityRecommender().fit(split.train)
        users = sorted(split.test_items.keys())[:60]
        personalised_recall = evaluate_recommender(personalised, split, m=20, users=users).recall
        popularity_recall = evaluate_recommender(popularity, split, m=20, users=users).recall
        assert personalised_recall >= popularity_recall
