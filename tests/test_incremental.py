"""Incremental refit: drifting-corpus construction, the warm-vs-cold study,
and the runtime's ingest → fold-in-now → warm-refit lifecycle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import RecommendRequest
from repro.core.ocular import OCuLaR
from repro.exceptions import ConfigurationError, DataError, NotFittedError
from repro.experiments.incremental import (
    DriftingCorpus,
    make_drifting_corpus,
    run_incremental_study,
)
from repro.runtime import IngestStats, RecommenderRuntime
from repro.runtime.service import DEFAULT_WARM_PLATEAU_TOLERANCE


@pytest.fixture(scope="module")
def corpus():
    return make_drifting_corpus(n_users=150, n_items=60, random_state=0)


def _model(**overrides):
    settings = dict(
        n_coclusters=4,
        regularization=5.0,
        max_iterations=4,
        tolerance=0.0,
        random_state=0,
    )
    settings.update(overrides)
    return OCuLaR(**settings)


# --------------------------------------------------------------------------- #
# Drifting-corpus construction
# --------------------------------------------------------------------------- #
class TestMakeDriftingCorpus:
    def test_shapes_and_rewind(self, corpus):
        grown = corpus.split.train
        assert corpus.base.n_users + corpus.n_new_users == grown.n_users
        assert corpus.base.n_items + corpus.n_new_items == grown.n_items
        assert corpus.n_new_users > 0 and corpus.n_new_items > 0
        # The delta replays exactly onto the base: same matrix the split
        # evaluates against.
        reconstructed = corpus.base.extended_with(
            corpus.delta_pairs,
            n_new_users=corpus.n_new_users,
            n_new_items=corpus.n_new_items,
        )
        assert reconstructed == grown

    def test_drift_is_delta_over_base(self, corpus):
        assert corpus.drift == pytest.approx(
            len(corpus.delta_pairs) / corpus.base.nnz
        )
        assert 0.0 < corpus.drift < 1.0

    def test_deterministic_in_seed(self):
        a = make_drifting_corpus(n_users=80, n_items=40, random_state=7)
        b = make_drifting_corpus(n_users=80, n_items=40, random_state=7)
        assert a.base == b.base
        assert a.delta_pairs == b.delta_pairs

    def test_base_shape_must_fit_within_grown(self):
        with pytest.raises(DataError, match="within the grown shape"):
            make_drifting_corpus(n_users=80, n_items=40, n_base_users=81)

    def test_late_fraction_validated(self):
        with pytest.raises(DataError, match="late_fraction"):
            make_drifting_corpus(n_users=80, n_items=40, late_fraction=1.0)


# --------------------------------------------------------------------------- #
# The warm-vs-cold study protocol
# --------------------------------------------------------------------------- #
class TestIncrementalStudy:
    def test_study_runs_and_reports_both_arms(self, corpus):
        result = run_incremental_study(
            corpus=corpus,
            n_coclusters=4,
            max_iterations=6,
            m=10,
            random_state=0,
        )
        warm, cold = result.arm("warm"), result.arm("cold")
        assert warm.sweeps >= 1 and cold.sweeps >= 1
        assert np.isfinite(warm.objective) and np.isfinite(cold.objective)
        assert result.sweep_ratio == warm.sweeps / cold.sweeps
        assert result.recall_gap == pytest.approx(cold.recall - warm.recall)
        text = result.to_text()
        assert "incremental refit" in text
        assert "warm" in text and "cold" in text
        with pytest.raises(KeyError):
            result.arm("lukewarm")


# --------------------------------------------------------------------------- #
# Runtime lifecycle: ingest, drift, refit modes, mixed serving
# --------------------------------------------------------------------------- #
class TestRuntimeIngest:
    def test_ingest_stats_and_drift(self, corpus):
        with RecommenderRuntime(executor="serial") as runtime:
            runtime.fit(_model(), corpus.base)
            assert runtime.drift == 0.0
            stats = runtime.ingest(
                corpus.delta_pairs,
                n_new_users=corpus.n_new_users,
                n_new_items=corpus.n_new_items,
            )
            assert isinstance(stats, IngestStats)
            assert stats.n_pairs == len(corpus.delta_pairs)
            assert stats.n_new_users == corpus.n_new_users
            assert stats.n_new_items == corpus.n_new_items
            grown = corpus.split.train
            assert (stats.n_users, stats.n_items) == (grown.n_users, grown.n_items)
            assert stats.nnz == grown.nnz
            assert stats.drift == runtime.drift > 0.0
            assert runtime.train_matrix == grown

    def test_ingest_accumulates_across_deltas(self, corpus):
        half = len(corpus.delta_pairs) // 2
        old_shape_pairs = [
            (u, i)
            for u, i in corpus.delta_pairs
            if u < corpus.base.n_users and i < corpus.base.n_items
        ]
        with RecommenderRuntime(executor="serial") as runtime:
            runtime.fit(_model(), corpus.base)
            first = runtime.ingest(old_shape_pairs[:half])
            second = runtime.ingest(old_shape_pairs[half:])
            assert second.drift >= first.drift
            assert runtime.drift == second.drift

    def test_ingest_requires_fit(self):
        with RecommenderRuntime(executor="serial") as runtime:
            with pytest.raises(NotFittedError, match="ingest"):
                runtime.ingest([(0, 0)])

    def test_objective_drift_zero_after_fit_and_finite_after_ingest(self, corpus):
        with RecommenderRuntime(executor="serial") as runtime:
            runtime.fit(_model(), corpus.base)
            assert runtime.objective_drift() == pytest.approx(0.0, abs=1e-9)
            runtime.ingest(
                corpus.delta_pairs,
                n_new_users=corpus.n_new_users,
                n_new_items=corpus.n_new_items,
            )
            assert np.isfinite(runtime.objective_drift())


class TestRuntimeRefit:
    def test_warm_refit_seeds_and_plateaus(self, corpus):
        with RecommenderRuntime(executor="serial") as runtime:
            model = _model(max_iterations=8)
            runtime.fit(model, corpus.base)
            runtime.ingest(
                corpus.delta_pairs,
                n_new_users=corpus.n_new_users,
                n_new_items=corpus.n_new_items,
            )
            runtime.refit(mode="warm")
            assert runtime.last_refit_mode == "warm"
            assert model.history_.warm_started
            assert model.history_.plateau_tolerance == DEFAULT_WARM_PLATEAU_TOLERANCE
            # The warm refit trains on the grown corpus.
            assert model.factors_.n_users == corpus.split.train.n_users
            assert model.factors_.n_items == corpus.split.train.n_items
            # Warm refits do not reset the drift baseline.
            assert runtime.drift > 0.0

    def test_cold_refit_resets_drift_and_random_inits(self, corpus):
        with RecommenderRuntime(executor="serial") as runtime:
            model = _model()
            runtime.fit(model, corpus.base)
            runtime.ingest(
                corpus.delta_pairs,
                n_new_users=corpus.n_new_users,
                n_new_items=corpus.n_new_items,
            )
            runtime.refit(mode="cold")
            assert runtime.last_refit_mode == "cold"
            assert not model.history_.warm_started
            assert model.history_.plateau_tolerance is None
            assert runtime.drift == 0.0

    def test_auto_resolves_warm_below_threshold(self, corpus):
        with RecommenderRuntime(executor="serial") as runtime:
            runtime.fit(_model(), corpus.base)
            runtime.ingest(
                corpus.delta_pairs,
                n_new_users=corpus.n_new_users,
                n_new_items=corpus.n_new_items,
            )
            assert runtime.drift <= runtime.drift_threshold
            runtime.refit(mode="auto")
            assert runtime.last_refit_mode == "warm"

    def test_auto_resolves_cold_above_threshold(self, corpus):
        with RecommenderRuntime(executor="serial", drift_threshold=0.0) as runtime:
            runtime.fit(_model(), corpus.base)
            runtime.ingest(
                corpus.delta_pairs,
                n_new_users=corpus.n_new_users,
                n_new_items=corpus.n_new_items,
            )
            assert runtime.drift > runtime.drift_threshold
            runtime.refit(mode="auto")
            assert runtime.last_refit_mode == "cold"

    def test_refit_mode_validated(self, corpus):
        with RecommenderRuntime(executor="serial") as runtime:
            runtime.fit(_model(), corpus.base)
            with pytest.raises(ConfigurationError, match="mode"):
                runtime.refit(mode="tepid")

    def test_refit_requires_previous_fit(self):
        with RecommenderRuntime(executor="serial") as runtime:
            with pytest.raises(NotFittedError, match="refit"):
                runtime.refit()


class TestMixedServing:
    def test_fresh_users_served_at_pinned_generation(self, corpus):
        grown = corpus.split.train
        with RecommenderRuntime(executor="serial") as runtime:
            runtime.fit(_model(), corpus.base)
            base_generation = runtime.publish()
            runtime.ingest(
                corpus.delta_pairs,
                n_new_users=corpus.n_new_users,
                n_new_items=corpus.n_new_items,
            )
            fresh = grown.n_users - 1
            known = 0
            response = runtime.recommend(
                RecommendRequest(users=[known, fresh], n_items=5)
            )
            # Both users answered from the published (pre-ingest) generation:
            # the known user directly, the fresh one via fold-in of their
            # ingested interactions against the pinned factors.
            assert response.generation == base_generation
            assert len(response.rankings) == 2
            for ranking in response.rankings:
                assert len(ranking) == 5
            # The known user's ranking matches a pure known-users request.
            alone = runtime.recommend(RecommendRequest(users=[known], n_items=5))
            assert np.array_equal(response.rankings[0], alone.rankings[0])

    def test_update_after_warm_refit_promotes_new_users(self, corpus):
        grown = corpus.split.train
        with RecommenderRuntime(executor="serial") as runtime:
            runtime.fit(_model(), corpus.base)
            base_generation = runtime.publish()
            runtime.ingest(
                corpus.delta_pairs,
                n_new_users=corpus.n_new_users,
                n_new_items=corpus.n_new_items,
            )
            runtime.refit(mode="warm")
            new_generation = runtime.update()
            assert new_generation > base_generation
            response = runtime.recommend(
                RecommendRequest(users=[grown.n_users - 1], n_items=5)
            )
            assert response.generation == new_generation
            # New items are rankable once the refit generation is live.
            all_items = np.concatenate(
                runtime.recommend(
                    RecommendRequest(
                        users=list(range(grown.n_users)), n_items=grown.n_items
                    ),
                    # full-catalogue rankings include the appended items
                ).rankings
            )
            assert all_items.max() == grown.n_items - 1
