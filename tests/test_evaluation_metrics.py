"""Tests for the ranking metrics (recall@M, MAP@M and companions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.metrics import (
    average_precision_at_m,
    catalog_coverage,
    hit_rate_at_m,
    ndcg_at_m,
    precision_at_m,
    recall_at_m,
)
from repro.exceptions import EvaluationError


class TestRecall:
    def test_perfect_recall(self):
        assert recall_at_m([1, 2, 3], {1, 2, 3}, m=3) == 1.0

    def test_partial_recall(self):
        assert recall_at_m([1, 9, 8], {1, 2}, m=3) == pytest.approx(0.5)

    def test_zero_recall(self):
        assert recall_at_m([5, 6], {1, 2}, m=2) == 0.0

    def test_cutoff_applied(self):
        # The relevant item sits at rank 3, beyond the cut-off m=2.
        assert recall_at_m([9, 8, 1], {1}, m=2) == 0.0

    def test_denominator_is_relevant_count_not_m(self):
        # 5 relevant items, list of 2 hits at m=2: recall = 2/5 (paper definition).
        assert recall_at_m([1, 2], {1, 2, 3, 4, 5}, m=2) == pytest.approx(0.4)

    def test_empty_relevant_raises(self):
        with pytest.raises(EvaluationError):
            recall_at_m([1], set(), m=1)

    def test_invalid_m(self):
        with pytest.raises(EvaluationError):
            recall_at_m([1], {1}, m=0)


class TestPrecision:
    def test_values(self):
        assert precision_at_m([1, 9], {1}, m=2) == pytest.approx(0.5)
        assert precision_at_m([1, 2], {1, 2}, m=2) == 1.0

    def test_short_list_counts_misses(self):
        # Only one item recommended but m=4: precision = 1/4.
        assert precision_at_m([1], {1}, m=4) == pytest.approx(0.25)

    def test_no_relevant_returns_zero(self):
        assert precision_at_m([1, 2], set(), m=2) == 0.0


class TestAveragePrecision:
    def test_paper_normaliser_min_relevant_m(self):
        # One relevant item ranked first, M = 3: AP = 1 / min(1, 3) = 1.
        assert average_precision_at_m([1, 8, 9], {1}, m=3) == pytest.approx(1.0)

    def test_rank_sensitivity(self):
        early = average_precision_at_m([1, 8, 9], {1}, m=3)
        late = average_precision_at_m([8, 9, 1], {1}, m=3)
        assert early > late

    def test_worked_example(self):
        # Relevant = {0, 2}; ranking = [0, 9, 2]; M = 3.
        # Prec(1) = 1, Prec(3) = 2/3; AP = (1 + 2/3) / min(2, 3) = 5/6.
        assert average_precision_at_m([0, 9, 2], {0, 2}, m=3) == pytest.approx(5 / 6)

    def test_bounded_by_one(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            ranked = rng.permutation(20)[:10].tolist()
            relevant = set(rng.permutation(20)[:5].tolist())
            assert 0.0 <= average_precision_at_m(ranked, relevant, m=10) <= 1.0

    def test_empty_relevant_raises(self):
        with pytest.raises(EvaluationError):
            average_precision_at_m([1], set(), m=1)

    def test_worked_example_int_items(self):
        assert average_precision_at_m([7, 3, 5], {7, 5}, m=3) == pytest.approx(5 / 6)


class TestHitRateAndNdcg:
    def test_hit_rate(self):
        assert hit_rate_at_m([1, 2], {2}, m=2) == 1.0
        assert hit_rate_at_m([1, 2], {3}, m=2) == 0.0
        assert hit_rate_at_m([1, 2, 3], {3}, m=2) == 0.0

    def test_ndcg_perfect_ranking_is_one(self):
        assert ndcg_at_m([1, 2, 3], {1, 2, 3}, m=3) == pytest.approx(1.0)

    def test_ndcg_prefers_early_hits(self):
        assert ndcg_at_m([1, 9, 8], {1}, m=3) > ndcg_at_m([9, 8, 1], {1}, m=3)

    def test_ndcg_in_unit_interval(self):
        assert 0.0 <= ndcg_at_m([9, 1, 8], {1, 5}, m=3) <= 1.0

    def test_ndcg_empty_relevant_raises(self):
        with pytest.raises(EvaluationError):
            ndcg_at_m([1], set(), m=1)


class TestCatalogCoverage:
    def test_full_and_partial_coverage(self):
        assert catalog_coverage([[0, 1], [2, 3]], n_items=4) == 1.0
        assert catalog_coverage([[0, 1], [1, 0]], n_items=4) == 0.5

    def test_invalid_catalog_size(self):
        with pytest.raises(EvaluationError):
            catalog_coverage([[0]], n_items=0)


class TestMetricRelationships:
    """Cross-metric invariants that hold for any ranking."""

    def test_recall_times_relevant_equals_precision_times_m(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            n_items = 30
            ranked = rng.permutation(n_items)[:10].tolist()
            relevant = set(rng.permutation(n_items)[:6].tolist())
            m = 10
            hits_from_recall = recall_at_m(ranked, relevant, m) * len(relevant)
            hits_from_precision = precision_at_m(ranked, relevant, m) * m
            assert hits_from_recall == pytest.approx(hits_from_precision)

    def test_hit_rate_upper_bounds_recall_indicator(self):
        ranked = [4, 2, 7]
        relevant = {2, 9}
        assert hit_rate_at_m(ranked, relevant, 3) >= (recall_at_m(ranked, relevant, 3) > 0)
