"""Property-based tests for the OCuLaR objective and backends (hypothesis)."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.backends import ReferenceBackend, VectorizedBackend
from repro.core.objective import (
    full_objective,
    gradient_ratio,
    relative_user_weights,
    row_gradient,
    row_objective,
    safe_log1mexp,
)


@st.composite
def factor_problem(draw):
    """A random small one-class problem with non-negative factors."""
    n_users = draw(st.integers(min_value=2, max_value=8))
    n_items = draw(st.integers(min_value=2, max_value=8))
    n_coclusters = draw(st.integers(min_value=1, max_value=4))
    density_seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(density_seed)
    dense = (rng.random((n_users, n_items)) < 0.4).astype(float)
    user_factors = rng.uniform(0.0, 1.5, size=(n_users, n_coclusters))
    item_factors = rng.uniform(0.0, 1.5, size=(n_items, n_coclusters))
    return sp.csr_matrix(dense), user_factors, item_factors


@given(hnp.arrays(np.float64, shape=st.integers(1, 20), elements=st.floats(0.0, 50.0)))
@settings(max_examples=60, deadline=None)
def test_safe_log1mexp_always_finite_and_non_positive(affinities):
    values = safe_log1mexp(affinities)
    assert np.all(np.isfinite(values))
    assert np.all(values <= 0.0)


@given(hnp.arrays(np.float64, shape=st.integers(1, 20), elements=st.floats(0.0, 50.0)))
@settings(max_examples=60, deadline=None)
def test_gradient_ratio_always_finite_and_non_negative(affinities):
    values = gradient_ratio(affinities)
    assert np.all(np.isfinite(values))
    assert np.all(values >= 0.0)


@given(factor_problem())
@settings(max_examples=40, deadline=None)
def test_full_objective_finite_and_penalty_monotone(problem):
    matrix, user_factors, item_factors = problem
    base = full_objective(matrix, user_factors, item_factors, 0.0)
    regularised = full_objective(matrix, user_factors, item_factors, 2.0)
    assert np.isfinite(base) and np.isfinite(regularised)
    assert regularised >= base


@given(factor_problem())
@settings(max_examples=40, deadline=None)
def test_relative_weights_non_negative_and_finite(problem):
    matrix, _, _ = problem
    weights = relative_user_weights(matrix)
    assert weights.shape == (matrix.shape[0],)
    # w_u = #unknowns / #positives is zero only for users who already own the
    # whole catalogue, and must always be finite.
    assert np.all(weights >= 0)
    assert np.all(np.isfinite(weights))
    degrees = np.diff(matrix.indptr)
    saturated = degrees == matrix.shape[1]
    assert np.all(weights[~saturated & (degrees > 0)] > 0)


@given(factor_problem())
@settings(max_examples=30, deadline=None)
def test_backends_agree_on_random_problems(problem):
    """The reference and vectorized sweeps are interchangeable."""
    matrix, user_factors, item_factors = problem
    kwargs = dict(regularization=0.5, sigma=0.1, beta=0.5, max_backtracks=10)
    reference, _ = ReferenceBackend().sweep(matrix, user_factors, item_factors, **kwargs)
    vectorized, _ = VectorizedBackend().sweep(matrix, user_factors, item_factors, **kwargs)
    np.testing.assert_allclose(reference, vectorized, rtol=1e-7, atol=1e-9)


@given(factor_problem())
@settings(max_examples=30, deadline=None)
def test_sweep_never_increases_objective(problem):
    """A single projected-gradient sweep is a descent step for the block."""
    matrix, user_factors, item_factors = problem
    before = full_objective(matrix, user_factors, item_factors, 0.5)
    updated, _ = VectorizedBackend().sweep(
        matrix, user_factors, item_factors, regularization=0.5
    )
    after = full_objective(matrix, updated, item_factors, 0.5)
    assert after <= before + 1e-8


@given(factor_problem(), st.integers(min_value=0, max_value=3))
@settings(max_examples=30, deadline=None)
def test_row_gradient_is_gradient_of_row_objective(problem, row_seed):
    matrix, user_factors, item_factors = problem
    matrix_t = sp.csr_matrix(matrix.T)
    item = row_seed % matrix.shape[1]
    users = matrix_t.indices[matrix_t.indptr[item] : matrix_t.indptr[item + 1]]
    positive = user_factors[users]
    unknown = user_factors.sum(axis=0) - positive.sum(axis=0)
    factor = item_factors[item] + 0.05  # keep away from the log singularity
    lam = 0.3

    analytic = row_gradient(factor, positive, None, unknown, lam)
    epsilon = 1e-6
    for index in range(len(factor)):
        plus, minus = factor.copy(), factor.copy()
        plus[index] += epsilon
        minus[index] -= epsilon
        numeric = (
            row_objective(plus, positive, None, unknown, lam)
            - row_objective(minus, positive, None, unknown, lam)
        ) / (2 * epsilon)
        np.testing.assert_allclose(analytic[index], numeric, rtol=5e-3, atol=1e-5)
