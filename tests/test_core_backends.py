"""Tests for the compute backends (reference vs vectorized sweeps)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.backends import (
    ReferenceBackend,
    VectorizedBackend,
    available_backends,
    get_backend,
)
from repro.core.objective import full_objective
from repro.exceptions import ConfigurationError


@pytest.fixture
def sweep_problem():
    """A reproducible item-sweep problem: rows = items, cols = users."""
    rng = np.random.default_rng(1)
    dense = (rng.random((12, 20)) < 0.25).astype(float)  # items x users
    matrix = sp.csr_matrix(dense)
    row_factors = rng.uniform(0.05, 0.8, size=(12, 4))
    col_factors = rng.uniform(0.05, 0.8, size=(20, 4))
    return matrix, row_factors, col_factors


class TestRegistry:
    def test_available_backends(self):
        assert set(available_backends()) == {"reference", "vectorized"}

    def test_get_backend_by_name(self):
        assert isinstance(get_backend("reference"), ReferenceBackend)
        assert isinstance(get_backend("vectorized"), VectorizedBackend)

    def test_get_backend_passthrough_instance(self):
        backend = VectorizedBackend()
        assert get_backend(backend) is backend

    def test_unknown_backend_raises(self):
        with pytest.raises(ConfigurationError):
            get_backend("cuda")


@pytest.mark.parametrize("backend_name", ["reference", "vectorized"])
class TestSweepBehaviour:
    def test_factors_stay_non_negative(self, backend_name, sweep_problem):
        matrix, row_factors, col_factors = sweep_problem
        backend = get_backend(backend_name)
        updated, _ = backend.sweep(matrix, row_factors, col_factors, regularization=0.5)
        assert (updated >= 0).all()

    def test_input_factors_not_mutated(self, backend_name, sweep_problem):
        matrix, row_factors, col_factors = sweep_problem
        original = row_factors.copy()
        get_backend(backend_name).sweep(matrix, row_factors, col_factors, regularization=0.5)
        np.testing.assert_array_equal(row_factors, original)

    def test_sweep_does_not_increase_block_objective(self, backend_name, sweep_problem):
        matrix, row_factors, col_factors = sweep_problem
        backend = get_backend(backend_name)
        # The block objective here is the full objective of the transposed
        # problem with the column side held fixed.
        before = full_objective(matrix, row_factors, col_factors, 0.5)
        updated, _ = backend.sweep(matrix, row_factors, col_factors, regularization=0.5)
        after = full_objective(matrix, updated, col_factors, 0.5)
        assert after <= before + 1e-9

    def test_stats_fields(self, backend_name, sweep_problem):
        matrix, row_factors, col_factors = sweep_problem
        _, stats = get_backend(backend_name).sweep(
            matrix, row_factors, col_factors, regularization=0.5
        )
        assert stats.n_rows == matrix.shape[0]
        assert 0 <= stats.n_accepted <= stats.n_rows
        assert stats.n_backtracks >= 0
        assert 0.0 <= stats.acceptance_rate <= 1.0

    def test_rows_without_positives_shrink(self, backend_name):
        # A row with no positive entries has gradient = unknown_sum + 2*lam*f,
        # so a projected step must not increase it.
        matrix = sp.csr_matrix(np.array([[1, 1, 0], [0, 0, 0]], dtype=float))
        row_factors = np.array([[0.5, 0.5], [0.8, 0.8]])
        col_factors = np.array([[0.4, 0.1], [0.2, 0.3], [0.1, 0.1]])
        updated, _ = get_backend(backend_name).sweep(
            matrix, row_factors, col_factors, regularization=0.1
        )
        assert np.all(updated[1] <= row_factors[1] + 1e-12)

    def test_weighted_sweep_runs(self, backend_name, sweep_problem):
        matrix, row_factors, col_factors = sweep_problem
        col_weights = np.linspace(0.5, 2.0, matrix.shape[1])
        updated, _ = get_backend(backend_name).sweep(
            matrix,
            row_factors,
            col_factors,
            regularization=0.5,
            col_positive_weights=col_weights,
        )
        assert updated.shape == row_factors.shape


class TestBackendEquivalence:
    """The two backends implement the same mathematics."""

    def test_single_sweep_results_match(self, sweep_problem):
        matrix, row_factors, col_factors = sweep_problem
        reference, _ = ReferenceBackend().sweep(
            matrix, row_factors, col_factors, regularization=0.3
        )
        vectorized, _ = VectorizedBackend().sweep(
            matrix, row_factors, col_factors, regularization=0.3
        )
        np.testing.assert_allclose(reference, vectorized, rtol=1e-8, atol=1e-10)

    def test_weighted_sweep_results_match(self, sweep_problem):
        matrix, row_factors, col_factors = sweep_problem
        col_weights = np.linspace(0.2, 3.0, matrix.shape[1])
        row_weights = np.linspace(0.5, 1.5, matrix.shape[0])
        kwargs = dict(
            regularization=0.3,
            col_positive_weights=col_weights,
            row_positive_weights=row_weights,
        )
        reference, _ = ReferenceBackend().sweep(matrix, row_factors, col_factors, **kwargs)
        vectorized, _ = VectorizedBackend().sweep(matrix, row_factors, col_factors, **kwargs)
        np.testing.assert_allclose(reference, vectorized, rtol=1e-8, atol=1e-10)

    def test_sweep_stats_match(self, sweep_problem):
        matrix, row_factors, col_factors = sweep_problem
        _, ref_stats = ReferenceBackend().sweep(
            matrix, row_factors, col_factors, regularization=0.3
        )
        _, vec_stats = VectorizedBackend().sweep(
            matrix, row_factors, col_factors, regularization=0.3
        )
        assert ref_stats.n_rows == vec_stats.n_rows
        assert ref_stats.n_accepted == vec_stats.n_accepted

    def test_equivalence_with_zero_regularization(self, sweep_problem):
        matrix, row_factors, col_factors = sweep_problem
        reference, _ = ReferenceBackend().sweep(
            matrix, row_factors, col_factors, regularization=0.0
        )
        vectorized, _ = VectorizedBackend().sweep(
            matrix, row_factors, col_factors, regularization=0.0
        )
        np.testing.assert_allclose(reference, vectorized, rtol=1e-8, atol=1e-10)
