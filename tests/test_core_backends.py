"""Tests for the compute backends (reference vs vectorized sweeps)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.backends import (
    ParallelBackend,
    ReferenceBackend,
    VectorizedBackend,
    available_backends,
    get_backend,
)
from repro.core.backends.parallel import shard_ranges
from repro.core.objective import full_objective
from repro.exceptions import ConfigurationError

ALL_BACKENDS = ["reference", "vectorized", "parallel"]


@pytest.fixture
def sweep_problem():
    """A reproducible item-sweep problem: rows = items, cols = users."""
    rng = np.random.default_rng(1)
    dense = (rng.random((12, 20)) < 0.25).astype(float)  # items x users
    matrix = sp.csr_matrix(dense)
    row_factors = rng.uniform(0.05, 0.8, size=(12, 4))
    col_factors = rng.uniform(0.05, 0.8, size=(20, 4))
    return matrix, row_factors, col_factors


class TestRegistry:
    def test_available_backends(self):
        assert set(available_backends()) == {"reference", "vectorized", "parallel"}

    def test_get_backend_by_name(self):
        assert isinstance(get_backend("reference"), ReferenceBackend)
        assert isinstance(get_backend("vectorized"), VectorizedBackend)
        assert isinstance(get_backend("parallel"), ParallelBackend)

    def test_get_backend_passthrough_instance(self):
        backend = VectorizedBackend()
        assert get_backend(backend) is backend

    def test_unknown_backend_raises(self):
        with pytest.raises(ConfigurationError):
            get_backend("cuda")

    def test_n_workers_configures_parallel(self):
        backend = get_backend("parallel", n_workers=3)
        assert isinstance(backend, ParallelBackend)
        assert backend.n_workers == 3
        assert backend.n_shards == 3

    def test_n_workers_rejected_for_other_backends(self):
        with pytest.raises(ConfigurationError):
            get_backend("vectorized", n_workers=2)
        with pytest.raises(ConfigurationError):
            get_backend(ParallelBackend(n_workers=1), n_workers=2)

    def test_parallel_rejects_bad_worker_counts(self):
        with pytest.raises(ConfigurationError):
            ParallelBackend(n_workers=0)
        with pytest.raises(ConfigurationError):
            ParallelBackend(n_workers=2, n_shards=-1)


class TestShardRanges:
    def test_covers_range_without_gaps(self):
        ranges = shard_ranges(3, 17, 4)
        assert ranges[0][0] == 3
        assert ranges[-1][1] == 17
        for (_, left_stop), (right_start, _) in zip(ranges, ranges[1:]):
            assert left_stop == right_start

    def test_balanced_within_one_row(self):
        sizes = [stop - start for start, stop in shard_ranges(0, 10, 3)]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_never_produces_empty_shards(self):
        assert shard_ranges(0, 2, 5) == [(0, 1), (1, 2)]
        assert shard_ranges(5, 5, 3) == []


@pytest.mark.parametrize("backend_name", ALL_BACKENDS)
class TestSweepBehaviour:
    def test_factors_stay_non_negative(self, backend_name, sweep_problem):
        matrix, row_factors, col_factors = sweep_problem
        backend = get_backend(backend_name)
        updated, _ = backend.sweep(matrix, row_factors, col_factors, regularization=0.5)
        assert (updated >= 0).all()

    def test_input_factors_not_mutated(self, backend_name, sweep_problem):
        matrix, row_factors, col_factors = sweep_problem
        original = row_factors.copy()
        get_backend(backend_name).sweep(matrix, row_factors, col_factors, regularization=0.5)
        np.testing.assert_array_equal(row_factors, original)

    def test_sweep_does_not_increase_block_objective(self, backend_name, sweep_problem):
        matrix, row_factors, col_factors = sweep_problem
        backend = get_backend(backend_name)
        # The block objective here is the full objective of the transposed
        # problem with the column side held fixed.
        before = full_objective(matrix, row_factors, col_factors, 0.5)
        updated, _ = backend.sweep(matrix, row_factors, col_factors, regularization=0.5)
        after = full_objective(matrix, updated, col_factors, 0.5)
        assert after <= before + 1e-9

    def test_stats_fields(self, backend_name, sweep_problem):
        matrix, row_factors, col_factors = sweep_problem
        _, stats = get_backend(backend_name).sweep(
            matrix, row_factors, col_factors, regularization=0.5
        )
        assert stats.n_rows == matrix.shape[0]
        assert 0 <= stats.n_accepted <= stats.n_rows
        assert stats.n_backtracks >= 0
        assert 0.0 <= stats.acceptance_rate <= 1.0

    def test_rows_without_positives_shrink(self, backend_name):
        # A row with no positive entries has gradient = unknown_sum + 2*lam*f,
        # so a projected step must not increase it.
        matrix = sp.csr_matrix(np.array([[1, 1, 0], [0, 0, 0]], dtype=float))
        row_factors = np.array([[0.5, 0.5], [0.8, 0.8]])
        col_factors = np.array([[0.4, 0.1], [0.2, 0.3], [0.1, 0.1]])
        updated, _ = get_backend(backend_name).sweep(
            matrix, row_factors, col_factors, regularization=0.1
        )
        assert np.all(updated[1] <= row_factors[1] + 1e-12)

    def test_sweep_accepts_list_factors(self, backend_name):
        # The backward-compatible path must coerce array-likes before
        # sniffing dtypes for the ephemeral plan.
        matrix = sp.csr_matrix(np.array([[1.0, 0.0], [0.0, 1.0]]))
        updated, _ = get_backend(backend_name).sweep(
            matrix,
            [[0.4, 0.2], [0.3, 0.5]],
            [[0.2, 0.1], [0.4, 0.3]],
            regularization=0.2,
        )
        assert updated.shape == (2, 2)
        assert updated.dtype == np.float64

    def test_weighted_sweep_runs(self, backend_name, sweep_problem):
        matrix, row_factors, col_factors = sweep_problem
        col_weights = np.linspace(0.5, 2.0, matrix.shape[1])
        updated, _ = get_backend(backend_name).sweep(
            matrix,
            row_factors,
            col_factors,
            regularization=0.5,
            col_positive_weights=col_weights,
        )
        assert updated.shape == row_factors.shape


class TestBackendEquivalence:
    """The two backends implement the same mathematics."""

    def test_single_sweep_results_match(self, sweep_problem):
        matrix, row_factors, col_factors = sweep_problem
        reference, _ = ReferenceBackend().sweep(
            matrix, row_factors, col_factors, regularization=0.3
        )
        vectorized, _ = VectorizedBackend().sweep(
            matrix, row_factors, col_factors, regularization=0.3
        )
        np.testing.assert_allclose(reference, vectorized, rtol=1e-8, atol=1e-10)

    def test_weighted_sweep_results_match(self, sweep_problem):
        matrix, row_factors, col_factors = sweep_problem
        col_weights = np.linspace(0.2, 3.0, matrix.shape[1])
        row_weights = np.linspace(0.5, 1.5, matrix.shape[0])
        kwargs = dict(
            regularization=0.3,
            col_positive_weights=col_weights,
            row_positive_weights=row_weights,
        )
        reference, _ = ReferenceBackend().sweep(matrix, row_factors, col_factors, **kwargs)
        vectorized, _ = VectorizedBackend().sweep(matrix, row_factors, col_factors, **kwargs)
        np.testing.assert_allclose(reference, vectorized, rtol=1e-8, atol=1e-10)

    def test_sweep_stats_match(self, sweep_problem):
        matrix, row_factors, col_factors = sweep_problem
        _, ref_stats = ReferenceBackend().sweep(
            matrix, row_factors, col_factors, regularization=0.3
        )
        _, vec_stats = VectorizedBackend().sweep(
            matrix, row_factors, col_factors, regularization=0.3
        )
        assert ref_stats.n_rows == vec_stats.n_rows
        assert ref_stats.n_accepted == vec_stats.n_accepted

    def test_equivalence_with_zero_regularization(self, sweep_problem):
        matrix, row_factors, col_factors = sweep_problem
        reference, _ = ReferenceBackend().sweep(
            matrix, row_factors, col_factors, regularization=0.0
        )
        vectorized, _ = VectorizedBackend().sweep(
            matrix, row_factors, col_factors, regularization=0.0
        )
        np.testing.assert_allclose(reference, vectorized, rtol=1e-8, atol=1e-10)


def _random_problem(seed, n_rows, n_cols, k, density=0.3, empty_rows=True):
    """A reproducible sweep problem, optionally with guaranteed empty rows."""
    rng = np.random.default_rng(seed)
    dense = (rng.random((n_rows, n_cols)) < density).astype(float)
    if empty_rows and n_rows > 2:
        dense[rng.integers(0, n_rows)] = 0.0
        dense[0] = 0.0
    matrix = sp.csr_matrix(dense)
    row_factors = rng.uniform(0.05, 0.9, size=(n_rows, k))
    col_factors = rng.uniform(0.05, 0.9, size=(n_cols, k))
    row_weights = rng.uniform(0.5, 2.5, n_rows)
    col_weights = rng.uniform(0.5, 2.5, n_cols)
    return matrix, row_factors, col_factors, row_weights, col_weights


class TestShardedParity:
    """Property-style: reference, vectorized and parallel agree on random
    matrices, for every shard count, with and without R-OCuLaR weights."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("n_shards", [1, 2, 5])
    @pytest.mark.parametrize("weighted", [False, True])
    def test_parallel_exactly_matches_vectorized(self, seed, n_shards, weighted):
        matrix, row_factors, col_factors, row_weights, col_weights = _random_problem(
            seed, n_rows=11 + 7 * seed, n_cols=6 + 5 * seed, k=3 + seed
        )
        kwargs = dict(regularization=0.4)
        if weighted:
            kwargs.update(
                row_positive_weights=row_weights, col_positive_weights=col_weights
            )
        vectorized, vec_stats = VectorizedBackend().sweep(
            matrix, row_factors, col_factors, **kwargs
        )
        parallel, par_stats = ParallelBackend(n_workers=2, n_shards=n_shards).sweep(
            matrix, row_factors, col_factors, **kwargs
        )
        assert np.array_equal(vectorized, parallel)
        assert vec_stats == par_stats

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("weighted", [False, True])
    def test_reference_agrees_numerically(self, seed, weighted):
        matrix, row_factors, col_factors, row_weights, col_weights = _random_problem(
            seed, n_rows=10 + seed, n_cols=8, k=4
        )
        kwargs = dict(regularization=0.4)
        if weighted:
            kwargs.update(
                row_positive_weights=row_weights, col_positive_weights=col_weights
            )
        reference, ref_stats = ReferenceBackend().sweep(
            matrix, row_factors, col_factors, **kwargs
        )
        parallel, par_stats = ParallelBackend(n_workers=2, n_shards=3).sweep(
            matrix, row_factors, col_factors, **kwargs
        )
        np.testing.assert_allclose(reference, parallel, rtol=1e-8, atol=1e-10)
        assert ref_stats.n_rows == par_stats.n_rows
        assert ref_stats.n_accepted == par_stats.n_accepted

    @pytest.mark.parametrize("n_shards", [1, 3, 8])
    def test_more_shards_than_rows(self, n_shards):
        matrix, row_factors, col_factors, _, _ = _random_problem(5, 4, 6, 3)
        vectorized, _ = VectorizedBackend().sweep(matrix, row_factors, col_factors, 0.3)
        parallel, _ = ParallelBackend(n_workers=2, n_shards=n_shards).sweep(
            matrix, row_factors, col_factors, 0.3
        )
        assert np.array_equal(vectorized, parallel)

    @pytest.mark.parametrize("backend_name", ALL_BACKENDS)
    def test_all_rows_empty(self, backend_name):
        matrix = sp.csr_matrix((4, 5))
        rng = np.random.default_rng(0)
        row_factors = rng.uniform(0.1, 0.5, (4, 3))
        col_factors = rng.uniform(0.1, 0.5, (5, 3))
        updated, stats = get_backend(backend_name).sweep(
            matrix, row_factors, col_factors, regularization=0.2
        )
        assert updated.shape == row_factors.shape
        assert (updated >= 0).all()
        assert stats.n_rows == 4

    @pytest.mark.parametrize("backend_name", ALL_BACKENDS)
    def test_empty_matrix_zero_rows(self, backend_name):
        matrix = sp.csr_matrix((0, 5))
        col_factors = np.random.default_rng(0).uniform(0.1, 0.5, (5, 3))
        updated, stats = get_backend(backend_name).sweep(
            matrix, np.zeros((0, 3)), col_factors, regularization=0.2
        )
        assert updated.shape == (0, 3)
        assert stats.n_rows == 0
        assert stats.acceptance_rate == 0.0

    @pytest.mark.parametrize("backend_name", ALL_BACKENDS)
    def test_empty_matrix_zero_cols(self, backend_name):
        matrix = sp.csr_matrix((4, 0))
        rng = np.random.default_rng(0)
        row_factors = rng.uniform(0.1, 0.5, (4, 3))
        updated, _ = get_backend(backend_name).sweep(
            matrix, row_factors, np.zeros((0, 3)), regularization=0.2
        )
        assert updated.shape == row_factors.shape
        # With no columns the objective is pure penalty; factors must shrink.
        assert np.all(updated <= row_factors + 1e-12)


class TestDtypeSupport:
    """float32 sweeps stay float32 end to end — no silent upcasting."""

    @pytest.mark.parametrize("backend_name", ALL_BACKENDS)
    @pytest.mark.parametrize("weighted", [False, True])
    def test_float32_sweep_returns_float32(self, backend_name, weighted):
        matrix, row_factors, col_factors, row_weights, _ = _random_problem(1, 12, 8, 4)
        kwargs = dict(regularization=0.3)
        if weighted:
            kwargs["row_positive_weights"] = row_weights
        updated, _ = get_backend(backend_name).sweep(
            matrix,
            row_factors.astype(np.float32),
            col_factors.astype(np.float32),
            **kwargs,
        )
        assert updated.dtype == np.float32

    def test_float32_close_to_float64(self):
        matrix, row_factors, col_factors, _, _ = _random_problem(2, 14, 9, 4)
        full, _ = VectorizedBackend().sweep(matrix, row_factors, col_factors, 0.3)
        half, _ = VectorizedBackend().sweep(
            matrix, row_factors.astype(np.float32), col_factors.astype(np.float32), 0.3
        )
        np.testing.assert_allclose(full, half, rtol=1e-3, atol=1e-4)

    def test_float32_parallel_matches_float32_vectorized(self):
        matrix, row_factors, col_factors, _, _ = _random_problem(3, 20, 10, 4)
        rf32, cf32 = row_factors.astype(np.float32), col_factors.astype(np.float32)
        vectorized, _ = VectorizedBackend().sweep(matrix, rf32, cf32, 0.3)
        parallel, _ = ParallelBackend(n_workers=2, n_shards=4).sweep(
            matrix, rf32, cf32, 0.3
        )
        assert parallel.dtype == np.float32
        assert np.array_equal(vectorized, parallel)
