"""Tests for R-OCuLaR (relative weighting) and the bias-extended model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bias import BiasedOCuLaR
from repro.core.ocular import OCuLaR
from repro.core.r_ocular import ROCuLaR
from repro.data.synthetic import make_planted_coclusters


class TestROCuLaR:
    def test_is_ocular_with_relative_weighting(self):
        model = ROCuLaR(n_coclusters=4)
        assert isinstance(model, OCuLaR)
        assert model.user_weighting == "relative"

    def test_fit_and_recommend(self, toy_dataset):
        model = ROCuLaR(
            n_coclusters=3, regularization=0.05, max_iterations=100, random_state=0
        ).fit(toy_dataset.matrix)
        assert model.is_fitted
        scores = model.score_user(6)
        assert np.all(scores >= 0) and np.all(scores < 1)
        assert len(model.recommend(6, n_items=3)) == 3

    def test_objective_decreases(self, toy_dataset):
        model = ROCuLaR(n_coclusters=3, max_iterations=40, random_state=0).fit(toy_dataset.matrix)
        values = model.history_.objective_values
        assert values[-1] < values[0]
        assert all(later <= earlier + 1e-8 for earlier, later in zip(values, values[1:]))

    def test_same_complexity_interface_as_ocular(self):
        # The paper notes R-OCuLaR has exactly the same complexity/implementation;
        # its constructor exposes the same knobs minus the weighting choice.
        ocular_params = set(OCuLaR().get_params())
        r_params = set(ROCuLaR().get_params())
        assert r_params == ocular_params

    def test_upweights_light_users(self):
        # A user with very few positives should see their positives explained
        # at least as well under R-OCuLaR as under plain OCuLaR.
        planted = make_planted_coclusters(
            n_users=50,
            n_items=40,
            n_coclusters=2,
            users_per_cocluster=25,
            items_per_cocluster=15,
            within_density=0.9,
            background_density=0.0,
            random_state=0,
        )
        matrix = planted.matrix
        degrees = matrix.user_degrees()
        active_users = np.flatnonzero(degrees > 0)
        order = active_users[np.argsort(degrees[active_users])]
        light_users = [int(u) for u in order[: max(3, len(order) // 10)]]
        shared = dict(n_coclusters=2, regularization=1.0, max_iterations=80, random_state=0)
        plain = OCuLaR(**shared).fit(matrix)
        relative = ROCuLaR(**shared).fit(matrix)

        def mean_positive_probability(model):
            values = []
            for user in light_users:
                for item in matrix.items_of_user(user):
                    values.append(model.predict_proba(user, int(item)))
            return float(np.mean(values))

        assert mean_positive_probability(relative) >= mean_positive_probability(plain) - 0.05


class TestBiasedOCuLaR:
    def test_fit_produces_biases_and_clean_factors(self, toy_dataset):
        model = BiasedOCuLaR(
            n_coclusters=3, regularization=0.1, max_iterations=30, random_state=0
        ).fit(toy_dataset.matrix)
        assert model.user_biases_ is not None and model.user_biases_.shape == (12,)
        assert model.item_biases_ is not None and model.item_biases_.shape == (12,)
        assert (model.user_biases_ >= 0).all()
        assert (model.item_biases_ >= 0).all()
        # The exposed co-cluster factors exclude the auxiliary bias columns.
        assert model.user_factors_.shape == (12, 3)
        assert model.item_factors_.shape == (12, 3)

    def test_inner_sweeps_are_honoured(self, toy_dataset):
        # inner_sweeps must reach the underlying trainer, not be silently
        # dropped: with inner_sweeps=2 every outer iteration runs two sweeps
        # per block.
        model = BiasedOCuLaR(
            n_coclusters=3, max_iterations=3, tolerance=0.0, inner_sweeps=2,
            random_state=0,
        ).fit(toy_dataset.matrix)
        history = model.history_
        assert len(history.item_sweep_stats) == 2 * history.n_iterations
        assert len(history.user_sweep_stats) == 2 * history.n_iterations

    def test_sweep_stats_cover_every_iteration(self, toy_dataset):
        # The per-iteration history merge must carry the sweep stats along,
        # not just the objective trajectories.
        model = BiasedOCuLaR(
            n_coclusters=3, regularization=0.1, max_iterations=8, tolerance=0.0,
            random_state=0,
        ).fit(toy_dataset.matrix)
        history = model.history_
        assert len(history.item_sweep_stats) == history.n_iterations
        assert len(history.user_sweep_stats) == history.n_iterations
        assert history.n_iterations > 1

    def test_scores_include_bias_and_stay_probabilities(self, toy_dataset):
        model = BiasedOCuLaR(n_coclusters=3, max_iterations=20, random_state=0).fit(
            toy_dataset.matrix
        )
        scores = model.score_user(6)
        assert np.all(scores >= 0) and np.all(scores < 1)
        assert model.predict_proba(6, 4) == pytest.approx(float(scores[4]))

    def test_popular_items_receive_larger_bias(self):
        planted = make_planted_coclusters(
            n_users=60,
            n_items=30,
            n_coclusters=2,
            users_per_cocluster=30,
            items_per_cocluster=10,
            within_density=0.8,
            background_density=0.05,
            random_state=1,
        )
        model = BiasedOCuLaR(n_coclusters=2, max_iterations=30, random_state=0).fit(
            planted.matrix
        )
        degrees = planted.matrix.item_degrees()
        popular = degrees >= np.percentile(degrees, 75)
        unpopular = degrees <= np.percentile(degrees, 25)
        assert model.item_biases_[popular].mean() >= model.item_biases_[unpopular].mean() - 1e-6

    def test_recommendations_still_work(self, toy_dataset):
        model = BiasedOCuLaR(n_coclusters=3, max_iterations=20, random_state=0).fit(
            toy_dataset.matrix
        )
        ranked = model.recommend(6, n_items=3)
        assert len(ranked) == 3
        seen = set(toy_dataset.matrix.items_of_user(6).tolist())
        assert not (set(int(i) for i in ranked) & seen)


class TestBiasedOCuLaRWarmStart:
    def test_warm_start_accepted_and_biases_carry_over(self, toy_dataset):
        seed = BiasedOCuLaR(
            n_coclusters=3, regularization=0.1, max_iterations=10, random_state=0
        ).fit(toy_dataset.matrix)
        user_biases = seed.user_biases_.copy()
        item_biases = seed.item_biases_.copy()

        warm = BiasedOCuLaR(
            n_coclusters=3, regularization=0.1, max_iterations=3, tolerance=0.0,
            random_state=1,
        )
        warm.user_biases_ = user_biases
        warm.item_biases_ = item_biases
        warm.fit(toy_dataset.matrix, initial_factors=seed.factors_)
        assert warm.history_.warm_started
        assert warm.user_biases_ is not None and (warm.user_biases_ >= 0).all()
        assert warm.item_biases_ is not None and (warm.item_biases_ >= 0).all()
        # The exposed co-cluster factors keep the bias columns stripped.
        assert warm.user_factors_.shape == (12, 3)
        assert warm.item_factors_.shape == (12, 3)

    def test_warm_start_plateau_stop(self, toy_dataset):
        seed = BiasedOCuLaR(
            n_coclusters=3, regularization=0.1, max_iterations=10, random_state=0
        ).fit(toy_dataset.matrix)
        warm = BiasedOCuLaR(
            n_coclusters=3, regularization=0.1, max_iterations=40, tolerance=0.0,
            random_state=1,
        ).fit(
            toy_dataset.matrix,
            initial_factors=seed.factors_,
            plateau_tolerance=1.0,
            plateau_patience=2,
        )
        assert warm.history_.stopped_on_plateau
        assert warm.history_.n_iterations < 40
