"""Tests for the explanation engine, rendering helpers and reports."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.explain import Explanation, explain_recommendation, explain_top_recommendations
from repro.core.ocular import OCuLaR
from repro.core.recommend import batch_reports, recommend_with_explanations
from repro.core.render import render_coclusters, render_matrix, render_probability_matrix
from repro.exceptions import ConfigurationError, NotFittedError


class TestExplainRecommendation:
    def test_headline_explanation_structure(self, fitted_toy_model):
        explanation = explain_recommendation(fitted_toy_model, 6, 4)
        assert isinstance(explanation, Explanation)
        assert explanation.user == 6 and explanation.item == 4
        assert 0.0 < explanation.confidence < 1.0
        assert explanation.n_supporting_coclusters >= 1

    def test_evidence_items_are_actual_purchases(self, fitted_toy_model, toy_dataset):
        explanation = explain_recommendation(fitted_toy_model, 6, 4)
        purchased = set(toy_dataset.matrix.items_of_user(6).tolist())
        for entry in explanation.evidence:
            assert set(entry.evidence_items) <= purchased
            assert 4 not in entry.evidence_items

    def test_peer_users_bought_the_item(self, fitted_toy_model, toy_dataset):
        explanation = explain_recommendation(fitted_toy_model, 6, 4)
        buyers = set(toy_dataset.matrix.users_of_item(4).tolist())
        for entry in explanation.evidence:
            assert set(entry.peer_users) <= buyers
            assert 6 not in entry.peer_users

    def test_confidence_matches_model_probability(self, fitted_toy_model):
        explanation = explain_recommendation(fitted_toy_model, 6, 4)
        assert explanation.confidence == pytest.approx(fitted_toy_model.predict_proba(6, 4))

    def test_limits_respected(self, fitted_toy_model):
        explanation = explain_recommendation(
            fitted_toy_model, 6, 4, max_peers=1, max_evidence_items=2
        )
        for entry in explanation.evidence:
            assert len(entry.peer_users) <= 1
            assert len(entry.evidence_items) <= 2

    def test_to_text_contains_key_elements(self, fitted_toy_model):
        text = explain_recommendation(fitted_toy_model, 6, 4).to_text()
        assert "item 4" in text
        assert "user 6" in text
        assert "confidence" in text
        assert "similar purchase history" in text

    def test_to_dict_roundtrip_fields(self, fitted_toy_model):
        record = explain_recommendation(fitted_toy_model, 6, 4).to_dict()
        assert record["user"] == 6 and record["item"] == 4
        assert isinstance(record["evidence"], list)
        for entry in record["evidence"]:
            assert {"cocluster", "contribution", "evidence_items", "peer_users"} <= set(entry)

    def test_price_estimate_from_deal_values(self, fitted_toy_model, toy_dataset):
        buyers = toy_dataset.matrix.users_of_item(4)
        deal_values = {(int(user), 4): 100.0 for user in buyers}
        explanation = explain_recommendation(fitted_toy_model, 6, 4, deal_values=deal_values)
        assert explanation.price_estimate == pytest.approx(100.0)
        assert "Estimated deal value" in explanation.to_text()

    def test_requires_fitted_model(self):
        with pytest.raises(NotFittedError):
            explain_recommendation(OCuLaR(), 0, 0)

    def test_explain_top_recommendations_rank_order(self, fitted_toy_model):
        explanations = explain_top_recommendations(fitted_toy_model, 6, n_items=3)
        assert len(explanations) == 3
        ranked = fitted_toy_model.recommend(6, n_items=3)
        assert [explanation.item for explanation in explanations] == [int(i) for i in ranked]

    def test_model_explain_shortcut(self, fitted_toy_model):
        direct = fitted_toy_model.explain(6, 4)
        assert isinstance(direct, Explanation)
        assert direct.item == 4

    def test_headline_explanation_cites_both_coclusters(self, toy_dataset):
        # With the best-of-restarts fit the rationale has the paper's two bullets:
        # similar users via items 1-3 and similar users via items 5-9.
        from repro.experiments.toy import run_toy_example

        result = run_toy_example(random_state=0)
        assert result.explanation.n_supporting_coclusters >= 2


class TestLabelledExplanations:
    def test_uses_client_and_product_names(self, b2b_small):
        model = OCuLaR(n_coclusters=6, regularization=1.0, max_iterations=40, random_state=0)
        model.fit(b2b_small.matrix)
        user = int(np.argmax(b2b_small.matrix.user_degrees()))
        item = int(model.recommend(user, n_items=1)[0])
        explanation = explain_recommendation(
            model, user, item, deal_values=b2b_small.deal_values
        )
        assert explanation.user_label == b2b_small.client_names[user]
        assert explanation.item_label == b2b_small.product_names[item]
        text = explanation.to_text()
        assert b2b_small.client_names[user] in text


class TestReports:
    def test_recommendation_report_structure(self, fitted_toy_model):
        report = recommend_with_explanations(fitted_toy_model, 6, n_items=3)
        assert report.user == 6
        assert len(report.explanations) == 3
        assert report.items == [explanation.item for explanation in report.explanations]
        assert all(0 <= confidence < 1 for confidence in report.confidences)

    def test_report_text_and_records(self, fitted_toy_model):
        report = recommend_with_explanations(fitted_toy_model, 6, n_items=2)
        text = report.to_text()
        assert "Recommendations for" in text
        assert "1." in text and "2." in text
        records = report.to_records()
        assert len(records) == 2

    def test_batch_reports(self, fitted_toy_model):
        reports = batch_reports(fitted_toy_model, [0, 6], n_items=2)
        assert [report.user for report in reports] == [0, 6]

    def test_report_requires_fitted_model(self):
        with pytest.raises(NotFittedError):
            recommend_with_explanations(OCuLaR(), 0)


class TestRendering:
    def test_render_matrix_marks_positives(self, toy_dataset):
        text = render_matrix(toy_dataset.matrix)
        assert "#" in text and "." in text
        assert len(text.splitlines()) == 13  # header + 12 user rows

    def test_render_matrix_truncation_notice(self):
        from repro.data.interactions import InteractionMatrix

        big = InteractionMatrix(np.ones((50, 70)))
        assert "truncated" in render_matrix(big, max_users=10, max_items=10)

    def test_render_probability_matrix(self, fitted_toy_model, toy_dataset):
        text = render_probability_matrix(
            fitted_toy_model.factors_, toy_dataset.matrix, max_users=12, max_items=12
        )
        assert "%" in text
        assert "[" in text  # observed positives are bracketed

    def test_render_coclusters_names_members(self, fitted_toy_model, toy_dataset):
        text = render_coclusters(
            fitted_toy_model.coclusters(membership_threshold=0.5), toy_dataset.matrix
        )
        assert "Co-cluster" in text
        assert "users:" in text and "items:" in text

    def test_render_coclusters_rejects_bad_limit(self, fitted_toy_model):
        with pytest.raises(ConfigurationError):
            render_coclusters(fitted_toy_model.coclusters(), max_members=0)

    def test_render_coclusters_empty_input(self):
        assert "no non-empty" in render_coclusters([])
