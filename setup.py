"""Setuptools shim.

The project metadata lives in ``pyproject.toml`` (PEP 621); normal installs
go through ``pip install -e '.[test,bench]'``.  This file exists for fully
offline environments whose setuptools cannot satisfy a PEP 517/660 build
(e.g. no ``wheel`` package and no network for the isolated build env):
there, ``python setup.py develop`` still provides an editable install, and
``PYTHONPATH=src`` works with no install at all.
"""

from setuptools import setup

setup()
