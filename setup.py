"""Setuptools shim.

The project metadata lives in ``pyproject.toml``.  This file exists so that
``pip install -e .`` works in offline environments whose setuptools lacks the
``wheel`` package required by PEP 660 editable installs: without a
``[build-system]`` table pip falls back to the legacy ``setup.py develop``
code path, which has no such dependency.
"""

from setuptools import setup

setup()
