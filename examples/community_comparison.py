#!/usr/bin/env python
"""Why generic community detection is not enough (the paper's Figure 2).

Runs greedy modularity maximisation (non-overlapping) and BIGCLAM
(overlapping) on the bipartite purchase graph of the toy example and counts
how many of the three planted candidate recommendations each method can
identify from its communities, compared with OCuLaR's ranked
recommendations.

Run with::

    python examples/community_comparison.py
"""

from __future__ import annotations

import warnings

from repro.community.bigclam import BigClam
from repro.community.modularity import GreedyModularityCommunities
from repro.core.render import render_matrix
from repro.data.synthetic import make_paper_toy_example
from repro.experiments.toy import run_community_comparison, run_toy_example
from repro.utils.tables import format_table


def describe_communities(name: str, user_sets, item_sets) -> None:
    """Print each community's user/item members."""
    print(f"{name}:")
    for index, (users, items) in enumerate(zip(user_sets, item_sets)):
        if len(users) == 0 and len(items) == 0:
            continue
        print(f"  community {index}: users {list(users)}  items {list(items)}")
    print()


def main() -> None:
    warnings.filterwarnings("ignore")

    toy = make_paper_toy_example()
    print("Toy purchase matrix (three overlapping co-clusters, three holes):")
    print(render_matrix(toy.matrix))
    print(f"Candidate recommendations (the white squares): {toy.heldout_pairs}")
    print()

    # ------------------------------------------------------------------ #
    # 1. Non-overlapping: greedy modularity maximisation.
    # ------------------------------------------------------------------ #
    modularity = GreedyModularityCommunities().fit(toy.matrix)
    describe_communities(
        f"Greedy modularity ({modularity.n_communities} communities, "
        f"Q = {modularity.modularity_:.2f})",
        modularity.user_communities(),
        modularity.item_communities(),
    )

    # ------------------------------------------------------------------ #
    # 2. Overlapping: BIGCLAM on the same bipartite graph.
    # ------------------------------------------------------------------ #
    bigclam = BigClam(n_communities=3, max_iterations=150, random_state=0).fit(toy.matrix)
    describe_communities(
        "BIGCLAM (3 affiliation communities)",
        bigclam.user_communities(),
        bigclam.item_communities(),
    )

    # ------------------------------------------------------------------ #
    # 3. OCuLaR for comparison, plus the head-to-head count of recovered
    #    candidate recommendations (the paper's Figure 2 message).
    # ------------------------------------------------------------------ #
    ocular = run_toy_example(random_state=0)
    print(
        f"OCuLaR recovers {ocular.holes_recovered_at_1} of "
        f"{len(toy.heldout_pairs)} candidates as top-1 recommendations "
        f"(headline confidence {ocular.headline_confidence:.2f})."
    )
    print()

    comparison = run_community_comparison(random_state=0)
    rows = [
        [method, covered, comparison.n_candidates]
        for method, covered in comparison.coverage.items()
    ]
    print("Candidate recommendations identified (cf. Figure 2 — the paper reports that")
    print("Modularity and BIGCLAM identify only 1 of the 3):")
    print(format_table(["method", "identified", "out of"], rows))


if __name__ == "__main__":
    main()
