#!/usr/bin/env python
"""Hyper-parameter grid search, serial vs parallel (the paper's Section VI / Figure 9).

The paper uses a GPU cluster to make a fine (K, lambda) grid search
affordable.  This example runs the same search on the synthetic B2B corpus
twice — once serially and once across a pool of worker processes (the
scale-out stand-in) — prints the recall heat-map, and reports the wall-clock
speed-up and the best hyper-parameters found.

Run with::

    python examples/grid_search_gpu_style.py
"""

from __future__ import annotations

import time
import warnings

from repro.experiments.gridsearch import run_grid_search_experiment
from repro.parallel import ProcessExecutor, SerialExecutor


def main() -> None:
    warnings.filterwarnings("ignore")

    k_values = (5, 10, 20, 40)
    lambda_values = (0.5, 2.0, 8.0, 30.0)
    common = dict(
        k_values=k_values,
        lambda_values=lambda_values,
        m=15,
        n_clients=250,
        n_products=40,
        max_iterations=40,
        random_state=0,
    )

    # ------------------------------------------------------------------ #
    # 1. Serial search (the "single CPU" baseline of the paper).
    # ------------------------------------------------------------------ #
    start = time.perf_counter()
    serial_result = run_grid_search_experiment(executor=SerialExecutor(), **common)
    serial_seconds = time.perf_counter() - start
    print(f"Serial grid search over {len(k_values) * len(lambda_values)} combinations: "
          f"{serial_seconds:.1f}s")

    # ------------------------------------------------------------------ #
    # 2. Parallel search across worker processes (the Spark/GPU stand-in).
    # ------------------------------------------------------------------ #
    start = time.perf_counter()
    with ProcessExecutor(max_workers=4) as executor:
        parallel_result = run_grid_search_experiment(executor=executor, **common)
    parallel_seconds = time.perf_counter() - start
    print(f"Parallel grid search (4 workers): {parallel_seconds:.1f}s "
          f"({serial_seconds / max(parallel_seconds, 1e-9):.1f}x speed-up)")
    print()

    # ------------------------------------------------------------------ #
    # 3. The heat-map and the winning configuration.
    # ------------------------------------------------------------------ #
    print(parallel_result.to_text())
    print()
    assert serial_result.search.best_params == parallel_result.search.best_params
    best = parallel_result.best_fine
    print(
        f"Best configuration: K = {best['n_coclusters']}, lambda = {best['regularization']} "
        f"with recall = {best['score']:.3f}."
    )
    print(
        "Paper shape to look for: the best region lies outside a narrow coarse grid, "
        "so the faster the search, the better the final recommendation accuracy."
    )


if __name__ == "__main__":
    main()
