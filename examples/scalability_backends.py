#!/usr/bin/env python
"""Scalability and backend comparison (the paper's Figures 7 and 8).

Measures the per-iteration training time of OCuLaR as the number of positive
examples and the number of co-clusters K grow (linear scaling), and compares
the per-row ``reference`` backend with the batched ``vectorized`` backend on
identical problems (the CPU-vs-GPU stand-in).

Run with::

    python examples/scalability_backends.py
"""

from __future__ import annotations

import warnings

from repro.experiments.backends import run_backend_comparison
from repro.experiments.scalability import run_scalability_study


def main() -> None:
    warnings.filterwarnings("ignore")

    # ------------------------------------------------------------------ #
    # 1. Linear scaling in the number of positives and in K (Figure 7).
    # ------------------------------------------------------------------ #
    print("Measuring per-iteration training time across dataset fractions and K ...")
    scalability = run_scalability_study(
        fractions=(0.2, 0.4, 0.6, 0.8, 1.0),
        k_values=(10, 50),
        n_iterations=3,
        n_users=1200,
        n_items=400,
        random_state=0,
    )
    print(scalability.to_text())
    print()

    # ------------------------------------------------------------------ #
    # 2. Reference (per-row loop) vs vectorized (batched kernel) backends
    #    on the same problem and the same initial factors (Figure 8).
    # ------------------------------------------------------------------ #
    print("Comparing the reference and vectorized backends (same maths, same init) ...")
    comparison = run_backend_comparison(
        n_users=600, n_items=250, n_coclusters=40, n_iterations=4, random_state=0
    )
    print(comparison.to_text())
    print()
    print(
        "Paper shape to look for: identical likelihood trajectories, with the batched "
        "backend one to two orders of magnitude faster per iteration (the paper's GPU "
        "kernel reaches 57x over its CPU code)."
    )


if __name__ == "__main__":
    main()
