#!/usr/bin/env python
"""B2B deployment walk-through (the paper's Section VIII and Figure 10).

Generates a synthetic business-to-business purchase corpus (named client
companies with industries, enterprise products with historical deal values),
fits OCuLaR, and prints seller-facing recommendation cards: product,
confidence, co-cluster rationale naming the similar clients, and a price
estimate from the co-cluster members' historical purchases.

Run with::

    python examples/b2b_deployment.py
"""

from __future__ import annotations

import warnings

import numpy as np

from repro import OCuLaR, RecommendRequest
from repro.core.coclusters import cocluster_statistics, extract_coclusters
from repro.core.recommend import batch_reports
from repro.core.render import render_coclusters
from repro.data.datasets import make_b2b
from repro.evaluation.metrics import catalog_coverage
from repro.runtime import (
    BatchingFrontEnd,
    GatewayClient,
    GatewayThread,
    RecommenderRuntime,
)
from repro.serving import fold_in_user


def main() -> None:
    warnings.filterwarnings("ignore")

    # ------------------------------------------------------------------ #
    # 1. The corpus: companies x enterprise products with deal values.
    # ------------------------------------------------------------------ #
    dataset = make_b2b(n_clients=400, n_products=60, random_state=0)
    matrix = dataset.matrix
    print(
        f"B2B corpus: {matrix.n_users} client companies x {matrix.n_items} products, "
        f"{matrix.nnz} historical purchases."
    )
    print()

    # ------------------------------------------------------------------ #
    # 2. Fit OCuLaR and summarise the discovered buying patterns.
    # ------------------------------------------------------------------ #
    model = OCuLaR(
        n_coclusters=12, regularization=2.0, max_iterations=100, random_state=0
    ).fit(matrix)
    coclusters = extract_coclusters(model.factors_, matrix, drop_empty=True)
    stats = cocluster_statistics(coclusters, n_users=matrix.n_users, n_items=matrix.n_items)
    print(
        f"Discovered {stats.n_coclusters} co-clusters; on average "
        f"{stats.mean_users:.0f} clients x {stats.mean_items:.1f} products each, "
        f"density {stats.mean_density:.2f}."
    )
    print()
    print("Example buying patterns (top members):")
    print(render_coclusters(coclusters[:4], matrix, max_members=4))
    print()

    # ------------------------------------------------------------------ #
    # 3. Seller-facing recommendation cards for the largest accounts —
    #    ranked in one pass through the batch serving engine.
    # ------------------------------------------------------------------ #
    top_accounts = np.argsort(-matrix.user_degrees())[:3]
    reports = batch_reports(
        model,
        [int(client) for client in top_accounts],
        n_items=2,
        deal_values=dataset.deal_values,
    )
    for report in reports:
        print(report.to_text())
        print()

    # ------------------------------------------------------------------ #
    # 4. Publish the fitted model into the serving runtime.  Every request
    #    from here on is one RecommendRequest through the unified
    #    runtime.recommend(request) entrypoint — known accounts and
    #    cold-start fold-ins alike.
    # ------------------------------------------------------------------ #
    with RecommenderRuntime(executor="serial") as runtime:
        runtime.fit(model, matrix)
        runtime.publish()

        # Catalogue-coverage diagnostic: co-cluster recommendations reach
        # beyond the global best-sellers.  One chunked batch request.
        sample_clients = tuple(range(0, matrix.n_users, 4))
        response = runtime.recommend(
            RecommendRequest(users=sample_clients, n_items=3)
        )
        coverage = catalog_coverage(response.rankings, n_items=matrix.n_items)
        print(
            f"Catalogue coverage of the top-3 lists over {len(sample_clients)} "
            f"accounts: {coverage:.0%} of all products are recommended to someone "
            f"(model generation {response.generation})."
        )
        print()

        # ------------------------------------------------------------------ #
        # 5. Cold-start fold-in: a brand-new client walks in after the
        #    nightly fit.  Their purchase vector is folded into the fixed
        #    item factors (a few convex projected-gradient sweeps — no
        #    refit).  Same entrypoint, interactions payload instead of users.
        # ------------------------------------------------------------------ #
        template = int(np.argsort(-matrix.user_degrees())[10])
        new_client_purchases = matrix.items_of_user(template)[:4]
        purchased_names = ", ".join(
            matrix.label_of_item(int(item)) for item in new_client_purchases
        )
        print(
            f"New client (not in the training run) already bought: {purchased_names}."
        )

        factors = fold_in_user(model, new_client_purchases)
        memberships = (
            int((factors > 0.05 * factors.max()).sum()) if factors.max() > 0 else 0
        )
        folded = runtime.recommend(
            RecommendRequest(interactions=(new_client_purchases,), n_items=3)
        )
        suggestions = ", ".join(
            matrix.label_of_item(int(item)) for item in folded.rankings[0]
        )
        print(
            f"Fold-in placed them in {memberships} co-cluster(s); "
            f"next-product suggestions: {suggestions}."
        )
        print()

        # ------------------------------------------------------------------ #
        # 6. The same requests over the network: the asyncio gateway speaks
        #    newline-delimited JSON and coalesces concurrent clients into
        #    micro-batches behind the identical request/response API.
        # ------------------------------------------------------------------ #
        with BatchingFrontEnd(runtime, max_delay_ms=2.0, adaptive=True) as front:
            with GatewayThread(front) as gateway:
                host, port = gateway.address
                with GatewayClient(host, port) as client:
                    wire = client.recommend(
                        RecommendRequest(
                            users=tuple(int(c) for c in top_accounts),
                            n_items=2,
                            tenant="seller-dashboard",
                        )
                    )
                over_the_wire = ", ".join(
                    matrix.label_of_item(int(item)) for item in wire.rankings[0]
                )
        print(
            f"Served over the gateway on {host}:{port}: top account "
            f"{matrix.label_of_user(int(top_accounts[0]))} -> {over_the_wire} "
            f"(queued {wire.queue_ms:.1f} ms, generation {wire.generation})."
        )


if __name__ == "__main__":
    main()
