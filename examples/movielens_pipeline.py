#!/usr/bin/env python
"""MovieLens-style evaluation pipeline (the paper's Table I / Figure 5 workflow).

Builds a MovieLens-like one-class corpus (or loads a real ``ratings.dat`` if a
path is given on the command line), performs the paper's 75/25 split, fits
OCuLaR, R-OCuLaR and the four baselines, and prints recall@M / MAP@M at
several cut-offs.

Run with::

    python examples/movielens_pipeline.py            # synthetic corpus
    python examples/movielens_pipeline.py ratings.dat # real MovieLens file
"""

from __future__ import annotations

import sys
import warnings

from repro.data.datasets import make_movielens_like
from repro.data.loaders import load_movielens_ratings
from repro.data.splitting import train_test_split
from repro.evaluation.evaluator import evaluate_curves
from repro.experiments.zoo import build_model_zoo
from repro.utils.tables import format_table


def main() -> None:
    warnings.filterwarnings("ignore")

    # ------------------------------------------------------------------ #
    # 1. Data: real MovieLens ratings binarised at >= 3 stars, or the
    #    synthetic stand-in corpus with the same structural properties.
    # ------------------------------------------------------------------ #
    if len(sys.argv) > 1:
        print(f"Loading ratings from {sys.argv[1]} (>= 3 stars treated as positive)...")
        matrix = load_movielens_ratings(sys.argv[1], threshold=3.0)
    else:
        print("No ratings file given; generating the MovieLens-like synthetic corpus.")
        matrix, _spec = make_movielens_like(n_users=500, n_items=300, random_state=0)
    print(f"Corpus: {matrix.n_users} users x {matrix.n_items} items, {matrix.nnz} positives.")

    # ------------------------------------------------------------------ #
    # 2. The paper's protocol: 75/25 per-user split of the positives.
    # ------------------------------------------------------------------ #
    split = train_test_split(matrix, test_fraction=0.25, random_state=0)
    print(f"Split: {split.train.nnz} training positives, {split.n_test_pairs} held out.")
    print()

    # ------------------------------------------------------------------ #
    # 3. Fit the six Table I algorithms and sweep the cut-off M.
    # ------------------------------------------------------------------ #
    zoo = build_model_zoo(n_coclusters=20, regularization=15.0, random_state=0)
    m_values = [5, 10, 20, 50]
    evaluation_users = sorted(split.test_items.keys())[:300]

    recall_rows = []
    map_rows = []
    for name, factory in zoo.items():
        print(f"Training {name} ...")
        model = factory().fit(split.train)
        by_m = evaluate_curves(model, split, m_values=m_values, users=evaluation_users)
        recall_rows.append([name] + [by_m[m].recall for m in m_values])
        map_rows.append([name] + [by_m[m].map for m in m_values])

    print()
    header = ["method"] + [f"@{m}" for m in m_values]
    print("recall@M (cf. paper Figure 5, left panel):")
    print(format_table(header, recall_rows))
    print()
    print("MAP@M (cf. paper Figure 5, right panel):")
    print(format_table(header, map_rows))
    print()
    print(
        "Paper shape to look for: OCuLaR and R-OCuLaR at or above every baseline, "
        "item-based and BPR weakest at small M."
    )


if __name__ == "__main__":
    main()
