#!/usr/bin/env python
"""Quickstart: OCuLaR on the paper's toy example (Figures 1 and 3).

Fits the overlapping co-cluster model on the 12x12 toy matrix from the
paper's introduction, prints the fitted probability grid, the co-clusters,
and the flagship interpretable recommendation ("Item 4 is recommended to
User 6 with confidence ~0.83 because ...").

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import warnings

from repro import OCuLaR
from repro.core.render import render_coclusters, render_matrix, render_probability_matrix
from repro.data.synthetic import make_paper_toy_example


def main() -> None:
    warnings.filterwarnings("ignore")

    # ------------------------------------------------------------------ #
    # 1. The data: a binary user-item matrix with three overlapping
    #    co-clusters and three held-out "white squares".
    # ------------------------------------------------------------------ #
    toy = make_paper_toy_example()
    print("Input interaction matrix (# = purchase, . = unknown):")
    print(render_matrix(toy.matrix))
    print()

    # ------------------------------------------------------------------ #
    # 2. Fit OCuLaR.  K = 3 co-clusters, light L2 regularisation.  The toy
    #    problem is tiny, so a handful of random restarts guards against
    #    poor local optima of the non-convex likelihood.
    # ------------------------------------------------------------------ #
    best_model = None
    for restart in range(5):
        model = OCuLaR(
            n_coclusters=3,
            regularization=0.05,
            max_iterations=500,
            random_state=restart,
        ).fit(toy.matrix)
        if best_model is None or model.history_.final_objective < best_model.history_.final_objective:
            best_model = model
    model = best_model
    print(
        f"Fitted in {model.history_.n_iterations} iterations "
        f"(objective {model.history_.final_objective:.2f})."
    )
    print()

    # ------------------------------------------------------------------ #
    # 3. The fitted probabilities (the paper's Figure 3): observed
    #    positives are bracketed, candidate recommendations are not.
    # ------------------------------------------------------------------ #
    print("Fitted probabilities P[r_ui = 1] (observed positives in brackets):")
    print(render_probability_matrix(model.factors_, toy.matrix, max_users=12, max_items=12))
    print()

    # ------------------------------------------------------------------ #
    # 4. The discovered overlapping co-clusters.
    # ------------------------------------------------------------------ #
    print("Discovered co-clusters:")
    print(render_coclusters(model.coclusters(membership_threshold=0.5), toy.matrix))
    print()

    # ------------------------------------------------------------------ #
    # 5. The flagship interpretable recommendation.
    # ------------------------------------------------------------------ #
    top_item = int(model.recommend(6, n_items=1)[0])
    explanation = model.explain(6, top_item)
    print("Top recommendation for user 6, with its rationale:")
    print(explanation.to_text())
    print()
    print(
        "Paper reference: 'Item 4 is recommended to Client 6 with confidence 0.83' — "
        f"this run recommends item {top_item} with confidence {explanation.confidence:.2f}."
    )


if __name__ == "__main__":
    main()
