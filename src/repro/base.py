"""Common estimator interface shared by OCuLaR and every baseline.

All recommenders in this package follow the same small contract:

* :meth:`Recommender.fit` consumes an
  :class:`~repro.data.interactions.InteractionMatrix` of one-class training
  data and returns ``self``;
* :meth:`Recommender.score_user` returns a relevance score for every item for
  one user (higher means more likely to be a positive);
* :meth:`Recommender.recommend` turns those scores into a ranked top-M list,
  by default excluding items the user already interacted with in training —
  exactly the paper's "find the positives among the unknowns" task.

The evaluation harness (recall@M, MAP@M, the Table I / Figure 5 benchmarks)
only talks to this interface, so OCuLaR and the baselines are strictly
interchangeable.
"""

from __future__ import annotations

import abc
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.data.interactions import InteractionMatrix
from repro.exceptions import NotFittedError


class Recommender(abc.ABC):
    """Abstract base class for one-class recommenders."""

    _train_matrix: Optional[InteractionMatrix] = None

    @abc.abstractmethod
    def fit(self, matrix: InteractionMatrix) -> "Recommender":
        """Fit the model to a one-class interaction matrix and return ``self``."""

    @abc.abstractmethod
    def score_user(self, user: int) -> np.ndarray:
        """Return a relevance score for every item for ``user``.

        The returned array has shape ``(n_items,)``.  Scores are only used
        for ranking, so they need not be probabilities.
        """

    # ------------------------------------------------------------------ #
    # Shared behaviour
    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed successfully."""
        return self._train_matrix is not None

    @property
    def train_matrix(self) -> InteractionMatrix:
        """The training matrix seen by :meth:`fit`."""
        self._require_fitted()
        assert self._train_matrix is not None
        return self._train_matrix

    def score_users(self, users: Iterable[int]) -> np.ndarray:
        """Score several users at once; shape ``(len(users), n_items)``.

        Subclasses with a vectorised scoring path may override this for
        speed; the default simply stacks :meth:`score_user`.
        """
        self._require_fitted()
        user_list = list(users)
        if not user_list:
            return np.zeros((0, self.train_matrix.n_items))
        return np.vstack([self.score_user(user) for user in user_list])

    def recommend(
        self,
        user: int,
        n_items: int = 10,
        exclude_seen: bool = True,
    ) -> np.ndarray:
        """Return the indices of the top ``n_items`` recommendations for ``user``.

        Parameters
        ----------
        user:
            User index.
        n_items:
            Length of the recommendation list (the paper's ``M``).
        exclude_seen:
            When ``True`` (default), items with ``r_ui = 1`` in the training
            matrix are never recommended, matching the paper's protocol of
            ranking only the unknown examples.
        """
        self._require_fitted()
        scores = np.asarray(self.score_user(user), dtype=float).copy()
        if scores.shape != (self.train_matrix.n_items,):
            raise ValueError(
                f"score_user must return shape ({self.train_matrix.n_items},), "
                f"got {scores.shape}"
            )
        if exclude_seen:
            seen = self.train_matrix.items_of_user(user)
            scores[seen] = -np.inf
        n_items = min(n_items, len(scores))
        top = np.argpartition(-scores, n_items - 1)[:n_items]
        ranked = top[np.argsort(-scores[top], kind="stable")]
        # Never pad the list with excluded (seen) items: if the user has fewer
        # unknown items than requested, return a shorter list instead.
        return ranked[np.isfinite(scores[ranked])]

    def recommend_many(
        self,
        users: Sequence[int],
        n_items: int = 10,
        exclude_seen: bool = True,
    ) -> dict[int, np.ndarray]:
        """Top-M lists for several users, as a mapping user -> item indices.

        Routed through the chunked :class:`~repro.serving.engine.TopNEngine`
        (one scoring call per chunk instead of one per user); the rankings
        are identical to calling :meth:`recommend` per user.
        """
        from repro.serving.engine import TopNEngine

        engine = TopNEngine.from_model(self)
        return engine.recommend_many(users, n_items=n_items, exclude_seen=exclude_seen)

    # ------------------------------------------------------------------ #
    # Internal helpers for subclasses
    # ------------------------------------------------------------------ #
    def _set_train_matrix(self, matrix: InteractionMatrix) -> None:
        """Record the training matrix; subclasses call this at the end of fit()."""
        self._train_matrix = matrix

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise NotFittedError(
                f"{type(self).__name__} must be fitted before it can make predictions"
            )
