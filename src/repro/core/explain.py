"""Explanation engine: turn co-cluster structure into textual rationales.

The paper's key selling point is that every recommendation can be justified:
"Item 4 is recommended to Client 6 with confidence 0.83 because Client 6 has
purchased Items 1-3 and clients with similar purchase history (Clients 4-5)
also bought Item 4 ..." (Figure 3), and the deployed system shows the same
rationale with client names and a price estimate (Figure 10).

:func:`explain_recommendation` reconstructs that rationale from the fitted
factors: for each co-cluster that contributes materially to
``<f_u, f_i>``, it collects

* the *evidence items* — items in the co-cluster the user already purchased,
* the *peer users* — other members of the co-cluster who purchased the
  recommended item,

and packages them into an :class:`Explanation` whose ``to_text`` /
``to_dict`` renderings are used by the examples and the Figure 10 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.coclusters import adaptive_membership_threshold
from repro.data.interactions import InteractionMatrix
from repro.exceptions import NotFittedError


@dataclass
class CoClusterEvidence:
    """Evidence contributed by a single co-cluster to one recommendation.

    Attributes
    ----------
    cocluster_index:
        Which co-cluster (factor column) the evidence comes from.
    contribution:
        ``[f_u]_c * [f_i]_c`` — this co-cluster's share of the affinity.
    evidence_items:
        Items in the co-cluster that the target user has already purchased
        ("Client 6 has purchased Items 1-3").
    peer_users:
        Co-cluster members (other than the target user) who purchased the
        recommended item ("Clients 4-5 also bought Item 4").
    evidence_item_labels, peer_user_labels:
        Human-readable labels for the above (product names, client names).
    """

    cocluster_index: int
    contribution: float
    evidence_items: List[int] = field(default_factory=list)
    peer_users: List[int] = field(default_factory=list)
    evidence_item_labels: List[str] = field(default_factory=list)
    peer_user_labels: List[str] = field(default_factory=list)


@dataclass
class Explanation:
    """A complete, renderable rationale for one (user, item) recommendation.

    Attributes
    ----------
    user, item:
        Indices of the recommendation target.
    user_label, item_label:
        Human-readable names (fall back to ``"user u"`` / ``"item i"``).
    confidence:
        ``P[r_ui = 1]`` under the fitted model.
    evidence:
        Per-co-cluster evidence, sorted by decreasing contribution.
    price_estimate:
        Optional price estimate derived from historical deals of peer
        clients (the Figure 10 deployment adds this in the B2B setting).
    """

    user: int
    item: int
    user_label: str
    item_label: str
    confidence: float
    evidence: List[CoClusterEvidence] = field(default_factory=list)
    price_estimate: Optional[float] = None

    @property
    def n_supporting_coclusters(self) -> int:
        """Number of co-clusters contributing evidence."""
        return len(self.evidence)

    def to_text(self) -> str:
        """Render the rationale in the paper's Figure 3 / Figure 10 style."""
        lines = [
            f"{self.item_label} is recommended to {self.user_label} "
            f"with confidence {self.confidence:.2f} because:"
        ]
        if not self.evidence:
            lines.append(
                "  (no co-cluster evidence exceeds the reporting threshold; the score "
                "comes from weak affiliations spread over many co-clusters)"
            )
        for rank, entry in enumerate(self.evidence):
            bullet = chr(ord("A") + rank) if rank < 26 else str(rank + 1)
            evidence_items = ", ".join(entry.evidence_item_labels) or "no shared items"
            peers = ", ".join(entry.peer_user_labels) or "no named peers"
            lines.append(
                f"  {bullet}. {self.user_label} has purchased {evidence_items}. "
                f"Clients with similar purchase history (e.g., {peers}) also bought "
                f"{self.item_label} (co-cluster {entry.cocluster_index}, "
                f"contribution {entry.contribution:.2f})."
            )
        if self.price_estimate is not None:
            lines.append(
                f"  Estimated deal value based on historical purchases by related clients: "
                f"${self.price_estimate:,.0f}."
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable form of the rationale (for dashboards / JSON)."""
        return {
            "user": self.user,
            "item": self.item,
            "user_label": self.user_label,
            "item_label": self.item_label,
            "confidence": self.confidence,
            "price_estimate": self.price_estimate,
            "evidence": [
                {
                    "cocluster": entry.cocluster_index,
                    "contribution": entry.contribution,
                    "evidence_items": list(entry.evidence_items),
                    "peer_users": list(entry.peer_users),
                }
                for entry in self.evidence
            ],
        }


def explain_recommendation(
    model,
    user: int,
    item: int,
    max_peers: int = 3,
    max_evidence_items: int = 5,
    membership_threshold: Optional[float] = None,
    min_contribution_share: float = 0.1,
    deal_values: Optional[Dict[tuple, float]] = None,
) -> Explanation:
    """Build the co-cluster rationale for recommending ``item`` to ``user``.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.core.ocular.OCuLaR` (or subclass).
    user, item:
        The recommendation to explain.
    max_peers:
        Maximum number of peer users named per co-cluster.
    max_evidence_items:
        Maximum number of already-purchased items named per co-cluster.
    membership_threshold:
        Affiliation strength above which an entity counts as a co-cluster
        member; defaults to the adaptive threshold used for co-cluster
        extraction (see
        :func:`repro.core.coclusters.adaptive_membership_threshold`).
    min_contribution_share:
        A co-cluster is reported only when its contribution exceeds this
        fraction of the total affinity ``<f_u, f_i>``.
    deal_values:
        Optional mapping ``(user, item) -> price`` of historical deals; when
        given, the mean price paid by the named peer users for ``item`` is
        attached as the price estimate (Figure 10).

    Returns
    -------
    Explanation
    """
    if getattr(model, "factors_", None) is None:
        raise NotFittedError("explain_recommendation requires a fitted OCuLaR model")
    factors = model.factors_
    matrix: InteractionMatrix = model.train_matrix
    threshold = (
        adaptive_membership_threshold(factors)
        if membership_threshold is None
        else float(membership_threshold)
    )

    contributions = factors.cocluster_contributions(user, item)
    total = float(contributions.sum())
    confidence = float(1.0 - np.exp(-total))

    user_items = set(int(index) for index in matrix.items_of_user(user))
    item_users = set(int(index) for index in matrix.users_of_item(item))

    evidence: List[CoClusterEvidence] = []
    order = np.argsort(-contributions, kind="stable")
    for column in order:
        contribution = float(contributions[column])
        if total <= 0 or contribution < min_contribution_share * total or contribution <= 0:
            break
        user_strengths = factors.user_factors[:, column]
        item_strengths = factors.item_factors[:, column]

        member_items = np.flatnonzero(item_strengths >= threshold)
        evidence_items = [
            int(candidate)
            for candidate in member_items[np.argsort(-item_strengths[member_items], kind="stable")]
            if int(candidate) in user_items and int(candidate) != item
        ][:max_evidence_items]

        member_users = np.flatnonzero(user_strengths >= threshold)
        peer_users = [
            int(candidate)
            for candidate in member_users[np.argsort(-user_strengths[member_users], kind="stable")]
            if int(candidate) in item_users and int(candidate) != user
        ][:max_peers]

        evidence.append(
            CoClusterEvidence(
                cocluster_index=int(column),
                contribution=contribution,
                evidence_items=evidence_items,
                peer_users=peer_users,
                evidence_item_labels=[matrix.label_of_item(index) for index in evidence_items],
                peer_user_labels=[matrix.label_of_user(index) for index in peer_users],
            )
        )

    price_estimate = None
    if deal_values is not None:
        peer_prices = [
            deal_values[(peer, item)]
            for entry in evidence
            for peer in entry.peer_users
            if (peer, item) in deal_values
        ]
        if not peer_prices:
            peer_prices = [
                value for (buyer, product), value in deal_values.items() if product == item
            ]
        if peer_prices:
            price_estimate = float(np.mean(peer_prices))

    return Explanation(
        user=user,
        item=item,
        user_label=matrix.label_of_user(user),
        item_label=matrix.label_of_item(item),
        confidence=confidence,
        evidence=evidence,
        price_estimate=price_estimate,
    )


def explain_top_recommendations(
    model,
    user: int,
    n_items: int = 5,
    max_peers: int = 3,
    max_evidence_items: int = 5,
    deal_values: Optional[Dict[tuple, float]] = None,
) -> List[Explanation]:
    """Explanations for the user's top ``n_items`` recommendations, in rank order."""
    ranked = model.recommend(user, n_items=n_items, exclude_seen=True)
    return [
        explain_recommendation(
            model,
            user,
            int(item),
            max_peers=max_peers,
            max_evidence_items=max_evidence_items,
            deal_values=deal_values,
        )
        for item in ranked
    ]
