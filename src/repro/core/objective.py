"""The OCuLaR objective: regularised negative log-likelihood and its gradients.

Section IV-B of the paper defines, for a binary matrix ``R`` and non-negative
factors ``f_u``, ``f_i``:

    -log L = - sum_{(u,i): r=1} log(1 - exp(-<f_u, f_i>))
             + sum_{(u,i): r=0} <f_u, f_i>

    Q = -log L + lambda * (sum_u ||f_u||^2 + sum_i ||f_i||^2)

R-OCuLaR (Section V) multiplies each positive term by a per-user weight
``w_u = #unknowns(u) / #positives(u)``; the unknown term is unchanged.  This
module implements both through an optional per-positive weight.

Numerical care: ``log(1 - exp(-x))`` and ``exp(-x)/(1 - exp(-x))`` blow up as
``x -> 0``.  Affinities of positive pairs are therefore floored at
``MIN_AFFINITY`` before entering logs or ratios, the standard device used by
BIGCLAM-style fitters.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

#: Smallest affinity used inside logarithms / gradient ratios.
MIN_AFFINITY = 1e-10

#: Largest affinity before ``exp(-x)`` underflows meaningfully; used to clip.
MAX_AFFINITY = 50.0


def safe_log1mexp(affinity: np.ndarray) -> np.ndarray:
    """Numerically safe ``log(1 - exp(-x))`` for non-negative ``x``.

    Uses ``log(-expm1(-x))`` which is accurate for small ``x`` and floors the
    input at :data:`MIN_AFFINITY` to avoid ``log(0)``.
    """
    clipped = np.clip(affinity, MIN_AFFINITY, None)
    return np.log(-np.expm1(-clipped))


def safe_log1mexp_into(affinity: np.ndarray, out: np.ndarray) -> np.ndarray:
    """In-place :func:`safe_log1mexp` writing into a caller-owned buffer.

    Runs the identical elementwise sequence (clip, negate, ``expm1``,
    negate, ``log``) through ``out=``, so the result is bit-for-bit the
    allocating form — the property the pooled sweep kernels rely on.
    ``out`` may alias ``affinity``.
    """
    np.clip(affinity, MIN_AFFINITY, None, out=out)
    np.negative(out, out=out)
    np.expm1(out, out=out)
    np.negative(out, out=out)
    np.log(out, out=out)
    return out


def gradient_ratio(affinity: np.ndarray) -> np.ndarray:
    """Numerically safe ``exp(-x) / (1 - exp(-x))`` for non-negative ``x``.

    This is the scalar the paper calls ``alpha(<f_u, f_i>)`` in the GPU
    kernel description (equation 11).
    """
    clipped = np.clip(affinity, MIN_AFFINITY, MAX_AFFINITY)
    return np.exp(-clipped) / (-np.expm1(-clipped))


def gradient_ratio_into(
    affinity: np.ndarray, out: np.ndarray, scratch: np.ndarray
) -> np.ndarray:
    """In-place :func:`gradient_ratio` writing into caller-owned buffers.

    Same elementwise operations as the allocating form, so the result is
    bitwise identical; ``scratch`` holds the ``-expm1(-x)`` denominator.
    ``out`` may alias ``affinity`` (clobbering it) but not ``scratch``.
    """
    np.clip(affinity, MIN_AFFINITY, MAX_AFFINITY, out=out)
    np.negative(out, out=out)
    np.expm1(out, out=scratch)
    np.negative(scratch, out=scratch)
    np.exp(out, out=out)
    np.divide(out, scratch, out=out)
    return out


def positive_affinities(
    matrix: sp.csr_matrix, row_factors: np.ndarray, col_factors: np.ndarray
) -> np.ndarray:
    """Affinities ``<f_row, f_col>`` for every positive entry of ``matrix``.

    ``matrix`` must be a CSR matrix of shape ``(n_rows, n_cols)``; the result
    is aligned with ``matrix.tocoo()`` order (row-major, which CSR guarantees).
    """
    coo = matrix.tocoo()
    return np.einsum("ij,ij->i", row_factors[coo.row], col_factors[coo.col])


def full_objective(
    matrix: sp.csr_matrix,
    user_factors: np.ndarray,
    item_factors: np.ndarray,
    regularization: float,
    user_weights: Optional[np.ndarray] = None,
) -> float:
    """Evaluate the full regularised objective ``Q``.

    Parameters
    ----------
    matrix:
        CSR interaction matrix of shape ``(n_users, n_items)``.
    user_factors, item_factors:
        Current factors.
    regularization:
        The L2 penalty ``lambda``.
    user_weights:
        Optional per-user weights applied to the positive-example terms
        (R-OCuLaR); ``None`` means unit weights (OCuLaR).

    Notes
    -----
    The unknown-pair term ``sum_{(u,i): r=0} <f_u, f_i>`` is computed without
    materialising the dense matrix by using

        ``sum_{all pairs} <f_u, f_i> = <sum_u f_u, sum_i f_i>``

    and subtracting the affinities of the positive pairs.  This is a
    convenience wrapper over :func:`objective_from_entries` (the single
    implementation of the formula) that derives the entry list from the
    matrix on every call; the trainer evaluates through a precomputed plan
    instead.
    """
    coo = matrix.tocoo()
    entry_weights = None if user_weights is None else user_weights[coo.row]
    objective, _ = objective_from_entries(
        coo.row, coo.col, entry_weights, user_factors, item_factors, regularization
    )
    return objective


def objective_from_entries(
    entry_rows: np.ndarray,
    entry_cols: np.ndarray,
    entry_weights: Optional[np.ndarray],
    user_factors: np.ndarray,
    item_factors: np.ndarray,
    regularization: float,
) -> Tuple[float, float]:
    """``(Q, -log L)`` evaluated from a precomputed positive-entry list.

    The trainer's convergence bookkeeping needs both the regularised
    objective and the raw likelihood after every iteration.  Evaluating them
    through :func:`full_objective` costs two ``tocoo()`` conversions and two
    affinity passes per iteration; this variant takes the entry arrays a
    :class:`~repro.core.backends.plan.SweepSide` precomputed once per fit
    (user-major: ``entry_rows`` index users, ``entry_cols`` index items,
    ``entry_weights`` is the per-entry R-OCuLaR weight or ``None``) and
    computes both values in a single pass.
    """
    affinities = np.einsum(
        "ij,ij->i", user_factors[entry_rows], item_factors[entry_cols]
    )

    log_terms = safe_log1mexp(affinities)
    if entry_weights is not None:
        log_terms = log_terms * entry_weights
    positive_part = -float(np.sum(log_terms))

    total_affinity = float(user_factors.sum(axis=0) @ item_factors.sum(axis=0))
    unknown_part = total_affinity - float(np.sum(affinities))

    likelihood = positive_part + unknown_part
    penalty = regularization * (
        float(np.sum(user_factors**2)) + float(np.sum(item_factors**2))
    )
    return likelihood + penalty, likelihood


def negative_log_likelihood(
    matrix: sp.csr_matrix,
    user_factors: np.ndarray,
    item_factors: np.ndarray,
    user_weights: Optional[np.ndarray] = None,
) -> float:
    """The unregularised negative log-likelihood ``-log L``.

    Used by the Figure 8 benchmark, which plots the distance to the optimal
    *likelihood* (not the penalised objective) against wall-clock time.
    """
    return full_objective(
        matrix, user_factors, item_factors, regularization=0.0, user_weights=user_weights
    )


def row_objective(
    factor: np.ndarray,
    positive_col_factors: np.ndarray,
    positive_weights: Optional[np.ndarray],
    unknown_sum: np.ndarray,
    regularization: float,
) -> float:
    """Objective restricted to one row factor (equation 5 of the paper).

    ``Q(f_i) = -sum_{u: r=1} w_u log(1 - exp(-<f_u, f_i>))
               + <f_i, sum_{u: r=0} f_u> + lambda ||f_i||^2``

    Parameters
    ----------
    factor:
        The row factor being optimised, shape ``(K,)``.
    positive_col_factors:
        Factors of the columns with a positive entry in this row,
        shape ``(n_positive, K)``.
    positive_weights:
        Optional per-positive weights (R-OCuLaR), shape ``(n_positive,)``.
    unknown_sum:
        Precomputed ``sum_{cols with r=0} f_col``, shape ``(K,)``.
    regularization:
        The L2 penalty ``lambda``.
    """
    affinities = positive_col_factors @ factor
    log_terms = safe_log1mexp(affinities)
    if positive_weights is not None:
        log_terms = log_terms * positive_weights
    positive_part = -float(np.sum(log_terms))
    unknown_part = float(factor @ unknown_sum)
    penalty = regularization * float(factor @ factor)
    return positive_part + unknown_part + penalty


def row_gradient(
    factor: np.ndarray,
    positive_col_factors: np.ndarray,
    positive_weights: Optional[np.ndarray],
    unknown_sum: np.ndarray,
    regularization: float,
) -> np.ndarray:
    """Gradient of :func:`row_objective` with respect to the row factor.

    Equation (6) of the paper:

    ``grad Q(f_i) = -sum_{u: r=1} w_u f_u exp(-x)/(1-exp(-x))
                    + sum_{u: r=0} f_u + 2 lambda f_i``
    """
    affinities = positive_col_factors @ factor
    ratios = gradient_ratio(affinities)
    if positive_weights is not None:
        ratios = ratios * positive_weights
    positive_part = -(ratios @ positive_col_factors)
    return positive_part + unknown_sum + 2.0 * regularization * factor


def relative_user_weights(matrix: sp.csr_matrix) -> np.ndarray:
    """R-OCuLaR per-user weights ``w_u = #unknowns(u) / #positives(u)``.

    Users with no positives receive weight 1 (they contribute no positive
    terms anyway, so the value is irrelevant but must be finite).
    """
    n_items = matrix.shape[1]
    positives = np.diff(matrix.indptr).astype(float)
    weights = np.ones_like(positives)
    nonzero = positives > 0
    weights[nonzero] = (n_items - positives[nonzero]) / positives[nonzero]
    return weights


def armijo_accept(
    old_value: float,
    new_value: float,
    gradient: np.ndarray,
    step_difference: np.ndarray,
    sigma: float,
) -> bool:
    """Armijo acceptance test along the projection arc (Section IV-D).

    Accept the candidate when
    ``Q(f_new) - Q(f_old) <= sigma * <grad Q(f_old), f_new - f_old>``.
    """
    return new_value - old_value <= sigma * float(gradient @ step_difference)


def split_known_unknown_sums(
    matrix: sp.csr_matrix, col_factors: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row sums of column factors over positives, and over unknowns.

    Returns ``(positive_sums, unknown_sums)`` with shape ``(n_rows, K)``.
    Implements the paper's precomputation trick:
    ``sum_{c: r=0} f_c = sum_c f_c - sum_{c: r=1} f_c``.
    """
    positive_sums = matrix @ col_factors
    total = col_factors.sum(axis=0)
    unknown_sums = total[np.newaxis, :] - positive_sums
    return positive_sums, unknown_sums
