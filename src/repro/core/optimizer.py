"""Block-coordinate trainer for the OCuLaR objective.

Section IV-B: alternate between updating all item factors (users fixed) and
all user factors (items fixed); each block is improved by a *single*
projected-gradient step with Armijo backtracking rather than solved to
optimality, because inexact block updates converge faster in wall-clock time.
Convergence is declared when the objective stops decreasing (relative change
below a tolerance).

The trainer is agnostic to which backend performs the sweeps, records the
objective trajectory and per-sweep timings (consumed by the Figure 7 and
Figure 8 benchmarks), and guarantees the objective is monotonically
non-increasing across accepted iterations — a property the test-suite checks.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.core.backends import Backend, get_backend
from repro.core.objective import full_objective, negative_log_likelihood
from repro.exceptions import ConfigurationError, ConvergenceWarning
from repro.utils.validation import (
    check_non_negative_float,
    check_positive_int,
    check_unit_interval_open,
)


@dataclass
class TrainingHistory:
    """Trajectory of a training run.

    Attributes
    ----------
    objective_values:
        Value of the regularised objective ``Q`` after every outer iteration
        (index 0 is the value at initialisation).
    log_likelihoods:
        Negative log-likelihood (unregularised) after every outer iteration.
    iteration_seconds:
        Wall-clock seconds spent in each outer iteration (both sweeps).
    elapsed_seconds:
        Cumulative wall-clock time at the end of each outer iteration.
    converged:
        Whether the relative-improvement stopping rule fired before the
        iteration budget ran out.
    n_iterations:
        Number of completed outer iterations.
    """

    objective_values: List[float] = field(default_factory=list)
    log_likelihoods: List[float] = field(default_factory=list)
    iteration_seconds: List[float] = field(default_factory=list)
    elapsed_seconds: List[float] = field(default_factory=list)
    converged: bool = False
    n_iterations: int = 0

    @property
    def final_objective(self) -> float:
        """Objective value at the end of training."""
        if not self.objective_values:
            raise ValueError("training has not produced any objective values")
        return self.objective_values[-1]

    @property
    def mean_seconds_per_iteration(self) -> float:
        """Average wall-clock seconds per outer iteration."""
        if not self.iteration_seconds:
            return 0.0
        return float(np.mean(self.iteration_seconds))


class BlockCoordinateTrainer:
    """Alternating projected-gradient trainer for the OCuLaR objective.

    Parameters
    ----------
    regularization:
        L2 penalty ``lambda`` (must be non-negative; the paper notes strong
        convexity of the subproblems requires ``lambda > 0``).
    max_iterations:
        Maximum number of outer iterations (one item sweep + one user sweep).
    tolerance:
        Relative objective improvement below which training stops.
    sigma, beta:
        Armijo line-search constants in (0, 1).
    max_backtracks:
        Per-row cap on step-size halvings within a sweep.
    backend:
        Backend instance or name (``"vectorized"`` / ``"reference"``).
    inner_sweeps:
        Number of consecutive projected-gradient sweeps applied to a block
        before switching to the other block.  The paper argues (Section IV-B)
        that ``1`` — i.e. only *approximately* solving each subproblem — is
        the fastest choice in wall-clock terms; larger values solve each
        block more exactly and exist mainly for the ablation benchmark.
    """

    def __init__(
        self,
        regularization: float = 1.0,
        max_iterations: int = 100,
        tolerance: float = 1e-4,
        sigma: float = 0.1,
        beta: float = 0.5,
        max_backtracks: int = 20,
        backend: Backend | str = "vectorized",
        inner_sweeps: int = 1,
    ) -> None:
        self.regularization = check_non_negative_float(regularization, "regularization")
        self.max_iterations = check_positive_int(max_iterations, "max_iterations")
        self.tolerance = check_non_negative_float(tolerance, "tolerance")
        self.sigma = check_unit_interval_open(sigma, "sigma")
        self.beta = check_unit_interval_open(beta, "beta")
        self.max_backtracks = check_positive_int(max_backtracks, "max_backtracks")
        self.backend = get_backend(backend)
        self.inner_sweeps = check_positive_int(inner_sweeps, "inner_sweeps")

    def train(
        self,
        matrix: sp.csr_matrix,
        user_factors: np.ndarray,
        item_factors: np.ndarray,
        user_weights: Optional[np.ndarray] = None,
        callback=None,
    ) -> Tuple[np.ndarray, np.ndarray, TrainingHistory]:
        """Run alternating sweeps until convergence or the iteration budget.

        Parameters
        ----------
        matrix:
            CSR interaction matrix of shape ``(n_users, n_items)``.
        user_factors, item_factors:
            Feasible (non-negative) initial factors; not modified in place.
        user_weights:
            Optional per-user positive-example weights (R-OCuLaR).
        callback:
            Optional callable invoked as ``callback(iteration, history)``
            after every outer iteration; returning ``True`` stops training
            early (used by time-budgeted benchmarks).

        Returns
        -------
        (user_factors, item_factors, history)
        """
        matrix = sp.csr_matrix(matrix)
        if matrix.shape[0] != user_factors.shape[0]:
            raise ConfigurationError(
                f"user_factors has {user_factors.shape[0]} rows but the matrix has "
                f"{matrix.shape[0]} users"
            )
        if matrix.shape[1] != item_factors.shape[0]:
            raise ConfigurationError(
                f"item_factors has {item_factors.shape[0]} rows but the matrix has "
                f"{matrix.shape[1]} items"
            )
        if user_weights is not None and len(user_weights) != matrix.shape[0]:
            raise ConfigurationError("user_weights must have one entry per user")

        user_factors = np.array(user_factors, dtype=float, copy=True)
        item_factors = np.array(item_factors, dtype=float, copy=True)
        matrix_items_by_users = sp.csr_matrix(matrix.T)

        history = TrainingHistory()
        objective = full_objective(
            matrix, user_factors, item_factors, self.regularization, user_weights
        )
        history.objective_values.append(objective)
        history.log_likelihoods.append(
            negative_log_likelihood(matrix, user_factors, item_factors, user_weights)
        )

        start_time = time.perf_counter()
        for iteration in range(1, self.max_iterations + 1):
            iteration_start = time.perf_counter()

            # Item sweeps: rows are items, columns are users; the per-user
            # R-OCuLaR weight rides on the column side.
            for _ in range(self.inner_sweeps):
                item_factors, _ = self.backend.sweep(
                    matrix_items_by_users,
                    item_factors,
                    user_factors,
                    regularization=self.regularization,
                    col_positive_weights=user_weights,
                    sigma=self.sigma,
                    beta=self.beta,
                    max_backtracks=self.max_backtracks,
                )
            # User sweeps: rows are users, columns are items; the weight is
            # constant within a row and rides on the row side.
            for _ in range(self.inner_sweeps):
                user_factors, _ = self.backend.sweep(
                    matrix,
                    user_factors,
                    item_factors,
                    regularization=self.regularization,
                    row_positive_weights=user_weights,
                    sigma=self.sigma,
                    beta=self.beta,
                    max_backtracks=self.max_backtracks,
                )

            iteration_seconds = time.perf_counter() - iteration_start
            previous = history.objective_values[-1]
            objective = full_objective(
                matrix, user_factors, item_factors, self.regularization, user_weights
            )
            history.objective_values.append(objective)
            history.log_likelihoods.append(
                negative_log_likelihood(matrix, user_factors, item_factors, user_weights)
            )
            history.iteration_seconds.append(iteration_seconds)
            history.elapsed_seconds.append(time.perf_counter() - start_time)
            history.n_iterations = iteration

            if callback is not None and callback(iteration, history):
                break

            improvement = previous - objective
            relative = abs(improvement) / max(abs(previous), 1.0)
            if improvement >= 0 and relative < self.tolerance:
                history.converged = True
                break

        if not history.converged and history.n_iterations >= self.max_iterations:
            warnings.warn(
                "OCuLaR training reached max_iterations without meeting the "
                "convergence tolerance",
                ConvergenceWarning,
                stacklevel=2,
            )
        return user_factors, item_factors, history
