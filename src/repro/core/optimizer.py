"""Block-coordinate trainer for the OCuLaR objective.

Section IV-B: alternate between updating all item factors (users fixed) and
all user factors (items fixed); each block is improved by a *single*
projected-gradient step with Armijo backtracking rather than solved to
optimality, because inexact block updates converge faster in wall-clock time.
Convergence is declared when the objective stops decreasing (relative change
below a tolerance).

The trainer builds one :class:`~repro.core.backends.plan.SweepPlan` at the
top of ``train`` — both sweep directions' CSR matrices, per-entry row
indices, and R-OCuLaR entry weights — and drives every sweep and every
objective evaluation through it, so no per-sweep ``tocoo()`` / transpose /
weight recomputation survives in the hot loop.  It is agnostic to which
backend performs the sweeps, records the objective trajectory, per-sweep
timings and :class:`~repro.core.backends.SweepStats` (consumed by the
Figure 7 and Figure 8 benchmarks), and guarantees the objective is
monotonically non-increasing across accepted iterations — a property the
test-suite checks.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.core.backends import Backend, BackendLease, SweepPlan, SweepStats
from repro.core.objective import objective_from_entries
from repro.exceptions import ConfigurationError, ConvergenceWarning
from repro.utils.validation import (
    check_array_2d,
    check_non_negative_float,
    check_positive_int,
    check_unit_interval_open,
)


@dataclass
class TrainingHistory:
    """Trajectory of a training run.

    Attributes
    ----------
    objective_values:
        Value of the regularised objective ``Q`` after every outer iteration
        (index 0 is the value at initialisation).
    log_likelihoods:
        Negative log-likelihood (unregularised) after every outer iteration.
    iteration_seconds:
        Wall-clock seconds spent in each outer iteration (both sweeps).
    elapsed_seconds:
        Cumulative wall-clock time at the end of each outer iteration.
    item_sweep_stats, user_sweep_stats:
        :class:`~repro.core.backends.SweepStats` of every executed item /
        user sweep, in execution order (``inner_sweeps`` entries per outer
        iteration).  Acceptance rates and backtrack counts diagnose the
        line search: a collapsing acceptance rate flags an ill-conditioned
        block long before the objective plateaus.
    converged:
        Whether the relative-improvement stopping rule fired before the
        iteration budget ran out.
    n_iterations:
        Number of completed outer iterations.
    warm_started:
        Whether training was seeded from caller-provided ``initial_factors``
        (a previous generation's factors) rather than a fresh initialisation.
    stopped_on_plateau:
        Whether the *plateau* rule — ``plateau_patience`` consecutive
        iterations with relative improvement below ``plateau_tolerance`` —
        ended the run.  Disjoint from the strict tolerance rule: when this is
        set, ``converged`` is set too.
    plateau_tolerance:
        The plateau tolerance the run used (``None`` when the rule was off —
        the cold-path default, which keeps seed parity bit-exact).
    """

    objective_values: List[float] = field(default_factory=list)
    log_likelihoods: List[float] = field(default_factory=list)
    iteration_seconds: List[float] = field(default_factory=list)
    elapsed_seconds: List[float] = field(default_factory=list)
    item_sweep_stats: List[SweepStats] = field(default_factory=list)
    user_sweep_stats: List[SweepStats] = field(default_factory=list)
    converged: bool = False
    n_iterations: int = 0
    warm_started: bool = False
    stopped_on_plateau: bool = False
    plateau_tolerance: Optional[float] = None

    @property
    def final_objective(self) -> float:
        """Objective value at the end of training."""
        if not self.objective_values:
            raise ValueError("training has not produced any objective values")
        return self.objective_values[-1]

    @property
    def mean_seconds_per_iteration(self) -> float:
        """Average wall-clock seconds per outer iteration."""
        if not self.iteration_seconds:
            return 0.0
        return float(np.mean(self.iteration_seconds))

    @property
    def mean_item_acceptance_rate(self) -> float:
        """Mean Armijo acceptance rate across all item sweeps (0 when none ran)."""
        if not self.item_sweep_stats:
            return 0.0
        return float(np.mean([stats.acceptance_rate for stats in self.item_sweep_stats]))

    @property
    def mean_user_acceptance_rate(self) -> float:
        """Mean Armijo acceptance rate across all user sweeps (0 when none ran)."""
        if not self.user_sweep_stats:
            return 0.0
        return float(np.mean([stats.acceptance_rate for stats in self.user_sweep_stats]))

    @property
    def total_backtracks(self) -> int:
        """Total step-size halvings across every sweep of the run."""
        return sum(
            stats.n_backtracks
            for stats in (*self.item_sweep_stats, *self.user_sweep_stats)
        )

    @property
    def peak_workspace_bytes(self) -> int:
        """Largest pooled sweep-workspace footprint any sweep of the run used.

        Summed across the shards of a sweep (see
        :class:`~repro.core.backends.SweepStats`); 0 for backends without
        pooled workspaces.
        """
        return max(
            (
                stats.workspace_bytes
                for stats in (*self.item_sweep_stats, *self.user_sweep_stats)
            ),
            default=0,
        )

    @property
    def total_workspace_allocations(self) -> int:
        """Workspace arenas built across the run (should stop growing fast)."""
        return sum(
            stats.workspace_allocations
            for stats in (*self.item_sweep_stats, *self.user_sweep_stats)
        )

    @property
    def total_workspace_reuses(self) -> int:
        """Workspace acquisitions served from the free list across the run."""
        return sum(
            stats.workspace_reuses
            for stats in (*self.item_sweep_stats, *self.user_sweep_stats)
        )


class BlockCoordinateTrainer:
    """Alternating projected-gradient trainer for the OCuLaR objective.

    Parameters
    ----------
    regularization:
        L2 penalty ``lambda`` (must be non-negative; the paper notes strong
        convexity of the subproblems requires ``lambda > 0``).
    max_iterations:
        Maximum number of outer iterations (one item sweep + one user sweep).
    tolerance:
        Relative objective improvement below which training stops.
    sigma, beta:
        Armijo line-search constants in (0, 1).
    max_backtracks:
        Per-row cap on step-size halvings within a sweep.
    backend:
        Backend instance or name (``"vectorized"`` / ``"reference"`` /
        ``"parallel"``).  When given a *name*, the trainer owns the backend
        it builds and releases its pools and shared memory via
        :meth:`shutdown`; an *instance* is borrowed and left untouched.
    n_workers:
        Worker-pool size when ``backend="parallel"``; invalid otherwise.
    executor:
        Shard executor name (``"thread"`` / ``"process"`` / ``"serial"``)
        when ``backend="parallel"``; invalid otherwise.
    inner_sweeps:
        Number of consecutive projected-gradient sweeps applied to a block
        before switching to the other block.  The paper argues (Section IV-B)
        that ``1`` — i.e. only *approximately* solving each subproblem — is
        the fastest choice in wall-clock terms; larger values solve each
        block more exactly and exist mainly for the ablation benchmark.
    plateau_tolerance:
        Optional *plateau* stopping rule for warm-started refits: when the
        relative objective improvement stays below this value for
        ``plateau_patience`` consecutive iterations, training stops and the
        history records ``stopped_on_plateau``.  ``None`` (the default)
        disables the rule entirely, so cold fits remain bit-identical to the
        seed trainer.  Unlike ``tolerance`` — which is a strict convergence
        criterion checked against a single iteration — the plateau rule
        tolerates the noisy first iterations of a warm start where one sweep
        can under-improve before the objective settles.
    plateau_patience:
        Consecutive below-``plateau_tolerance`` iterations required before
        the plateau rule fires (default 2).
    """

    def __init__(
        self,
        regularization: float = 1.0,
        max_iterations: int = 100,
        tolerance: float = 1e-4,
        sigma: float = 0.1,
        beta: float = 0.5,
        max_backtracks: int = 20,
        backend: Backend | str = "vectorized",
        n_workers: Optional[int] = None,
        executor: Optional[str] = None,
        inner_sweeps: int = 1,
        plateau_tolerance: Optional[float] = None,
        plateau_patience: int = 2,
    ) -> None:
        self.regularization = check_non_negative_float(regularization, "regularization")
        self.max_iterations = check_positive_int(max_iterations, "max_iterations")
        self.tolerance = check_non_negative_float(tolerance, "tolerance")
        self.sigma = check_unit_interval_open(sigma, "sigma")
        self.beta = check_unit_interval_open(beta, "beta")
        self.max_backtracks = check_positive_int(max_backtracks, "max_backtracks")
        self._lease = BackendLease(backend, n_workers=n_workers, executor=executor)
        self.backend = self._lease.backend
        self.inner_sweeps = check_positive_int(inner_sweeps, "inner_sweeps")
        if plateau_tolerance is not None:
            plateau_tolerance = check_non_negative_float(
                plateau_tolerance, "plateau_tolerance"
            )
        self.plateau_tolerance = plateau_tolerance
        self.plateau_patience = check_positive_int(plateau_patience, "plateau_patience")

    @property
    def owns_backend(self) -> bool:
        """Whether :meth:`shutdown` will release the backend.

        True iff the trainer was configured with a backend *name*; an
        instance is borrowed — a warm pool passed in by a long-lived runtime
        survives every fit that uses it.
        """
        return self._lease.owned

    def shutdown(self) -> None:
        """Release the backend's pools and shared memory, if the trainer owns it.

        Callers that construct the trainer with a backend *name* should call
        this when done fitting (``OCuLaR.fit`` does); process-executor
        backends hold worker processes and ``/dev/shm`` segments that must
        not outlive the fit.  Borrowed backend instances are not touched —
        their owner controls their lifecycle (see
        :class:`~repro.core.backends.BackendLease`).
        """
        self._lease.release()

    def train(
        self,
        matrix: sp.csr_matrix,
        user_factors: Optional[np.ndarray] = None,
        item_factors: Optional[np.ndarray] = None,
        user_weights: Optional[np.ndarray] = None,
        callback=None,
        plan: Optional[SweepPlan] = None,
        initial_factors: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> Tuple[np.ndarray, np.ndarray, TrainingHistory]:
        """Run alternating sweeps until convergence or the iteration budget.

        Parameters
        ----------
        matrix:
            CSR interaction matrix of shape ``(n_users, n_items)``.  Must be
            ``None`` when ``plan`` is provided — the plan owns its matrix,
            and a second one would be silently ignored.
        user_factors, item_factors:
            Feasible (non-negative) initial factors; not modified in place.
            Their (shared) dtype — float64 by default, float32 supported —
            is the dtype training runs in and the fitted factors keep.
        user_weights:
            Optional per-user positive-example weights (R-OCuLaR).  Only
            valid without ``plan`` — a plan has its weights baked in.
        callback:
            Optional callable invoked as ``callback(iteration, history)``
            after every outer iteration; returning ``True`` stops training
            early (used by time-budgeted benchmarks).
        plan:
            Optional prebuilt :class:`~repro.core.backends.SweepPlan` in the
            same dtype as the factors.  Callers that train repeatedly on one
            matrix (e.g. the bias-clamped fit) pass it to avoid rebuilding
            the plan per call; by default it is built here from ``matrix``.
        initial_factors:
            Warm-start alternative to the positional factor pair: a
            ``(user_factors, item_factors)`` tuple — typically the previous
            generation's fitted factors, extended to the current shape via
            :func:`repro.serving.fold_in.extend_factors`.  Mutually exclusive
            with the positional ``user_factors``/``item_factors``; the
            resulting history records ``warm_started=True``.

        Returns
        -------
        (user_factors, item_factors, history)
        """
        warm_started = initial_factors is not None
        if warm_started:
            if user_factors is not None or item_factors is not None:
                raise ConfigurationError(
                    "pass either positional factors or initial_factors, not both"
                )
            user_factors, item_factors = initial_factors
        if user_factors is None or item_factors is None:
            raise ConfigurationError(
                "train requires user_factors and item_factors (or initial_factors)"
            )
        if plan is None:
            if matrix is None:
                raise ConfigurationError(
                    "train requires either a matrix or a prebuilt plan"
                )
            matrix = sp.csr_matrix(matrix)
            n_users, n_items = matrix.shape
        else:
            if matrix is not None:
                raise ConfigurationError(
                    "pass either a matrix or a plan to train, not both — a plan "
                    "already owns its matrix, so the extra one would be ignored"
                )
            if user_weights is not None:
                raise ConfigurationError(
                    "user_weights are baked into the plan at construction time; "
                    "pass them to SweepPlan.build, not to train"
                )
            n_users, n_items = plan.n_users, plan.n_items

        if n_users != user_factors.shape[0]:
            raise ConfigurationError(
                f"user_factors has {user_factors.shape[0]} rows but the matrix has "
                f"{n_users} users"
            )
        if n_items != item_factors.shape[0]:
            raise ConfigurationError(
                f"item_factors has {item_factors.shape[0]} rows but the matrix has "
                f"{n_items} items"
            )
        if user_weights is not None and len(user_weights) != n_users:
            raise ConfigurationError("user_weights must have one entry per user")

        user_factors = check_array_2d(user_factors, "user_factors").copy()
        item_factors = check_array_2d(item_factors, "item_factors").copy()
        if user_factors.dtype != item_factors.dtype:
            raise ConfigurationError(
                f"user_factors ({user_factors.dtype}) and item_factors "
                f"({item_factors.dtype}) must share a dtype"
            )

        # All static sweep structure — both CSR orientations, per-entry row
        # indices, and R-OCuLaR entry weights — is computed exactly once per
        # fit: here, or by a caller that trains on one matrix repeatedly.
        if plan is None:
            plan = SweepPlan.build(
                matrix, user_weights=user_weights, dtype=user_factors.dtype
            )
        elif plan.dtype != user_factors.dtype:
            raise ConfigurationError(
                f"plan dtype {plan.dtype} does not match the factor dtype "
                f"{user_factors.dtype}"
            )
        user_entries = plan.user_side

        history = TrainingHistory(
            warm_started=warm_started, plateau_tolerance=self.plateau_tolerance
        )
        objective, likelihood = objective_from_entries(
            user_entries.row_index,
            user_entries.matrix.indices,
            user_entries.entry_weights,
            user_factors,
            item_factors,
            self.regularization,
        )
        history.objective_values.append(objective)
        history.log_likelihoods.append(likelihood)

        start_time = time.perf_counter()
        plateau_streak = 0
        for iteration in range(1, self.max_iterations + 1):
            iteration_start = time.perf_counter()

            # Item sweeps: rows are items, columns are users; the per-user
            # R-OCuLaR weight (baked into the plan side) rides on the columns.
            for _ in range(self.inner_sweeps):
                item_factors, item_stats = self.backend.sweep(
                    None,
                    item_factors,
                    user_factors,
                    regularization=self.regularization,
                    sigma=self.sigma,
                    beta=self.beta,
                    max_backtracks=self.max_backtracks,
                    plan=plan.item_side,
                )
                history.item_sweep_stats.append(item_stats)
            # User sweeps: rows are users, columns are items; the weight is
            # constant within a row and rides on the row side.
            for _ in range(self.inner_sweeps):
                user_factors, user_stats = self.backend.sweep(
                    None,
                    user_factors,
                    item_factors,
                    regularization=self.regularization,
                    sigma=self.sigma,
                    beta=self.beta,
                    max_backtracks=self.max_backtracks,
                    plan=plan.user_side,
                )
                history.user_sweep_stats.append(user_stats)

            iteration_seconds = time.perf_counter() - iteration_start
            previous = history.objective_values[-1]
            objective, likelihood = objective_from_entries(
                user_entries.row_index,
                user_entries.matrix.indices,
                user_entries.entry_weights,
                user_factors,
                item_factors,
                self.regularization,
            )
            history.objective_values.append(objective)
            history.log_likelihoods.append(likelihood)
            history.iteration_seconds.append(iteration_seconds)
            history.elapsed_seconds.append(time.perf_counter() - start_time)
            history.n_iterations = iteration

            if callback is not None and callback(iteration, history):
                break

            improvement = previous - objective
            relative = abs(improvement) / max(abs(previous), 1.0)
            if improvement >= 0 and relative < self.tolerance:
                history.converged = True
                break
            if self.plateau_tolerance is not None:
                if improvement >= 0 and relative < self.plateau_tolerance:
                    plateau_streak += 1
                else:
                    plateau_streak = 0
                if plateau_streak >= self.plateau_patience:
                    history.converged = True
                    history.stopped_on_plateau = True
                    break

        if not history.converged and history.n_iterations >= self.max_iterations:
            warnings.warn(
                "OCuLaR training reached max_iterations without meeting the "
                "convergence tolerance",
                ConvergenceWarning,
                stacklevel=2,
            )
        return user_factors, item_factors, history
