"""Co-cluster extraction and statistics (Sections IV-C and VII-C).

A co-cluster ``c`` is "the subset of users and items for which ``[f_u]_c``
and ``[f_i]_c`` respectively are large".  The default membership threshold is
chosen so that two entities that both sit exactly at the threshold would
generate a positive example with probability 0.5:

    ``1 - exp(-delta^2) = 0.5  =>  delta = sqrt(ln 2) ~= 0.833``

which is the same convention used by BIGCLAM-style affiliation models.  The
co-cluster statistics (users per co-cluster, items per co-cluster, density)
are exactly the quantities plotted in Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.factors import FactorModel
from repro.data.interactions import InteractionMatrix
from repro.exceptions import ConfigurationError

#: Membership threshold at which two borderline members produce P = 0.5.
DEFAULT_MEMBERSHIP_THRESHOLD = float(np.sqrt(np.log(2.0)))

#: Smallest adaptive threshold considered meaningful; below this the factors
#: carry essentially no affiliation signal.
MIN_MEMBERSHIP_THRESHOLD = 0.05


def adaptive_membership_threshold(factors: FactorModel) -> float:
    """Data-driven membership threshold for a fitted factor model.

    Strong regularisation shrinks all affiliations, so a fixed absolute
    threshold can leave every co-cluster empty even though the *relative*
    structure is clear.  The adaptive rule takes the smaller of the absolute
    P=0.5 threshold and half the largest affiliation present in the model,
    floored at :data:`MIN_MEMBERSHIP_THRESHOLD`:

        ``delta = max(min(sqrt(ln 2), 0.5 * max_affiliation), 0.05)``

    For well-separated fits (toy example, lightly regularised models) this
    coincides with the absolute rule; for strongly regularised fits it keeps
    the strongest members of each co-cluster.
    """
    largest = float(
        max(factors.user_factors.max(initial=0.0), factors.item_factors.max(initial=0.0))
    )
    return max(min(DEFAULT_MEMBERSHIP_THRESHOLD, 0.5 * largest), MIN_MEMBERSHIP_THRESHOLD)


@dataclass
class CoCluster:
    """One overlapping user-item co-cluster.

    Attributes
    ----------
    index:
        Co-cluster index ``c`` (the column of the factor matrices).
    users, items:
        Member indices, sorted by decreasing affiliation strength.
    user_strengths, item_strengths:
        Affiliation strengths aligned with ``users`` / ``items``.
    density:
        Fraction of (member user, member item) pairs that are positive in the
        matrix the co-clusters were extracted against (``nan`` if either side
        is empty).
    """

    index: int
    users: np.ndarray
    items: np.ndarray
    user_strengths: np.ndarray
    item_strengths: np.ndarray
    density: float = float("nan")

    @property
    def n_users(self) -> int:
        """Number of member users."""
        return len(self.users)

    @property
    def n_items(self) -> int:
        """Number of member items."""
        return len(self.items)

    @property
    def is_empty(self) -> bool:
        """True when the co-cluster has no user or no item member.

        The paper requires a co-cluster to contain at least one user and one
        item; empty ones are artefacts of over-provisioned ``K``.
        """
        return self.n_users == 0 or self.n_items == 0

    def top_users(self, count: int) -> List[int]:
        """The ``count`` most strongly affiliated users."""
        return [int(user) for user in self.users[:count]]

    def top_items(self, count: int) -> List[int]:
        """The ``count`` most strongly affiliated items."""
        return [int(item) for item in self.items[:count]]


def extract_coclusters(
    factors: FactorModel,
    matrix: Optional[InteractionMatrix] = None,
    membership_threshold: Optional[float] = None,
    drop_empty: bool = False,
) -> List[CoCluster]:
    """Turn fitted affiliation factors into explicit overlapping co-clusters.

    Parameters
    ----------
    factors:
        Fitted factor model.
    matrix:
        Optional interaction matrix used to compute co-cluster densities.
    membership_threshold:
        Minimum affiliation strength for membership; defaults to the
        adaptive rule of :func:`adaptive_membership_threshold`.
    drop_empty:
        When ``True``, co-clusters lacking a user or an item member are
        omitted from the result.

    Returns
    -------
    list of CoCluster
        One entry per factor column (minus dropped ones), members sorted by
        decreasing strength.  Because thresholding is done per column,
        users/items may appear in several co-clusters — the overlap the paper
        is named after.
    """
    threshold = (
        adaptive_membership_threshold(factors)
        if membership_threshold is None
        else float(membership_threshold)
    )
    if threshold < 0:
        raise ConfigurationError(f"membership_threshold must be non-negative, got {threshold}")

    coclusters: List[CoCluster] = []
    for column in range(factors.n_coclusters):
        user_strengths = factors.user_factors[:, column]
        item_strengths = factors.item_factors[:, column]
        users = np.flatnonzero(user_strengths >= threshold)
        items = np.flatnonzero(item_strengths >= threshold)
        users = users[np.argsort(-user_strengths[users], kind="stable")]
        items = items[np.argsort(-item_strengths[items], kind="stable")]
        density = float("nan")
        if matrix is not None and len(users) and len(items):
            block = matrix.csr()[users][:, items]
            density = block.nnz / float(len(users) * len(items))
        cocluster = CoCluster(
            index=column,
            users=users,
            items=items,
            user_strengths=user_strengths[users],
            item_strengths=item_strengths[items],
            density=density,
        )
        if drop_empty and cocluster.is_empty:
            continue
        coclusters.append(cocluster)
    return coclusters


@dataclass
class CoClusterStatistics:
    """Aggregate co-cluster diagnostics — the Figure 6 panels.

    Attributes
    ----------
    n_coclusters:
        Number of (non-empty) co-clusters summarised.
    mean_users, mean_items:
        Average number of users / items per co-cluster.
    mean_density:
        Average within-co-cluster density (ignoring empty ones).
    mean_user_memberships, mean_item_memberships:
        Average number of co-clusters a user / an item belongs to — the
        overlap level the paper suggests monitoring when choosing K.
    """

    n_coclusters: int
    mean_users: float
    mean_items: float
    mean_density: float
    mean_user_memberships: float
    mean_item_memberships: float
    users_per_cocluster: List[int] = field(default_factory=list)
    items_per_cocluster: List[int] = field(default_factory=list)
    densities: List[float] = field(default_factory=list)

    def as_dict(self) -> Dict[str, float]:
        """Aggregate values as a flat dictionary (for tables)."""
        return {
            "n_coclusters": float(self.n_coclusters),
            "mean_users": self.mean_users,
            "mean_items": self.mean_items,
            "mean_density": self.mean_density,
            "mean_user_memberships": self.mean_user_memberships,
            "mean_item_memberships": self.mean_item_memberships,
        }


def cocluster_statistics(
    coclusters: Sequence[CoCluster],
    n_users: Optional[int] = None,
    n_items: Optional[int] = None,
) -> CoClusterStatistics:
    """Summarise a set of co-clusters (sizes, densities, overlap).

    Parameters
    ----------
    coclusters:
        Output of :func:`extract_coclusters`.
    n_users, n_items:
        Total entity counts, needed for the mean-membership figures; inferred
        as ``max index + 1`` over members when omitted.
    """
    non_empty = [cocluster for cocluster in coclusters if not cocluster.is_empty]
    users_per = [cocluster.n_users for cocluster in non_empty]
    items_per = [cocluster.n_items for cocluster in non_empty]
    densities = [
        cocluster.density for cocluster in non_empty if not np.isnan(cocluster.density)
    ]

    if n_users is None:
        n_users = 1 + max(
            (int(cocluster.users.max()) for cocluster in non_empty if cocluster.n_users), default=0
        )
    if n_items is None:
        n_items = 1 + max(
            (int(cocluster.items.max()) for cocluster in non_empty if cocluster.n_items), default=0
        )

    user_membership_counts = np.zeros(max(n_users, 1))
    item_membership_counts = np.zeros(max(n_items, 1))
    for cocluster in non_empty:
        user_membership_counts[cocluster.users] += 1
        item_membership_counts[cocluster.items] += 1

    return CoClusterStatistics(
        n_coclusters=len(non_empty),
        mean_users=float(np.mean(users_per)) if users_per else 0.0,
        mean_items=float(np.mean(items_per)) if items_per else 0.0,
        mean_density=float(np.mean(densities)) if densities else float("nan"),
        mean_user_memberships=float(user_membership_counts.mean()),
        mean_item_memberships=float(item_membership_counts.mean()),
        users_per_cocluster=users_per,
        items_per_cocluster=items_per,
        densities=densities,
    )


def coclusters_of_user(coclusters: Sequence[CoCluster], user: int) -> List[CoCluster]:
    """Co-clusters that contain ``user`` as a member."""
    return [cocluster for cocluster in coclusters if user in set(int(u) for u in cocluster.users)]


def coclusters_of_item(coclusters: Sequence[CoCluster], item: int) -> List[CoCluster]:
    """Co-clusters that contain ``item`` as a member."""
    return [cocluster for cocluster in coclusters if item in set(int(i) for i in cocluster.items)]
