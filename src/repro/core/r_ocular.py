"""R-OCuLaR: the relative-preference variant of OCuLaR (Section V).

The paper derives that maximising the BPR-style relative-preference
likelihood under the OCuLaR generative model is equivalent to the plain
OCuLaR objective with each positive-example term weighted by

    ``w_u = |{i : r_ui = 0}| / |{i : r_ui = 1}|``

so users with a short purchase history have their few positives counted more
heavily.  The implementation therefore reuses the full OCuLaR machinery with
``user_weighting="relative"`` — the paper notes it "has exactly the same
complexity".
"""

from __future__ import annotations

from repro.core.backends import Backend
from repro.core.ocular import OCuLaR
from repro.utils.rng import RandomStateLike


class ROCuLaR(OCuLaR):
    """Relative OCuLaR: OCuLaR with per-user positive-example weights.

    All constructor parameters have the same meaning as for
    :class:`~repro.core.ocular.OCuLaR`; ``user_weighting`` is fixed to
    ``"relative"``.
    """

    def __init__(
        self,
        n_coclusters: int = 50,
        regularization: float = 10.0,
        max_iterations: int = 100,
        tolerance: float = 1e-4,
        sigma: float = 0.1,
        beta: float = 0.5,
        max_backtracks: int = 20,
        init: str = "random",
        init_scale: float = 1.0,
        backend: Backend | str = "vectorized",
        n_workers: int | None = None,
        executor: str | None = None,
        dtype: str = "float64",
        random_state: RandomStateLike = None,
        plateau_tolerance: float | None = None,
        plateau_patience: int = 2,
    ) -> None:
        super().__init__(
            n_coclusters=n_coclusters,
            regularization=regularization,
            max_iterations=max_iterations,
            tolerance=tolerance,
            sigma=sigma,
            beta=beta,
            max_backtracks=max_backtracks,
            init=init,
            init_scale=init_scale,
            backend=backend,
            n_workers=n_workers,
            executor=executor,
            dtype=dtype,
            user_weighting="relative",
            random_state=random_state,
            plateau_tolerance=plateau_tolerance,
            plateau_patience=plateau_patience,
        )
