"""Model persistence: save and load fitted OCuLaR models.

A deployment (Section VIII of the paper) trains the model in a batch job and
serves recommendations elsewhere, so the fitted factors need to move between
processes.  :func:`save_model` writes the hyper-parameters and the fitted
factor matrices to a single ``.npz`` archive; :func:`load_model` restores a
ready-to-score model.  The training interaction matrix is stored too (it is
needed for excluding seen items and for building explanations), in sparse
coordinate form.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Type, Union

import numpy as np

from repro.core.factors import FactorModel
from repro.core.ocular import OCuLaR
from repro.core.r_ocular import ROCuLaR
from repro.data.interactions import InteractionMatrix
from repro.exceptions import DataError, NotFittedError

PathLike = Union[str, Path]

#: Registry of model classes that can be round-tripped.
_MODEL_CLASSES: dict[str, Type[OCuLaR]] = {
    "OCuLaR": OCuLaR,
    "ROCuLaR": ROCuLaR,
}

#: Format version written into every archive; bump on breaking layout changes.
FORMAT_VERSION = 1


def save_model(model: OCuLaR, path: PathLike) -> Path:
    """Serialise a fitted OCuLaR (or R-OCuLaR) model to ``path``.

    Parameters
    ----------
    model:
        A fitted model.  Only the hyper-parameters, the fitted factors and
        the training matrix are stored — the optimisation history is not.
    path:
        Destination file; the ``.npz`` suffix is appended when missing.

    Returns
    -------
    pathlib.Path
        The path actually written.
    """
    if not model.is_fitted or model.factors_ is None:
        raise NotFittedError("only fitted models can be saved")
    class_name = type(model).__name__
    if class_name not in _MODEL_CLASSES:
        raise DataError(
            f"persistence supports {sorted(_MODEL_CLASSES)}, got {class_name}"
        )

    destination = Path(path)
    if destination.suffix != ".npz":
        destination = destination.with_suffix(destination.suffix + ".npz")
    destination.parent.mkdir(parents=True, exist_ok=True)

    params = dict(model.get_params())
    # The backend may be an instance; persist its name only.
    params["backend"] = params.get("backend", "vectorized")
    if not isinstance(params.get("random_state"), (int, type(None))):
        params["random_state"] = None

    train = model.train_matrix
    pairs = train.pairs()
    header = {
        "format_version": FORMAT_VERSION,
        "model_class": class_name,
        "params": params,
        "n_users": train.n_users,
        "n_items": train.n_items,
        "user_labels": train.user_labels,
        "item_labels": train.item_labels,
    }
    np.savez_compressed(
        destination,
        header=np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
        user_factors=model.factors_.user_factors,
        item_factors=model.factors_.item_factors,
        train_users=pairs[:, 0],
        train_items=pairs[:, 1],
    )
    return destination


def load_model(path: PathLike) -> OCuLaR:
    """Restore a model previously written by :func:`save_model`.

    The returned model is ready for :meth:`~repro.base.Recommender.recommend`,
    :meth:`~repro.core.ocular.OCuLaR.predict_proba`,
    :meth:`~repro.core.ocular.OCuLaR.coclusters` and
    :meth:`~repro.core.ocular.OCuLaR.explain`; its ``history_`` is ``None``
    because the optimisation trajectory is not persisted.
    """
    source = Path(path)
    if not source.exists():
        raise DataError(f"model file not found: {source}")
    with np.load(source, allow_pickle=False) as archive:
        try:
            header = json.loads(bytes(archive["header"].tobytes()).decode("utf-8"))
            user_factors = archive["user_factors"]
            item_factors = archive["item_factors"]
            train_users = archive["train_users"]
            train_items = archive["train_items"]
        except KeyError as exc:
            raise DataError(f"{source} is not a repro model archive") from exc

    if header.get("format_version") != FORMAT_VERSION:
        raise DataError(
            f"unsupported model format version {header.get('format_version')!r}"
        )
    class_name = header.get("model_class")
    model_class = _MODEL_CLASSES.get(class_name)
    if model_class is None:
        raise DataError(f"unknown model class {class_name!r} in {source}")

    params = dict(header["params"])
    if class_name == "ROCuLaR":
        # ROCuLaR fixes the weighting itself and does not accept the kwarg.
        params.pop("user_weighting", None)
        params.pop("inner_sweeps", None)
    model = model_class(**params)

    matrix = InteractionMatrix.from_pairs(
        zip(train_users.tolist(), train_items.tolist()),
        n_users=int(header["n_users"]),
        n_items=int(header["n_items"]),
        user_labels=header.get("user_labels"),
        item_labels=header.get("item_labels"),
    )
    model.factors_ = FactorModel(user_factors, item_factors)
    model._set_train_matrix(matrix)
    return model
