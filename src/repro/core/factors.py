"""Container for the fitted co-cluster affiliation factors.

The generative model of Section IV-A is fully described by two non-negative
matrices: the user affiliations ``F_u`` of shape ``(n_users, K)`` and the
item affiliations ``F_i`` of shape ``(n_items, K)``.  :class:`FactorModel`
stores them and implements the probability formula

    ``P[r_ui = 1] = 1 - exp(-<f_u, f_i>)``

along with batched variants used for scoring and co-cluster extraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.validation import check_array_2d


@dataclass
class FactorModel:
    """Non-negative co-cluster affiliation factors for users and items.

    Attributes
    ----------
    user_factors:
        Array of shape ``(n_users, n_coclusters)``; entry ``[u, c]`` is the
        affiliation strength of user ``u`` with co-cluster ``c``.
    item_factors:
        Array of shape ``(n_items, n_coclusters)``.
    """

    user_factors: np.ndarray
    item_factors: np.ndarray

    def __post_init__(self) -> None:
        self.user_factors = check_array_2d(self.user_factors, "user_factors")
        self.item_factors = check_array_2d(self.item_factors, "item_factors")
        if self.user_factors.dtype != self.item_factors.dtype:
            # Mixed precision has no meaning for a single model; settle on
            # the wider dtype rather than erroring on e.g. a float32 fit
            # combined with float64 hand-built factors.
            common = np.result_type(self.user_factors, self.item_factors)
            self.user_factors = self.user_factors.astype(common, copy=False)
            self.item_factors = self.item_factors.astype(common, copy=False)
        if self.user_factors.shape[1] != self.item_factors.shape[1]:
            raise ConfigurationError(
                "user_factors and item_factors must have the same number of co-clusters, got "
                f"{self.user_factors.shape[1]} and {self.item_factors.shape[1]}"
            )
        if (self.user_factors < 0).any() or (self.item_factors < 0).any():
            raise ConfigurationError("affiliation factors must be non-negative")

    # ------------------------------------------------------------------ #
    # Shapes
    # ------------------------------------------------------------------ #
    @property
    def n_users(self) -> int:
        """Number of users."""
        return self.user_factors.shape[0]

    @property
    def n_items(self) -> int:
        """Number of items."""
        return self.item_factors.shape[0]

    @property
    def n_coclusters(self) -> int:
        """Number of co-clusters ``K``."""
        return self.user_factors.shape[1]

    @property
    def dtype(self) -> np.dtype:
        """Shared floating dtype of both factor matrices."""
        return self.user_factors.dtype

    def astype(self, dtype) -> "FactorModel":
        """Copy of the model with both factor matrices cast to ``dtype``."""
        return FactorModel(
            self.user_factors.astype(dtype), self.item_factors.astype(dtype)
        )

    # ------------------------------------------------------------------ #
    # Probabilities
    # ------------------------------------------------------------------ #
    def affinity(self, user: int, item: int) -> float:
        """Inner product ``<f_u, f_i>`` for a single pair."""
        return float(self.user_factors[user] @ self.item_factors[item])

    def predict_proba(self, user: int, item: int) -> float:
        """``P[r_ui = 1] = 1 - exp(-<f_u, f_i>)`` for a single pair."""
        return float(1.0 - np.exp(-self.affinity(user, item)))

    def user_scores(self, user: int) -> np.ndarray:
        """Probabilities for one user against every item, shape ``(n_items,)``."""
        affinities = self.item_factors @ self.user_factors[user]
        return 1.0 - np.exp(-affinities)

    def score_matrix(self, users: Optional[np.ndarray] = None) -> np.ndarray:
        """Dense probability matrix for the given users (default: all users).

        Only intended for small matrices (toy examples, tests, figures); the
        recommenders score one user at a time in production paths.
        """
        factors = self.user_factors if users is None else self.user_factors[np.asarray(users)]
        affinities = factors @ self.item_factors.T
        return 1.0 - np.exp(-affinities)

    def cocluster_contributions(self, user: int, item: int) -> np.ndarray:
        """Per-co-cluster contribution ``[f_u]_c [f_i]_c`` to the affinity.

        The explanation engine uses these to identify which co-clusters are
        responsible for a recommendation.
        """
        return self.user_factors[user] * self.item_factors[item]

    def copy(self) -> "FactorModel":
        """Deep copy of the factors."""
        return FactorModel(self.user_factors.copy(), self.item_factors.copy())
