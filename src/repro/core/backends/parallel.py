"""Sharded parallel backend: row shards of one sweep fanned across threads.

The paper's central scalability argument (Sections IV/VI) is that every row
subproblem of a block sweep is independent, so a sweep parallelises across
cores with near-linear scaling.  This backend realises that claim on the
CPU: a sweep over rows ``[0, n)`` is split into contiguous shards, each
shard runs the vectorized kernel over its row range, and the shards execute
concurrently on a :class:`~repro.parallel.executor.ThreadExecutor` — NumPy
and BLAS release the GIL inside their kernels, so threads give real
concurrency without any pickling cost.

Determinism: the factors are **bit-identical** to a single-threaded
:class:`~repro.core.backends.vectorized.VectorizedBackend` sweep regardless
of the shard count or the order in which shards finish.  Two properties
guarantee it:

* every vectorized kernel is row-local and accumulates row reductions in
  CSR entry order, so a shard computes exactly the row-slice of the full
  sweep's result, and
* shard results are stitched in shard (submission) order, never completion
  order, and the shard boundaries are a pure function of the row count.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

import numpy as np

from repro.core.backends.base import Backend, SweepStats
from repro.core.backends.plan import SweepSide
from repro.core.backends.vectorized import VectorizedBackend
from repro.parallel.executor import ThreadExecutor
from repro.utils.validation import check_positive_int


def shard_ranges(start: int, stop: int, n_shards: int) -> List[Tuple[int, int]]:
    """Split ``[start, stop)`` into at most ``n_shards`` contiguous ranges.

    Ranges are non-empty, cover the input exactly, and differ in length by at
    most one (the first ``(stop - start) % n_shards`` shards take the extra
    row).  The split depends only on the arguments, which is one half of the
    parallel backend's determinism guarantee.
    """
    n_rows = stop - start
    n_ranges = min(n_shards, n_rows)
    if n_ranges <= 0:
        return []
    base, extra = divmod(n_rows, n_ranges)
    ranges = []
    cursor = start
    for index in range(n_ranges):
        size = base + (1 if index < extra else 0)
        ranges.append((cursor, cursor + size))
        cursor += size
    return ranges


class ParallelBackend(Backend):
    """Thread-sharded sweeps with vectorized kernels per shard.

    Parameters
    ----------
    n_workers:
        Size of the thread pool (default: the machine's CPU count).
    n_shards:
        Number of row shards per sweep (default: ``n_workers``).  More shards
        than workers gives finer-grained load balancing at slightly higher
        scheduling overhead; the factors are identical either way.
    """

    name = "parallel"

    def __init__(
        self, n_workers: Optional[int] = None, n_shards: Optional[int] = None
    ) -> None:
        if n_workers is None:
            n_workers = os.cpu_count() or 1
        self.n_workers = check_positive_int(n_workers, "n_workers")
        if n_shards is None:
            n_shards = self.n_workers
        self.n_shards = check_positive_int(n_shards, "n_shards")
        self._inner = VectorizedBackend()
        self._executor: Optional[ThreadExecutor] = None

    def _sweep_rows(
        self,
        plan: SweepSide,
        row_factors: np.ndarray,
        col_factors: np.ndarray,
        regularization: float,
        sigma: float,
        beta: float,
        max_backtracks: int,
        start: int,
        stop: int,
        total_col_sum: np.ndarray,
    ) -> Tuple[np.ndarray, SweepStats]:
        shards = shard_ranges(start, stop, self.n_shards)
        if len(shards) <= 1:
            return self._inner._sweep_rows(
                plan,
                row_factors,
                col_factors,
                regularization,
                sigma,
                beta,
                max_backtracks,
                start,
                stop,
                total_col_sum,
            )
        tasks = [
            (
                plan,
                row_factors,
                col_factors,
                regularization,
                sigma,
                beta,
                max_backtracks,
                shard_start,
                shard_stop,
                total_col_sum,
            )
            for shard_start, shard_stop in shards
        ]
        # starmap returns results in submission (= shard) order, so stitching
        # is deterministic no matter which shard finishes first.
        results = self._ensure_executor().starmap(self._inner._sweep_rows, tasks)
        factors = np.concatenate([shard_factors for shard_factors, _ in results], axis=0)
        stats = SweepStats.combined(shard_stats for _, shard_stats in results)
        return factors, stats

    # ------------------------------------------------------------------ #
    # Pool lifecycle
    # ------------------------------------------------------------------ #
    def _ensure_executor(self) -> ThreadExecutor:
        if self._executor is None:
            self._executor = ThreadExecutor(max_workers=self.n_workers)
        return self._executor

    def shutdown(self) -> None:
        """Release the worker threads (a later sweep recreates them)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "ParallelBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(n_workers={self.n_workers}, "
            f"n_shards={self.n_shards})"
        )
