"""Sharded parallel backend: row shards of one sweep fanned across workers.

The paper's central scalability argument (Sections IV/VI) is that every row
subproblem of a block sweep is independent, so a sweep parallelises across
cores with near-linear scaling.  This backend realises that claim on the
CPU: a sweep over rows ``[0, n)`` is split into nnz-balanced contiguous
shards (:func:`~repro.core.backends.plan.nnz_balanced_ranges`), each shard
runs the vectorized kernel over its row range, and the shards execute
concurrently on an executor selected by name from the
:class:`~repro.parallel.scheduler.ShardScheduler` registry:

* ``"thread"`` (default) — NumPy and BLAS release the GIL inside their
  kernels, so threads give real concurrency with zero serialisation cost.
* ``"process"`` — a
  :class:`~repro.parallel.shared_memory.SharedMemoryProcessExecutor`.  The
  plan's CSR arrays are placed in shared memory once per fit and the factor
  matrices once per sweep; tasks carry only ``(row_range, shm descriptors)``,
  so worker processes sidestep the GIL entirely without per-task pickling of
  large arrays.
* ``"serial"`` — shards run inline; useful in tests and as the baseline.

Determinism: the factors are **bit-identical** to a single-threaded
:class:`~repro.core.backends.vectorized.VectorizedBackend` sweep regardless
of executor, shard count, or the order in which shards finish.  Two
properties guarantee it:

* every vectorized kernel is row-local and accumulates row reductions in
  CSR entry order, so a shard computes exactly the row-slice of the full
  sweep's result, and
* shard results are stitched in shard (submission) order, never completion
  order, and the shard boundaries are a pure function of the plan.

Workspace locality: each shard's pooled scratch arena lives on the plan
side's :class:`~repro.core.backends.workspace.SweepWorkspaceStore`, keyed by
row range — so under threads the shards of one sweep draw disjoint arenas
from one store, and under the process executor each worker's cached
attached side (``_WORKER_SIDES``) carries its own store (stores pickle to
empty), making workspaces worker-local exactly like the serving pool's
buffers.  Reuse across the sweeps of a fit is preserved in both cases
because shard boundaries are deterministic per plan.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.backends.base import Backend, SweepStats
from repro.core.backends.plan import SweepSide
from repro.core.backends.vectorized import VectorizedBackend
from repro.exceptions import ConfigurationError
from repro.parallel.scheduler import ShardScheduler
from repro.parallel.shared_memory import (
    SharedArraySpec,
    SharedCsrSpec,
    attach_shared_array,
    attach_shared_csr,
    close_stale_attachments,
    register_attachment_holder,
    supports_publication,
)
from repro.utils.validation import check_positive_int


def shard_ranges(start: int, stop: int, n_shards: int) -> List[Tuple[int, int]]:
    """Split ``[start, stop)`` into at most ``n_shards`` row-balanced ranges.

    Ranges are non-empty, cover the input exactly, and differ in length by at
    most one (the first ``(stop - start) % n_shards`` shards take the extra
    row).  The split depends only on the arguments.  Sweep sharding now uses
    the nnz-balanced :meth:`SweepSide.shard_ranges` instead; this row-count
    split remains for work without a CSR structure to balance on.
    """
    n_rows = stop - start
    n_ranges = min(n_shards, n_rows)
    if n_ranges <= 0:
        return []
    base, extra = divmod(n_rows, n_ranges)
    ranges = []
    cursor = start
    for index in range(n_ranges):
        size = base + (1 if index < extra else 0)
        ranges.append((cursor, cursor + size))
        cursor += size
    return ranges


# --------------------------------------------------------------------------- #
# Shared-memory shard execution (worker side)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SharedSideSpec:
    """Shared-memory descriptors of one :class:`SweepSide` (picklable).

    Composes the system-wide :class:`SharedCsrSpec` for the matrix, plus the
    side's per-entry arrays.
    """

    csr: SharedCsrSpec
    row_index: SharedArraySpec
    entry_weights: Optional[SharedArraySpec]


#: Worker-process-local cache of reconstructed sweep sides.  The plan of a
#: fit is static, so every shard task of every sweep presents the same
#: descriptors; rebuilding the CSR wrapper once per worker (instead of once
#: per task) keeps the per-task overhead at a dict lookup.
_WORKER_SIDES: Dict[SharedSideSpec, SweepSide] = {}


def _side_segment_names() -> list[str]:
    """Segment names the cached sweep sides still view (must stay mapped)."""
    names = []
    for spec in _WORKER_SIDES:
        names.extend(spec.csr.segment_names())
        names.append(spec.row_index.shm_name)
        if spec.entry_weights is not None:
            names.append(spec.entry_weights.shm_name)
    return names


register_attachment_holder(_side_segment_names)


def _attach_side(spec: SharedSideSpec) -> SweepSide:
    """Rebuild a :class:`SweepSide` over shared-memory buffers (worker side)."""
    side = _WORKER_SIDES.get(spec)
    if side is None:
        if len(_WORKER_SIDES) >= 8:
            # A worker outliving several fits would otherwise pin stale
            # mappings; the cache is tiny (2 sides per fit), so just reset.
            _WORKER_SIDES.clear()
        side = SweepSide(
            matrix=attach_shared_csr(spec.csr),
            row_index=attach_shared_array(spec.row_index),
            entry_weights=(
                None
                if spec.entry_weights is None
                else attach_shared_array(spec.entry_weights)
            ),
        )
        _WORKER_SIDES[spec] = side
        # A cache miss marks a new fit reaching this worker: close mappings
        # of segments no cache still views (dead fits' plans, stale factor
        # slots), or a warm pool refitting in a loop would pin every past
        # fit's unlinked memory.  Registered holders protect live views.
        close_stale_attachments(())
    return side


def _sweep_shard_shared(
    side_spec: SharedSideSpec,
    row_spec: SharedArraySpec,
    col_spec: SharedArraySpec,
    regularization: float,
    sigma: float,
    beta: float,
    max_backtracks: int,
    start: int,
    stop: int,
    total_col_sum: np.ndarray,
) -> Tuple[np.ndarray, SweepStats]:
    """Run one row shard of a sweep from shared-memory descriptors.

    Module-level so the process pool can pickle it; everything large arrives
    as a descriptor and is attached zero-copy inside the worker.
    """
    plan = _attach_side(side_spec)
    row_factors = attach_shared_array(row_spec)
    col_factors = attach_shared_array(col_spec)
    return VectorizedBackend()._sweep_rows(
        plan,
        row_factors,
        col_factors,
        regularization,
        sigma,
        beta,
        max_backtracks,
        start,
        stop,
        total_col_sum,
    )


class ParallelBackend(Backend):
    """Sharded sweeps with vectorized kernels per shard.

    Parameters
    ----------
    n_workers:
        Size of the worker pool (default: the machine's CPU count).
    n_shards:
        Number of row shards per sweep (default: ``n_workers``).  More shards
        than workers gives finer-grained load balancing at slightly higher
        scheduling overhead; the factors are identical either way.
    executor:
        Name from the :mod:`repro.parallel.scheduler` registry — ``"thread"``
        (default), ``"process"`` (shared-memory worker processes), or
        ``"serial"`` — or a prebuilt executor instance (the caller then owns
        its lifecycle; :meth:`shutdown` will not touch it).
    """

    name = "parallel"

    def __init__(
        self,
        n_workers: Optional[int] = None,
        n_shards: Optional[int] = None,
        executor: object = "thread",
    ) -> None:
        if n_workers is not None and not isinstance(executor, str):
            raise ConfigurationError(
                "n_workers cannot be combined with an executor instance (the "
                "instance's own pool size would silently win); size the "
                "instance at construction time and pass n_shards here instead"
            )
        if n_workers is None:
            n_workers = os.cpu_count() or 1
        self.n_workers = check_positive_int(n_workers, "n_workers")
        if n_shards is None:
            n_shards = self.n_workers
        self.n_shards = check_positive_int(n_shards, "n_shards")
        self.executor = executor
        self._inner = VectorizedBackend()
        self._scheduler = ShardScheduler(
            executor, max_workers=self.n_workers if isinstance(executor, str) else None
        )
        # Keys this backend published on a shared-memory executor, so a
        # backend borrowing someone else's executor (e.g. the runtime's warm
        # pool) can remove exactly its own footprint on shutdown.
        self._published_keys: set = set()
        # Shared-memory sweeps publish into slots keyed by (name, shape,
        # dtype): two concurrent sweeps through one backend (a refit racing
        # a fold-in on the runtime's warm pool) would overwrite each other's
        # factor bytes mid-task.  The lock serialises publish+dispatch of
        # the shared-memory path; the thread/serial paths pass arrays by
        # reference and need no serialisation.
        self._sweep_lock = threading.Lock()

    def _sweep_rows(
        self,
        plan: SweepSide,
        row_factors: np.ndarray,
        col_factors: np.ndarray,
        regularization: float,
        sigma: float,
        beta: float,
        max_backtracks: int,
        start: int,
        stop: int,
        total_col_sum: np.ndarray,
    ) -> Tuple[np.ndarray, SweepStats]:
        shards = plan.shard_ranges(self.n_shards, (start, stop))
        if len(shards) <= 1:
            return self._inner._sweep_rows(
                plan,
                row_factors,
                col_factors,
                regularization,
                sigma,
                beta,
                max_backtracks,
                start,
                stop,
                total_col_sum,
            )
        executor = self._scheduler.executor
        common = (regularization, sigma, beta, max_backtracks)
        if supports_publication(executor):
            with self._sweep_lock:
                side_spec = self._publish_side(executor, plan)
                row_spec = self._publish_slot(
                    executor,
                    ("row_factors", row_factors.shape, row_factors.dtype.str),
                    row_factors,
                )
                col_spec = self._publish_slot(
                    executor,
                    ("col_factors", col_factors.shape, col_factors.dtype.str),
                    col_factors,
                )
                tasks = [
                    (side_spec, row_spec, col_spec, *common, shard_start, shard_stop, total_col_sum)
                    for shard_start, shard_stop in shards
                ]
                # starmap returns results in submission (= shard) order, so
                # stitching is deterministic no matter which shard finishes
                # first.  Dispatch stays under the lock: the slots must not
                # be refreshed by another sweep while workers read them.
                results = executor.starmap(_sweep_shard_shared, tasks)
        else:
            tasks = [
                (plan, row_factors, col_factors, *common, shard_start, shard_stop, total_col_sum)
                for shard_start, shard_stop in shards
            ]
            results = executor.starmap(self._inner._sweep_rows, tasks)
        factors = np.concatenate([shard_factors for shard_factors, _ in results], axis=0)
        stats = SweepStats.combined(shard_stats for _, shard_stats in results)
        return factors, stats

    # ------------------------------------------------------------------ #
    # Shared-memory publication
    # ------------------------------------------------------------------ #
    def _publish_slot(self, executor, key, array: np.ndarray) -> SharedArraySpec:
        """Publish a refreshable slot, remembering the key for cleanup."""
        spec = executor.publish(key, array)
        self._published_keys.add(key)
        return spec

    def _publish_static(self, executor, array: np.ndarray) -> SharedArraySpec:
        """Publish write-once data, remembering its slot key for cleanup."""
        spec = executor.publish_static(array)
        self._published_keys.add(("static", id(array)))
        return spec

    def _publish_side(self, executor, plan: SweepSide) -> SharedSideSpec:
        """Place a sweep side's arrays in shared memory (copy-once per fit).

        Every array is published via ``publish_static``, so re-presenting
        the same plan side on later sweeps returns the existing descriptors
        without copying.
        """
        matrix = plan.matrix
        return SharedSideSpec(
            csr=SharedCsrSpec(
                shape=tuple(matrix.shape),
                data=self._publish_static(executor, matrix.data),
                indices=self._publish_static(executor, matrix.indices),
                indptr=self._publish_static(executor, matrix.indptr),
            ),
            row_index=self._publish_static(executor, plan.row_index),
            entry_weights=(
                None
                if plan.entry_weights is None
                else self._publish_static(executor, plan.entry_weights)
            ),
        )

    # ------------------------------------------------------------------ #
    # Pool lifecycle
    # ------------------------------------------------------------------ #
    def release_published(self) -> None:
        """Unpublish every segment this backend placed on the executor.

        Scoped to the backend's own keys — never executor-wide — so a
        backend sharing a warm executor with serving publications removes
        only its plan arrays and factor slots.  Taken under the sweep lock:
        an in-flight sweep's workers keep their segments until the sweep
        completes, and the next sweep simply republishes.  Long-lived
        holders (the runtime) call this between fits so dead plans do not
        ride the executor's LRU.
        """
        with self._sweep_lock:
            executor = self._scheduler.live_executor
            if (
                self._published_keys
                and executor is not None
                and supports_publication(executor)
                and not getattr(executor, "is_shut_down", False)
            ):
                for key in self._published_keys:
                    executor.unpublish(key)
            self._published_keys.clear()

    def shutdown(self) -> None:
        """Release what this backend holds (a later sweep recreates it all).

        An *owned* (name-configured) executor is torn down with everything
        it contains.  A *borrowed* executor is left running — but the
        segments this backend published on it (plan arrays, factor slots)
        are unpublished first, so the borrower's footprint disappears while
        the owner's pool and other publications survive.
        """
        self.release_published()
        self._scheduler.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(n_workers={self.n_workers}, "
            f"n_shards={self.n_shards}, "
            f"executor={self._scheduler.executor_name!r})"
        )
