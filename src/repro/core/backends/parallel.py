"""Sharded parallel backend: row shards of one sweep fanned across workers.

The paper's central scalability argument (Sections IV/VI) is that every row
subproblem of a block sweep is independent, so a sweep parallelises across
cores with near-linear scaling.  This backend realises that claim on the
CPU: a sweep over rows ``[0, n)`` is split into nnz-balanced contiguous
shards (:func:`~repro.core.backends.plan.nnz_balanced_ranges`), each shard
runs the vectorized kernel over its row range, and the shards execute
concurrently on an executor selected by name from the
:class:`~repro.parallel.scheduler.ShardScheduler` registry:

* ``"thread"`` (default) — NumPy and BLAS release the GIL inside their
  kernels, so threads give real concurrency with zero serialisation cost.
* ``"process"`` — a
  :class:`~repro.parallel.shared_memory.SharedMemoryProcessExecutor`.  The
  plan's CSR arrays are placed in shared memory once per fit and the factor
  matrices once per sweep; tasks carry only ``(row_range, shm descriptors)``,
  so worker processes sidestep the GIL entirely without per-task pickling of
  large arrays.
* ``"serial"`` — shards run inline; useful in tests and as the baseline.

Determinism: the factors are **bit-identical** to a single-threaded
:class:`~repro.core.backends.vectorized.VectorizedBackend` sweep regardless
of executor, shard count, or the order in which shards finish.  Two
properties guarantee it:

* every vectorized kernel is row-local and accumulates row reductions in
  CSR entry order, so a shard computes exactly the row-slice of the full
  sweep's result, and
* shard results are stitched in shard (submission) order, never completion
  order, and the shard boundaries are a pure function of the plan.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.core.backends.base import Backend, SweepStats
from repro.core.backends.plan import SweepSide
from repro.core.backends.vectorized import VectorizedBackend
from repro.exceptions import ConfigurationError
from repro.parallel.scheduler import ShardScheduler
from repro.parallel.shared_memory import (
    SharedArraySpec,
    SharedMemoryProcessExecutor,
    attach_shared_array,
)
from repro.utils.validation import check_positive_int


def shard_ranges(start: int, stop: int, n_shards: int) -> List[Tuple[int, int]]:
    """Split ``[start, stop)`` into at most ``n_shards`` row-balanced ranges.

    Ranges are non-empty, cover the input exactly, and differ in length by at
    most one (the first ``(stop - start) % n_shards`` shards take the extra
    row).  The split depends only on the arguments.  Sweep sharding now uses
    the nnz-balanced :meth:`SweepSide.shard_ranges` instead; this row-count
    split remains for work without a CSR structure to balance on.
    """
    n_rows = stop - start
    n_ranges = min(n_shards, n_rows)
    if n_ranges <= 0:
        return []
    base, extra = divmod(n_rows, n_ranges)
    ranges = []
    cursor = start
    for index in range(n_ranges):
        size = base + (1 if index < extra else 0)
        ranges.append((cursor, cursor + size))
        cursor += size
    return ranges


# --------------------------------------------------------------------------- #
# Shared-memory shard execution (worker side)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SharedSideSpec:
    """Shared-memory descriptors of one :class:`SweepSide` (picklable)."""

    shape: Tuple[int, int]
    data: SharedArraySpec
    indices: SharedArraySpec
    indptr: SharedArraySpec
    row_index: SharedArraySpec
    entry_weights: Optional[SharedArraySpec]


#: Worker-process-local cache of reconstructed sweep sides.  The plan of a
#: fit is static, so every shard task of every sweep presents the same
#: descriptors; rebuilding the CSR wrapper once per worker (instead of once
#: per task) keeps the per-task overhead at a dict lookup.
_WORKER_SIDES: Dict[SharedSideSpec, SweepSide] = {}


def _attach_side(spec: SharedSideSpec) -> SweepSide:
    """Rebuild a :class:`SweepSide` over shared-memory buffers (worker side)."""
    side = _WORKER_SIDES.get(spec)
    if side is None:
        if len(_WORKER_SIDES) >= 8:
            # A worker outliving several fits would otherwise pin stale
            # mappings; the cache is tiny (2 sides per fit), so just reset.
            _WORKER_SIDES.clear()
        matrix = sp.csr_matrix(spec.shape, dtype=np.dtype(spec.data.dtype))
        # Assign the CSR arrays directly: the buffers are already a valid
        # canonical CSR (they came from the publisher's matrix), and the
        # constructor's validation pass would copy them out of shared memory.
        matrix.data = attach_shared_array(spec.data)
        matrix.indices = attach_shared_array(spec.indices)
        matrix.indptr = attach_shared_array(spec.indptr)
        side = SweepSide(
            matrix=matrix,
            row_index=attach_shared_array(spec.row_index),
            entry_weights=(
                None
                if spec.entry_weights is None
                else attach_shared_array(spec.entry_weights)
            ),
        )
        _WORKER_SIDES[spec] = side
    return side


def _sweep_shard_shared(
    side_spec: SharedSideSpec,
    row_spec: SharedArraySpec,
    col_spec: SharedArraySpec,
    regularization: float,
    sigma: float,
    beta: float,
    max_backtracks: int,
    start: int,
    stop: int,
    total_col_sum: np.ndarray,
) -> Tuple[np.ndarray, SweepStats]:
    """Run one row shard of a sweep from shared-memory descriptors.

    Module-level so the process pool can pickle it; everything large arrives
    as a descriptor and is attached zero-copy inside the worker.
    """
    plan = _attach_side(side_spec)
    row_factors = attach_shared_array(row_spec)
    col_factors = attach_shared_array(col_spec)
    return VectorizedBackend()._sweep_rows(
        plan,
        row_factors,
        col_factors,
        regularization,
        sigma,
        beta,
        max_backtracks,
        start,
        stop,
        total_col_sum,
    )


class ParallelBackend(Backend):
    """Sharded sweeps with vectorized kernels per shard.

    Parameters
    ----------
    n_workers:
        Size of the worker pool (default: the machine's CPU count).
    n_shards:
        Number of row shards per sweep (default: ``n_workers``).  More shards
        than workers gives finer-grained load balancing at slightly higher
        scheduling overhead; the factors are identical either way.
    executor:
        Name from the :mod:`repro.parallel.scheduler` registry — ``"thread"``
        (default), ``"process"`` (shared-memory worker processes), or
        ``"serial"`` — or a prebuilt executor instance (the caller then owns
        its lifecycle; :meth:`shutdown` will not touch it).
    """

    name = "parallel"

    def __init__(
        self,
        n_workers: Optional[int] = None,
        n_shards: Optional[int] = None,
        executor: object = "thread",
    ) -> None:
        if n_workers is not None and not isinstance(executor, str):
            raise ConfigurationError(
                "n_workers cannot be combined with an executor instance (the "
                "instance's own pool size would silently win); size the "
                "instance at construction time and pass n_shards here instead"
            )
        if n_workers is None:
            n_workers = os.cpu_count() or 1
        self.n_workers = check_positive_int(n_workers, "n_workers")
        if n_shards is None:
            n_shards = self.n_workers
        self.n_shards = check_positive_int(n_shards, "n_shards")
        self.executor = executor
        self._inner = VectorizedBackend()
        self._scheduler = ShardScheduler(
            executor, max_workers=self.n_workers if isinstance(executor, str) else None
        )

    def _sweep_rows(
        self,
        plan: SweepSide,
        row_factors: np.ndarray,
        col_factors: np.ndarray,
        regularization: float,
        sigma: float,
        beta: float,
        max_backtracks: int,
        start: int,
        stop: int,
        total_col_sum: np.ndarray,
    ) -> Tuple[np.ndarray, SweepStats]:
        shards = plan.shard_ranges(self.n_shards, (start, stop))
        if len(shards) <= 1:
            return self._inner._sweep_rows(
                plan,
                row_factors,
                col_factors,
                regularization,
                sigma,
                beta,
                max_backtracks,
                start,
                stop,
                total_col_sum,
            )
        executor = self._scheduler.executor
        common = (regularization, sigma, beta, max_backtracks)
        if isinstance(executor, SharedMemoryProcessExecutor):
            side_spec = self._publish_side(executor, plan)
            row_spec = executor.publish(
                ("row_factors", row_factors.shape, row_factors.dtype.str), row_factors
            )
            col_spec = executor.publish(
                ("col_factors", col_factors.shape, col_factors.dtype.str), col_factors
            )
            tasks = [
                (side_spec, row_spec, col_spec, *common, shard_start, shard_stop, total_col_sum)
                for shard_start, shard_stop in shards
            ]
            worker = _sweep_shard_shared
        else:
            tasks = [
                (plan, row_factors, col_factors, *common, shard_start, shard_stop, total_col_sum)
                for shard_start, shard_stop in shards
            ]
            worker = self._inner._sweep_rows
        # starmap returns results in submission (= shard) order, so stitching
        # is deterministic no matter which shard finishes first.
        results = executor.starmap(worker, tasks)
        factors = np.concatenate([shard_factors for shard_factors, _ in results], axis=0)
        stats = SweepStats.combined(shard_stats for _, shard_stats in results)
        return factors, stats

    # ------------------------------------------------------------------ #
    # Shared-memory publication
    # ------------------------------------------------------------------ #
    @staticmethod
    def _publish_side(
        executor: SharedMemoryProcessExecutor, plan: SweepSide
    ) -> SharedSideSpec:
        """Place a sweep side's arrays in shared memory (copy-once per fit).

        Every array is published via ``publish_static``, so re-presenting
        the same plan side on later sweeps returns the existing descriptors
        without copying.
        """
        matrix = plan.matrix
        return SharedSideSpec(
            shape=tuple(matrix.shape),
            data=executor.publish_static(matrix.data),
            indices=executor.publish_static(matrix.indices),
            indptr=executor.publish_static(matrix.indptr),
            row_index=executor.publish_static(plan.row_index),
            entry_weights=(
                None
                if plan.entry_weights is None
                else executor.publish_static(plan.entry_weights)
            ),
        )

    # ------------------------------------------------------------------ #
    # Pool lifecycle
    # ------------------------------------------------------------------ #
    def shutdown(self) -> None:
        """Release workers and unlink shared memory (a later sweep recreates them)."""
        self._scheduler.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(n_workers={self.n_workers}, "
            f"n_shards={self.n_shards}, "
            f"executor={self._scheduler.executor_name!r})"
        )
