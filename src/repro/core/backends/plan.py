"""Precomputed sweep plans — the static structure of a fit, built once.

Profiling the seed trainer showed that every projected-gradient sweep
re-derived structure that never changes during a fit: a ``sp.csr_matrix``
revalidation of the operand, a ``tocoo()`` to recover per-entry row indices,
and the per-entry R-OCuLaR weights — four times per outer iteration (two
sweep directions plus the objective bookkeeping).  A :class:`SweepPlan`
hoists all of that out of the hot loop: it is built once per ``fit`` and
owns, for both sweep directions, the CSR matrix in the training dtype, the
COO-style row index of every stored entry (aligned with CSR order), and the
per-entry positive-example weights.

Backends consume one :class:`SweepSide` at a time.  Because a side keeps the
global CSR ``indptr``/``indices``, a sweep restricted to the row range
``[a, b)`` needs nothing beyond the side and the fixed-side column sum — it
is a self-contained task, which is what makes the sharded parallel backend
possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.core.backends.workspace import SweepWorkspaceStore
from repro.exceptions import ConfigurationError
from repro.utils.validation import check_float_dtype, check_positive_int


def _resolve_dtype(dtype, fallback=np.float64) -> np.dtype:
    """Normalise a dtype spec (``None`` → ``fallback``) to float32/float64."""
    return check_float_dtype(fallback if dtype is None else dtype, "dtype")


def nnz_balanced_ranges(
    indptr, start: int, stop: int, n_shards: int
) -> List[Tuple[int, int]]:
    """Split rows ``[start, stop)`` into shards of approximately equal nnz.

    Row-count sharding assigns every shard the same number of rows; on
    heavy-tailed corpora (a few rows own most of the positives — the shape
    of every real recommendation dataset) that leaves one worker grinding
    through the dense rows while the rest idle.  This split instead cuts the
    CSR ``indptr`` prefix sum into near-equal nnz portions, so each shard
    carries a similar amount of actual sweep work.

    The boundaries are a **pure function** of ``(indptr, start, stop,
    n_shards)`` — no timing, no worker state — which preserves the parallel
    engine's determinism guarantee: identical inputs shard identically, and
    stitched factors cannot depend on execution order.

    Every row is weighted as ``nnz + 1``, so empty rows still carry weight
    and the returned ranges are always non-empty, cover ``[start, stop)``
    exactly, and number at most ``min(n_shards, stop - start)``.
    """
    indptr = np.asarray(indptr)
    check_positive_int(n_shards, "n_shards")
    if not 0 <= start <= stop <= len(indptr) - 1:
        raise ConfigurationError(
            f"row range [{start}, {stop}) is not within [0, {len(indptr) - 1}]"
        )
    n_rows = stop - start
    n_ranges = min(n_shards, n_rows)
    if n_ranges <= 0:
        return []
    # Weight every row by nnz + 1: the +1 spreads empty rows across shards
    # instead of piling them onto whichever shard owns the last positive.
    weights = np.diff(indptr[start : stop + 1]).astype(np.int64) + 1
    cumulative = np.cumsum(weights)
    total = int(cumulative[-1])

    boundaries = [0]
    for shard in range(1, n_ranges):
        target = shard * total / n_ranges
        cut = int(np.searchsorted(cumulative, target, side="left")) + 1
        # The target usually lands inside a row; take whichever adjacent
        # boundary leaves the prefix weight closer to the target, so a heavy
        # row is not pulled into a shard that is already at quota.
        if cut >= 2 and target - cumulative[cut - 2] <= cumulative[cut - 1] - target:
            cut -= 1
        # Clamp so every shard (including the remaining ones) keeps >= 1 row.
        low = boundaries[-1] + 1
        high = n_rows - (n_ranges - shard)
        boundaries.append(min(max(cut, low), high))
    boundaries.append(n_rows)
    return [
        (start + left, start + right)
        for left, right in zip(boundaries, boundaries[1:])
    ]


@dataclass
class SweepSide:
    """Static structure for sweeping one side (rows) of the interaction matrix.

    Attributes
    ----------
    matrix:
        CSR matrix of shape ``(n_rows, n_cols)`` whose rows index the side
        being updated; its ``data`` is stored in the training dtype.
    row_index:
        Row index of every stored entry in CSR (row-major) order, shape
        ``(nnz,)`` — what ``matrix.tocoo().row`` would return, computed once.
        The matching column indices are ``matrix.indices``.
    entry_weights:
        Per-entry positive-example weights in the training dtype, or ``None``
        when every weight is 1 (plain OCuLaR).
    workspaces:
        The side's :class:`~repro.core.backends.workspace.SweepWorkspaceStore`
        — pooled sweep scratch arenas plus the plan-cached sparse operator
        structure (the fit-constant ``positives`` data rides the CSR this
        side already owns).  Hanging the store off the side gives workspaces
        exactly plan lifetime: reused across the sweeps of a fit, dropped
        with the plan, never leaked into the next fit.  It pickles to a
        fresh empty store, so process-executor workers (which cache attached
        sides) warm worker-local workspaces.
    """

    matrix: sp.csr_matrix
    row_index: np.ndarray
    entry_weights: Optional[np.ndarray]
    workspaces: SweepWorkspaceStore = field(
        default_factory=SweepWorkspaceStore, compare=False, repr=False
    )

    @property
    def n_rows(self) -> int:
        """Number of rows on the side being updated."""
        return self.matrix.shape[0]

    @property
    def n_cols(self) -> int:
        """Number of columns (the fixed side)."""
        return self.matrix.shape[1]

    @property
    def nnz(self) -> int:
        """Number of positive entries."""
        return self.matrix.nnz

    @property
    def dtype(self) -> np.dtype:
        """Training dtype of the matrix data (and weights, when present)."""
        return self.matrix.data.dtype

    def shard_ranges(
        self, n_shards: int, row_range: Optional[Tuple[int, int]] = None
    ) -> List[Tuple[int, int]]:
        """nnz-balanced shard boundaries for (a row range of) this side.

        Delegates to :func:`nnz_balanced_ranges` on the side's CSR
        ``indptr`` — a pure function of the plan, shared by every executor.
        """
        start, stop = (0, self.n_rows) if row_range is None else row_range
        return nnz_balanced_ranges(self.matrix.indptr, start, stop, n_shards)

    @classmethod
    def build(
        cls,
        matrix,
        row_positive_weights: Optional[np.ndarray] = None,
        col_positive_weights: Optional[np.ndarray] = None,
        dtype=None,
    ) -> "SweepSide":
        """Precompute the sweep structure for one side.

        Parameters
        ----------
        matrix:
            Anything ``sp.csr_matrix`` accepts, shape ``(n_rows, n_cols)``
            with rows indexing the side to be updated.
        row_positive_weights, col_positive_weights:
            Optional per-row / per-column weights; the weight of a positive
            entry ``(r, c)`` is their product (1 when both are ``None``).
        dtype:
            Training dtype (``float32`` / ``float64``); defaults to float64.
        """
        csr = sp.csr_matrix(matrix)
        target = _resolve_dtype(dtype)
        if csr.data.dtype != target:
            csr = csr.astype(target)

        n_rows, n_cols = csr.shape
        row_index = np.repeat(
            np.arange(n_rows, dtype=np.int64), np.diff(csr.indptr)
        )

        weights: Optional[np.ndarray] = None
        if row_positive_weights is not None or col_positive_weights is not None:
            weights = np.ones(csr.nnz, dtype=target)
            if row_positive_weights is not None:
                row_positive_weights = np.asarray(row_positive_weights)
                if row_positive_weights.shape != (n_rows,):
                    raise ConfigurationError(
                        f"row_positive_weights must have shape ({n_rows},), got "
                        f"{row_positive_weights.shape}"
                    )
                weights *= row_positive_weights[row_index].astype(target, copy=False)
            if col_positive_weights is not None:
                col_positive_weights = np.asarray(col_positive_weights)
                if col_positive_weights.shape != (n_cols,):
                    raise ConfigurationError(
                        f"col_positive_weights must have shape ({n_cols},), got "
                        f"{col_positive_weights.shape}"
                    )
                weights *= col_positive_weights[csr.indices].astype(target, copy=False)
        return cls(matrix=csr, row_index=row_index, entry_weights=weights)


class SweepPlan:
    """Both sweep directions of one training problem, precomputed once.

    The trainer builds a plan at the top of ``fit`` and drives every sweep
    through it: the item sweep uses :attr:`item_side` (rows = items, columns
    = users; the per-user R-OCuLaR weight rides on the column side) and the
    user sweep uses :attr:`user_side` (rows = users; the weight rides on the
    row side).
    """

    def __init__(self, user_side: SweepSide, item_side: SweepSide) -> None:
        if user_side.matrix.shape != item_side.matrix.shape[::-1]:
            raise ConfigurationError(
                "user_side and item_side must be transposes of each other, got "
                f"shapes {user_side.matrix.shape} and {item_side.matrix.shape}"
            )
        self.user_side = user_side
        self.item_side = item_side

    @classmethod
    def build(
        cls,
        matrix,
        user_weights: Optional[np.ndarray] = None,
        dtype=None,
    ) -> "SweepPlan":
        """Precompute both sweep directions for a user-by-item matrix.

        Parameters
        ----------
        matrix:
            Interaction matrix of shape ``(n_users, n_items)``.
        user_weights:
            Optional per-user positive-example weights (R-OCuLaR).
        dtype:
            Training dtype (``float32`` / ``float64``); defaults to float64.
        """
        target = _resolve_dtype(dtype)
        user_major = sp.csr_matrix(matrix)
        if user_major.data.dtype != target:
            user_major = user_major.astype(target)
        item_major = sp.csr_matrix(user_major.T)
        user_side = SweepSide.build(
            user_major, row_positive_weights=user_weights, dtype=target
        )
        item_side = SweepSide.build(
            item_major, col_positive_weights=user_weights, dtype=target
        )
        return cls(user_side=user_side, item_side=item_side)

    @property
    def n_users(self) -> int:
        """Number of users."""
        return self.user_side.n_rows

    @property
    def n_items(self) -> int:
        """Number of items."""
        return self.item_side.n_rows

    @property
    def nnz(self) -> int:
        """Number of positive interactions."""
        return self.user_side.nnz

    @property
    def dtype(self) -> np.dtype:
        """Training dtype shared by both sides."""
        return self.user_side.dtype
