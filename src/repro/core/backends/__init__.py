"""Compute backends for the OCuLaR block-coordinate sweeps.

Three backends implement identical mathematics:

* ``"reference"`` — a per-row Python loop, the direct transcription of the
  paper's Section IV-D pseudocode.  It plays the role of the paper's CPU
  implementation in the Figure 8 experiment.
* ``"vectorized"`` — batched NumPy/SciPy kernels that update every row of a
  side at once, the role of the paper's CUDA implementation.  The gradient
  of all rows is assembled with one sparse matrix product over the positive
  examples, which is exactly the parallel-over-positive-ratings structure of
  the paper's GPU kernel.
* ``"parallel"`` — the vectorized kernels sharded by row range and fanned
  across a thread pool (``n_workers``), realising the paper's
  rows-are-independent parallelism argument on the CPU.  Its factors are
  bit-identical to ``"vectorized"`` for any shard count.

All backends consume a precomputed :class:`~repro.core.backends.plan.SweepSide`
(built once per fit by the trainer through :class:`SweepPlan`) and return
bit-for-bit comparable factors when run with the same inputs and step sizes;
the test-suite asserts their agreement.
"""

from repro.core.backends.base import Backend, SweepStats
from repro.core.backends.plan import SweepPlan, SweepSide, nnz_balanced_ranges
from repro.core.backends.reference import ReferenceBackend
from repro.core.backends.vectorized import VectorizedBackend
from repro.core.backends.parallel import ParallelBackend
from repro.core.backends.workspace import (
    SweepWorkspace,
    SweepWorkspaceStore,
    WorkspaceStats,
    workspace_cache_size,
)

from repro.exceptions import ConfigurationError

_BACKENDS = {
    "reference": ReferenceBackend,
    "vectorized": VectorizedBackend,
    "parallel": ParallelBackend,
}


def get_backend(name, n_workers=None, executor=None) -> Backend:
    """Instantiate a backend by name, or pass an instance through.

    Parameters
    ----------
    name:
        ``"reference"``, ``"vectorized"``, ``"parallel"``, or a
        :class:`Backend` instance (returned unchanged).
    n_workers:
        Worker-pool size for the ``"parallel"`` backend.  Specifying it with
        any other backend (or with an already-built instance) is an error —
        it would be silently ignored otherwise.
    executor:
        Executor name from the :mod:`repro.parallel.scheduler` registry
        (``"thread"``, ``"process"``, ``"serial"``) for the ``"parallel"``
        backend; same validity rule as ``n_workers``.
    """
    if isinstance(name, Backend):
        if n_workers is not None or executor is not None:
            raise ConfigurationError(
                "n_workers/executor cannot be combined with a backend instance; "
                "construct ParallelBackend(n_workers=..., executor=...) directly"
            )
        return name
    try:
        backend_cls = _BACKENDS[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown backend {name!r}; available: {sorted(_BACKENDS)}"
        ) from exc
    if n_workers is not None or executor is not None:
        if backend_cls is not ParallelBackend:
            raise ConfigurationError(
                "n_workers/executor are only valid with the 'parallel' backend, "
                f"not {name!r}"
            )
        kwargs = {}
        if n_workers is not None:
            kwargs["n_workers"] = n_workers
        if executor is not None:
            kwargs["executor"] = executor
        return backend_cls(**kwargs)
    return backend_cls()


def available_backends() -> list[str]:
    """Names of the registered backends."""
    return sorted(_BACKENDS)


class BackendLease:
    """Explicit backend ownership: the owner shuts down, a borrower never does.

    Every component that accepts a backend *name or instance* (the trainer,
    the fold-in solver, the long-lived runtime) follows the same rule: a
    backend built here from a **name** is owned by the lease and released by
    :meth:`release` (worker pools and shared-memory segments must not outlive
    the owning computation), while an **instance** is borrowed — its original
    owner keeps the lifecycle, so a warm pool can be threaded through many
    fits and serving calls without ever being torn down by a borrower.

    Usable as a context manager::

        with BackendLease(backend, n_workers=n, executor=name) as lease:
            lease.backend.sweep(...)
        # released here iff the lease owned it
    """

    def __init__(self, backend, n_workers=None, executor=None) -> None:
        self.owned = not isinstance(backend, Backend)
        self.backend = get_backend(backend, n_workers=n_workers, executor=executor)

    def release(self) -> None:
        """Shut the backend down if (and only if) this lease owns it."""
        if self.owned:
            self.backend.shutdown()

    def __enter__(self) -> "BackendLease":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        role = "owned" if self.owned else "borrowed"
        return f"BackendLease({self.backend!r}, {role})"


__all__ = [
    "Backend",
    "BackendLease",
    "SweepStats",
    "SweepPlan",
    "SweepSide",
    "ReferenceBackend",
    "VectorizedBackend",
    "ParallelBackend",
    "SweepWorkspace",
    "SweepWorkspaceStore",
    "WorkspaceStats",
    "get_backend",
    "available_backends",
    "nnz_balanced_ranges",
    "workspace_cache_size",
]
