"""Compute backends for the OCuLaR block-coordinate sweeps.

Two backends implement identical mathematics:

* ``"reference"`` — a per-row Python loop, the direct transcription of the
  paper's Section IV-D pseudocode.  It plays the role of the paper's CPU
  implementation in the Figure 8 experiment.
* ``"vectorized"`` — batched NumPy/SciPy kernels that update every row of a
  side at once, the role of the paper's CUDA implementation.  The gradient
  of all rows is assembled with one sparse matrix product over the positive
  examples, which is exactly the parallel-over-positive-ratings structure of
  the paper's GPU kernel.

Both return bit-for-bit comparable factors when run with the same inputs and
step sizes; the test-suite asserts their agreement.
"""

from repro.core.backends.base import Backend, SweepStats
from repro.core.backends.reference import ReferenceBackend
from repro.core.backends.vectorized import VectorizedBackend

from repro.exceptions import ConfigurationError

_BACKENDS = {
    "reference": ReferenceBackend,
    "vectorized": VectorizedBackend,
}


def get_backend(name: str) -> Backend:
    """Instantiate a backend by name (``"reference"`` or ``"vectorized"``)."""
    if isinstance(name, Backend):
        return name
    try:
        return _BACKENDS[name]()
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown backend {name!r}; available: {sorted(_BACKENDS)}"
        ) from exc


def available_backends() -> list[str]:
    """Names of the registered backends."""
    return sorted(_BACKENDS)


__all__ = [
    "Backend",
    "SweepStats",
    "ReferenceBackend",
    "VectorizedBackend",
    "get_backend",
    "available_backends",
]
