"""Pooled scratch arenas for zero-allocation projected-gradient sweeps.

PR 8 made the *serving* hot path allocation-free with a buffer pool; this
module does the same for the *training* hot path.  Profiling the vectorized
kernel showed every sweep rebuilding structure that is constant for a fit —
two ``sp.csr_matrix`` constructions (validation included), the shard-local
entry row index, the ``np.arange``/``np.repeat`` entry-position machinery of
every backtracking pass — and churning nnz-sized float temporaries
(affinities, gradient ratios, log terms) plus ``(nnz, k)`` gather blocks on
every call.

A :class:`SweepWorkspace` owns all of that for one ``(row range, k, dtype)``
shard of one :class:`~repro.core.backends.plan.SweepSide`:

* the **plan-cached sparse operators** — the rebased int64 CSR skeleton
  shared by the fit-constant ``positives`` operator (its data is a view of
  the plan's CSR data, never copied or revalidated again) and the
  ``scatter`` operator, whose data buffer (the per-entry gradient ratios)
  is overwritten in place each sweep;
* every float/bool/int scratch array the kernel touches, so gathers run
  through ``np.take(out=)``, sparse products through scipy's raw
  ``csr_matvecs`` kernel into pooled blocks, and the gradient / objective /
  Armijo arithmetic entirely in place.

After warm-up a sweep therefore performs **zero** large allocations (the
returned factor array — caller-owned — is the one exception), which the
store's stats counters prove and the training benchmark asserts, exactly
like PR 8's pool-stats assertion.

A :class:`SweepWorkspaceStore` hangs off every ``SweepSide`` and hands
workspaces out *exclusively* (take/release free list): concurrent sweeps
over the same cached side — a fold-in racing a warm refit on the runtime's
warm pool — each get their own arena.  The store lives and dies with the
plan, so workspaces survive across the sweeps of a fit but never leak
across fits; it pickles to a fresh empty store, so process-executor workers
(which rebuild sides from shared-memory descriptors) warm their own
worker-local workspaces, mirroring the serving pool's behaviour.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.backends.plan import SweepSide

__all__ = [
    "DEFAULT_WORKSPACE_CACHE",
    "WORKSPACE_CACHE_ENV",
    "SweepWorkspace",
    "SweepWorkspaceStore",
    "WorkspaceStats",
    "csr_matmul_into",
    "csr_row_sums_into",
    "workspace_cache_size",
]

#: Environment knob for how many free workspaces a store keeps per
#: ``(row range, k, dtype)`` key.  One is enough for serial training; the
#: default leaves headroom for concurrent fold-ins through one cached side.
WORKSPACE_CACHE_ENV = "REPRO_SWEEP_WORKSPACE_CACHE"

#: Default per-key free-list cap.
DEFAULT_WORKSPACE_CACHE = 8

try:  # scipy's raw CSR kernels accept caller-owned output buffers
    from scipy.sparse import _sparsetools as _sparsetools

    _CSR_MATVEC = _sparsetools.csr_matvec
    _CSR_MATVECS = _sparsetools.csr_matvecs
except (ImportError, AttributeError):  # pragma: no cover - future scipy
    _CSR_MATVEC = None
    _CSR_MATVECS = None


def workspace_cache_size(max_cached: Optional[int] = None) -> int:
    """Resolve the per-key workspace cache size.

    Priority: explicit argument, then :data:`WORKSPACE_CACHE_ENV`, then
    :data:`DEFAULT_WORKSPACE_CACHE`.  Non-numeric or non-positive values
    fall back to the default.
    """
    if max_cached is None:
        raw = os.environ.get(WORKSPACE_CACHE_ENV)
        if raw:
            try:
                max_cached = int(raw)
            except ValueError:
                max_cached = None
    if max_cached is None or max_cached <= 0:
        max_cached = DEFAULT_WORKSPACE_CACHE
    return int(max_cached)


def csr_matmul_into(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    shape: Tuple[int, int],
    dense: np.ndarray,
    out: np.ndarray,
) -> np.ndarray:
    """``out <- CSR(indptr, indices, data) @ dense`` without allocating.

    Bit-identical to scipy's ``csr_matrix @ dense``: scipy zero-fills the
    result and hands it to the same ``csr_matvecs`` kernel, which
    accumulates each row's products sequentially in CSR entry order — so
    calling the kernel directly against a pooled, zeroed output reproduces
    the product exactly while skipping the matrix construction, validation,
    and result allocation.
    """
    n_rows, n_cols = shape
    if (
        _CSR_MATVECS is not None
        and dense.flags.c_contiguous
        and out.flags.c_contiguous
        and dense.dtype == data.dtype == out.dtype
    ):
        out[...] = 0
        _CSR_MATVECS(
            n_rows,
            n_cols,
            dense.shape[1],
            indptr,
            indices,
            data,
            dense.reshape(-1),
            out.reshape(-1),
        )
    else:  # pragma: no cover - only without scipy's private kernels
        matrix = sp.csr_matrix((data, indices, indptr), shape=shape)
        out[...] = matrix @ dense
    return out


def csr_row_sums_into(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    shape: Tuple[int, int],
    ones: np.ndarray,
    out: np.ndarray,
) -> np.ndarray:
    """Per-row sums of ``data`` through a CSR structure, into ``out``.

    Replaces ``np.bincount(entry_rows, weights=data, minlength=n_rows)`` on
    the hot path: ``csr_matvec`` against a ones vector accumulates each
    row's entries sequentially in the same left-to-right order as
    ``bincount``'s C loop (and ``data[e] * 1.0 == data[e]`` bitwise), so
    float64 results are bit-identical — while float32 data now reduces in
    float32 instead of ``bincount``'s silent float64 upcast (the
    training-dtype consistency rule; see the README's training-performance
    section).
    """
    n_rows, n_cols = shape
    if _CSR_MATVEC is not None and data.dtype == ones.dtype == out.dtype:
        out[...] = 0
        _CSR_MATVEC(n_rows, n_cols, indptr, indices, data, ones, out)
    else:  # pragma: no cover - only without scipy's private kernels
        matrix = sp.csr_matrix((data, indices, indptr), shape=shape)
        out[...] = matrix @ ones
    return out


class SweepWorkspace:
    """Scratch arena for sweeping rows ``[start, stop)`` of one plan side.

    Construction gathers the *fit-constant* operator structure once — the
    rebased int64 CSR pointers/indices, the shard-local entry row ids, views
    of the plan's positive data and entry weights — and allocates every
    scratch buffer the vectorized kernel needs, sized exactly for this
    shard.  After that, sweeps reuse the arena: the only thing that changes
    between sweeps is the bytes written into it.

    Obtain workspaces from a :class:`SweepWorkspaceStore`; they are not
    thread-safe individually (exclusivity is the store's job).
    """

    def __init__(
        self, side: "SweepSide", start: int, stop: int, k: int, dtype
    ) -> None:
        dtype = np.dtype(dtype)
        indptr = side.matrix.indptr
        first, last = int(indptr[start]), int(indptr[stop])
        n = stop - start
        nnz = last - first

        self.start, self.stop = int(start), int(stop)
        self.n_local, self.nnz_local, self.k = n, nnz, int(k)
        self.n_cols = side.n_cols
        self.dtype = dtype
        #: Set by the store on acquire: ``False`` when served from the free
        #: list — the per-sweep allocations-vs-reuses signal in SweepStats.
        self.fresh = True

        # ---- plan-cached operator structure (constant for the fit) ---- #
        # The rebased int64 CSR skeleton is shared by the ``positives``
        # operator, the ``scatter`` operator, and the per-backtrack sub-CSR
        # machinery.  int64 copies once here beat per-call casts inside
        # scipy's kernels.
        row_starts = indptr[start : stop + 1].astype(np.int64)
        row_starts -= first
        self.row_starts = row_starts
        self.indices = side.matrix.indices[first:last].astype(np.int64)
        entry_rows = side.row_index[first:last].astype(np.int64)
        entry_rows -= start
        self.entry_rows = entry_rows
        # Views (no copies) into the side's arrays: the fit-constant data of
        # the ``positives`` operator and the per-entry R-OCuLaR weights.
        self.positives_data = side.matrix.data[first:last]
        self.entry_weights = (
            None if side.entry_weights is None else side.entry_weights[first:last]
        )
        self.ones_cols = np.ones(side.n_cols, dtype=dtype)

        # ---- per-entry scratch ---- #
        self.entry_a = np.empty(nnz, dtype=dtype)  # affinities -> log terms
        self.entry_b = np.empty(nnz, dtype=dtype)  # ratios == scatter data
        self.entry_c = np.empty(nnz, dtype=dtype)  # expm1 denominator scratch
        self.gather_rows = np.empty((nnz, k), dtype=dtype)
        self.gather_cols = np.empty((nnz, k), dtype=dtype)

        # ---- per-row (n, k) blocks ---- #
        self.grad_rows = np.empty((n, k), dtype=dtype)
        self.unknown_rows = np.empty((n, k), dtype=dtype)
        self.scratch_rows = np.empty((n, k), dtype=dtype)
        self.lf_rows = np.empty((n, k), dtype=dtype)
        self.cand_rows = np.empty((n, k), dtype=dtype)
        self.diff_rows = np.empty((n, k), dtype=dtype)
        self.grad_gather = np.empty((n, k), dtype=dtype)

        # ---- per-row vectors and masks ---- #
        self.current_values = np.empty(n, dtype=dtype)
        self.candidate_values = np.empty(n, dtype=dtype)
        self.armijo_rhs = np.empty(n, dtype=dtype)
        self.row_tmp = np.empty(n, dtype=dtype)
        self.row_tmp2 = np.empty(n, dtype=dtype)
        self.step_a = np.empty(n, dtype=dtype)
        self.step_b = np.empty(n, dtype=dtype)
        self.accepted = np.empty(n, dtype=bool)
        self.not_accepted = np.empty(n, dtype=bool)
        self.nonempty = np.empty(n, dtype=bool)

        # ---- integer index scratch ---- #
        self.arange_rows = np.arange(n, dtype=np.int64)
        self.active_a = np.empty(n, dtype=np.int64)
        self.active_b = np.empty(n, dtype=np.int64)
        self.accepted_rows = np.empty(n, dtype=np.int64)
        self.counts = np.empty(n, dtype=np.int64)
        self.starts = np.empty(n, dtype=np.int64)
        self.ends = np.empty(n, dtype=np.int64)
        self.ne_rows = np.empty(n, dtype=np.int64)
        self.ne_starts = np.empty(n, dtype=np.int64)
        self.ne_offsets = np.empty(n, dtype=np.int64)
        self.sub_indptr = np.empty(n + 1, dtype=np.int64)
        self.arange_entries = np.arange(nnz, dtype=np.int64)
        self.entry_seg = np.empty(nnz, dtype=np.int64)
        self.entry_pos = np.empty(nnz, dtype=np.int64)
        self.entry_row_ids = np.empty(nnz, dtype=np.int64)
        self.entry_col_ids = np.empty(nnz, dtype=np.int64)

        owned = (
            self.row_starts, self.indices, self.entry_rows, self.ones_cols,
            self.entry_a, self.entry_b, self.entry_c,
            self.gather_rows, self.gather_cols,
            self.grad_rows, self.unknown_rows, self.scratch_rows,
            self.lf_rows, self.cand_rows, self.diff_rows, self.grad_gather,
            self.current_values, self.candidate_values, self.armijo_rhs,
            self.row_tmp, self.row_tmp2, self.step_a, self.step_b,
            self.accepted, self.not_accepted, self.nonempty,
            self.arange_rows, self.active_a, self.active_b,
            self.accepted_rows, self.counts, self.starts, self.ends,
            self.ne_rows, self.ne_starts, self.ne_offsets, self.sub_indptr,
            self.arange_entries, self.entry_seg, self.entry_pos,
            self.entry_row_ids, self.entry_col_ids,
        )  # fmt: skip
        #: Total scratch bytes this arena owns (views of plan arrays excluded).
        self.nbytes = int(sum(array.nbytes for array in owned))

    @property
    def local_shape(self) -> Tuple[int, int]:
        """Shape of the shard-local sparse operators."""
        return (self.n_local, self.n_cols)

    def scatter_matmul(self, dense: np.ndarray, out: np.ndarray) -> np.ndarray:
        """The ``scatter`` operator: per-entry ratios (``entry_b``) ``@ dense``.

        The operator's data buffer is overwritten in place each sweep; its
        structure is the cached plan skeleton, so no scipy matrix is ever
        rebuilt or revalidated.
        """
        return csr_matmul_into(
            self.row_starts, self.indices, self.entry_b, self.local_shape, dense, out
        )

    def positives_matmul(self, dense: np.ndarray, out: np.ndarray) -> np.ndarray:
        """The fit-constant ``positives`` operator: plan data ``@ dense``."""
        return csr_matmul_into(
            self.row_starts,
            self.indices,
            self.positives_data,
            self.local_shape,
            dense,
            out,
        )


@dataclass(frozen=True)
class WorkspaceStats:
    """Counters of one :class:`SweepWorkspaceStore`.

    ``allocations`` staying flat across sweeps while ``reuses`` grows is the
    zero-allocation property the training hot path claims; the benchmark
    suite asserts it, mirroring PR 8's serving pool stats.
    """

    allocations: int
    reuses: int
    outstanding: int
    cached: int
    bytes_in_use: int
    peak_bytes: int


class SweepWorkspaceStore:
    """Lock-guarded free list of sweep workspaces, keyed by range, k, dtype.

    One store hangs off every :class:`~repro.core.backends.plan.SweepSide`
    (see its ``workspaces`` field), so workspace lifetime tracks plan
    lifetime exactly: sweeps of one fit reuse them, the fit's end drops
    them, and nothing leaks into the next fit.  ``acquire`` hands a
    workspace out *exclusively* — concurrent sweeps over the same side and
    row range (a fold-in racing a warm refit through one cached side) each
    build or reuse their own arena.  At most :attr:`max_cached` free
    workspaces are kept per key (:data:`WORKSPACE_CACHE_ENV`); extras are
    dropped to the allocator so a long-lived side cannot hoard scratch.
    """

    def __init__(self, max_cached: Optional[int] = None) -> None:
        self.max_cached = workspace_cache_size(max_cached)
        self._lock = threading.Lock()
        self._free: Dict[Tuple[int, int, int, str], List[SweepWorkspace]] = {}
        self._allocations = 0
        self._reuses = 0
        self._outstanding = 0
        self._bytes_in_use = 0
        self._peak_bytes = 0

    def acquire(
        self, side: "SweepSide", start: int, stop: int, k: int, dtype
    ) -> SweepWorkspace:
        """An exclusive workspace for ``[start, stop)`` at ``(k, dtype)``.

        Served from the free list when a matching arena exists; built from
        the side otherwise (construction happens outside the lock).
        """
        key = (int(start), int(stop), int(k), np.dtype(dtype).str)
        with self._lock:
            cached = self._free.get(key)
            if cached:
                workspace = cached.pop()
                self._reuses += 1
                self._outstanding += 1
                workspace.fresh = False
                return workspace
        workspace = SweepWorkspace(side, start, stop, k, dtype)
        with self._lock:
            self._allocations += 1
            self._outstanding += 1
            self._bytes_in_use += workspace.nbytes
            self._peak_bytes = max(self._peak_bytes, self._bytes_in_use)
        workspace.fresh = True
        return workspace

    def release(self, workspace: SweepWorkspace) -> None:
        """Return a workspace obtained from :meth:`acquire` to the free list."""
        key = (workspace.start, workspace.stop, workspace.k, workspace.dtype.str)
        with self._lock:
            self._outstanding = max(0, self._outstanding - 1)
            cached = self._free.setdefault(key, [])
            cached.append(workspace)
            if len(cached) > self.max_cached:
                dropped = cached.pop(0)
                self._bytes_in_use -= dropped.nbytes

    def stats(self) -> WorkspaceStats:
        """A consistent snapshot of the store's counters."""
        with self._lock:
            return WorkspaceStats(
                allocations=self._allocations,
                reuses=self._reuses,
                outstanding=self._outstanding,
                cached=sum(len(cached) for cached in self._free.values()),
                bytes_in_use=self._bytes_in_use,
                peak_bytes=self._peak_bytes,
            )

    def clear(self) -> None:
        """Drop every cached workspace (counters are preserved)."""
        with self._lock:
            for cached in self._free.values():
                for workspace in cached:
                    self._bytes_in_use -= workspace.nbytes
            self._free.clear()

    def __reduce__(self):
        # Plan sides travel to process-pool workers (and through model
        # pickles); scratch arenas and lock state do not — every process
        # warms its own worker-local workspaces, like the serving pool.
        return (type(self), (self.max_cached,))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        snapshot = self.stats()
        return (
            f"SweepWorkspaceStore(allocations={snapshot.allocations}, "
            f"reuses={snapshot.reuses}, cached={snapshot.cached})"
        )
