"""Backend interface for the projected-gradient block sweeps."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp


@dataclass
class SweepStats:
    """Diagnostics of one block sweep.

    Attributes
    ----------
    n_rows:
        Number of row factors the sweep attempted to update.
    n_accepted:
        Number of rows whose Armijo line search accepted a step.
    n_backtracks:
        Total number of step-size halvings performed across all rows.
    """

    n_rows: int
    n_accepted: int
    n_backtracks: int

    @property
    def acceptance_rate(self) -> float:
        """Fraction of rows that accepted a projected-gradient step."""
        if self.n_rows == 0:
            return 0.0
        return self.n_accepted / float(self.n_rows)


class Backend(abc.ABC):
    """A strategy for performing one projected-gradient sweep over one side.

    A *sweep* updates every row factor of one side (all items, or all users)
    by a single projected-gradient step with Armijo backtracking, holding the
    other side fixed — one half of the paper's alternating scheme.

    The sweep is expressed generically over "rows" and "columns": to update
    item factors, pass the item-major (transposed) interaction matrix with
    ``row_factors = item_factors`` and ``col_factors = user_factors``; to
    update user factors pass the user-major matrix with the roles swapped.
    """

    #: Human-readable backend name, e.g. ``"reference"``.
    name: str = "abstract"

    @abc.abstractmethod
    def sweep(
        self,
        matrix: sp.csr_matrix,
        row_factors: np.ndarray,
        col_factors: np.ndarray,
        regularization: float,
        row_positive_weights: Optional[np.ndarray] = None,
        col_positive_weights: Optional[np.ndarray] = None,
        sigma: float = 0.1,
        beta: float = 0.5,
        max_backtracks: int = 20,
    ) -> tuple[np.ndarray, SweepStats]:
        """Perform one projected-gradient sweep over all rows.

        Parameters
        ----------
        matrix:
            CSR matrix of shape ``(n_rows, n_cols)`` whose non-zeros are the
            positive examples, with rows indexing the side being updated.
        row_factors:
            Current factors of the rows being updated, shape ``(n_rows, K)``.
            Not modified in place.
        col_factors:
            Fixed factors of the other side, shape ``(n_cols, K)``.
        regularization:
            The L2 penalty ``lambda``.
        row_positive_weights, col_positive_weights:
            Optional per-row / per-column weights; the weight of a positive
            entry ``(r, c)`` is their product (1 when both are ``None``).
            R-OCuLaR passes the per-user weights through whichever side the
            users occupy.
        sigma, beta:
            Armijo line-search constants, both in (0, 1).
        max_backtracks:
            Maximum number of step-size reductions per row; a row whose
            search exhausts the budget keeps its previous factor.

        Returns
        -------
        (new_row_factors, stats)
        """

    @staticmethod
    def entry_weights(
        matrix_coo: sp.coo_matrix,
        row_positive_weights: Optional[np.ndarray],
        col_positive_weights: Optional[np.ndarray],
    ) -> Optional[np.ndarray]:
        """Per-positive-entry weights, or ``None`` when every weight is 1."""
        if row_positive_weights is None and col_positive_weights is None:
            return None
        weights = np.ones(matrix_coo.nnz)
        if row_positive_weights is not None:
            weights = weights * row_positive_weights[matrix_coo.row]
        if col_positive_weights is not None:
            weights = weights * col_positive_weights[matrix_coo.col]
        return weights
