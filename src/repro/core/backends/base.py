"""Backend interface for the projected-gradient block sweeps."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.core.backends.plan import SweepSide
from repro.exceptions import ConfigurationError


@dataclass
class SweepStats:
    """Diagnostics of one block sweep.

    Attributes
    ----------
    n_rows:
        Number of row factors the sweep attempted to update.
    n_accepted:
        Number of rows whose Armijo line search accepted a step.
    n_backtracks:
        Total number of step-size halvings performed across all rows.
    workspace_bytes:
        Scratch bytes of the pooled sweep workspace(s) the sweep ran in
        (summed across shards).  Zero for backends without workspaces.
    workspace_allocations, workspace_reuses:
        How many of those workspaces were freshly built versus served from
        the plan side's free list.  After warm-up every sweep should be pure
        reuse — the zero-allocation property the benchmark asserts.  The
        workspace fields are diagnostics, not results, so they are excluded
        from equality: sharded and serial sweeps of identical factors
        compare equal even though their arena layouts differ.
    """

    n_rows: int
    n_accepted: int
    n_backtracks: int
    workspace_bytes: int = field(default=0, compare=False)
    workspace_allocations: int = field(default=0, compare=False)
    workspace_reuses: int = field(default=0, compare=False)

    @property
    def acceptance_rate(self) -> float:
        """Fraction of rows that accepted a projected-gradient step."""
        if self.n_rows == 0:
            return 0.0
        return self.n_accepted / float(self.n_rows)

    @classmethod
    def combined(cls, parts: Iterable["SweepStats"]) -> "SweepStats":
        """Aggregate the stats of disjoint row shards of one sweep."""
        n_rows = n_accepted = n_backtracks = 0
        workspace_bytes = workspace_allocations = workspace_reuses = 0
        for part in parts:
            n_rows += part.n_rows
            n_accepted += part.n_accepted
            n_backtracks += part.n_backtracks
            workspace_bytes += part.workspace_bytes
            workspace_allocations += part.workspace_allocations
            workspace_reuses += part.workspace_reuses
        return cls(
            n_rows=n_rows,
            n_accepted=n_accepted,
            n_backtracks=n_backtracks,
            workspace_bytes=workspace_bytes,
            workspace_allocations=workspace_allocations,
            workspace_reuses=workspace_reuses,
        )


class Backend(abc.ABC):
    """A strategy for performing one projected-gradient sweep over one side.

    A *sweep* updates every row factor of one side (all items, or all users)
    by a single projected-gradient step with Armijo backtracking, holding the
    other side fixed — one half of the paper's alternating scheme.

    The sweep is expressed generically over "rows" and "columns": to update
    item factors, pass the item-major (transposed) interaction matrix with
    ``row_factors = item_factors`` and ``col_factors = user_factors``; to
    update user factors pass the user-major matrix with the roles swapped.

    Subclasses implement :meth:`_sweep_rows`, which receives a precomputed
    :class:`~repro.core.backends.plan.SweepSide` plus an explicit row range,
    so a sweep over rows ``[a, b)`` is a self-contained task — the unit of
    work the sharded parallel backend fans out.
    """

    #: Human-readable backend name, e.g. ``"reference"``.
    name: str = "abstract"

    def shutdown(self) -> None:
        """Release pooled resources (worker pools, shared-memory segments).

        A no-op for stateless backends.  Backends that own pools recreate
        them lazily, so a shut-down backend remains usable.
        """

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def sweep(
        self,
        matrix,
        row_factors: np.ndarray,
        col_factors: np.ndarray,
        regularization: float,
        row_positive_weights: Optional[np.ndarray] = None,
        col_positive_weights: Optional[np.ndarray] = None,
        sigma: float = 0.1,
        beta: float = 0.5,
        max_backtracks: int = 20,
        plan: Optional[SweepSide] = None,
        row_range: Optional[Tuple[int, int]] = None,
    ) -> Tuple[np.ndarray, SweepStats]:
        """Perform one projected-gradient sweep over rows of one side.

        Parameters
        ----------
        matrix:
            CSR matrix of shape ``(n_rows, n_cols)`` whose non-zeros are the
            positive examples, with rows indexing the side being updated.
            May be ``None`` when ``plan`` is provided.
        row_factors:
            Current factors of the rows being updated, shape ``(n_rows, K)``.
            Not modified in place.
        col_factors:
            Fixed factors of the other side, shape ``(n_cols, K)``.
        regularization:
            The L2 penalty ``lambda``.
        row_positive_weights, col_positive_weights:
            Optional per-row / per-column weights; the weight of a positive
            entry ``(r, c)`` is their product (1 when both are ``None``).
            R-OCuLaR passes the per-user weights through whichever side the
            users occupy.  Only valid without ``plan`` — a plan has its
            entry weights baked in.
        sigma, beta:
            Armijo line-search constants, both in (0, 1).
        max_backtracks:
            Maximum number of step-size reductions per row; a row whose
            search exhausts the budget keeps its previous factor.
        plan:
            Optional precomputed :class:`~repro.core.backends.plan.SweepSide`.
            Without it an ephemeral plan is built from ``matrix`` on every
            call (the backward-compatible slow path); the trainer builds one
            plan per fit instead.
        row_range:
            Optional ``(start, stop)`` restricting the sweep to rows
            ``[start, stop)``.  The returned factor array then has shape
            ``(stop - start, K)`` — the updated factors of just those rows.
            ``None`` sweeps (and returns) all rows.

        Returns
        -------
        (new_row_factors, stats)
        """
        row_factors = np.asarray(row_factors)
        col_factors = np.asarray(col_factors)
        if plan is None:
            if matrix is None:
                raise ConfigurationError(
                    "sweep requires either a matrix or a precomputed plan"
                )
            dtype = (
                row_factors.dtype
                if np.issubdtype(row_factors.dtype, np.floating)
                else None
            )
            plan = SweepSide.build(
                matrix,
                row_positive_weights=row_positive_weights,
                col_positive_weights=col_positive_weights,
                dtype=dtype,
            )
        else:
            if matrix is not None:
                raise ConfigurationError(
                    "pass either a matrix or a plan to sweep, not both — a plan "
                    "already owns its matrix, so the extra one would be ignored"
                )
            if row_positive_weights is not None or col_positive_weights is not None:
                raise ConfigurationError(
                    "positive weights are baked into the plan at construction time; "
                    "pass them to SweepSide.build, not to sweep"
                )
        if plan.n_rows != row_factors.shape[0]:
            raise ConfigurationError(
                f"row_factors has {row_factors.shape[0]} rows but the plan side has "
                f"{plan.n_rows}"
            )
        if plan.n_cols != col_factors.shape[0]:
            raise ConfigurationError(
                f"col_factors has {col_factors.shape[0]} rows but the plan side has "
                f"{plan.n_cols} columns"
            )
        start, stop = self._check_row_range(row_range, plan.n_rows)

        # The fixed side does not change within a sweep, so its column sum is
        # computed exactly once here and shared by every row shard.
        total_col_sum = col_factors.sum(axis=0)
        return self._sweep_rows(
            plan,
            row_factors,
            col_factors,
            regularization,
            sigma,
            beta,
            max_backtracks,
            start,
            stop,
            total_col_sum,
        )

    @staticmethod
    def _check_row_range(
        row_range: Optional[Tuple[int, int]], n_rows: int
    ) -> Tuple[int, int]:
        """Validate a ``(start, stop)`` range against the side's row count."""
        if row_range is None:
            return 0, n_rows
        try:
            start, stop = (int(bound) for bound in row_range)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"row_range must be a (start, stop) pair, got {row_range!r}"
            ) from exc
        if not 0 <= start <= stop <= n_rows:
            raise ConfigurationError(
                f"row_range {row_range!r} is not within [0, {n_rows}]"
            )
        return start, stop

    @abc.abstractmethod
    def _sweep_rows(
        self,
        plan: SweepSide,
        row_factors: np.ndarray,
        col_factors: np.ndarray,
        regularization: float,
        sigma: float,
        beta: float,
        max_backtracks: int,
        start: int,
        stop: int,
        total_col_sum: np.ndarray,
    ) -> Tuple[np.ndarray, SweepStats]:
        """Update rows ``[start, stop)`` and return their new factors + stats.

        ``row_factors`` is the full factor array of the side (global row
        indexing); the returned array has shape ``(stop - start, K)``.
        ``total_col_sum`` is the precomputed ``col_factors.sum(axis=0)``.
        """
