"""Vectorized (batched) backend — the GPU-kernel stand-in.

The paper's CUDA kernel (Section VI-A) parallelises the gradient computation
over the positive ratings: each positive ``(u, i)`` contributes
``f_u * alpha(<f_u, f_i>)`` to item ``i``'s gradient, accumulated with atomic
adds.  The same structure maps onto one sparse-matrix product here:

* compute the affinity of every positive entry in one ``einsum`` over the
  COO representation (the "thread block per rating" of the paper),
* scatter ``weight * alpha(affinity)`` back into a sparse matrix and multiply
  it by the fixed factors to accumulate all row gradients at once (the
  atomic-add reduction),
* run the Armijo backtracking for all rows simultaneously, masking out rows
  whose step has already been accepted.

The result is mathematically identical to the reference backend but runs one
to two orders of magnitude faster in NumPy, which is what the Figure 8
benchmark measures.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.core.backends.base import Backend, SweepStats
from repro.core.objective import gradient_ratio, safe_log1mexp


class VectorizedBackend(Backend):
    """Batched projected gradient descent over all rows of one side."""

    name = "vectorized"

    def sweep(
        self,
        matrix: sp.csr_matrix,
        row_factors: np.ndarray,
        col_factors: np.ndarray,
        regularization: float,
        row_positive_weights: Optional[np.ndarray] = None,
        col_positive_weights: Optional[np.ndarray] = None,
        sigma: float = 0.1,
        beta: float = 0.5,
        max_backtracks: int = 20,
    ) -> Tuple[np.ndarray, SweepStats]:
        matrix = sp.csr_matrix(matrix)
        coo = matrix.tocoo()
        n_rows = matrix.shape[0]

        entry_weights = self.entry_weights(coo, row_positive_weights, col_positive_weights)

        # --- gradient of every row at the current point ------------------- #
        affinities = np.einsum("ij,ij->i", row_factors[coo.row], col_factors[coo.col])
        ratios = gradient_ratio(affinities)
        if entry_weights is not None:
            ratios = ratios * entry_weights
        # tocoo() of a canonical CSR matrix preserves CSR (row-major) order, so
        # the per-entry ratios can be scattered by reusing the CSR structure
        # directly instead of rebuilding (and re-sorting) a sparse matrix.
        scatter = sp.csr_matrix(
            (ratios, matrix.indices, matrix.indptr), shape=matrix.shape
        )
        gradient_positive = scatter @ col_factors

        positive_sums = matrix @ col_factors
        unknown_sums = col_factors.sum(axis=0)[np.newaxis, :] - positive_sums

        gradients = -gradient_positive + unknown_sums + 2.0 * regularization * row_factors

        # --- current per-row objective values ------------------------------ #
        current_values = self._row_objectives(
            coo, row_factors, col_factors, entry_weights, unknown_sums, regularization, n_rows
        )

        # --- batched Armijo backtracking ----------------------------------- #
        new_factors = row_factors.copy()
        step_sizes = np.ones(n_rows)
        active = np.ones(n_rows, dtype=bool)
        n_backtracks = 0

        for _ in range(max_backtracks + 1):
            if not active.any():
                break
            active_rows = np.flatnonzero(active)
            candidates = np.maximum(
                0.0,
                row_factors[active_rows] - step_sizes[active_rows, np.newaxis] * gradients[active_rows],
            )
            candidate_values = self._row_objectives_subset(
                matrix,
                candidates,
                active_rows,
                col_factors,
                entry_weights,
                unknown_sums,
                regularization,
            )
            differences = candidates - row_factors[active_rows]
            armijo_rhs = sigma * np.einsum("ij,ij->i", gradients[active_rows], differences)
            accepted = (candidate_values - current_values[active_rows]) <= armijo_rhs

            accepted_rows = active_rows[accepted]
            new_factors[accepted_rows] = candidates[accepted]
            active[accepted_rows] = False
            n_backtracks += int(np.count_nonzero(~accepted))
            step_sizes[active] *= beta

        n_accepted = int(n_rows - np.count_nonzero(active))
        stats = SweepStats(n_rows=n_rows, n_accepted=n_accepted, n_backtracks=n_backtracks)
        return new_factors, stats

    # ------------------------------------------------------------------ #
    # Row objective helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _row_objectives(
        coo: sp.coo_matrix,
        row_factors: np.ndarray,
        col_factors: np.ndarray,
        entry_weights: Optional[np.ndarray],
        unknown_sums: np.ndarray,
        regularization: float,
        n_rows: int,
    ) -> np.ndarray:
        """Objective value of every row at the given factors."""
        affinities = np.einsum("ij,ij->i", row_factors[coo.row], col_factors[coo.col])
        log_terms = safe_log1mexp(affinities)
        if entry_weights is not None:
            log_terms = log_terms * entry_weights
        positive_part = -np.bincount(coo.row, weights=log_terms, minlength=n_rows)
        unknown_part = np.einsum("ij,ij->i", row_factors, unknown_sums)
        penalty = regularization * np.einsum("ij,ij->i", row_factors, row_factors)
        return positive_part + unknown_part + penalty

    @staticmethod
    def _row_objectives_subset(
        matrix: sp.csr_matrix,
        candidate_factors: np.ndarray,
        active_rows: np.ndarray,
        col_factors: np.ndarray,
        entry_weights: Optional[np.ndarray],
        unknown_sums: np.ndarray,
        regularization: float,
    ) -> np.ndarray:
        """Objective values of ``active_rows`` evaluated at ``candidate_factors``.

        ``candidate_factors[k]`` is the candidate for row ``active_rows[k]``.
        The positive entries of the active rows are gathered directly from the
        CSR structure (``indptr``/``indices``), so a late backtracking pass
        over a handful of stubborn rows costs only those rows' entries rather
        than a scan of the whole matrix.
        """
        n_active = len(active_rows)
        indptr, indices = matrix.indptr, matrix.indices
        counts = (indptr[active_rows + 1] - indptr[active_rows]).astype(np.int64)
        total_entries = int(counts.sum())

        if total_entries:
            starts = indptr[active_rows].astype(np.int64)
            offsets = np.arange(total_entries) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            entry_positions = np.repeat(starts, counts) + offsets
            rows_entries = np.repeat(np.arange(n_active), counts)
            cols_entries = indices[entry_positions]

            affinities = np.einsum(
                "ij,ij->i", candidate_factors[rows_entries], col_factors[cols_entries]
            )
            log_terms = safe_log1mexp(affinities)
            if entry_weights is not None:
                log_terms = log_terms * entry_weights[entry_positions]
            positive_part = -np.bincount(rows_entries, weights=log_terms, minlength=n_active)
        else:
            positive_part = np.zeros(n_active)

        unknown_part = np.einsum("ij,ij->i", candidate_factors, unknown_sums[active_rows])
        penalty = regularization * np.einsum("ij,ij->i", candidate_factors, candidate_factors)
        return positive_part + unknown_part + penalty
