"""Vectorized (batched) backend — the GPU-kernel stand-in.

The paper's CUDA kernel (Section VI-A) parallelises the gradient computation
over the positive ratings: each positive ``(u, i)`` contributes
``f_u * alpha(<f_u, f_i>)`` to item ``i``'s gradient, accumulated with atomic
adds.  The same structure maps onto one sparse-matrix product here:

* compute the affinity of every positive entry in one ``einsum`` over the
  plan's precomputed entry list (the "thread block per rating" of the paper),
* scatter ``weight * alpha(affinity)`` back through the plan's CSR structure
  and multiply by the fixed factors to accumulate all row gradients at once
  (the atomic-add reduction),
* run the Armijo backtracking for all rows simultaneously, compacting the
  set of rows whose step has not yet been accepted.

The result is mathematically identical to the reference backend but runs one
to two orders of magnitude faster in NumPy, which is what the Figure 8
benchmark measures.

Every kernel is *row-local*: the gradient, objective and line search of a
row never read another row's state, and all row reductions accumulate in CSR
entry order.  Sweeping the range ``[a, b)`` therefore produces bit-for-bit
the rows ``[a, b)`` of a full sweep — the invariant the sharded parallel
backend builds on.

Since the zero-allocation rewrite, all scratch lives in a pooled
:class:`~repro.core.backends.workspace.SweepWorkspace` acquired from the
plan side's store: gathers go through ``np.take(out=)``, sparse products
through the workspace's plan-cached operators (the fit-constant
``positives`` CSR and the ``scatter`` CSR whose data is overwritten in
place), and the gradient/objective/Armijo arithmetic runs in place.  The
float64 factors are bit-identical to the pre-rewrite allocating kernel —
identical operations in identical order, only the storage is reused — which
the test suite asserts against the preserved legacy replica in
:mod:`repro.experiments.training_hotpath`.  Under float32 the objective
reductions now stay in float32 (the old ``np.bincount`` silently
accumulated in float64), keeping every intermediate in the training dtype.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp

from repro.core.backends.base import Backend, SweepStats
from repro.core.backends.plan import SweepSide
from repro.core.backends.workspace import (
    SweepWorkspace,
    csr_row_sums_into,
)
from repro.core.objective import (
    gradient_ratio,
    gradient_ratio_into,
    safe_log1mexp,
    safe_log1mexp_into,
)


class VectorizedBackend(Backend):
    """Batched projected gradient descent over all rows of one side."""

    name = "vectorized"

    def _sweep_rows(
        self,
        plan: SweepSide,
        row_factors: np.ndarray,
        col_factors: np.ndarray,
        regularization: float,
        sigma: float,
        beta: float,
        max_backtracks: int,
        start: int,
        stop: int,
        total_col_sum: np.ndarray,
    ) -> Tuple[np.ndarray, SweepStats]:
        dtype = row_factors.dtype
        if not (col_factors.dtype == dtype and plan.dtype == dtype):
            # Exotic mixed-dtype callers (the supported training and fold-in
            # paths always match factor and plan dtypes) keep the allocating
            # kernel — pooled buffers are single-dtype.
            return self._sweep_rows_unpooled(
                plan,
                row_factors,
                col_factors,
                regularization,
                sigma,
                beta,
                max_backtracks,
                start,
                stop,
                total_col_sum,
            )

        n_local = stop - start
        local_factors = row_factors[start:stop]
        store = plan.workspaces
        workspace = store.acquire(plan, start, stop, row_factors.shape[1], dtype)
        # Snapshot before release: once back on the free list the arena may
        # be handed to a concurrent sweep that flips ``fresh``.
        workspace_bytes = workspace.nbytes
        was_fresh = workspace.fresh
        try:
            new_factors, n_accepted, n_backtracks = self._pooled_sweep(
                workspace,
                local_factors,
                col_factors,
                regularization,
                sigma,
                beta,
                max_backtracks,
                total_col_sum,
            )
        finally:
            store.release(workspace)
        stats = SweepStats(
            n_rows=n_local,
            n_accepted=n_accepted,
            n_backtracks=n_backtracks,
            workspace_bytes=workspace_bytes,
            workspace_allocations=int(was_fresh),
            workspace_reuses=int(not was_fresh),
        )
        return new_factors, stats

    @staticmethod
    def _pooled_sweep(
        ws: SweepWorkspace,
        local_factors: np.ndarray,
        col_factors: np.ndarray,
        regularization: float,
        sigma: float,
        beta: float,
        max_backtracks: int,
        total_col_sum: np.ndarray,
    ) -> Tuple[np.ndarray, int, int]:
        """One sweep through the pooled arena; zero scratch allocations.

        Every operation below replicates the allocating kernel's exact
        elementwise sequence and grouping (additions left-to-right, scalar
        products commuted only where IEEE multiplication is exact), so
        float64 results are bit-identical.
        """
        n_local = ws.n_local

        # --- gradient of every row at the current point ------------------- #
        # mode="clip" everywhere: plan indices are in range by construction,
        # and clip mode lets ``take`` write straight into the pooled block
        # (mode="raise" buffers through a fresh temporary).
        np.take(local_factors, ws.entry_rows, axis=0, out=ws.gather_rows, mode="clip")
        np.take(col_factors, ws.indices, axis=0, out=ws.gather_cols, mode="clip")
        affinities = np.einsum(
            "ij,ij->i", ws.gather_rows, ws.gather_cols, out=ws.entry_a
        )
        ratios = gradient_ratio_into(affinities, out=ws.entry_b, scratch=ws.entry_c)
        if ws.entry_weights is not None:
            np.multiply(ratios, ws.entry_weights, out=ratios)
        # The ratios buffer *is* the scatter operator's data — overwritten in
        # place each sweep, structure cached since the plan is fit-constant.
        gradients = ws.grad_rows
        ws.scatter_matmul(col_factors, out=gradients)

        unknown_sums = ws.unknown_rows
        ws.positives_matmul(col_factors, out=unknown_sums)
        np.subtract(total_col_sum[np.newaxis, :], unknown_sums, out=unknown_sums)

        # gradients = -gradient_positive + unknown_sums + 2 lambda f, grouped
        # left to right as in the allocating kernel.
        np.negative(gradients, out=gradients)
        np.add(gradients, unknown_sums, out=gradients)
        np.multiply(local_factors, 2.0 * regularization, out=ws.scratch_rows)
        np.add(gradients, ws.scratch_rows, out=gradients)

        # --- current per-row objective values ------------------------------ #
        # The affinities at the current point were just computed for the
        # gradient; reuse them for the objective instead of a second einsum.
        log_terms = safe_log1mexp_into(affinities, out=affinities)
        if ws.entry_weights is not None:
            np.multiply(log_terms, ws.entry_weights, out=log_terms)
        current_values = ws.current_values
        csr_row_sums_into(
            ws.row_starts, ws.indices, log_terms, ws.local_shape,
            ws.ones_cols, current_values,
        )  # fmt: skip
        np.negative(current_values, out=current_values)
        np.einsum("ij,ij->i", local_factors, unknown_sums, out=ws.row_tmp)
        np.add(current_values, ws.row_tmp, out=current_values)
        np.einsum("ij,ij->i", local_factors, local_factors, out=ws.row_tmp)
        np.multiply(ws.row_tmp, regularization, out=ws.row_tmp)
        np.add(current_values, ws.row_tmp, out=current_values)

        # --- batched Armijo backtracking ----------------------------------- #
        # The one per-sweep allocation: the returned factors are caller-owned
        # and cannot live in the pool.
        new_factors = local_factors.copy()
        # The still-active rows are kept compacted in ping-pong index/step
        # buffers instead of a boolean mask: ``np.compress(out=)`` preserves
        # order, so the compacted sets equal the old ``np.flatnonzero`` ones,
        # and the per-row step values (beta ** iteration) are carried along.
        cur_rows, cur_steps = ws.arange_rows, ws.step_a
        cur_steps.fill(1.0)
        nxt_rows, nxt_steps = ws.active_a, ws.step_b
        n_active = n_local
        n_backtracks = 0

        for _ in range(max_backtracks + 1):
            if n_active == 0:
                break
            act = cur_rows[:n_active]
            steps = cur_steps[:n_active]
            grads = ws.grad_gather[:n_active]
            np.take(gradients, act, axis=0, out=grads, mode="clip")
            lf = ws.lf_rows[:n_active]
            np.take(local_factors, act, axis=0, out=lf, mode="clip")
            candidates = ws.cand_rows[:n_active]
            np.multiply(grads, steps[:, np.newaxis], out=candidates)
            np.subtract(lf, candidates, out=candidates)
            np.maximum(0.0, candidates, out=candidates)

            candidate_values = VectorizedBackend._candidate_objectives(
                ws, candidates, act, col_factors, regularization
            )

            differences = ws.diff_rows[:n_active]
            np.subtract(candidates, lf, out=differences)
            rhs = ws.armijo_rhs[:n_active]
            np.einsum("ij,ij->i", grads, differences, out=rhs)
            np.multiply(rhs, sigma, out=rhs)

            margin = ws.row_tmp[:n_active]
            np.take(current_values, act, out=margin, mode="clip")
            np.subtract(candidate_values, margin, out=margin)
            accepted = ws.accepted[:n_active]
            np.less_equal(margin, rhs, out=accepted)

            n_acc = int(np.count_nonzero(accepted))
            if n_acc:
                acc_rows = ws.accepted_rows[:n_acc]
                np.compress(accepted, act, out=acc_rows)
                # The local-factor gather is dead by now; reuse its block for
                # the accepted candidates so the scatter reads compacted rows.
                acc_cand = ws.lf_rows[:n_acc]
                np.compress(accepted, candidates, axis=0, out=acc_cand)
                new_factors[acc_rows] = acc_cand
            n_backtracks += n_active - n_acc
            n_next = n_active - n_acc
            if n_next:
                rejected = ws.not_accepted[:n_active]
                np.logical_not(accepted, out=rejected)
                np.compress(rejected, act, out=nxt_rows[:n_next])
                np.compress(rejected, steps, out=nxt_steps[:n_next])
                np.multiply(nxt_steps[:n_next], beta, out=nxt_steps[:n_next])
            cur_rows, cur_steps = nxt_rows, nxt_steps
            nxt_rows = ws.active_b if cur_rows is ws.active_a else ws.active_a
            nxt_steps = ws.step_b if cur_steps is ws.step_a else ws.step_a
            n_active = n_next

        return new_factors, n_local - n_active, n_backtracks

    # ------------------------------------------------------------------ #
    # Row objective helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _candidate_objectives(
        ws: SweepWorkspace,
        candidates: np.ndarray,
        active_rows: np.ndarray,
        col_factors: np.ndarray,
        regularization: float,
    ) -> np.ndarray:
        """Objective values of the active rows at their Armijo candidates.

        ``candidates[k]`` is the candidate for the shard-local row
        ``active_rows[k]``.  Writes into ``ws.candidate_values`` — zero
        allocations.  On the first backtracking iteration every row is
        active, so the plan's cached full-range entry structure is reused
        verbatim (no index building at all); later, shrinking active sets
        build a sub-CSR in pooled integer buffers via a compress /
        boundary-scatter / cumsum expansion instead of the allocating
        ``np.arange``/``np.repeat`` machinery the old kernel rebuilt per
        backtrack iteration.
        """
        n_active = candidates.shape[0]
        out = ws.candidate_values[:n_active]
        weights = ws.entry_weights
        positions = None

        if n_active == ws.n_local:
            total = ws.nnz_local
            rows_entries = ws.entry_rows
            cols_entries = ws.indices
            sub_indptr = ws.row_starts
        else:
            starts = ws.starts[:n_active]
            np.take(ws.row_starts, active_rows, out=starts, mode="clip")
            counts = ws.counts[:n_active]
            np.add(active_rows, 1, out=counts)
            ends = ws.ends[:n_active]
            np.take(ws.row_starts, counts, out=ends, mode="clip")
            np.subtract(ends, starts, out=counts)
            sub_indptr = ws.sub_indptr[: n_active + 1]
            sub_indptr[0] = 0
            np.cumsum(counts, out=sub_indptr[1:])
            total = int(sub_indptr[n_active])
            if total:
                # Expand per-entry (row id, CSR position) for the active
                # rows without ``np.repeat`` (which cannot write into a
                # pooled buffer): compress away empty rows, scatter ones at
                # the segment boundaries, cumsum into segment ids, then
                # gather.  Integer arithmetic — exact by construction.
                nonempty = ws.nonempty[:n_active]
                np.greater(counts, 0, out=nonempty)
                n_nonempty = int(np.count_nonzero(nonempty))
                ne_rows = ws.ne_rows[:n_nonempty]
                np.compress(nonempty, ws.arange_rows[:n_active], out=ne_rows)
                ne_starts = ws.ne_starts[:n_nonempty]
                np.compress(nonempty, starts, out=ne_starts)
                ne_offsets = ws.ne_offsets[:n_nonempty]
                np.compress(nonempty, sub_indptr[:n_active], out=ne_offsets)
                seg = ws.entry_seg[:total]
                seg.fill(0)
                seg[ne_offsets[1:]] = 1
                np.cumsum(seg, out=seg)
                rows_entries = ws.entry_row_ids[:total]
                np.take(ne_rows, seg, out=rows_entries, mode="clip")
                positions = ws.entry_pos[:total]
                np.take(ne_starts, seg, out=positions, mode="clip")
                cols_entries = ws.entry_col_ids[:total]
                np.take(ne_offsets, seg, out=cols_entries, mode="clip")
                np.subtract(ws.arange_entries[:total], cols_entries, out=cols_entries)
                np.add(positions, cols_entries, out=positions)
                np.take(ws.indices, positions, out=cols_entries, mode="clip")

        if total:
            rows_gather = ws.gather_rows[:total]
            np.take(candidates, rows_entries, axis=0, out=rows_gather, mode="clip")
            cols_gather = ws.gather_cols[:total]
            np.take(col_factors, cols_entries, axis=0, out=cols_gather, mode="clip")
            affinities = ws.entry_a[:total]
            np.einsum("ij,ij->i", rows_gather, cols_gather, out=affinities)
            log_terms = safe_log1mexp_into(affinities, out=affinities)
            if weights is not None:
                if positions is None:
                    np.multiply(log_terms, weights, out=log_terms)
                else:
                    entry_w = ws.entry_b[:total]
                    np.take(weights, positions, out=entry_w, mode="clip")
                    np.multiply(log_terms, entry_w, out=log_terms)
            csr_row_sums_into(
                sub_indptr, cols_entries, log_terms,
                (n_active, ws.n_cols), ws.ones_cols, out,
            )  # fmt: skip
            np.negative(out, out=out)
        else:
            # The allocating kernel fell back to float64 ``np.zeros`` here
            # even under float32 training; the pooled buffer keeps the
            # training dtype (the dtype-consistency rule).
            out.fill(0)

        unknown = ws.scratch_rows[:n_active]
        np.take(ws.unknown_rows, active_rows, axis=0, out=unknown, mode="clip")
        tmp = ws.row_tmp2[:n_active]
        np.einsum("ij,ij->i", candidates, unknown, out=tmp)
        np.add(out, tmp, out=out)
        np.einsum("ij,ij->i", candidates, candidates, out=tmp)
        np.multiply(tmp, regularization, out=tmp)
        np.add(out, tmp, out=out)
        return out

    # ------------------------------------------------------------------ #
    # Allocating fallback (mixed factor/plan dtypes only)
    # ------------------------------------------------------------------ #
    def _sweep_rows_unpooled(
        self,
        plan: SweepSide,
        row_factors: np.ndarray,
        col_factors: np.ndarray,
        regularization: float,
        sigma: float,
        beta: float,
        max_backtracks: int,
        start: int,
        stop: int,
        total_col_sum: np.ndarray,
    ) -> Tuple[np.ndarray, SweepStats]:
        """The pre-workspace allocating kernel, kept for mixed-dtype sweeps.

        Callers that pass factors whose dtype differs from the plan's (or
        from each other) get numpy's usual upcasting semantics, exactly as
        before the rewrite.  The supported paths never take this branch; a
        second verbatim copy frozen as the benchmark baseline lives in
        :mod:`repro.experiments.training_hotpath`.
        """
        indptr = plan.matrix.indptr
        first, last = int(indptr[start]), int(indptr[stop])
        n_local = stop - start
        local_factors = row_factors[start:stop]

        entry_rows = plan.row_index[first:last] - start
        entry_cols = plan.matrix.indices[first:last]
        entry_weights = (
            None if plan.entry_weights is None else plan.entry_weights[first:last]
        )
        local_indptr = indptr[start : stop + 1] - first
        local_shape = (n_local, plan.n_cols)

        affinities = np.einsum(
            "ij,ij->i", local_factors[entry_rows], col_factors[entry_cols]
        )
        ratios = gradient_ratio(affinities)
        if entry_weights is not None:
            ratios = ratios * entry_weights
        scatter = sp.csr_matrix((ratios, entry_cols, local_indptr), shape=local_shape)
        gradient_positive = scatter @ col_factors

        positives = sp.csr_matrix(
            (plan.matrix.data[first:last], entry_cols, local_indptr), shape=local_shape
        )
        positive_sums = positives @ col_factors
        unknown_sums = total_col_sum[np.newaxis, :] - positive_sums

        gradients = -gradient_positive + unknown_sums + 2.0 * regularization * local_factors

        log_terms = safe_log1mexp(affinities)
        if entry_weights is not None:
            log_terms = log_terms * entry_weights
        positive_part = -np.bincount(entry_rows, weights=log_terms, minlength=n_local)
        unknown_part = np.einsum("ij,ij->i", local_factors, unknown_sums)
        penalty = regularization * np.einsum("ij,ij->i", local_factors, local_factors)
        current_values = positive_part + unknown_part + penalty

        new_factors = local_factors.copy()
        step_sizes = np.ones(n_local, dtype=row_factors.dtype)
        active = np.ones(n_local, dtype=bool)
        n_backtracks = 0

        for _ in range(max_backtracks + 1):
            if not active.any():
                break
            active_rows = np.flatnonzero(active)
            candidates = np.maximum(
                0.0,
                local_factors[active_rows]
                - step_sizes[active_rows, np.newaxis] * gradients[active_rows],
            )
            candidate_values = self._candidate_objectives_unpooled(
                plan,
                candidates,
                active_rows,
                start,
                col_factors,
                unknown_sums,
                regularization,
            )
            differences = candidates - local_factors[active_rows]
            armijo_rhs = sigma * np.einsum("ij,ij->i", gradients[active_rows], differences)
            accepted = (candidate_values - current_values[active_rows]) <= armijo_rhs

            accepted_rows = active_rows[accepted]
            new_factors[accepted_rows] = candidates[accepted]
            active[accepted_rows] = False
            n_backtracks += int(np.count_nonzero(~accepted))
            step_sizes[active] *= beta

        n_accepted = int(n_local - np.count_nonzero(active))
        stats = SweepStats(n_rows=n_local, n_accepted=n_accepted, n_backtracks=n_backtracks)
        return new_factors, stats

    @staticmethod
    def _candidate_objectives_unpooled(
        plan: SweepSide,
        candidate_factors: np.ndarray,
        active_rows: np.ndarray,
        start: int,
        col_factors: np.ndarray,
        unknown_sums: np.ndarray,
        regularization: float,
    ) -> np.ndarray:
        """Allocating candidate objectives, paired with the unpooled sweep."""
        n_active = len(active_rows)
        indptr, indices = plan.matrix.indptr, plan.matrix.indices
        global_rows = active_rows + start
        counts = (indptr[global_rows + 1] - indptr[global_rows]).astype(np.int64)
        total_entries = int(counts.sum())

        if total_entries:
            starts = indptr[global_rows].astype(np.int64)
            offsets = np.arange(total_entries) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            entry_positions = np.repeat(starts, counts) + offsets
            rows_entries = np.repeat(np.arange(n_active), counts)
            cols_entries = indices[entry_positions]

            affinities = np.einsum(
                "ij,ij->i", candidate_factors[rows_entries], col_factors[cols_entries]
            )
            log_terms = safe_log1mexp(affinities)
            if plan.entry_weights is not None:
                log_terms = log_terms * plan.entry_weights[entry_positions]
            positive_part = -np.bincount(rows_entries, weights=log_terms, minlength=n_active)
        else:
            positive_part = np.zeros(n_active)

        unknown_part = np.einsum("ij,ij->i", candidate_factors, unknown_sums[active_rows])
        penalty = regularization * np.einsum("ij,ij->i", candidate_factors, candidate_factors)
        return positive_part + unknown_part + penalty
