"""Vectorized (batched) backend — the GPU-kernel stand-in.

The paper's CUDA kernel (Section VI-A) parallelises the gradient computation
over the positive ratings: each positive ``(u, i)`` contributes
``f_u * alpha(<f_u, f_i>)`` to item ``i``'s gradient, accumulated with atomic
adds.  The same structure maps onto one sparse-matrix product here:

* compute the affinity of every positive entry in one ``einsum`` over the
  plan's precomputed entry list (the "thread block per rating" of the paper),
* scatter ``weight * alpha(affinity)`` back into a sparse matrix and multiply
  it by the fixed factors to accumulate all row gradients at once (the
  atomic-add reduction),
* run the Armijo backtracking for all rows simultaneously, masking out rows
  whose step has already been accepted.

The result is mathematically identical to the reference backend but runs one
to two orders of magnitude faster in NumPy, which is what the Figure 8
benchmark measures.

Every kernel is *row-local*: the gradient, objective and line search of a
row never read another row's state, and all row reductions accumulate in CSR
entry order.  Sweeping the range ``[a, b)`` therefore produces bit-for-bit
the rows ``[a, b)`` of a full sweep — the invariant the sharded parallel
backend builds on.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp

from repro.core.backends.base import Backend, SweepStats
from repro.core.backends.plan import SweepSide
from repro.core.objective import gradient_ratio, safe_log1mexp


class VectorizedBackend(Backend):
    """Batched projected gradient descent over all rows of one side."""

    name = "vectorized"

    def _sweep_rows(
        self,
        plan: SweepSide,
        row_factors: np.ndarray,
        col_factors: np.ndarray,
        regularization: float,
        sigma: float,
        beta: float,
        max_backtracks: int,
        start: int,
        stop: int,
        total_col_sum: np.ndarray,
    ) -> Tuple[np.ndarray, SweepStats]:
        indptr = plan.matrix.indptr
        first, last = int(indptr[start]), int(indptr[stop])
        n_local = stop - start
        local_factors = row_factors[start:stop]

        entry_rows = plan.row_index[first:last] - start
        entry_cols = plan.matrix.indices[first:last]
        entry_weights = (
            None if plan.entry_weights is None else plan.entry_weights[first:last]
        )
        # The local rows reuse the global CSR structure: data/indices slices
        # are views, and the index pointer is rebased to the shard origin.
        local_indptr = indptr[start : stop + 1] - first
        local_shape = (n_local, plan.n_cols)

        # --- gradient of every row at the current point ------------------- #
        affinities = np.einsum(
            "ij,ij->i", local_factors[entry_rows], col_factors[entry_cols]
        )
        ratios = gradient_ratio(affinities)
        if entry_weights is not None:
            ratios = ratios * entry_weights
        # CSR order is row-major, so the per-entry ratios scatter through the
        # (rebased) CSR structure directly — no COO rebuild, no re-sorting.
        scatter = sp.csr_matrix((ratios, entry_cols, local_indptr), shape=local_shape)
        gradient_positive = scatter @ col_factors

        positives = sp.csr_matrix(
            (plan.matrix.data[first:last], entry_cols, local_indptr), shape=local_shape
        )
        positive_sums = positives @ col_factors
        unknown_sums = total_col_sum[np.newaxis, :] - positive_sums

        gradients = -gradient_positive + unknown_sums + 2.0 * regularization * local_factors

        # --- current per-row objective values ------------------------------ #
        # The affinities at the current point were just computed for the
        # gradient; reuse them for the objective instead of a second einsum.
        log_terms = safe_log1mexp(affinities)
        if entry_weights is not None:
            log_terms = log_terms * entry_weights
        positive_part = -np.bincount(entry_rows, weights=log_terms, minlength=n_local)
        unknown_part = np.einsum("ij,ij->i", local_factors, unknown_sums)
        penalty = regularization * np.einsum("ij,ij->i", local_factors, local_factors)
        current_values = positive_part + unknown_part + penalty

        # --- batched Armijo backtracking ----------------------------------- #
        new_factors = local_factors.copy()
        step_sizes = np.ones(n_local, dtype=row_factors.dtype)
        active = np.ones(n_local, dtype=bool)
        n_backtracks = 0

        for _ in range(max_backtracks + 1):
            if not active.any():
                break
            active_rows = np.flatnonzero(active)
            candidates = np.maximum(
                0.0,
                local_factors[active_rows]
                - step_sizes[active_rows, np.newaxis] * gradients[active_rows],
            )
            candidate_values = self._candidate_objectives(
                plan,
                candidates,
                active_rows,
                start,
                col_factors,
                unknown_sums,
                regularization,
            )
            differences = candidates - local_factors[active_rows]
            armijo_rhs = sigma * np.einsum("ij,ij->i", gradients[active_rows], differences)
            accepted = (candidate_values - current_values[active_rows]) <= armijo_rhs

            accepted_rows = active_rows[accepted]
            new_factors[accepted_rows] = candidates[accepted]
            active[accepted_rows] = False
            n_backtracks += int(np.count_nonzero(~accepted))
            step_sizes[active] *= beta

        n_accepted = int(n_local - np.count_nonzero(active))
        stats = SweepStats(n_rows=n_local, n_accepted=n_accepted, n_backtracks=n_backtracks)
        return new_factors, stats

    # ------------------------------------------------------------------ #
    # Row objective helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _candidate_objectives(
        plan: SweepSide,
        candidate_factors: np.ndarray,
        active_rows: np.ndarray,
        start: int,
        col_factors: np.ndarray,
        unknown_sums: np.ndarray,
        regularization: float,
    ) -> np.ndarray:
        """Objective values of ``active_rows`` evaluated at ``candidate_factors``.

        ``candidate_factors[k]`` is the candidate for the shard-local row
        ``active_rows[k]`` (global row ``start + active_rows[k]``).  The
        positive entries of the active rows are gathered directly from the
        plan's CSR structure, so a late backtracking pass over a handful of
        stubborn rows costs only those rows' entries rather than a scan of
        the whole matrix.
        """
        n_active = len(active_rows)
        indptr, indices = plan.matrix.indptr, plan.matrix.indices
        global_rows = active_rows + start
        counts = (indptr[global_rows + 1] - indptr[global_rows]).astype(np.int64)
        total_entries = int(counts.sum())

        if total_entries:
            starts = indptr[global_rows].astype(np.int64)
            offsets = np.arange(total_entries) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            entry_positions = np.repeat(starts, counts) + offsets
            rows_entries = np.repeat(np.arange(n_active), counts)
            cols_entries = indices[entry_positions]

            affinities = np.einsum(
                "ij,ij->i", candidate_factors[rows_entries], col_factors[cols_entries]
            )
            log_terms = safe_log1mexp(affinities)
            if plan.entry_weights is not None:
                log_terms = log_terms * plan.entry_weights[entry_positions]
            positive_part = -np.bincount(rows_entries, weights=log_terms, minlength=n_active)
        else:
            positive_part = np.zeros(n_active)

        unknown_part = np.einsum("ij,ij->i", candidate_factors, unknown_sums[active_rows])
        penalty = regularization * np.einsum("ij,ij->i", candidate_factors, candidate_factors)
        return positive_part + unknown_part + penalty
