"""Reference (per-row loop) backend.

A direct transcription of Section IV-D: for each row factor ``f_i``, compute
the gradient (6) using the precomputed sum over unknown columns, take one
projected-gradient step, and pick the step size with the Armijo rule along
the projection arc.  The per-row Python loop makes this the slow-but-obvious
implementation — it stands in for the paper's single-threaded CPU code in the
Figure 8 comparison and acts as the ground truth the vectorized backend is
tested against.

Because each loop iteration only touches one row, sweeping a row range
``[a, b)`` is simply the loop restricted to those rows; the entry weights
and CSR structure come precomputed from the plan.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.backends.base import Backend, SweepStats
from repro.core.backends.plan import SweepSide
from repro.core.objective import (
    armijo_accept,
    row_gradient,
    row_objective,
)


class ReferenceBackend(Backend):
    """Row-by-row projected gradient descent with Armijo backtracking."""

    name = "reference"

    def _sweep_rows(
        self,
        plan: SweepSide,
        row_factors: np.ndarray,
        col_factors: np.ndarray,
        regularization: float,
        sigma: float,
        beta: float,
        max_backtracks: int,
        start: int,
        stop: int,
        total_col_sum: np.ndarray,
    ) -> Tuple[np.ndarray, SweepStats]:
        indptr, indices = plan.matrix.indptr, plan.matrix.indices
        new_factors = row_factors[start:stop].copy()

        n_accepted = 0
        n_backtracks = 0
        for local, row in enumerate(range(start, stop)):
            first, last = indptr[row], indptr[row + 1]
            positive_cols = indices[first:last]
            positive_col_factors = col_factors[positive_cols]

            weights = (
                None if plan.entry_weights is None else plan.entry_weights[first:last]
            )
            unknown_sum = total_col_sum - positive_col_factors.sum(axis=0)

            current = row_factors[row]
            gradient = row_gradient(
                current, positive_col_factors, weights, unknown_sum, regularization
            )
            current_value = row_objective(
                current, positive_col_factors, weights, unknown_sum, regularization
            )

            step = 1.0
            accepted = False
            for _ in range(max_backtracks + 1):
                candidate = np.maximum(0.0, current - step * gradient)
                candidate_value = row_objective(
                    candidate, positive_col_factors, weights, unknown_sum, regularization
                )
                if armijo_accept(
                    current_value, candidate_value, gradient, candidate - current, sigma
                ):
                    new_factors[local] = candidate
                    accepted = True
                    break
                step *= beta
                n_backtracks += 1
            if accepted:
                n_accepted += 1

        stats = SweepStats(
            n_rows=stop - start, n_accepted=n_accepted, n_backtracks=n_backtracks
        )
        return new_factors, stats
