"""Reference (per-row loop) backend.

A direct transcription of Section IV-D: for each row factor ``f_i``, compute
the gradient (6) using the precomputed sum over unknown columns, take one
projected-gradient step, and pick the step size with the Armijo rule along
the projection arc.  The per-row Python loop makes this the slow-but-obvious
implementation — it stands in for the paper's single-threaded CPU code in the
Figure 8 comparison and acts as the ground truth the vectorized backend is
tested against.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.core.backends.base import Backend, SweepStats
from repro.core.objective import (
    armijo_accept,
    row_gradient,
    row_objective,
)


class ReferenceBackend(Backend):
    """Row-by-row projected gradient descent with Armijo backtracking."""

    name = "reference"

    def sweep(
        self,
        matrix: sp.csr_matrix,
        row_factors: np.ndarray,
        col_factors: np.ndarray,
        regularization: float,
        row_positive_weights: Optional[np.ndarray] = None,
        col_positive_weights: Optional[np.ndarray] = None,
        sigma: float = 0.1,
        beta: float = 0.5,
        max_backtracks: int = 20,
    ) -> Tuple[np.ndarray, SweepStats]:
        matrix = sp.csr_matrix(matrix)
        n_rows = matrix.shape[0]
        new_factors = row_factors.copy()

        # Precompute sum_c f_c once per sweep (the trick of Section IV-D):
        # the unknown-column sum for a row is the total minus its positives.
        total_col_sum = col_factors.sum(axis=0)

        n_accepted = 0
        n_backtracks = 0
        for row in range(n_rows):
            start, stop = matrix.indptr[row], matrix.indptr[row + 1]
            positive_cols = matrix.indices[start:stop]
            positive_col_factors = col_factors[positive_cols]

            weights = self._positive_weights_for_row(
                row, positive_cols, row_positive_weights, col_positive_weights
            )
            unknown_sum = total_col_sum - positive_col_factors.sum(axis=0)

            current = row_factors[row]
            gradient = row_gradient(
                current, positive_col_factors, weights, unknown_sum, regularization
            )
            current_value = row_objective(
                current, positive_col_factors, weights, unknown_sum, regularization
            )

            step = 1.0
            accepted = False
            for _ in range(max_backtracks + 1):
                candidate = np.maximum(0.0, current - step * gradient)
                candidate_value = row_objective(
                    candidate, positive_col_factors, weights, unknown_sum, regularization
                )
                if armijo_accept(
                    current_value, candidate_value, gradient, candidate - current, sigma
                ):
                    new_factors[row] = candidate
                    accepted = True
                    break
                step *= beta
                n_backtracks += 1
            if accepted:
                n_accepted += 1

        stats = SweepStats(n_rows=n_rows, n_accepted=n_accepted, n_backtracks=n_backtracks)
        return new_factors, stats

    @staticmethod
    def _positive_weights_for_row(
        row: int,
        positive_cols: np.ndarray,
        row_positive_weights: Optional[np.ndarray],
        col_positive_weights: Optional[np.ndarray],
    ) -> Optional[np.ndarray]:
        """Weights of this row's positive entries (``None`` when all are 1)."""
        if row_positive_weights is None and col_positive_weights is None:
            return None
        weights = np.ones(len(positive_cols))
        if row_positive_weights is not None:
            weights = weights * row_positive_weights[row]
        if col_positive_weights is not None:
            weights = weights * col_positive_weights[positive_cols]
        return weights
