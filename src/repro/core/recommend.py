"""Batch recommendation reports: ranked items plus their explanations.

This is the piece a deployment actually consumes (Section VIII): for each
client, a short ranked list of products, each with its confidence, the
co-cluster rationale and — in the B2B setting — a price estimate.  The
report object renders to plain text (the examples print it) and to a list of
dictionaries (a JSON-friendly form for a UI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.explain import Explanation, explain_recommendation
from repro.exceptions import NotFittedError


@dataclass
class RecommendationReport:
    """Top-M recommendations for one user, each with its explanation.

    Attributes
    ----------
    user:
        User index the report is for.
    user_label:
        Human-readable user/client name.
    explanations:
        One :class:`~repro.core.explain.Explanation` per recommended item,
        in rank order.
    """

    user: int
    user_label: str
    explanations: List[Explanation] = field(default_factory=list)

    @property
    def items(self) -> List[int]:
        """Recommended item indices in rank order."""
        return [explanation.item for explanation in self.explanations]

    @property
    def confidences(self) -> List[float]:
        """Model confidences aligned with :attr:`items`."""
        return [explanation.confidence for explanation in self.explanations]

    def to_text(self) -> str:
        """Render the full report (rank, confidence, rationale per item)."""
        lines = [f"Recommendations for {self.user_label}:"]
        for rank, explanation in enumerate(self.explanations, start=1):
            lines.append(f"{rank}. {explanation.item_label} (confidence {explanation.confidence:.2f})")
            rationale = explanation.to_text().splitlines()[1:]
            lines.extend(rationale)
        return "\n".join(lines)

    def to_records(self) -> List[Dict[str, object]]:
        """JSON-friendly list of per-item records."""
        return [explanation.to_dict() for explanation in self.explanations]


def recommend_with_explanations(
    model,
    user: int,
    n_items: int = 5,
    max_peers: int = 3,
    max_evidence_items: int = 5,
    deal_values: Optional[Dict[tuple, float]] = None,
    ranked: Optional[Sequence[int]] = None,
) -> RecommendationReport:
    """Produce a :class:`RecommendationReport` for one user.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.core.ocular.OCuLaR` (or subclass).
    user:
        User index.
    n_items:
        Number of recommendations.
    max_peers, max_evidence_items:
        Limits on how much evidence each co-cluster contributes to the text.
    deal_values:
        Optional ``(user, item) -> price`` history for price estimates.
    ranked:
        Optional precomputed ranked item list for ``user`` (as produced by
        the serving engine); when omitted, the ranking is computed through
        the engine's single-user path.
    """
    if getattr(model, "factors_", None) is None:
        raise NotFittedError("recommend_with_explanations requires a fitted OCuLaR model")
    if ranked is None:
        from repro.serving.engine import TopNEngine

        ranked = TopNEngine.from_model(model).recommend_user(
            user, n_items=n_items, exclude_seen=True
        )
    explanations = [
        explain_recommendation(
            model,
            user,
            int(item),
            max_peers=max_peers,
            max_evidence_items=max_evidence_items,
            deal_values=deal_values,
        )
        for item in ranked
    ]
    return RecommendationReport(
        user=user,
        user_label=model.train_matrix.label_of_user(user),
        explanations=explanations,
    )


def batch_reports(
    model,
    users: Sequence[int],
    n_items: int = 5,
    deal_values: Optional[Dict[tuple, float]] = None,
) -> List[RecommendationReport]:
    """Reports for several users (the nightly batch of a deployment).

    All users are ranked in one pass through the chunked serving engine —
    one BLAS call per chunk rather than one scoring call per user — and the
    (Python-heavy) explanation rendering then consumes the precomputed
    rankings.
    """
    from repro.serving.engine import TopNEngine

    user_list = [int(user) for user in users]
    if not user_list:
        return []
    engine = TopNEngine.from_model(model)
    rankings = engine.recommend_batch(user_list, n_items=n_items, exclude_seen=True)
    return [
        recommend_with_explanations(
            model,
            user,
            n_items=n_items,
            deal_values=deal_values,
            ranked=np.asarray(ranking),
        )
        for user, ranking in zip(user_list, rankings)
    ]
