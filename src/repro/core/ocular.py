"""The OCuLaR recommender (Overlapping co-CLuster Recommendation).

This is the paper's primary contribution (Section IV): a one-class
collaborative filtering model whose non-negative factors encode overlapping
co-cluster memberships, fitted by alternating single projected-gradient steps
with Armijo backtracking, and whose recommendations come with co-cluster
based explanations.

Typical use::

    from repro import OCuLaR
    from repro.data import make_movielens_like, train_test_split

    matrix, _ = make_movielens_like()
    split = train_test_split(matrix, random_state=0)
    model = OCuLaR(n_coclusters=50, regularization=10.0, random_state=0)
    model.fit(split.train)
    top = model.recommend(user=3, n_items=10)
    explanation = model.explain(user=3, item=int(top[0]))
    print(explanation.to_text())
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.base import Recommender
from repro.core.backends import Backend
from repro.core.coclusters import CoCluster, extract_coclusters
from repro.core.factors import FactorModel
from repro.core.init import initialize_factors
from repro.core.objective import relative_user_weights
from repro.core.optimizer import BlockCoordinateTrainer, TrainingHistory
from repro.data.interactions import InteractionMatrix
from repro.exceptions import ConfigurationError
from repro.utils.rng import RandomStateLike
from repro.utils.validation import (
    check_float_dtype,
    check_non_negative_float,
    check_positive_int,
    check_unit_interval_open,
)


class OCuLaR(Recommender):
    """Overlapping co-cluster recommender for one-class feedback.

    Parameters
    ----------
    n_coclusters:
        Number of co-clusters ``K``.  The paper selects it (together with
        ``regularization``) by cross-validated grid search; 100-200 works
        well on MovieLens-scale data.
    regularization:
        L2 penalty ``lambda`` on the factors.  ``lambda > 0`` makes every
        block subproblem strongly convex; ``lambda = 0`` is allowed but both
        the paper (Figure 6) and our tests show it hurts accuracy.
    max_iterations:
        Cap on the number of outer iterations (item sweep + user sweep).
    tolerance:
        Relative objective improvement below which training stops
        ("convergence is declared if Q stops decreasing").
    sigma, beta:
        Armijo line-search constants in (0, 1) (paper Section IV-D).
    max_backtracks:
        Per-row cap on step-size halvings.
    init:
        Factor initialisation strategy, ``"random"`` or ``"degree"``.
    init_scale:
        Multiplier applied to the initial factors.
    backend:
        ``"vectorized"`` (default, batched NumPy — the GPU-style kernel),
        ``"reference"`` (per-row loop — the CPU-style transcription), or
        ``"parallel"`` (nnz-balanced row shards of the vectorized sweeps
        fanned across an executor; factors are bit-identical to
        ``"vectorized"`` for every executor and shard count).
    n_workers:
        Worker-pool size for ``backend="parallel"``; defaults to the CPU
        count.  Invalid with any other backend.
    executor:
        Shard executor for ``backend="parallel"``: ``"thread"`` (default;
        kernels release the GIL), ``"process"`` (worker processes fed
        through shared memory — sidesteps the GIL entirely), or
        ``"serial"``.  Invalid with any other backend.
    dtype:
        Training precision, ``"float64"`` (default) or ``"float32"``.
        float32 halves factor memory for large fits; the fitted factors
        keep this dtype.
    inner_sweeps:
        Projected-gradient sweeps per block before alternating (default 1,
        the paper's recommendation; larger values solve each block more
        exactly and are used by the ablation benchmark).
    user_weighting:
        ``None`` for the plain OCuLaR likelihood; ``"relative"`` for the
        R-OCuLaR weighting of Section V (see :class:`~repro.core.r_ocular.ROCuLaR`).
    plateau_tolerance:
        Optional plateau early-stop for warm-started refits: stop once the
        relative objective improvement stays below this value for
        ``plateau_patience`` consecutive iterations.  ``None`` (default)
        disables the rule, keeping cold fits bit-identical to earlier
        versions.  See :class:`~repro.core.optimizer.BlockCoordinateTrainer`.
    plateau_patience:
        Consecutive below-tolerance iterations before the plateau rule fires.
    random_state:
        Seed or pre-seeded :class:`numpy.random.Generator` controlling the
        factor initialisation (a Generator is used as-is, so warm and cold
        paths can share one RNG stream).

    Attributes
    ----------
    factors_:
        The fitted :class:`~repro.core.factors.FactorModel`.
    history_:
        :class:`~repro.core.optimizer.TrainingHistory` of the fit.
    """

    def __init__(
        self,
        n_coclusters: int = 50,
        regularization: float = 10.0,
        max_iterations: int = 100,
        tolerance: float = 1e-4,
        sigma: float = 0.1,
        beta: float = 0.5,
        max_backtracks: int = 20,
        init: str = "random",
        init_scale: float = 1.0,
        backend: Backend | str = "vectorized",
        n_workers: Optional[int] = None,
        executor: Optional[str] = None,
        dtype: str = "float64",
        inner_sweeps: int = 1,
        user_weighting: Optional[str] = None,
        plateau_tolerance: Optional[float] = None,
        plateau_patience: int = 2,
        random_state: RandomStateLike = None,
    ) -> None:
        self.n_coclusters = check_positive_int(n_coclusters, "n_coclusters")
        self.regularization = check_non_negative_float(regularization, "regularization")
        self.max_iterations = check_positive_int(max_iterations, "max_iterations")
        self.tolerance = check_non_negative_float(tolerance, "tolerance")
        self.sigma = check_unit_interval_open(sigma, "sigma")
        self.beta = check_unit_interval_open(beta, "beta")
        self.max_backtracks = check_positive_int(max_backtracks, "max_backtracks")
        self.inner_sweeps = check_positive_int(inner_sweeps, "inner_sweeps")
        if user_weighting not in (None, "relative"):
            raise ConfigurationError(
                f"user_weighting must be None or 'relative', got {user_weighting!r}"
            )
        if n_workers is not None:
            check_positive_int(n_workers, "n_workers")
        self.init = init
        self.init_scale = init_scale
        self.backend = backend
        self.n_workers = n_workers
        self.executor = executor
        self.dtype = check_float_dtype(dtype, "dtype")
        self.user_weighting = user_weighting
        if plateau_tolerance is not None:
            plateau_tolerance = check_non_negative_float(
                plateau_tolerance, "plateau_tolerance"
            )
        self.plateau_tolerance = plateau_tolerance
        self.plateau_patience = check_positive_int(plateau_patience, "plateau_patience")
        self.random_state = random_state

        self.factors_: Optional[FactorModel] = None
        self.history_: Optional[TrainingHistory] = None

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def fit(
        self,
        matrix: InteractionMatrix,
        callback=None,
        backend: Optional[Backend] = None,
        initial_factors=None,
        plateau_tolerance: Optional[float] = None,
        plateau_patience: Optional[int] = None,
    ) -> "OCuLaR":
        """Fit the co-cluster affiliation factors to a one-class matrix.

        Parameters
        ----------
        matrix:
            Training interactions.
        callback:
            Optional ``callback(iteration, history)``; returning ``True``
            stops training early (used by the time-budgeted benchmarks).
        backend:
            Optional :class:`~repro.core.backends.Backend` *instance* that
            overrides the configured backend for this fit only.  It is
            **borrowed** — never shut down by the fit — which is how
            :class:`~repro.runtime.RecommenderRuntime` threads one warm
            worker pool through every fit it runs.  The model's configured
            ``backend``/``n_workers``/``executor`` are left untouched.
        initial_factors:
            Optional warm start: a fitted
            :class:`~repro.core.factors.FactorModel` or a
            ``(user_factors, item_factors)`` tuple whose shapes match
            ``matrix`` and ``n_coclusters``.  The factors are copied (the
            source model is never mutated), cast to this model's ``dtype``
            and must be non-negative — previous-generation factors extended
            via :func:`repro.serving.fold_in.extend_factors` qualify.  When
            ``None`` (default) the usual random initialisation runs.
        plateau_tolerance, plateau_patience:
            Per-fit overrides of the plateau early-stop (see the constructor).
            Warm refits typically pass ``plateau_tolerance≈1e-3`` so they
            stop after the few sweeps they actually need.
        """
        csr = matrix.csr()
        if initial_factors is not None:
            user_factors, item_factors = self._coerce_initial_factors(
                initial_factors, n_users=csr.shape[0], n_items=csr.shape[1]
            )
        else:
            user_factors, item_factors = initialize_factors(
                csr,
                self.n_coclusters,
                method=self.init,
                scale=self.init_scale,
                random_state=self.random_state,
                dtype=self.dtype,
            )
        trainer = self._build_trainer(
            backend, **self._plateau_overrides(plateau_tolerance, plateau_patience)
        )
        user_weights = self._user_weights(csr)
        try:
            if initial_factors is not None:
                user_factors, item_factors, history = trainer.train(
                    csr,
                    user_weights=user_weights,
                    callback=callback,
                    initial_factors=(user_factors, item_factors),
                )
            else:
                user_factors, item_factors, history = trainer.train(
                    csr,
                    user_factors,
                    item_factors,
                    user_weights=user_weights,
                    callback=callback,
                )
        finally:
            # The trainer's BackendLease makes ownership explicit: a
            # name-configured backend is owned by this fit (pools and
            # shared-memory segments must not outlive it), while an instance
            # — including a runtime's warm backend — is borrowed and
            # survives.
            trainer.shutdown()
        self.factors_ = FactorModel(user_factors, item_factors)
        self.history_ = history
        self._set_train_matrix(matrix)
        return self

    def _coerce_initial_factors(self, initial_factors, n_users: int, n_items: int):
        """Validate and copy a warm start into this model's dtype.

        Accepts a :class:`~repro.core.factors.FactorModel` or a
        ``(user_factors, item_factors)`` pair; checks shapes against the
        training matrix and ``n_coclusters`` and rejects negative entries
        (the trainer requires a feasible point of the non-negative program).
        """
        if isinstance(initial_factors, FactorModel):
            pair = (initial_factors.user_factors, initial_factors.item_factors)
        else:
            try:
                pair = tuple(initial_factors)
            except TypeError:
                pair = ()
            if len(pair) != 2:
                raise ConfigurationError(
                    "initial_factors must be a FactorModel or a "
                    "(user_factors, item_factors) tuple"
                )
        user_factors = np.array(pair[0], dtype=self.dtype, copy=True)
        item_factors = np.array(pair[1], dtype=self.dtype, copy=True)
        expected = {
            "user_factors": (n_users, self.n_coclusters),
            "item_factors": (n_items, self.n_coclusters),
        }
        for name, array in (("user_factors", user_factors), ("item_factors", item_factors)):
            if array.ndim != 2 or array.shape != expected[name]:
                raise ConfigurationError(
                    f"initial {name} has shape {array.shape}, expected "
                    f"{expected[name]} — extend the factors to the new matrix "
                    "first (repro.serving.extend_factors)"
                )
            if array.size and array.min() < 0:
                raise ConfigurationError(
                    f"initial {name} contains negative entries; the trainer "
                    "requires a feasible (non-negative) starting point"
                )
        return user_factors, item_factors

    def _plateau_overrides(
        self, plateau_tolerance: Optional[float], plateau_patience: Optional[int]
    ) -> dict:
        """Trainer overrides for one fit's plateau rule (model values by default)."""
        overrides = dict(
            plateau_tolerance=self.plateau_tolerance,
            plateau_patience=self.plateau_patience,
        )
        if plateau_tolerance is not None:
            overrides["plateau_tolerance"] = plateau_tolerance
        if plateau_patience is not None:
            overrides["plateau_patience"] = plateau_patience
        return overrides

    def _build_trainer(
        self, backend: Optional[Backend] = None, **overrides
    ) -> BlockCoordinateTrainer:
        """Build the trainer for one fit, honouring a borrowed backend override.

        With ``backend=None`` the trainer resolves the model's configured
        backend (and owns it when that is a name); with an instance the
        trainer borrows it and ``n_workers``/``executor`` — which only make
        sense when the trainer constructs the pool itself — are not passed.
        A non-``Backend`` override is rejected here, so every fit entry
        point (:class:`OCuLaR` and its subclasses) enforces the
        borrowed-instance-only contract identically.
        """
        if backend is not None and not isinstance(backend, Backend):
            raise ConfigurationError(
                "the fit backend override must be a Backend instance (a borrowed "
                f"warm backend), got {backend!r}; configure names on the model"
            )
        settings = dict(
            regularization=self.regularization,
            max_iterations=self.max_iterations,
            tolerance=self.tolerance,
            sigma=self.sigma,
            beta=self.beta,
            max_backtracks=self.max_backtracks,
            backend=self.backend if backend is None else backend,
            n_workers=self.n_workers if backend is None else None,
            executor=self.executor if backend is None else None,
            inner_sweeps=self.inner_sweeps,
            plateau_tolerance=self.plateau_tolerance,
            plateau_patience=self.plateau_patience,
        )
        settings.update(overrides)
        return BlockCoordinateTrainer(**settings)

    def _user_weights(self, csr) -> Optional[np.ndarray]:
        """Positive-term weights; ``None`` for OCuLaR, ``w_u`` for R-OCuLaR."""
        if self.user_weighting == "relative":
            return relative_user_weights(csr)
        return None

    # ------------------------------------------------------------------ #
    # Scoring / recommending
    # ------------------------------------------------------------------ #
    @property
    def serving_factors_(self) -> FactorModel:
        """The factor model whose probability formula *is* this model's scoring.

        The serving engine ranks through these factors directly (one BLAS
        call per chunk).  Subclasses whose scoring differs from the plain
        ``1 - exp(-<f_u, f_i>)`` over :attr:`factors_` (e.g. the
        bias-extended model) must override this so engine-routed rankings
        match :meth:`score_user` exactly.
        """
        self._require_fitted()
        assert self.factors_ is not None
        return self.factors_

    def score_user(self, user: int) -> np.ndarray:
        """Probabilities ``P[r_ui = 1]`` for every item for ``user``."""
        self._require_fitted()
        return self.serving_factors_.user_scores(user)

    def score_users(self, users) -> np.ndarray:
        """Vectorised batch scoring, shape ``(len(users), n_items)``."""
        self._require_fitted()
        factors = self.serving_factors_
        user_array = np.asarray(list(users), dtype=np.int64)
        if user_array.size == 0:
            return np.zeros((0, factors.n_items))
        return factors.score_matrix(user_array)

    def predict_proba(self, user: int, item: int) -> float:
        """Probability that ``user`` is interested in ``item``."""
        self._require_fitted()
        assert self.factors_ is not None
        return self.factors_.predict_proba(user, item)

    # ------------------------------------------------------------------ #
    # Interpretability
    # ------------------------------------------------------------------ #
    def coclusters(self, membership_threshold: Optional[float] = None) -> List[CoCluster]:
        """Extract the overlapping co-clusters implied by the fitted factors.

        See :func:`repro.core.coclusters.extract_coclusters` for the
        thresholding rule and the returned structure.
        """
        self._require_fitted()
        assert self.factors_ is not None
        return extract_coclusters(
            self.factors_, self.train_matrix, membership_threshold=membership_threshold
        )

    def explain(self, user: int, item: int, max_peers: int = 3, max_evidence_items: int = 5):
        """Explain why ``item`` would be recommended to ``user``.

        Returns an :class:`~repro.core.explain.Explanation`; its
        :meth:`~repro.core.explain.Explanation.to_text` renders the paper's
        Figure 3 style rationale.
        """
        from repro.core.explain import explain_recommendation

        self._require_fitted()
        return explain_recommendation(
            self,
            user,
            item,
            max_peers=max_peers,
            max_evidence_items=max_evidence_items,
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def user_factors_(self) -> np.ndarray:
        """Fitted user affiliation matrix, shape ``(n_users, K)``."""
        self._require_fitted()
        assert self.factors_ is not None
        return self.factors_.user_factors

    @property
    def item_factors_(self) -> np.ndarray:
        """Fitted item affiliation matrix, shape ``(n_items, K)``."""
        self._require_fitted()
        assert self.factors_ is not None
        return self.factors_.item_factors

    def get_params(self) -> dict:
        """Hyper-parameters as a dictionary (mirrors scikit-learn's convention)."""
        return {
            "n_coclusters": self.n_coclusters,
            "regularization": self.regularization,
            "max_iterations": self.max_iterations,
            "tolerance": self.tolerance,
            "sigma": self.sigma,
            "beta": self.beta,
            "max_backtracks": self.max_backtracks,
            "init": self.init,
            "init_scale": self.init_scale,
            "backend": self.backend if isinstance(self.backend, str) else self.backend.name,
            "n_workers": self.n_workers,
            "executor": self.executor,
            "dtype": self.dtype.name,
            "inner_sweeps": self.inner_sweeps,
            "user_weighting": self.user_weighting,
            "plateau_tolerance": self.plateau_tolerance,
            "plateau_patience": self.plateau_patience,
            "random_state": self.random_state,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(n_coclusters={self.n_coclusters}, "
            f"regularization={self.regularization}, backend={self.backend!r})"
        )
