"""Bias-extended OCuLaR (the Section IV-A extension).

The paper mentions that user, item and overall biases can be incorporated by
modelling

    ``P[r_ui = 1] = 1 - exp(-<f_u, f_i> - b_u - b_i - b)``

but reports that the extension did not improve accuracy on its datasets and
drops it.  It is implemented here as an optional model so the claim can be
checked (the ablation benchmark does exactly that).

Implementation: the biases are folded into the factors by appending two
auxiliary co-cluster dimensions,

    ``f'_u = [f_u, b_u, 1]      f'_i = [f_i, 1, b_i + b]``

so that ``<f'_u, f'_i> = <f_u, f_i> + b_u + (b_i + b)``.  The columns holding
the constant 1 are clamped back to 1 after every training iteration, which
keeps the standard trainer and backends unchanged while the bias columns are
learned like any other non-negative factor.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.backends import SweepPlan
from repro.core.factors import FactorModel
from repro.core.init import initialize_factors
from repro.core.ocular import OCuLaR
from repro.data.interactions import InteractionMatrix


class BiasedOCuLaR(OCuLaR):
    """OCuLaR with non-negative user and item bias terms.

    The public interface is identical to :class:`~repro.core.ocular.OCuLaR`;
    after fitting, :attr:`user_biases_` and :attr:`item_biases_` expose the
    learned biases and :attr:`factors_` holds only the genuine co-cluster
    columns (the auxiliary bias columns are stripped), so co-cluster
    extraction and explanations keep working unchanged.
    """

    #: Number of auxiliary columns appended to carry the biases.
    _N_BIAS_COLUMNS = 2

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.user_biases_: Optional[np.ndarray] = None
        self.item_biases_: Optional[np.ndarray] = None

    def fit(
        self,
        matrix: InteractionMatrix,
        callback=None,
        backend=None,
        initial_factors=None,
        plateau_tolerance: Optional[float] = None,
        plateau_patience: Optional[int] = None,
    ) -> "BiasedOCuLaR":
        """Fit with biases; ``backend`` is an optional borrowed instance
        override and ``initial_factors`` an optional warm start over the
        *plain* (bias-free) factors, exactly as in :meth:`OCuLaR.fit`.  A
        warm start reuses this instance's previously learned biases where
        they exist; rows beyond them (new users/items) start at the same
        small constant a cold fit uses."""
        csr = matrix.csr()
        n_users, n_items = csr.shape
        if initial_factors is not None:
            user_factors, item_factors = self._coerce_initial_factors(
                initial_factors, n_users=n_users, n_items=n_items
            )
        else:
            user_factors, item_factors = initialize_factors(
                csr,
                self.n_coclusters,
                method=self.init,
                scale=self.init_scale,
                random_state=self.random_state,
                dtype=self.dtype,
            )
        # Augment: user side gets [b_u, 1], item side gets [1, b_i].
        small = 0.01
        user_bias_init = self._warm_biases(
            self.user_biases_ if initial_factors is not None else None, n_users, small
        )
        item_bias_init = self._warm_biases(
            self.item_biases_ if initial_factors is not None else None, n_items, small
        )
        user_aug = np.hstack(
            [
                user_factors,
                user_bias_init[:, None],
                np.ones((n_users, 1), dtype=self.dtype),
            ]
        )
        item_aug = np.hstack(
            [
                item_factors,
                np.ones((n_items, 1), dtype=self.dtype),
                item_bias_init[:, None],
            ]
        )

        user_weights = self._user_weights(csr)

        bias_column_user_fixed = self.n_coclusters + 1  # the "1" column on the user side
        bias_column_item_fixed = self.n_coclusters  # the "1" column on the item side

        # The trainer copies its inputs, so we train in two phases: run the
        # trainer one iteration at a time and clamp between iterations.  One
        # trainer and one sweep plan serve every iteration — the backend
        # (and, for "parallel", its thread pool) and the precomputed sweep
        # structure are reused across the whole fit.
        plan = SweepPlan.build(csr, user_weights=user_weights, dtype=self.dtype)
        # The inner trainer runs exactly one iteration per call, so the
        # plateau rule — which needs a streak of iterations — lives in this
        # outer loop instead; it is disabled on the inner trainer.
        single_step_trainer = self._build_trainer(
            backend, max_iterations=1, tolerance=0.0, plateau_tolerance=None
        )
        plateau = self._plateau_overrides(plateau_tolerance, plateau_patience)
        effective_plateau = plateau["plateau_tolerance"]
        effective_patience = plateau["plateau_patience"]
        plateau_streak = 0
        user_aug_view = user_aug
        item_aug_view = item_aug
        history = None
        try:
            for _ in range(self.max_iterations):
                # The plan carries the matrix and the R-OCuLaR weights, so
                # neither is passed separately (train rejects the redundancy).
                user_aug_view, item_aug_view, step_history = single_step_trainer.train(
                    None, user_aug_view, item_aug_view, plan=plan
                )
                user_aug_view[:, bias_column_user_fixed] = 1.0
                item_aug_view[:, bias_column_item_fixed] = 1.0
                if history is None:
                    history = step_history
                    history.warm_started = initial_factors is not None
                    history.plateau_tolerance = effective_plateau
                else:
                    history.objective_values.extend(step_history.objective_values[1:])
                    history.log_likelihoods.extend(step_history.log_likelihoods[1:])
                    history.iteration_seconds.extend(step_history.iteration_seconds)
                    history.elapsed_seconds.extend(step_history.elapsed_seconds)
                    history.item_sweep_stats.extend(step_history.item_sweep_stats)
                    history.user_sweep_stats.extend(step_history.user_sweep_stats)
                    history.n_iterations += step_history.n_iterations
                if len(history.objective_values) >= 2:
                    previous, current = history.objective_values[-2], history.objective_values[-1]
                    improvement = previous - current
                    relative = abs(improvement) / max(abs(previous), 1.0)
                    if improvement >= 0 and relative < self.tolerance:
                        history.converged = True
                        break
                    if effective_plateau is not None:
                        if improvement >= 0 and relative < effective_plateau:
                            plateau_streak += 1
                        else:
                            plateau_streak = 0
                        if plateau_streak >= effective_patience:
                            history.converged = True
                            history.stopped_on_plateau = True
                            break
                if callback is not None and callback(history.n_iterations, history):
                    break
        finally:
            # One trainer serves every clamped iteration, so an owned
            # backend's pools and shared memory are released once, after the
            # whole fit; a borrowed (runtime-warm) backend is left running.
            single_step_trainer.shutdown()
        assert history is not None

        self.user_biases_ = user_aug_view[:, self.n_coclusters].copy()
        self.item_biases_ = item_aug_view[:, self.n_coclusters + 1].copy()
        self.factors_ = FactorModel(
            user_aug_view[:, : self.n_coclusters].copy(),
            item_aug_view[:, : self.n_coclusters].copy(),
        )
        self._augmented_factors = FactorModel(user_aug_view, item_aug_view)
        self.history_ = history
        self._set_train_matrix(matrix)
        return self

    def _warm_biases(
        self, previous: Optional[np.ndarray], n_rows: int, small: float
    ) -> np.ndarray:
        """Bias-column initialisation: previous biases where they exist,
        the cold-start constant for new rows (and for cold fits)."""
        biases = np.full(n_rows, small, dtype=self.dtype)
        if previous is not None:
            n_kept = min(len(previous), n_rows)
            biases[:n_kept] = np.asarray(previous[:n_kept], dtype=self.dtype)
        return biases

    @property
    def serving_factors_(self) -> FactorModel:
        """Augmented factors (bias columns included) — scoring with these is
        exactly ``1 - exp(-<f_u, f_i> - b_u - b_i - b)``, so engine-routed
        rankings keep the bias terms."""
        self._require_fitted()
        return self._augmented_factors

    def score_user(self, user: int) -> np.ndarray:
        """Probabilities including the bias terms."""
        self._require_fitted()
        return self._augmented_factors.user_scores(user)

    def predict_proba(self, user: int, item: int) -> float:
        """Probability that ``user`` is interested in ``item`` (with biases)."""
        self._require_fitted()
        return self._augmented_factors.predict_proba(user, item)
