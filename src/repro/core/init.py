"""Factor initialisation strategies.

The block-coordinate scheme needs feasible (non-negative) starting factors.
The default draws uniform values scaled so the expected affinity
``<f_u, f_i>`` roughly matches the empirical density of the matrix, which
keeps the first sweeps well-conditioned across corpora of very different
sparsity.  A degree-based variant seeds users and items proportionally to
their activity, which often accelerates the first iterations on heavy-tailed
data.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ConfigurationError
from repro.utils.rng import RandomStateLike, ensure_rng
from repro.utils.validation import check_float_dtype


def _target_affinity(matrix: sp.csr_matrix) -> float:
    """Affinity whose model probability equals the matrix density.

    Solving ``1 - exp(-a) = density`` for ``a``; floored to keep the
    initialisation away from zero on extremely sparse matrices.
    """
    density = matrix.nnz / float(matrix.shape[0] * matrix.shape[1])
    density = min(max(density, 1e-6), 0.99)
    return max(-np.log(1.0 - density), 1e-3)


def random_init(
    matrix: sp.csr_matrix,
    n_coclusters: int,
    scale: float = 1.0,
    random_state: RandomStateLike = None,
    dtype=np.float64,
) -> Tuple[np.ndarray, np.ndarray]:
    """Uniform random non-negative factors calibrated to the matrix density.

    Entries are drawn from ``U(0, 2m)`` where ``m`` is chosen so that the
    expected inner product of a random user/item pair equals the affinity
    matching the matrix density, then multiplied by ``scale``.  The factors
    are returned in ``dtype`` (float64 default, float32 supported); the draw
    itself always happens in float64 so the float32 initialisation is the
    rounded float64 one, not a different random stream.
    """
    if n_coclusters <= 0:
        raise ConfigurationError(f"n_coclusters must be positive, got {n_coclusters}")
    if scale <= 0:
        raise ConfigurationError(f"scale must be positive, got {scale}")
    dtype = check_float_dtype(dtype, "dtype")
    rng = ensure_rng(random_state)
    n_users, n_items = matrix.shape
    target = _target_affinity(matrix)
    # E[<f_u, f_i>] = K * E[f]^2 = K * m^2 for entries ~ U(0, 2m).
    mean_entry = np.sqrt(target / n_coclusters)
    high = 2.0 * mean_entry * scale
    user_factors = rng.uniform(0.0, high, size=(n_users, n_coclusters))
    item_factors = rng.uniform(0.0, high, size=(n_items, n_coclusters))
    return (
        user_factors.astype(dtype, copy=False),
        item_factors.astype(dtype, copy=False),
    )


def degree_scaled_init(
    matrix: sp.csr_matrix,
    n_coclusters: int,
    scale: float = 1.0,
    random_state: RandomStateLike = None,
    dtype=np.float64,
) -> Tuple[np.ndarray, np.ndarray]:
    """Random factors whose magnitude grows with user/item activity.

    Heavy users and popular items start with larger affiliations, mirroring
    the fact that under the generative model their expected factor norms are
    larger.  Falls back to :func:`random_init` magnitudes for empty rows.
    """
    dtype = check_float_dtype(dtype, "dtype")
    user_factors, item_factors = random_init(
        matrix, n_coclusters, scale=scale, random_state=random_state
    )
    user_degrees = np.asarray(matrix.sum(axis=1)).ravel()
    item_degrees = np.asarray(matrix.sum(axis=0)).ravel()
    user_scale = np.sqrt((user_degrees + 1.0) / (user_degrees.mean() + 1.0))
    item_scale = np.sqrt((item_degrees + 1.0) / (item_degrees.mean() + 1.0))
    return (
        (user_factors * user_scale[:, np.newaxis]).astype(dtype, copy=False),
        (item_factors * item_scale[:, np.newaxis]).astype(dtype, copy=False),
    )


_INITIALIZERS = {
    "random": random_init,
    "degree": degree_scaled_init,
}


def initialize_factors(
    matrix: sp.csr_matrix,
    n_coclusters: int,
    method: str = "random",
    scale: float = 1.0,
    random_state: RandomStateLike = None,
    dtype=np.float64,
) -> Tuple[np.ndarray, np.ndarray]:
    """Dispatch to a named initialisation strategy (``"random"`` or ``"degree"``).

    ``dtype`` selects the training precision of the returned factors
    (float64 default, float32 supported).

    ``random_state`` accepts an int seed, ``None``, or a pre-seeded
    :class:`numpy.random.Generator`.  A Generator is used **as-is** (not
    re-seeded or copied): successive calls advance the caller's stream, which
    is how warm-start and cold-refit paths share one RNG stream without any
    global state.  This is a contract — the incremental-refit experiments
    rely on it — covered by a regression test.
    """
    try:
        initializer = _INITIALIZERS[method]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown initialisation method {method!r}; available: {sorted(_INITIALIZERS)}"
        ) from exc
    return initializer(
        matrix, n_coclusters, scale=scale, random_state=random_state, dtype=dtype
    )
