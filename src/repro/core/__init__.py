"""Core of the reproduction: the OCuLaR family of overlapping co-cluster recommenders."""

from repro.core.factors import FactorModel
from repro.core.ocular import OCuLaR
from repro.core.r_ocular import ROCuLaR
from repro.core.coclusters import CoCluster, extract_coclusters, cocluster_statistics
from repro.core.explain import Explanation, explain_recommendation, explain_top_recommendations
from repro.core.recommend import RecommendationReport, recommend_with_explanations
from repro.core.optimizer import TrainingHistory
from repro.core.io import save_model, load_model

__all__ = [
    "save_model",
    "load_model",
    "FactorModel",
    "OCuLaR",
    "ROCuLaR",
    "CoCluster",
    "extract_coclusters",
    "cocluster_statistics",
    "Explanation",
    "explain_recommendation",
    "explain_top_recommendations",
    "RecommendationReport",
    "recommend_with_explanations",
    "TrainingHistory",
]
