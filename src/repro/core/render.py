"""Plain-text rendering of interaction matrices and fitted probabilities.

The paper's Figures 1 and 3 visualise the toy example as a grid of dark
squares (positives) with the model's probability estimates overlaid.  These
helpers produce the same pictures as ASCII tables so the quickstart example
and the Figure 3 benchmark can show them in a terminal without any plotting
dependency.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.coclusters import CoCluster
from repro.core.factors import FactorModel
from repro.data.interactions import InteractionMatrix
from repro.exceptions import ConfigurationError

#: Character used for a positive example in matrix renderings.
POSITIVE_CHAR = "#"
#: Character used for an unknown example.
UNKNOWN_CHAR = "."


def render_matrix(matrix: InteractionMatrix, max_users: int = 40, max_items: int = 60) -> str:
    """Render a small interaction matrix as a character grid.

    Positive examples are ``#`` and unknowns ``.``; rows are users.  Matrices
    larger than the limits are truncated with a note, since the rendering is
    intended for toy-scale illustrations only.
    """
    n_users = min(matrix.n_users, max_users)
    n_items = min(matrix.n_items, max_items)
    dense = matrix.csr()[:n_users, :n_items].toarray()
    lines = []
    header = "     " + "".join(f"{item % 10}" for item in range(n_items))
    lines.append(header)
    for user in range(n_users):
        row = "".join(POSITIVE_CHAR if dense[user, item] > 0 else UNKNOWN_CHAR for item in range(n_items))
        lines.append(f"{user:4d} {row}")
    if n_users < matrix.n_users or n_items < matrix.n_items:
        lines.append(
            f"... truncated to {n_users}x{n_items} of {matrix.n_users}x{matrix.n_items}"
        )
    return "\n".join(lines)


def render_probability_matrix(
    factors: FactorModel,
    matrix: Optional[InteractionMatrix] = None,
    max_users: int = 20,
    max_items: int = 20,
    as_percent: bool = True,
) -> str:
    """Render the model's probability estimates as a numeric grid (Figure 3).

    When ``matrix`` is given, cells holding observed positives are wrapped in
    brackets (``[...]``) so the picture distinguishes "explained training
    example" from "recommendation candidate", mirroring the gray/white cells
    of Figure 3.
    """
    n_users = min(factors.n_users, max_users)
    n_items = min(factors.n_items, max_items)
    probabilities = factors.score_matrix(np.arange(n_users))[:, :n_items]
    dense = matrix.toarray()[:n_users, :n_items] if matrix is not None else None

    lines = []
    header = "      " + " ".join(f"{item:>5d}" for item in range(n_items))
    lines.append(header)
    for user in range(n_users):
        cells = []
        for item in range(n_items):
            value = probabilities[user, item]
            text = f"{value * 100:4.0f}%" if as_percent else f"{value:5.2f}"
            if dense is not None and dense[user, item] > 0:
                text = f"[{text.strip()}]".rjust(5)
            cells.append(text)
        lines.append(f"{user:5d} " + " ".join(cells))
    return "\n".join(lines)


def render_coclusters(
    coclusters: Sequence[CoCluster],
    matrix: Optional[InteractionMatrix] = None,
    max_members: int = 8,
) -> str:
    """Describe each co-cluster by its strongest members (names when available).

    Produces the kind of listing shown in the deployment screenshot: which
    clients and which products make up each discovered buying pattern.
    """
    if max_members <= 0:
        raise ConfigurationError(f"max_members must be positive, got {max_members}")
    lines = []
    for cocluster in coclusters:
        if cocluster.is_empty:
            continue
        if matrix is not None:
            users = [matrix.label_of_user(user) for user in cocluster.top_users(max_members)]
            items = [matrix.label_of_item(item) for item in cocluster.top_items(max_members)]
        else:
            users = [f"user {user}" for user in cocluster.top_users(max_members)]
            items = [f"item {item}" for item in cocluster.top_items(max_members)]
        density = "n/a" if np.isnan(cocluster.density) else f"{cocluster.density:.2f}"
        lines.append(
            f"Co-cluster {cocluster.index}: {cocluster.n_users} users x "
            f"{cocluster.n_items} items (density {density})"
        )
        lines.append(f"  users: {', '.join(users)}")
        lines.append(f"  items: {', '.join(items)}")
    if not lines:
        return "(no non-empty co-clusters)"
    return "\n".join(lines)
