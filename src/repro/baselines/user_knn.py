"""User-based collaborative filtering with cosine similarity.

One of the two *interpretable* baselines of Table I: "item i is recommended
because the similar users u_1, ..., u_k also bought item i" (Section
VII-B.2, following Sarwar et al.).  The score of item ``i`` for user ``u`` is
the similarity-weighted vote of the ``k`` nearest neighbours of ``u`` that
bought ``i``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from repro.base import Recommender
from repro.data.interactions import InteractionMatrix
from repro.utils.validation import check_positive_int


def cosine_similarity_rows(matrix: sp.csr_matrix) -> np.ndarray:
    """Dense cosine similarity between the rows of a sparse binary matrix.

    Rows with no positives get zero similarity to everything (instead of
    NaN), which keeps downstream ranking well-defined.
    """
    norms = np.sqrt(np.asarray(matrix.multiply(matrix).sum(axis=1)).ravel())
    safe_norms = np.where(norms > 0, norms, 1.0)
    normalised = sp.diags(1.0 / safe_norms) @ matrix
    similarity = np.asarray((normalised @ normalised.T).todense())
    empty = norms == 0
    if empty.any():
        similarity[empty, :] = 0.0
        similarity[:, empty] = 0.0
    np.fill_diagonal(similarity, 0.0)
    return similarity


class UserKNNRecommender(Recommender):
    """User-based k-nearest-neighbour recommender (cosine similarity).

    Parameters
    ----------
    n_neighbors:
        Number of most similar users whose purchases are aggregated; the
        paper grid-searches this value.
    """

    def __init__(self, n_neighbors: int = 50) -> None:
        self.n_neighbors = check_positive_int(n_neighbors, "n_neighbors")
        self._similarity: Optional[np.ndarray] = None
        self._neighbor_lists: Optional[List[np.ndarray]] = None

    def fit(self, matrix: InteractionMatrix) -> "UserKNNRecommender":
        """Precompute the user-user similarity matrix and neighbour lists."""
        similarity = cosine_similarity_rows(matrix.csr())
        n_users = matrix.n_users
        k = min(self.n_neighbors, max(n_users - 1, 1))
        neighbor_lists: List[np.ndarray] = []
        for user in range(n_users):
            row = similarity[user]
            if k < n_users:
                top = np.argpartition(-row, k - 1)[:k]
            else:
                top = np.arange(n_users)
            top = top[row[top] > 0]
            neighbor_lists.append(top[np.argsort(-row[top], kind="stable")])
        self._similarity = similarity
        self._neighbor_lists = neighbor_lists
        self._set_train_matrix(matrix)
        return self

    def score_user(self, user: int) -> np.ndarray:
        """Similarity-weighted votes of the user's nearest neighbours."""
        self._require_fitted()
        assert self._similarity is not None and self._neighbor_lists is not None
        self.train_matrix._check_user(user)
        neighbors = self._neighbor_lists[user]
        if len(neighbors) == 0:
            return np.zeros(self.train_matrix.n_items)
        weights = self._similarity[user, neighbors]
        neighbor_rows = self.train_matrix.csr()[neighbors]
        scores = np.asarray(neighbor_rows.T @ weights).ravel()
        return scores

    def explain_neighbors(self, user: int, count: int = 5) -> List[int]:
        """The most similar users, for "similar users also bought" rationales."""
        self._require_fitted()
        assert self._neighbor_lists is not None
        return [int(neighbor) for neighbor in self._neighbor_lists[user][:count]]
