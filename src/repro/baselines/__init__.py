"""Baseline one-class recommenders the paper compares against (Table I)."""

from repro.baselines.popularity import PopularityRecommender
from repro.baselines.user_knn import UserKNNRecommender
from repro.baselines.item_knn import ItemKNNRecommender
from repro.baselines.wals import WeightedALSRecommender
from repro.baselines.bpr import BPRRecommender

__all__ = [
    "PopularityRecommender",
    "UserKNNRecommender",
    "ItemKNNRecommender",
    "WeightedALSRecommender",
    "BPRRecommender",
]
