"""Item-based collaborative filtering with cosine similarity.

The second interpretable baseline of Table I: "item i is recommended because
user u bought the similar items i_1, ..., i_k" (Section VII-B.2, following
Deshpande & Karypis).  The score of item ``i`` for user ``u`` sums the
similarities between ``i`` and the items ``u`` already bought, restricted to
each item's ``k`` most similar items.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from repro.base import Recommender
from repro.baselines.user_knn import cosine_similarity_rows
from repro.data.interactions import InteractionMatrix
from repro.utils.validation import check_positive_int


class ItemKNNRecommender(Recommender):
    """Item-based k-nearest-neighbour recommender (cosine similarity).

    Parameters
    ----------
    n_neighbors:
        Each item's similarity row is truncated to its ``n_neighbors``
        largest entries before scoring, the standard top-k item-based scheme.
    """

    def __init__(self, n_neighbors: int = 50) -> None:
        self.n_neighbors = check_positive_int(n_neighbors, "n_neighbors")
        self._truncated_similarity: Optional[sp.csr_matrix] = None
        self._full_similarity: Optional[np.ndarray] = None

    def fit(self, matrix: InteractionMatrix) -> "ItemKNNRecommender":
        """Precompute the truncated item-item similarity matrix."""
        similarity = cosine_similarity_rows(sp.csr_matrix(matrix.csr().T))
        n_items = matrix.n_items
        k = min(self.n_neighbors, max(n_items - 1, 1))
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        for item in range(n_items):
            row = similarity[item]
            if k < n_items:
                top = np.argpartition(-row, k - 1)[:k]
            else:
                top = np.arange(n_items)
            top = top[row[top] > 0]
            rows.extend([item] * len(top))
            cols.extend(int(index) for index in top)
            vals.extend(float(value) for value in row[top])
        self._truncated_similarity = sp.csr_matrix(
            (vals, (rows, cols)), shape=(n_items, n_items)
        )
        self._full_similarity = similarity
        self._set_train_matrix(matrix)
        return self

    def score_user(self, user: int) -> np.ndarray:
        """Sum of similarities between each candidate item and the user's items."""
        self._require_fitted()
        assert self._truncated_similarity is not None
        self.train_matrix._check_user(user)
        purchased = self.train_matrix.items_of_user(user)
        if len(purchased) == 0:
            return np.zeros(self.train_matrix.n_items)
        indicator = np.zeros(self.train_matrix.n_items)
        indicator[purchased] = 1.0
        return np.asarray(self._truncated_similarity @ indicator).ravel()

    def similar_items(self, item: int, count: int = 5) -> List[int]:
        """The items most similar to ``item`` ("user bought the similar items ...")."""
        self._require_fitted()
        assert self._full_similarity is not None
        row = self._full_similarity[item]
        order = np.argsort(-row, kind="stable")
        return [int(index) for index in order[:count] if row[index] > 0]
