"""Bayesian Personalised Ranking (BPR) matrix factorisation.

The relative-preference baseline of Table I, following Rendle et al. (UAI
2009).  The model scores pairs with ``x_ui = <f_u, f_i> + b_i`` and maximises

    ``sum_{(u,i,j)} log sigmoid(x_ui - x_uj) - lambda ||theta||^2``

over uniformly bootstrap-sampled triples ``(u, i, j)`` with ``r_ui = 1`` and
``r_uj = 0``, by stochastic gradient ascent.  The paper used the
``theano-bpr`` package; this is a dependency-free NumPy implementation of the
same update rule (mini-batched for speed).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.base import Recommender
from repro.data.interactions import InteractionMatrix
from repro.exceptions import DataError
from repro.utils.rng import RandomStateLike, ensure_rng
from repro.utils.validation import (
    check_non_negative_float,
    check_positive_float,
    check_positive_int,
)


def _sigmoid(values: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(values)
    positive = values >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-values[positive]))
    exp_values = np.exp(values[~positive])
    out[~positive] = exp_values / (1.0 + exp_values)
    return out


class BPRRecommender(Recommender):
    """Matrix factorisation trained with the BPR pairwise ranking loss.

    Parameters
    ----------
    n_factors:
        Latent dimension (grid-searched in the paper).
    learning_rate:
        SGD step size.
    regularization:
        L2 penalty applied to user factors, item factors and item biases.
    n_epochs:
        Number of passes; each pass samples ``nnz`` triples.
    batch_size:
        Number of triples per vectorised SGD update.
    random_state:
        Seed for initialisation and triple sampling.
    """

    def __init__(
        self,
        n_factors: int = 32,
        learning_rate: float = 0.05,
        regularization: float = 0.002,
        n_epochs: int = 30,
        batch_size: int = 512,
        random_state: RandomStateLike = None,
    ) -> None:
        self.n_factors = check_positive_int(n_factors, "n_factors")
        self.learning_rate = check_positive_float(learning_rate, "learning_rate")
        self.regularization = check_non_negative_float(regularization, "regularization")
        self.n_epochs = check_positive_int(n_epochs, "n_epochs")
        self.batch_size = check_positive_int(batch_size, "batch_size")
        self.random_state = random_state
        self.user_factors_: Optional[np.ndarray] = None
        self.item_factors_: Optional[np.ndarray] = None
        self.item_biases_: Optional[np.ndarray] = None

    def fit(self, matrix: InteractionMatrix) -> "BPRRecommender":
        """Run bootstrap-sampled SGD over (user, positive, negative) triples."""
        if matrix.nnz == 0:
            raise DataError("BPR requires at least one positive example")
        rng = ensure_rng(self.random_state)
        csr = matrix.csr()
        n_users, n_items = csr.shape
        scale = 1.0 / np.sqrt(self.n_factors)
        user_factors = rng.normal(0.0, scale, size=(n_users, self.n_factors))
        item_factors = rng.normal(0.0, scale, size=(n_items, self.n_factors))
        item_biases = np.zeros(n_items)

        pairs = matrix.pairs()
        positive_sets = [set(matrix.items_of_user(user).tolist()) for user in range(n_users)]
        n_samples_per_epoch = len(pairs)

        for _ in range(self.n_epochs):
            order = rng.permutation(n_samples_per_epoch)
            for batch_start in range(0, n_samples_per_epoch, self.batch_size):
                batch = pairs[order[batch_start : batch_start + self.batch_size]]
                users = batch[:, 0]
                positives = batch[:, 1]
                negatives = self._sample_negatives(users, positive_sets, n_items, rng)

                user_vecs = user_factors[users]
                pos_vecs = item_factors[positives]
                neg_vecs = item_factors[negatives]

                x_uij = (
                    np.einsum("ij,ij->i", user_vecs, pos_vecs - neg_vecs)
                    + item_biases[positives]
                    - item_biases[negatives]
                )
                weight = 1.0 - _sigmoid(x_uij)

                grad_user = weight[:, np.newaxis] * (pos_vecs - neg_vecs) - self.regularization * user_vecs
                grad_pos = weight[:, np.newaxis] * user_vecs - self.regularization * pos_vecs
                grad_neg = -weight[:, np.newaxis] * user_vecs - self.regularization * neg_vecs
                grad_bias_pos = weight - self.regularization * item_biases[positives]
                grad_bias_neg = -weight - self.regularization * item_biases[negatives]

                np.add.at(user_factors, users, self.learning_rate * grad_user)
                np.add.at(item_factors, positives, self.learning_rate * grad_pos)
                np.add.at(item_factors, negatives, self.learning_rate * grad_neg)
                np.add.at(item_biases, positives, self.learning_rate * grad_bias_pos)
                np.add.at(item_biases, negatives, self.learning_rate * grad_bias_neg)

        self.user_factors_ = user_factors
        self.item_factors_ = item_factors
        self.item_biases_ = item_biases
        self._set_train_matrix(matrix)
        return self

    @staticmethod
    def _sample_negatives(
        users: np.ndarray,
        positive_sets: list,
        n_items: int,
        rng: np.random.Generator,
        max_resamples: int = 10,
    ) -> np.ndarray:
        """Sample one unknown item per (user, positive) pair.

        Rejection-samples uniformly over the catalogue; a handful of rounds
        is enough because one-class matrices are sparse.  Users whose history
        covers the whole catalogue keep whatever was drawn last (their
        contribution to the gradient is meaningless but harmless).
        """
        negatives = rng.integers(0, n_items, size=len(users))
        for _ in range(max_resamples):
            collisions = np.array(
                [item in positive_sets[user] for user, item in zip(users, negatives)]
            )
            if not collisions.any():
                break
            negatives[collisions] = rng.integers(0, n_items, size=int(collisions.sum()))
        return negatives

    def score_user(self, user: int) -> np.ndarray:
        """Predicted preference ``<f_u, f_i> + b_i`` for every item."""
        self._require_fitted()
        assert self.user_factors_ is not None
        assert self.item_factors_ is not None and self.item_biases_ is not None
        self.train_matrix._check_user(user)
        return self.item_factors_ @ self.user_factors_[user] + self.item_biases_
