"""Popularity ranking: the sanity-floor baseline.

Not part of the paper's Table I, but the standard floor every personalised
recommender must beat; the test-suite uses it to check that OCuLaR and the
other baselines actually personalise, and the deployment example uses it to
illustrate catalogue-coverage differences.
"""

from __future__ import annotations

import numpy as np

from repro.base import Recommender
from repro.data.interactions import InteractionMatrix


class PopularityRecommender(Recommender):
    """Rank items by their global number of positive examples."""

    def __init__(self) -> None:
        self._item_popularity: np.ndarray | None = None

    def fit(self, matrix: InteractionMatrix) -> "PopularityRecommender":
        """Count positives per item; that count is every user's score vector."""
        self._item_popularity = matrix.item_degrees().astype(float)
        self._set_train_matrix(matrix)
        return self

    def score_user(self, user: int) -> np.ndarray:
        """The (user-independent) popularity scores."""
        self._require_fitted()
        assert self._item_popularity is not None
        self.train_matrix._check_user(user)
        return self._item_popularity.copy()
