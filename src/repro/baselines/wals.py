"""Weighted Alternating Least Squares (wALS) for one-class CF.

The strongest non-interpretable baseline of Table I, following Pan et al.,
"One-Class Collaborative Filtering" (ICDM 2008): treat unknowns as zeros but
give them a small weight ``b < 1`` in the squared loss,

    ``sum_{u,i} c_ui (r_ui - <f_u, f_i>)^2 + lambda (||F_u||^2 + ||F_i||^2)``

with ``c_ui = 1`` for positives and ``c_ui = b`` for unknowns, and minimise
by alternating ridge regressions.  Each user's normal equations are solved
with the standard implicit-feedback trick: the Gram matrix over *all* items
is precomputed once per sweep and corrected per user only over that user's
positives, so a sweep costs ``O(nnz * K^2 + n * K^3)``.

The paper uses ``b = 0.01`` and ``lambda = 0.01`` and grid-searches the
latent dimension; those are the defaults here.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.base import Recommender
from repro.data.interactions import InteractionMatrix
from repro.utils.rng import RandomStateLike, ensure_rng
from repro.utils.validation import (
    check_non_negative_float,
    check_positive_int,
    check_probability,
)


def _weighted_als_sweep(
    matrix: sp.csr_matrix,
    fixed_factors: np.ndarray,
    unknown_weight: float,
    regularization: float,
) -> np.ndarray:
    """Solve the ridge problems for every row entity given the other side.

    ``matrix`` has shape ``(n_rows, n_cols)`` with rows being the entities to
    update and columns the fixed side.  For row ``r`` with positive set
    ``P_r`` the solution is

        ``(b * G + (1 - b) * F_P^T F_P + lambda I)^{-1} F_P^T 1``

    where ``G = F^T F`` is the Gram matrix of the fixed factors.
    """
    n_rows = matrix.shape[0]
    n_factors = fixed_factors.shape[1]
    gram = fixed_factors.T @ fixed_factors
    base = unknown_weight * gram + regularization * np.eye(n_factors)
    updated = np.zeros((n_rows, n_factors))
    for row in range(n_rows):
        start, stop = matrix.indptr[row], matrix.indptr[row + 1]
        positives = matrix.indices[start:stop]
        if len(positives) == 0:
            continue
        factors_positive = fixed_factors[positives]
        lhs = base + (1.0 - unknown_weight) * (factors_positive.T @ factors_positive)
        rhs = factors_positive.sum(axis=0)
        updated[row] = np.linalg.solve(lhs, rhs)
    return updated


class WeightedALSRecommender(Recommender):
    """One-class weighted matrix factorisation fitted by alternating least squares.

    Parameters
    ----------
    n_factors:
        Dimension of the latent vectors (grid-searched in the paper).
    unknown_weight:
        Weight ``b`` given to unknown (zero) entries in the squared loss.
    regularization:
        L2 penalty ``lambda`` on both factor matrices.
    n_iterations:
        Number of alternating sweeps.
    random_state:
        Seed for the factor initialisation.
    """

    def __init__(
        self,
        n_factors: int = 32,
        unknown_weight: float = 0.01,
        regularization: float = 0.01,
        n_iterations: int = 15,
        random_state: RandomStateLike = None,
    ) -> None:
        self.n_factors = check_positive_int(n_factors, "n_factors")
        self.unknown_weight = check_probability(unknown_weight, "unknown_weight")
        self.regularization = check_non_negative_float(regularization, "regularization")
        self.n_iterations = check_positive_int(n_iterations, "n_iterations")
        self.random_state = random_state
        self.user_factors_: Optional[np.ndarray] = None
        self.item_factors_: Optional[np.ndarray] = None
        self.loss_history_: list[float] = []

    def fit(self, matrix: InteractionMatrix) -> "WeightedALSRecommender":
        """Alternate user and item ridge solves for ``n_iterations`` sweeps."""
        rng = ensure_rng(self.random_state)
        csr = matrix.csr()
        csr_t = sp.csr_matrix(csr.T)
        n_users, n_items = csr.shape
        scale = 1.0 / np.sqrt(self.n_factors)
        user_factors = rng.normal(0.0, scale, size=(n_users, self.n_factors))
        item_factors = rng.normal(0.0, scale, size=(n_items, self.n_factors))

        self.loss_history_ = []
        for _ in range(self.n_iterations):
            user_factors = _weighted_als_sweep(
                csr, item_factors, self.unknown_weight, self.regularization
            )
            item_factors = _weighted_als_sweep(
                csr_t, user_factors, self.unknown_weight, self.regularization
            )
            self.loss_history_.append(
                self._loss(csr, user_factors, item_factors)
            )

        self.user_factors_ = user_factors
        self.item_factors_ = item_factors
        self._set_train_matrix(matrix)
        return self

    def _loss(
        self, csr: sp.csr_matrix, user_factors: np.ndarray, item_factors: np.ndarray
    ) -> float:
        """Weighted squared loss plus the L2 penalty (for convergence tests)."""
        coo = csr.tocoo()
        predictions = np.einsum("ij,ij->i", user_factors[coo.row], item_factors[coo.col])
        positive_part = float(np.sum((1.0 - predictions) ** 2))
        # b * ||F_u F_i^T||_F^2 over all pairs, then corrected on positives.
        gram_users = user_factors.T @ user_factors
        gram_items = item_factors.T @ item_factors
        all_pairs_sq = float(np.sum(gram_users * gram_items))
        unknown_part = self.unknown_weight * (all_pairs_sq - float(np.sum(predictions**2)))
        penalty = self.regularization * (
            float(np.sum(user_factors**2)) + float(np.sum(item_factors**2))
        )
        return positive_part + unknown_part + penalty

    def score_user(self, user: int) -> np.ndarray:
        """Predicted preference ``<f_u, f_i>`` for every item."""
        self._require_fitted()
        assert self.user_factors_ is not None and self.item_factors_ is not None
        self.train_matrix._check_user(user)
        return self.item_factors_ @ self.user_factors_[user]
