"""Parallel execution helpers (stand-in for the paper's Spark/GPU grid search).

The package is organised as a scheduler layer: concrete executors live in
:mod:`repro.parallel.executor` and :mod:`repro.parallel.shared_memory`, and
:mod:`repro.parallel.scheduler` maps names onto them so every fan-out in the
system — training sweeps, batch serving, the hyper-parameter grid — selects
its execution substrate the same way.
"""

from repro.parallel.cluster import ClusterArrayRef, ClusterExecutor
from repro.parallel.executor import SerialExecutor, ProcessExecutor, ThreadExecutor
from repro.parallel.scheduler import (
    ShardScheduler,
    available_executors,
    register_executor,
    resolve_executor,
)
from repro.parallel.shared_memory import (
    SharedArraySpec,
    SharedMemoryProcessExecutor,
    attach_shared_array,
    supports_publication,
)

__all__ = [
    "ClusterArrayRef",
    "ClusterExecutor",
    "SerialExecutor",
    "ProcessExecutor",
    "ThreadExecutor",
    "ShardScheduler",
    "SharedArraySpec",
    "SharedMemoryProcessExecutor",
    "attach_shared_array",
    "available_executors",
    "register_executor",
    "resolve_executor",
    "supports_publication",
]
