"""Parallel execution helpers (stand-in for the paper's Spark/GPU grid search)."""

from repro.parallel.executor import SerialExecutor, ProcessExecutor, ThreadExecutor

__all__ = ["SerialExecutor", "ProcessExecutor", "ThreadExecutor"]
