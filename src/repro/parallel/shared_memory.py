"""Shared-memory process execution: ship descriptors, not arrays.

A plain :class:`~repro.parallel.executor.ProcessExecutor` pickles every task's
arguments into the worker — for a sharded sweep that means serialising the
CSR plan and both factor matrices once *per shard per sweep*, which swamps
the kernel time on anything but tiny problems.  The
:class:`SharedMemoryProcessExecutor` removes that cost: large arrays are
placed in POSIX shared memory (``multiprocessing.shared_memory``) once, and
tasks carry only :class:`SharedArraySpec` descriptors — a segment name plus
shape and dtype.  Workers attach to the segments by name (zero-copy) and
rebuild NumPy views on the shared buffers.

Two publication modes cover the sweep engine's needs:

* :meth:`SharedMemoryProcessExecutor.publish_static` — write-once data such
  as the :class:`~repro.core.backends.plan.SweepPlan` CSR arrays.  The
  executor pins the source array and skips the copy entirely when the same
  array object is published again, so a whole fit pays one memcpy per plan
  array.
* :meth:`SharedMemoryProcessExecutor.publish` — per-sweep data such as the
  factor matrices.  A slot keyed by ``(name, shape, dtype)`` reuses its
  segment across sweeps and refreshes the bytes each time (one memcpy,
  instead of one pickle per task).

Lifecycle: the executor owns every segment it created and unlinks them all
in :meth:`shutdown` — after shutdown there are no leaked ``/dev/shm``
entries, which the test-suite verifies.  Workers only ever *attach*; their
mappings die with the worker processes when the pool is shut down.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Hashable, Optional, Tuple

import numpy as np

from repro.parallel.executor import _PoolExecutor, _resolve_workers


@dataclass(frozen=True)
class SharedArraySpec:
    """Descriptor of one NumPy array living in a shared-memory segment.

    Small and picklable — this is what task arguments carry instead of the
    array itself.  :func:`attach_shared_array` turns it back into an
    ``np.ndarray`` view inside a worker.
    """

    shm_name: str
    shape: Tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        """Size of the described array in bytes."""
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


def _unregister_attachment(segment: shared_memory.SharedMemory) -> None:
    """Undo the resource-tracker registration of an *attaching* process.

    CPython registers a segment with the resource tracker on attach as well
    as on create (bpo-38119); a worker with its *own* tracker (spawn /
    forkserver start methods) would then unlink the segment when it exits,
    destroying it under the owner's feet — so such attachments are
    unregistered.  Forked workers instead inherit the creator's tracker:
    their attach-registration is an idempotent re-add, and unregistering
    would strip the creator's own entry, so they are left alone.
    Python 3.13+ exposes ``track=False`` for this; this helper covers the
    older releases the project supports.
    """
    try:
        if multiprocessing.get_start_method() == "fork":
            return
        resource_tracker.unregister(segment._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:  # pragma: no cover - tracker internals vary by version
        pass


#: Worker-process-local cache of attached segments, keyed by segment name.
#: Attachments are kept open for the worker's lifetime: repeated tasks of one
#: fit hit the same plan segments, and the mappings are released by the OS
#: when the pool's processes exit.
_ATTACHMENTS: Dict[str, shared_memory.SharedMemory] = {}


def attach_shared_array(spec: SharedArraySpec) -> np.ndarray:
    """Materialise a :class:`SharedArraySpec` as an array view (worker side).

    The returned array is backed directly by the shared segment — reading it
    is zero-copy.  Callers must treat it as read-only: it is shared with the
    publishing process and every sibling worker.
    """
    segment = _ATTACHMENTS.get(spec.shm_name)
    if segment is None:
        segment = shared_memory.SharedMemory(name=spec.shm_name)
        _unregister_attachment(segment)
        _ATTACHMENTS[spec.shm_name] = segment
    return np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf)


class _Segment:
    """One owned shared-memory segment plus its publication bookkeeping."""

    __slots__ = ("memory", "spec", "pinned")

    def __init__(
        self,
        memory: shared_memory.SharedMemory,
        spec: SharedArraySpec,
        pinned: Optional[np.ndarray],
    ) -> None:
        self.memory = memory
        self.spec = spec
        self.pinned = pinned


class SharedMemoryProcessExecutor(_PoolExecutor):
    """Process-pool executor with shared-memory array publication.

    Behaves exactly like :class:`~repro.parallel.executor.ProcessExecutor`
    for plain ``map``/``starmap`` (tasks and arguments are pickled), and
    additionally lets callers place large arrays in shared memory so tasks
    can reference them by :class:`SharedArraySpec` instead of by value.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to the machine's CPU count.
    max_segments:
        Soft cap on concurrently owned segments.  Publishing beyond it
        evicts (unlinks) the least recently used segments, which bounds
        shared-memory usage for callers that never call :meth:`shutdown`
        between unrelated publications.
    """

    def __init__(self, max_workers: Optional[int] = None, max_segments: int = 64) -> None:
        self.max_workers = _resolve_workers(max_workers)
        if max_segments < 1:
            raise ValueError("max_segments must be at least 1")
        self._max_segments = max_segments
        self._segments: "OrderedDict[Hashable, _Segment]" = OrderedDict()
        super().__init__(
            concurrent.futures.ProcessPoolExecutor(max_workers=self.max_workers)
        )

    # ------------------------------------------------------------------ #
    # Publication
    # ------------------------------------------------------------------ #
    def publish(self, key: Hashable, array: np.ndarray) -> SharedArraySpec:
        """Place (or refresh) a mutable slot in shared memory.

        The slot identified by ``key`` keeps its segment as long as the
        published shape and dtype stay the same; the bytes are rewritten on
        every call, so per-sweep data like factor matrices costs one memcpy
        per sweep rather than one pickle per task.
        """
        array = np.ascontiguousarray(array)
        segment = self._segments.get(key)
        if segment is not None and (
            segment.spec.shape != array.shape or segment.spec.dtype != array.dtype.str
        ):
            self._unlink(key)
            segment = None
        if segment is None:
            segment = self._allocate(key, array, pinned=None)
        self._segments.move_to_end(key)
        self._view(segment)[...] = array
        return segment.spec

    def publish_static(self, array: np.ndarray) -> SharedArraySpec:
        """Place write-once data in shared memory, copying at most once.

        Keyed on the identity of ``array``, which the executor pins (holds a
        reference to) so the key stays valid: republishing the same array
        object returns the existing descriptor without touching the bytes.
        This is what makes "plan arrays are placed in shared memory once per
        fit" literal — every sweep re-presents the same plan arrays and only
        the first presentation copies.
        """
        array = np.asarray(array)
        if not array.flags.c_contiguous:
            raise ValueError(
                "publish_static requires a C-contiguous array; copy it first "
                "(a non-contiguous source would silently republish every call)"
            )
        key = ("static", id(array))
        segment = self._segments.get(key)
        if segment is not None and segment.pinned is array:
            self._segments.move_to_end(key)
            return segment.spec
        segment = self._allocate(key, array, pinned=array)
        self._view(segment)[...] = array
        return segment.spec

    def active_segment_names(self) -> list[str]:
        """Names of every segment this executor currently owns (for tests)."""
        return [segment.spec.shm_name for segment in self._segments.values()]

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _allocate(
        self, key: Hashable, array: np.ndarray, pinned: Optional[np.ndarray]
    ) -> _Segment:
        while len(self._segments) >= self._max_segments:
            oldest = next(iter(self._segments))
            self._unlink(oldest)
        # Zero-size arrays (empty matrices) still need a valid segment.
        memory = shared_memory.SharedMemory(create=True, size=max(int(array.nbytes), 1))
        spec = SharedArraySpec(
            shm_name=memory.name, shape=tuple(array.shape), dtype=array.dtype.str
        )
        segment = _Segment(memory=memory, spec=spec, pinned=pinned)
        self._segments[key] = segment
        return segment

    @staticmethod
    def _view(segment: _Segment) -> np.ndarray:
        return np.ndarray(
            segment.spec.shape,
            dtype=np.dtype(segment.spec.dtype),
            buffer=segment.memory.buf,
        )

    def _unlink(self, key: Hashable) -> None:
        segment = self._segments.pop(key)
        try:
            segment.memory.close()
            segment.memory.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def shutdown(self) -> None:
        """Unlink every owned segment and release the worker pool."""
        for key in list(self._segments):
            self._unlink(key)
        super().shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(max_workers={self.max_workers}, "
            f"segments={len(self._segments)})"
        )
