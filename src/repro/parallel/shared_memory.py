"""Shared-memory process execution: ship descriptors, not arrays.

A plain :class:`~repro.parallel.executor.ProcessExecutor` pickles every task's
arguments into the worker — for a sharded sweep that means serialising the
CSR plan and both factor matrices once *per shard per sweep*, which swamps
the kernel time on anything but tiny problems.  The
:class:`SharedMemoryProcessExecutor` removes that cost: large arrays are
placed in POSIX shared memory (``multiprocessing.shared_memory``) once, and
tasks carry only :class:`SharedArraySpec` descriptors — a segment name plus
shape and dtype.  Workers attach to the segments by name (zero-copy) and
rebuild NumPy views on the shared buffers.

Two publication modes cover the sweep engine's needs:

* :meth:`SharedMemoryProcessExecutor.publish_static` — write-once data such
  as the :class:`~repro.core.backends.plan.SweepPlan` CSR arrays.  The
  executor pins the source array and skips the copy entirely when the same
  array object is published again, so a whole fit pays one memcpy per plan
  array.
* :meth:`SharedMemoryProcessExecutor.publish` — per-sweep data such as the
  factor matrices.  A slot keyed by ``(name, shape, dtype)`` reuses its
  segment across sweeps and refreshes the bytes each time (one memcpy,
  instead of one pickle per task).

Lifecycle: the executor owns every segment it created and unlinks them all
in :meth:`shutdown` — after shutdown there are no leaked ``/dev/shm``
entries, which the test-suite verifies.  Workers only ever *attach*; their
mappings die with the worker processes when the pool is shut down.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Callable, Collection, Hashable, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ExecutorShutDownError
from repro.parallel.executor import _PoolExecutor, _resolve_workers


def supports_publication(executor: object) -> bool:
    """Whether ``executor`` offers the array-publication capability.

    The descriptor fast paths (training sweeps and serving shipping
    ``(row_range, spec)`` tasks instead of arrays) are gated on this rather
    than on a concrete class: any executor exposing ``publish``,
    ``publish_static`` and ``unpublish`` qualifies — the shared-memory
    process pool publishes to ``/dev/shm``, the cluster executor to its
    driver-side object store.
    """
    return all(
        callable(getattr(executor, method, None))
        for method in ("publish", "publish_static", "unpublish")
    )


@dataclass(frozen=True)
class SharedArraySpec:
    """Descriptor of one NumPy array living in a shared-memory segment.

    Small and picklable — this is what task arguments carry instead of the
    array itself.  :func:`attach_shared_array` turns it back into an
    ``np.ndarray`` view inside a worker.
    """

    shm_name: str
    shape: Tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        """Size of the described array in bytes."""
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class SharedCsrSpec:
    """Shared-memory descriptors of one CSR matrix (picklable).

    The three-array (``data``/``indices``/``indptr``) form every CSR
    publication in the system uses — the training plan sides and the
    serving seen-mask both compose it.
    """

    shape: Tuple[int, int]
    data: "SharedArraySpec"
    indices: "SharedArraySpec"
    indptr: "SharedArraySpec"

    def segment_names(self) -> list:
        """Names of the segments backing this matrix."""
        return [self.data.shm_name, self.indices.shm_name, self.indptr.shm_name]


def _unregister_attachment(segment: shared_memory.SharedMemory) -> None:
    """Undo the resource-tracker registration of an *attaching* process.

    CPython registers a segment with the resource tracker on attach as well
    as on create (bpo-38119); a worker with its *own* tracker (spawn /
    forkserver start methods) would then unlink the segment when it exits,
    destroying it under the owner's feet — so such attachments are
    unregistered.  Forked workers instead inherit the creator's tracker:
    their attach-registration is an idempotent re-add, and unregistering
    would strip the creator's own entry, so they are left alone.
    Python 3.13+ exposes ``track=False`` for this; this helper covers the
    older releases the project supports.
    """
    try:
        if multiprocessing.get_start_method() == "fork":
            return
        resource_tracker.unregister(segment._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:  # pragma: no cover - tracker internals vary by version
        pass


#: Worker-process-local cache of attached segments, keyed by segment name and
#: ordered by recency of use (least recently attached first), so the byte
#: budget of :func:`close_stale_attachments` can evict in LRU order.
#: Attachments are kept open for the worker's lifetime: repeated tasks of one
#: fit hit the same plan segments, and the mappings are released by the OS
#: when the pool's processes exit.
_ATTACHMENTS: "OrderedDict[str, shared_memory.SharedMemory]" = OrderedDict()


def attach_shared_array(spec: SharedArraySpec) -> np.ndarray:
    """Materialise an array descriptor as an ndarray (worker side).

    For a :class:`SharedArraySpec` the returned array is backed directly by
    the shared segment — reading it is zero-copy.  Descriptors from other
    publication substrates (the cluster executor's
    :class:`~repro.parallel.cluster.ClusterArrayRef`) provide their own
    ``attach()`` and are dispatched to it, so worker functions written
    against shared memory run unchanged on remote nodes.  Callers must treat
    the result as read-only: it is shared with the publishing process and
    every sibling worker.
    """
    attach = getattr(spec, "attach", None)
    if attach is not None:
        return attach()
    segment = _ATTACHMENTS.get(spec.shm_name)
    if segment is None:
        segment = shared_memory.SharedMemory(name=spec.shm_name)
        _unregister_attachment(segment)
        _ATTACHMENTS[spec.shm_name] = segment
    else:
        _ATTACHMENTS.move_to_end(spec.shm_name)
    return np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf)


def segment_exists(name: str) -> bool:
    """Whether the shared-memory segment ``name`` is still linked.

    Fast path on Linux: the segment is a file under ``/dev/shm``.  On hosts
    without that mount (macOS) a probe attach answers the same question —
    opened and closed immediately, with the attach-side resource-tracker
    registration undone so the probe can never unlink the segment at exit.
    """
    if os.path.isdir("/dev/shm"):
        return os.path.exists(os.path.join("/dev/shm", name))
    try:
        probe = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    _unregister_attachment(probe)
    probe.close()
    return True


def spec_is_live(spec: object) -> bool:
    """Whether the publication behind one array descriptor is still live.

    Worker-side caches use this to prune entries whose backing publication
    the driver has retired.  Shared-memory specs answer by probing the
    segment name; descriptors with their own ``is_live()`` (cluster object
    refs) answer for themselves.
    """
    is_live = getattr(spec, "is_live", None)
    if callable(is_live):
        return bool(is_live())
    return segment_exists(spec.shm_name)


def touch_attachments(names: Collection[str]) -> None:
    """Refresh the LRU recency of already-mapped segments (worker side).

    Caches that serve from rebuilt objects (an engine-cache hit) never call
    :func:`attach_shared_array` again, so without this their hottest
    segments would look least-recently-used to the byte budget and be
    evicted first.
    """
    for name in names:
        if name in _ATTACHMENTS:
            _ATTACHMENTS.move_to_end(name)


def attach_shared_csr(spec: SharedCsrSpec) -> sp.csr_matrix:
    """Rebuild a CSR matrix over shared buffers (worker side, zero-copy).

    The arrays are assigned directly — they are already a canonical CSR from
    the publisher, and the constructor's validation pass would copy them out
    of shared memory.  Callers must treat the result as read-only.
    """
    matrix = sp.csr_matrix(spec.shape, dtype=np.dtype(spec.data.dtype))
    matrix.data = attach_shared_array(spec.data)
    matrix.indices = attach_shared_array(spec.indices)
    matrix.indptr = attach_shared_array(spec.indptr)
    return matrix


#: Worker-side caches that hold NumPy views over attached segments register a
#: provider of the segment names they currently reference.  Closing a mapping
#: that a cached object still views is a **use-after-unmap segfault** —
#: ``SharedMemory.close()`` does NOT fail while ndarray views exist — so
#: :func:`close_stale_attachments` may only close names no provider claims.
#: A holder may also register an ``evict`` callback that *drops* the cached
#: objects viewing one segment name; only holders with such a callback can
#: participate in byte-budget eviction (their claim becomes releasable).
_ATTACHMENT_HOLDERS: List[Tuple[Callable[[], Collection[str]], Optional[Callable[[str], None]]]] = []


def register_attachment_holder(
    provider: Callable[[], Collection[str]],
    evict: Optional[Callable[[str], None]] = None,
) -> None:
    """Register a provider of segment names a worker-side cache references.

    ``evict``, when given, is called with a segment name to ask the cache to
    drop every object viewing that segment (after which the provider must no
    longer claim it).  Caches without an ``evict`` callback are simply never
    evicted by the byte budget — their claims are permanent protection.
    """
    _ATTACHMENT_HOLDERS.append((provider, evict))


def _holder_claims() -> set:
    """The union of every registered holder's currently claimed names."""
    claimed = set()
    for provider, _evict in _ATTACHMENT_HOLDERS:
        claimed.update(provider())
    return claimed


def evict_holder_claims(name: str) -> None:
    """Ask every evict-capable holder to drop cached objects viewing ``name``.

    Used when the publisher retires a publication out from under a worker
    (a cluster node told to evict a retired generation): caches built over
    the named descriptor — worker engines, sweep sides — are dropped so the
    next task rebuilds from live publications instead of serving stale data.
    """
    for provider, evict in list(_ATTACHMENT_HOLDERS):
        if evict is None:
            continue
        try:
            if name in set(provider()):
                evict(name)
        except Exception:  # pragma: no cover - a broken holder must not block
            pass


def attached_bytes() -> int:
    """Total size of this process's currently mapped attachments."""
    return sum(segment.size for segment in _ATTACHMENTS.values())


def close_stale_attachments(
    active: Collection[str], max_bytes: Optional[int] = None
) -> int:
    """Close cached attachments outside ``active`` + every holder's claims.

    A long-lived worker that serves successive model generations (or
    per-call fold-in blocks) would otherwise keep every old segment mapped
    forever — the publisher's unlink removes the ``/dev/shm`` *name*, not
    existing mappings.  Only run between tasks of the single-threaded worker
    loop: names claimed by a registered holder (cached sweep sides, cached
    engines) are never touched, because closing a mapped view segfaults on
    the next read.  Returns the number of attachments closed.

    ``max_bytes`` additionally bounds the worker's total mapped bytes: while
    the remaining attachments exceed the budget, the least-recently-used
    names outside ``active`` are evicted — holders that registered an
    ``evict`` callback are asked to drop their cached objects first, so a
    worker A/B-serving two model generations keeps the recent one mapped and
    releases the older.  The ``active`` set is never evicted (the current
    task views it), so the budget is best-effort: a single live generation
    larger than ``max_bytes`` stays fully mapped.
    """
    protected = set(active)
    claimed = _holder_claims()
    closed = 0
    for name in list(_ATTACHMENTS):
        if name in protected or name in claimed:
            continue
        if not _close_attachment(name):
            continue
        closed += 1
    if max_bytes is None:
        return closed
    # Budget pass, LRU first: ask evict-capable holders to release their
    # cached objects for a segment, then close it once nothing claims it.
    evicted = False
    for name in list(_ATTACHMENTS):
        if attached_bytes() <= max_bytes:
            break
        if name in protected:
            continue
        for provider, evict in _ATTACHMENT_HOLDERS:
            if evict is not None and name in set(provider()):
                evict(name)
                evicted = True
        if name in _holder_claims():
            continue  # an evict-less holder still views this mapping
        if _close_attachment(name):
            closed += 1
    if evicted:
        # Evicting a cached object (an engine spanning several segments)
        # orphans its sibling mappings; close them now instead of letting
        # them ride until the next stale pass.
        claimed = _holder_claims()
        for name in list(_ATTACHMENTS):
            if name in protected or name in claimed:
                continue
            if _close_attachment(name):
                closed += 1
    return closed


def _close_attachment(name: str) -> bool:
    """Close and forget one cached attachment; False on platform close errors."""
    try:
        _ATTACHMENTS[name].close()
    except Exception:  # pragma: no cover - platform-specific close errors
        return False
    del _ATTACHMENTS[name]
    return True


class _Segment:
    """One owned shared-memory segment plus its publication bookkeeping."""

    __slots__ = ("memory", "spec", "pinned", "evictable")

    def __init__(
        self,
        memory: shared_memory.SharedMemory,
        spec: SharedArraySpec,
        pinned: Optional[np.ndarray],
        evictable: bool = True,
    ) -> None:
        self.memory = memory
        self.spec = spec
        self.pinned = pinned
        self.evictable = evictable


class SharedMemoryProcessExecutor(_PoolExecutor):
    """Process-pool executor with shared-memory array publication.

    Behaves exactly like :class:`~repro.parallel.executor.ProcessExecutor`
    for plain ``map``/``starmap`` (tasks and arguments are pickled), and
    additionally lets callers place large arrays in shared memory so tasks
    can reference them by :class:`SharedArraySpec` instead of by value.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to the machine's CPU count.
    max_segments:
        Soft cap on concurrently owned segments.  Publishing beyond it
        evicts (unlinks) the least recently used segments, which bounds
        shared-memory usage for callers that never call :meth:`shutdown`
        between unrelated publications.
    """

    def __init__(self, max_workers: Optional[int] = None, max_segments: int = 64) -> None:
        self.max_workers = _resolve_workers(max_workers)
        if max_segments < 1:
            raise ValueError("max_segments must be at least 1")
        self._max_segments = max_segments
        self._segments: "OrderedDict[Hashable, _Segment]" = OrderedDict()
        # The segment table is shared by every publisher thread — a serving
        # runtime publishes per-call fold-in blocks from request threads
        # while a refit publishes sweep slots from the training thread.
        # All table access (publish/unpublish/evict/shutdown) holds this
        # lock; task submission itself is the pool's own thread-safe path.
        self._segments_lock = threading.RLock()
        super().__init__(
            concurrent.futures.ProcessPoolExecutor(max_workers=self.max_workers)
        )

    # ------------------------------------------------------------------ #
    # Publication
    # ------------------------------------------------------------------ #
    def publish(
        self, key: Hashable, array: np.ndarray, evictable: bool = True
    ) -> SharedArraySpec:
        """Place (or refresh) a mutable slot in shared memory.

        The slot identified by ``key`` keeps its segment as long as the
        published shape and dtype stay the same; the bytes are rewritten on
        every call, so per-sweep data like factor matrices costs one memcpy
        per sweep rather than one pickle per task.

        ``evictable=False`` exempts the slot from the ``max_segments`` LRU —
        for publications that must stay attachable until explicitly
        unpublished (a serving runtime's live model generation), where a
        silent eviction would surface as ``FileNotFoundError`` in a worker.
        """
        array = np.ascontiguousarray(array)
        with self._segments_lock:
            segment = self._segments.get(key)
            if segment is not None and (
                segment.spec.shape != array.shape
                or segment.spec.dtype != array.dtype.str
            ):
                self._unlink(key)
                segment = None
            if segment is None:
                segment = self._allocate(key, array, pinned=None, evictable=evictable)
            self._segments.move_to_end(key)
            self._view(segment)[...] = array
            return segment.spec

    def publish_static(self, array: np.ndarray) -> SharedArraySpec:
        """Place write-once data in shared memory, copying at most once.

        Keyed on the identity of ``array``, which the executor pins (holds a
        reference to) so the key stays valid: republishing the same array
        object returns the existing descriptor without touching the bytes.
        This is what makes "plan arrays are placed in shared memory once per
        fit" literal — every sweep re-presents the same plan arrays and only
        the first presentation copies.
        """
        array = np.asarray(array)
        if not array.flags.c_contiguous:
            raise ValueError(
                "publish_static requires a C-contiguous array; copy it first "
                "(a non-contiguous source would silently republish every call)"
            )
        key = ("static", id(array))
        with self._segments_lock:
            segment = self._segments.get(key)
            if segment is not None and segment.pinned is array:
                self._segments.move_to_end(key)
                return segment.spec
            segment = self._allocate(key, array, pinned=array)
            self._view(segment)[...] = array
            return segment.spec

    def unpublish(self, key: Hashable) -> bool:
        """Unlink one published slot; returns whether the key was live.

        The model-version swap of the serving runtime uses this: a new
        generation's segments are published under fresh keys, then the old
        generation is unpublished.  Workers still attached to the old
        segments keep valid mappings (POSIX unlink removes the name, not
        existing maps), so in-flight tasks finish safely while the
        ``/dev/shm`` entries disappear immediately.
        """
        with self._segments_lock:
            if key not in self._segments:
                return False
            self._unlink(key)
            return True

    def release_static(self) -> int:
        """Unlink every ``publish_static`` segment; returns how many.

        Static segments are pinned to their source arrays for the duration
        of one computation (a fit's plan arrays).  A long-lived executor
        reused across many fits calls this between them so dead plans do not
        ride the LRU until eviction.
        """
        with self._segments_lock:
            static_keys = [
                key
                for key in self._segments
                if isinstance(key, tuple) and key and key[0] == "static"
            ]
            for key in static_keys:
                self._unlink(key)
            return len(static_keys)

    def active_segment_names(self) -> list[str]:
        """Names of every segment this executor currently owns (for tests)."""
        with self._segments_lock:
            return [segment.spec.shm_name for segment in self._segments.values()]

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _allocate(
        self,
        key: Hashable,
        array: np.ndarray,
        pinned: Optional[np.ndarray],
        evictable: bool = True,
    ) -> _Segment:
        if self.is_shut_down:
            raise ExecutorShutDownError(
                "cannot publish to a shut-down SharedMemoryProcessExecutor; "
                "segments created now would never be unlinked"
            )
        while len(self._segments) >= self._max_segments:
            # Evict the least recently used *evictable* segment.  Pinned-off
            # (non-evictable) publications are skipped: max_segments is a
            # soft cap, and silently unlinking a live serving generation
            # would be far worse than exceeding it.
            oldest = next(
                (k for k, seg in self._segments.items() if seg.evictable), None
            )
            if oldest is None:
                break
            self._unlink(oldest)
        # Zero-size arrays (empty matrices) still need a valid segment.
        memory = shared_memory.SharedMemory(create=True, size=max(int(array.nbytes), 1))
        spec = SharedArraySpec(
            shm_name=memory.name, shape=tuple(array.shape), dtype=array.dtype.str
        )
        segment = _Segment(memory=memory, spec=spec, pinned=pinned, evictable=evictable)
        self._segments[key] = segment
        return segment

    @staticmethod
    def _view(segment: _Segment) -> np.ndarray:
        return np.ndarray(
            segment.spec.shape,
            dtype=np.dtype(segment.spec.dtype),
            buffer=segment.memory.buf,
        )

    def _unlink(self, key: Hashable) -> None:
        segment = self._segments.pop(key)
        try:
            segment.memory.close()
            segment.memory.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def shutdown(self) -> None:
        """Drain the worker pool, then unlink every owned segment.

        The pool is shut down first (waiting for in-flight tasks) so a task
        that has not yet attached its descriptors never races a disappearing
        segment; only then are the segments unlinked.  Idempotent, like the
        base executor's shutdown.
        """
        if self.is_shut_down:
            return
        super().shutdown()
        with self._segments_lock:
            for key in list(self._segments):
                self._unlink(key)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(max_workers={self.max_workers}, "
            f"segments={len(self._segments)})"
        )
