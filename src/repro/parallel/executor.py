"""Executors for embarrassingly parallel work.

The paper distributes the (K, lambda) grid search "using Apache Spark across
a cluster of 8 machines, each fitted with a GPU" (Section VII-E).  The
reproduction offers the same scale-out shape on a single machine: a
:class:`ProcessExecutor` fans independent hyper-parameter evaluations out to
a pool of worker processes, a :class:`ThreadExecutor` does the same with
threads (useful when the work releases the GIL), and a
:class:`SerialExecutor` runs everything inline — handy in tests and the
baseline against which the parallel speed-up is measured.

All three expose the same two methods (``map`` and ``starmap``), so the grid
search code is agnostic to which one it receives.
"""

from __future__ import annotations

import concurrent.futures
import os
import threading
from typing import Any, Callable, Iterable, List, Optional, Sequence

from repro.exceptions import ExecutorShutDownError, WorkerCrashError
from repro.utils.validation import check_positive_int


def _resolve_workers(max_workers: Optional[int]) -> int:
    """Default the pool size to the machine's CPU count."""
    if max_workers is None:
        return os.cpu_count() or 1
    return check_positive_int(max_workers, "max_workers")


class SerialExecutor:
    """Run tasks sequentially in the calling process.

    Even though there is no pool to release, :meth:`shutdown` still flips
    the executor into a terminal state: every registered executor rejects
    work after shutdown with :class:`ExecutorShutDownError`, so lifecycle
    bugs (a component using an executor its owner already tore down) fail
    identically whether the configured executor happens to be serial,
    pooled, or remote.
    """

    def __init__(self) -> None:
        self._shut_down = False

    def map(self, function: Callable[..., Any], items: Iterable[Any]) -> List[Any]:
        """Apply ``function`` to each item, in order."""
        self._check_active()
        return [function(item) for item in items]

    def starmap(self, function: Callable[..., Any], argument_tuples: Iterable[Sequence[Any]]) -> List[Any]:
        """Apply ``function(*args)`` to each argument tuple, in order."""
        self._check_active()
        return [function(*args) for args in argument_tuples]

    def _check_active(self) -> None:
        if self._shut_down:
            raise ExecutorShutDownError(
                f"cannot submit work to {type(self).__name__} after shutdown()"
            )

    def shutdown(self) -> None:
        """Mark the executor terminal (idempotent); later submissions raise."""
        self._shut_down = True

    @property
    def is_shut_down(self) -> bool:
        """Whether :meth:`shutdown` has been called."""
        return self._shut_down

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


class _PoolExecutor:
    """Common implementation for process- and thread-backed executors."""

    def __init__(self, pool: concurrent.futures.Executor) -> None:
        self._pool = pool
        self._shut_down = False

    def map(self, function: Callable[..., Any], items: Iterable[Any]) -> List[Any]:
        """Apply ``function`` to each item concurrently; results keep input order."""
        self._check_active()
        futures = [self._pool.submit(function, item) for item in items]
        return self._gather(futures)

    def starmap(self, function: Callable[..., Any], argument_tuples: Iterable[Sequence[Any]]) -> List[Any]:
        """Apply ``function(*args)`` concurrently; results keep input order."""
        self._check_active()
        futures = [self._pool.submit(function, *args) for args in argument_tuples]
        return self._gather(futures)

    def _check_active(self) -> None:
        if self._shut_down:
            raise ExecutorShutDownError(
                f"cannot submit work to {type(self).__name__} after shutdown()"
            )

    def _gather(self, futures: List[concurrent.futures.Future]) -> List[Any]:
        """Collect results in submission order once every worker has finished.

        Waiting for *all* futures first (instead of calling ``result()`` on
        each in turn) means no worker is left running when an error
        propagates, and the raised exception is deterministically the first
        failure in submission order, re-raised with the worker's original
        traceback attached rather than whichever future happened to be
        awaited first.  A dead *worker* (as opposed to a failing task) is
        translated from the pool's bare ``BrokenExecutor`` into
        :class:`WorkerCrashError` naming this executor and the submission
        index of the task whose worker died, so callers can tell "retryable
        infrastructure failure" from "the task itself raised".
        """
        concurrent.futures.wait(futures)
        for index, future in enumerate(futures):
            error = future.exception()
            if error is None:
                continue
            if isinstance(error, concurrent.futures.BrokenExecutor):
                raise WorkerCrashError(
                    f"a worker of {type(self).__name__} died while executing task "
                    f"{index} ({error!r}); the pool is broken and must be rebuilt",
                    executor=type(self).__name__,
                    task_index=index,
                ) from error
            raise error.with_traceback(error.__traceback__)
        return [future.result() for future in futures]

    def shutdown(self) -> None:
        """Release the worker pool.

        Waits for in-flight tasks, then tears the pool down.  Idempotent:
        lifecycle code (trainer ``finally`` blocks, context exits, a runtime
        ``close``) may run more than once and a second call is a no-op.
        """
        if self._shut_down:
            return
        self._shut_down = True
        self._pool.shutdown()

    @property
    def is_shut_down(self) -> bool:
        """Whether :meth:`shutdown` has completed."""
        return self._shut_down

    def __enter__(self) -> "_PoolExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


class DispatcherThread:
    """A named daemon thread that runs ``step()`` in a loop until stopped.

    The building block for accumulating front-ends (the runtime's
    micro-batching dispatcher): ``step`` is expected to block on its own
    condition variable or queue — with a timeout, so the loop stays
    responsive — and return when it has processed one unit of work.
    :meth:`stop` flips :attr:`stop_requested`, invokes the optional ``wake``
    callable (typically ``condition.notify_all`` under the condition's lock,
    to unblock a waiting ``step``) and joins the thread.

    The thread is a daemon: a crashed owner that never calls :meth:`stop`
    cannot keep the interpreter alive, which is exactly the failure mode a
    deadlocked test-suite guard needs.
    """

    def __init__(
        self,
        step: Callable[[], Any],
        name: str = "dispatcher",
        wake: Optional[Callable[[], None]] = None,
        on_failure: Optional[Callable[[BaseException], None]] = None,
    ) -> None:
        if not callable(step):
            raise TypeError("step must be callable")
        self._step = step
        self._wake = wake
        self._on_failure = on_failure
        self._stop_event = threading.Event()
        self._thread = threading.Thread(target=self._run, name=name, daemon=True)
        self._failure: Optional[BaseException] = None

    def _run(self) -> None:
        while not self._stop_event.is_set():
            try:
                self._step()
            except BaseException as error:  # pragma: no cover - defensive
                # A dispatcher that dies silently turns every later submit
                # into a hang; record the error, let the owner fail whatever
                # work is already queued behind the dead loop, and stop.
                self._failure = error
                if self._on_failure is not None:
                    try:
                        self._on_failure(error)
                    except Exception:
                        pass
                return

    def start(self) -> "DispatcherThread":
        """Start the loop; returns self for one-line construction."""
        self._thread.start()
        return self

    @property
    def stop_requested(self) -> bool:
        """Whether :meth:`stop` has been called (``step`` should return soon)."""
        return self._stop_event.is_set()

    @property
    def failure(self) -> Optional[BaseException]:
        """The exception that killed the loop, if any (``None`` while healthy)."""
        return self._failure

    @property
    def is_alive(self) -> bool:
        """Whether the loop thread is still running."""
        return self._thread.is_alive()

    def stop(self, timeout: Optional[float] = None) -> bool:
        """Request the loop to exit and join it; returns whether it ended.

        Idempotent.  ``wake`` is called after the stop flag is set so a
        ``step`` blocked on its condition variable observes the request.
        """
        self._stop_event.set()
        if self._wake is not None:
            self._wake()
        if self._thread.is_alive():
            self._thread.join(timeout=timeout)
        return not self._thread.is_alive()


class ProcessExecutor(_PoolExecutor):
    """Executor backed by a process pool.

    Tasks and their arguments must be picklable (module-level functions,
    plain data).  The grid-search entry points in
    :mod:`repro.evaluation.grid_search` satisfy this requirement.
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__(
            concurrent.futures.ProcessPoolExecutor(max_workers=_resolve_workers(max_workers))
        )


class ThreadExecutor(_PoolExecutor):
    """Executor backed by a thread pool.

    NumPy releases the GIL inside its kernels, so thread pools provide real
    concurrency for the vectorised backend without any pickling constraints.
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__(
            concurrent.futures.ThreadPoolExecutor(max_workers=_resolve_workers(max_workers))
        )
