"""Multi-machine RPC execution: N agent nodes serving shards of one model.

The paper deploys grid search and serving "using Apache Spark across a
cluster of 8 machines" (Section VII-E).  This module reproduces that shape
natively on the stdlib: a :class:`ClusterExecutor` registered in the
scheduler registry as ``"cluster"`` fans ``starmap`` tasks out over
``multiprocessing.connection`` sockets to N agent processes — loopback
agents it spawns itself, or agents started on other machines with
``python -m repro.parallel.cluster``.

Three ideas carry the design:

* **Descriptors, not arrays.**  The executor exposes the same publication
  capability as :class:`~repro.parallel.shared_memory.SharedMemoryProcessExecutor`
  (``publish`` / ``publish_static`` / ``unpublish``), so the training
  backend and the serving runtime ship ``(row_range, spec)`` tasks
  unchanged.  Published arrays live in a driver-side object store;
  tasks carry :class:`ClusterArrayRef` descriptors (a store key plus shape
  and dtype).  A node fetches each key **once**, caches the array for the
  publication's lifetime, and is told to evict it when the driver retires
  the publication (a model-generation swap, a per-call fold-in block) — so
  one model version crosses the wire to each node one time, not once per
  shard.
* **Fault tolerance is first-class.**  Each node runs its tasks over a
  dedicated connection with a per-task reply timeout.  A task that *raises*
  propagates its exception (first failure in submission order, remote
  traceback attached) exactly like the local pools.  A node that *dies* —
  killed, crashed, or silent past the timeout — has its in-flight task
  re-dispatched to a surviving node (bounded by ``max_task_retries``); the
  merged results are indistinguishable from a run without the failure.
  Only when the retry budget or the nodes themselves are exhausted does the
  caller see a typed :class:`~repro.exceptions.WorkerCrashError` naming the
  failed task.
* **One lifecycle contract.**  Like every registered executor, work
  submitted after :meth:`ClusterExecutor.shutdown` raises
  :class:`~repro.exceptions.ExecutorShutDownError`; shutdown itself is
  idempotent, drains in-flight work, stops the agents it spawned and closes
  the object store.

Wire protocol (all messages are pickled tuples over authenticated
``multiprocessing.connection`` channels; every channel opens with a
``("hello", kind, node_id, store_address)`` frame):

========  =======================================  =========================
channel   driver -> agent                          agent -> driver
========  =======================================  =========================
task      ``("task", function, args)``             ``("ok", result)`` or
                                                   ``("error", pickled,
                                                   repr, traceback)``
ctrl      ``("ping",)`` ``("stats",)``             ``("ok", payload)``
          ``("evict", keys)`` ``("die_after", n)``
          ``("shutdown",)``
store     ``("get", keys)`` (agent -> driver)      ``{key: array}``
========  =======================================  =========================

``die_after`` is a deterministic fault-injection hook: the agent executes
``n`` more tasks, then exits hard *before* replying to the next one —
exactly the mid-call crash the re-dispatch tests need, without racing a
signal against task boundaries.
"""

from __future__ import annotations

import argparse
import itertools
import os
import pickle
import queue
import sys
import threading
import time
import traceback
from collections import OrderedDict
from dataclasses import dataclass, field
from multiprocessing import AuthenticationError, get_context
from multiprocessing.connection import Client, Connection, Listener
from typing import Any, Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, ExecutorShutDownError, WorkerCrashError
from repro.parallel.shared_memory import evict_holder_claims
from repro.utils.validation import check_positive_int

#: Node count when ``"cluster"`` is resolved by name without ``max_workers``.
DEFAULT_CLUSTER_NODES = 2

#: Fault-injection knob (milliseconds): every agent sleeps this long before
#: executing each task, widening the window in which a test can kill a node
#: mid-``serve_sharded``.  Read agent-side per task; unset means no delay.
TASK_DELAY_ENV = "REPRO_CLUSTER_TASK_DELAY_MS"

#: Exit code of an agent killed by the ``die_after`` fault-injection hook.
EXIT_INJECTED_DEATH = 17

_AGENT_START_TIMEOUT = 30.0


# --------------------------------------------------------------------------- #
# Object descriptors
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ClusterArrayRef:
    """Descriptor of one array in the driver's object store (picklable).

    The cluster twin of :class:`~repro.parallel.shared_memory.SharedArraySpec`:
    tasks carry refs, nodes materialise them.  ``attach()`` serves from the
    node's local cache, fetching from the driver store only the first time a
    key reaches the node — this is what makes descriptor serving
    fetch-once-per-node-per-generation.
    """

    key: str
    shape: Tuple[int, ...]
    dtype: str

    @property
    def shm_name(self) -> str:
        """The store key, under the generic "segment name" protocol.

        Name-based machinery written for shared memory (engine caches
        keyed by segment names, attachment-holder claims, eviction) works
        on cluster refs through this alias.
        """
        return self.key

    @property
    def nbytes(self) -> int:
        """Size of the described array in bytes."""
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize

    def attach(self) -> np.ndarray:
        """Materialise the array inside an agent (cached, fetch-once)."""
        return _node_runtime().fetch(self)

    def is_live(self) -> bool:
        """Whether the publication behind this ref is still live (node side)."""
        return _node_runtime().is_live(self.key)


# --------------------------------------------------------------------------- #
# Agent (node) side
# --------------------------------------------------------------------------- #
class _NodeRuntime:
    """Per-agent object cache plus fault-injection and telemetry state.

    One instance per (agent process, driver store) pair — a standalone agent
    that outlives its driver builds a fresh runtime when the next driver's
    hello announces a different store address.
    """

    def __init__(self, store_address: Tuple[str, int], authkey: bytes) -> None:
        self.store_address = tuple(store_address)
        self.authkey = authkey
        self._objects: Dict[str, np.ndarray] = {}
        self._evicted: set = set()
        self.fetch_counts: Dict[str, int] = {}
        self._lock = threading.Lock()
        self.tasks_executed = 0
        self._die_after: Optional[int] = None

    def fetch(self, ref: ClusterArrayRef) -> np.ndarray:
        """The node-local array for ``ref``, fetching from the driver once."""
        with self._lock:
            cached = self._objects.get(ref.key)
        if cached is not None:
            return cached
        connection = Client(self.store_address, authkey=self.authkey)
        try:
            connection.send(("get", [ref.key]))
            payload = connection.recv()
        finally:
            connection.close()
        array = payload.get(ref.key)
        if array is None:
            raise KeyError(
                f"cluster object {ref.key!r} is not in the driver store "
                "(retired or never published)"
            )
        array = np.asarray(array).reshape(ref.shape)
        with self._lock:
            self._objects[ref.key] = array
            self.fetch_counts[ref.key] = self.fetch_counts.get(ref.key, 0) + 1
            self._evicted.discard(ref.key)
        return array

    def is_live(self, key: str) -> bool:
        with self._lock:
            return key not in self._evicted

    def evict(self, keys: Iterable[str]) -> None:
        """Drop cached arrays for retired publications (driver broadcast).

        Worker-side caches built over the arrays (rebuilt engines, sweep
        sides) are asked to drop their entries too, so the next task
        rebuilds from live publications instead of serving stale data.
        """
        keys = list(keys)
        with self._lock:
            for key in keys:
                self._objects.pop(key, None)
                self._evicted.add(key)
        for key in keys:
            evict_holder_claims(key)

    def set_die_after(self, n_tasks: int) -> None:
        with self._lock:
            self._die_after = int(n_tasks)

    def take_death_token(self) -> bool:
        """Whether the injected death fires on the task starting now."""
        with self._lock:
            if self._die_after is None:
                return False
            if self._die_after <= 0:
                return True
            self._die_after -= 1
            return False

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "pid": os.getpid(),
                "tasks_executed": self.tasks_executed,
                "store_keys": sorted(self._objects),
                "fetch_counts": dict(self.fetch_counts),
                "evicted": sorted(self._evicted),
            }


#: The agent process's runtime; rebuilt when a driver with a new object
#: store says hello.  ``None`` outside agent processes — attaching a
#: ClusterArrayRef anywhere else is a programming error and raises.
_NODE_RUNTIME: Optional[_NodeRuntime] = None
_RUNTIME_LOCK = threading.Lock()


def _node_runtime() -> _NodeRuntime:
    runtime = _NODE_RUNTIME
    if runtime is None:
        raise RuntimeError(
            "no cluster node runtime in this process; a ClusterArrayRef can "
            "only be attached inside a cluster agent executing a task"
        )
    return runtime


def _pickle_or_none(error: BaseException) -> Optional[bytes]:
    try:
        return pickle.dumps(error)
    except Exception:
        return None


def _serve_tasks(connection: Connection, runtime: _NodeRuntime) -> None:
    """Execute tasks from one driver connection, one at a time, forever."""
    while True:
        message = connection.recv()
        if not (isinstance(message, tuple) and message and message[0] == "task"):
            continue
        _op, function, args = message
        delay = os.environ.get(TASK_DELAY_ENV)
        if delay:
            try:
                time.sleep(float(delay) / 1000.0)
            except ValueError:
                pass
        if runtime.take_death_token():
            # Injected crash: exit hard before replying, so the driver sees
            # exactly what a dead machine looks like — an in-flight task
            # whose reply never comes.
            os._exit(EXIT_INJECTED_DEATH)
        try:
            result = function(*args)
        except BaseException as error:
            connection.send(
                ("error", _pickle_or_none(error), repr(error), traceback.format_exc())
            )
        else:
            try:
                connection.send(("ok", result))
            except (EOFError, OSError):
                raise
            except Exception as error:
                # The pickling failure happened before any bytes hit the
                # wire (Connection.send serialises first), so the channel
                # is intact — report it as a task error, not a node death.
                connection.send(("error", None, repr(error), traceback.format_exc()))
        runtime.tasks_executed += 1


def _serve_ctrl(
    connection: Connection,
    runtime: _NodeRuntime,
    stop: threading.Event,
    listener: Listener,
) -> None:
    """Answer control requests (evict/ping/stats/fault-injection/shutdown)."""
    while True:
        message = connection.recv()
        op = message[0]
        if op == "ping":
            connection.send(("ok", "pong"))
        elif op == "stats":
            connection.send(("ok", runtime.stats()))
        elif op == "evict":
            runtime.evict(message[1])
            connection.send(("ok", None))
        elif op == "die_after":
            runtime.set_die_after(message[1])
            connection.send(("ok", None))
        elif op == "shutdown":
            connection.send(("ok", None))
            stop.set()
            try:
                listener.close()
            except Exception:
                pass
            return
        else:
            connection.send(("error", None, f"unknown ctrl op {op!r}", ""))


def _serve_channel(
    connection: Connection,
    authkey: bytes,
    stop: threading.Event,
    listener: Listener,
) -> None:
    global _NODE_RUNTIME
    try:
        hello = connection.recv()
    except Exception:
        connection.close()
        return
    if not (isinstance(hello, tuple) and len(hello) == 4 and hello[0] == "hello"):
        connection.close()
        return
    _tag, kind, _node_id, store_address = hello
    with _RUNTIME_LOCK:
        if _NODE_RUNTIME is None or _NODE_RUNTIME.store_address != tuple(store_address):
            _NODE_RUNTIME = _NodeRuntime(store_address, authkey)
        runtime = _NODE_RUNTIME
    try:
        if kind == "task":
            _serve_tasks(connection, runtime)
        else:
            _serve_ctrl(connection, runtime, stop, listener)
    except (EOFError, OSError):
        # The driver went away; a standalone agent stays up for the next one.
        pass
    finally:
        try:
            connection.close()
        except Exception:
            pass


def _serve_agent(listener: Listener, authkey: bytes) -> None:
    """Accept loop of one agent: a thread per channel, until shutdown."""
    stop = threading.Event()
    while not stop.is_set():
        try:
            connection = listener.accept()
        except AuthenticationError:
            continue
        except (OSError, EOFError):
            break
        threading.Thread(
            target=_serve_channel,
            args=(connection, authkey, stop, listener),
            daemon=True,
            name="repro-cluster-channel",
        ).start()
    try:
        listener.close()
    except Exception:
        pass


def _agent_main(
    host: str, port: int, authkey: bytes, ready: Optional[Connection] = None
) -> None:
    """Entry point of a spawned loopback agent process."""
    listener = Listener((host, port), authkey=bytes(authkey))
    if ready is not None:
        ready.send(listener.address)
        ready.close()
    _serve_agent(listener, bytes(authkey))


# --------------------------------------------------------------------------- #
# Driver-side object store
# --------------------------------------------------------------------------- #
class _StoreServer:
    """The driver's object store: a tiny array server nodes fetch from.

    One listener, a thread per connected node; nodes connect lazily on
    their first fetch and requests are answered straight out of the table.
    The store holds the *published* arrays — eviction policy (LRU cap,
    generation retirement) lives in :class:`ClusterExecutor`, which owns
    the table keys.
    """

    def __init__(self, host: str, authkey: bytes) -> None:
        self._listener = Listener((host, 0), authkey=authkey)
        self._objects: Dict[str, np.ndarray] = {}
        self._lock = threading.Lock()
        threading.Thread(
            target=self._accept_loop, daemon=True, name="repro-cluster-store"
        ).start()

    @property
    def address(self) -> Tuple[str, int]:
        return tuple(self._listener.address)

    def _accept_loop(self) -> None:
        while True:
            try:
                connection = self._listener.accept()
            except AuthenticationError:
                continue
            except (OSError, EOFError):
                return
            threading.Thread(
                target=self._serve_client,
                args=(connection,),
                daemon=True,
                name="repro-cluster-store-client",
            ).start()

    def _serve_client(self, connection: Connection) -> None:
        try:
            while True:
                message = connection.recv()
                if not (isinstance(message, tuple) and message and message[0] == "get"):
                    break
                with self._lock:
                    payload = {key: self._objects.get(key) for key in message[1]}
                connection.send(payload)
        except (EOFError, OSError):
            pass
        finally:
            try:
                connection.close()
            except Exception:
                pass

    def put(self, key: str, array: np.ndarray) -> None:
        with self._lock:
            self._objects[key] = array

    def remove(self, key: str) -> None:
        with self._lock:
            self._objects.pop(key, None)

    def close(self) -> None:
        try:
            self._listener.close()
        except Exception:
            pass
        with self._lock:
            self._objects.clear()


# --------------------------------------------------------------------------- #
# Driver-side executor
# --------------------------------------------------------------------------- #
@dataclass
class _NodeHandle:
    """Driver-side view of one agent node."""

    node_id: int
    address: Tuple[str, int]
    process: Optional[Any]  # multiprocessing.Process for spawned agents
    task_conn: Connection
    ctrl_conn: Connection
    ctrl_lock: threading.Lock = field(default_factory=threading.Lock)
    alive: bool = True


class _Call:
    """One map/starmap invocation: slot-addressed results plus a countdown."""

    __slots__ = ("results", "errors", "done", "remaining", "condition")

    def __init__(self, n_tasks: int) -> None:
        self.results: List[Any] = [None] * n_tasks
        self.errors: List[Optional[BaseException]] = [None] * n_tasks
        self.done = [False] * n_tasks
        self.remaining = n_tasks
        self.condition = threading.Condition()

    def complete(
        self, index: int, result: Any = None, error: Optional[BaseException] = None
    ) -> None:
        with self.condition:
            if self.done[index]:
                return
            self.done[index] = True
            self.results[index] = result
            self.errors[index] = error
            self.remaining -= 1
            if self.remaining == 0:
                self.condition.notify_all()


@dataclass
class _QueuedTask:
    call: _Call
    index: int
    function: Callable[..., Any]
    args: Tuple
    attempts: int = 0


class _RemoteTraceback(Exception):
    """Carrier of a remote task's traceback text, attached as ``__cause__``."""

    def __init__(self, text: str) -> None:
        self.text = text

    def __str__(self) -> str:
        return self.text


def _rebuild_remote_error(reply: Tuple) -> BaseException:
    _op, payload, text, remote_traceback = reply
    error: Optional[BaseException] = None
    if payload is not None:
        try:
            error = pickle.loads(payload)
        except Exception:
            error = None
    if error is None:
        error = RuntimeError(f"cluster task failed with an unpicklable exception: {text}")
    error.__cause__ = _RemoteTraceback(
        f"\n--- remote traceback (cluster agent) ---\n{remote_traceback}"
    )
    return error


@dataclass
class _StoreEntry:
    ref: ClusterArrayRef
    pinned: Optional[np.ndarray]
    evictable: bool


def _parse_address(address: Any) -> Tuple[str, int]:
    if isinstance(address, str):
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise ConfigurationError(
                f"cluster agent address must be 'host:port' or (host, port), got {address!r}"
            )
        return (host, int(port))
    if isinstance(address, (tuple, list)) and len(address) == 2:
        return (str(address[0]), int(address[1]))
    raise ConfigurationError(
        f"cluster agent address must be 'host:port' or (host, port), got {address!r}"
    )


_CLUSTER_IDS = itertools.count(1)


class ClusterExecutor:
    """RPC executor over N agent nodes with fault-tolerant re-dispatch.

    Registered in the scheduler registry as ``"cluster"``; every consumer of
    the executor protocol (training sweeps, ``serve_sharded``, the serving
    runtime, grid search) can select it by name.  Implements the full
    executor contract — order-stable ``map``/``starmap``, first-failure
    propagation with the remote traceback attached, idempotent
    ``shutdown``, :class:`~repro.exceptions.ExecutorShutDownError` on
    post-shutdown submission — plus the array-publication capability
    (``publish``/``publish_static``/``unpublish``), which is what lets the
    descriptor fast paths treat "8 machines" and "8 local processes" as the
    same shape.

    Parameters
    ----------
    n_nodes:
        How many loopback agent processes to spawn (default
        :data:`DEFAULT_CLUSTER_NODES`).  Ignored when ``addresses`` is given.
    addresses:
        Addresses (``"host:port"`` or ``(host, port)``) of externally
        started agents (``python -m repro.parallel.cluster --authkey ...``).
        Requires ``authkey``.
    authkey:
        Shared HMAC secret for every channel.  Defaults to a fresh random
        key for spawned agents; mandatory for external ones.
    task_timeout:
        Seconds a node may stay silent on an in-flight task before the
        driver declares it dead and re-dispatches the task.
    max_task_retries:
        How many times one task may be re-dispatched after node deaths
        before it fails with :class:`~repro.exceptions.WorkerCrashError`.
    max_objects:
        Soft LRU cap on concurrently published objects, mirroring the
        shared-memory executor's ``max_segments`` (non-evictable
        publications are never silently dropped).
    store_host:
        Interface the object store binds; make it externally reachable
        (and routable from the agents) for true multi-machine runs.
    """

    def __init__(
        self,
        n_nodes: Optional[int] = None,
        *,
        addresses: Optional[Sequence[Any]] = None,
        authkey: Optional[bytes] = None,
        task_timeout: float = 120.0,
        ctrl_timeout: float = 30.0,
        max_task_retries: int = 3,
        max_objects: int = 256,
        store_host: str = "127.0.0.1",
    ) -> None:
        if task_timeout <= 0:
            raise ConfigurationError("task_timeout must be positive")
        if max_task_retries < 0:
            raise ConfigurationError("max_task_retries must be non-negative")
        if max_objects < 1:
            raise ConfigurationError("max_objects must be at least 1")
        self._task_timeout = float(task_timeout)
        self._ctrl_timeout = float(ctrl_timeout)
        self._max_task_retries = int(max_task_retries)
        self._max_objects = int(max_objects)
        self._uid = f"{os.getpid()}-{next(_CLUSTER_IDS)}"
        self._store_key_counter = itertools.count(1)
        self._objects: "OrderedDict[Hashable, _StoreEntry]" = OrderedDict()
        self._objects_lock = threading.RLock()
        self._tasks: "queue.Queue[_QueuedTask]" = queue.Queue()
        self._nodes: List[_NodeHandle] = []
        self._nodes_lock = threading.Lock()
        self._runners: List[threading.Thread] = []
        self._shut_down = False
        self._stopping = False
        self._lifecycle_lock = threading.Lock()

        if addresses is not None:
            if authkey is None:
                raise ConfigurationError(
                    "connecting to externally started agents requires their authkey"
                )
            self._authkey = bytes(authkey)
            agent_plan = [(_parse_address(address), None) for address in addresses]
            if not agent_plan:
                raise ConfigurationError("addresses must name at least one agent")
        else:
            if n_nodes is None:
                n_nodes = DEFAULT_CLUSTER_NODES
            n_nodes = check_positive_int(n_nodes, "n_nodes")
            self._authkey = bytes(authkey) if authkey is not None else os.urandom(16)
            agent_plan = []

        self._store = _StoreServer(store_host, self._authkey)
        try:
            if not agent_plan:
                agent_plan = [self._spawn_local_agent(i) for i in range(n_nodes)]
            for node_id, (address, process) in enumerate(agent_plan):
                self._nodes.append(self._connect_node(node_id, address, process))
            for node in self._nodes:
                self._ctrl_request(node, ("ping",))
        except BaseException:
            self._emergency_teardown()
            raise
        #: Executor-protocol attribute: consumers size their shard counts on
        #: it (one shard wave spans the nodes), exactly like the pools.
        self.max_workers = len(self._nodes)
        for node in self._nodes:
            runner = threading.Thread(
                target=self._node_loop,
                args=(node,),
                daemon=True,
                name=f"repro-cluster-node-{node.node_id}",
            )
            runner.start()
            self._runners.append(runner)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def _spawn_local_agent(self, node_id: int) -> Tuple[Tuple[str, int], Any]:
        # Spawn (not fork): agents must not inherit the driver's threads,
        # locks or BLAS state — they are stand-ins for other machines.
        context = get_context("spawn")
        parent, child = context.Pipe(duplex=False)
        process = context.Process(
            target=_agent_main,
            args=("127.0.0.1", 0, self._authkey, child),
            daemon=True,
            name=f"repro-cluster-agent-{node_id}",
        )
        process.start()
        child.close()
        if not parent.poll(_AGENT_START_TIMEOUT):
            process.kill()
            raise RuntimeError(
                f"cluster agent {node_id} did not report its address within "
                f"{_AGENT_START_TIMEOUT:.0f}s"
            )
        address = tuple(parent.recv())
        parent.close()
        return address, process

    def _connect_node(
        self, node_id: int, address: Tuple[str, int], process: Any
    ) -> _NodeHandle:
        task_conn = Client(address, authkey=self._authkey)
        task_conn.send(("hello", "task", node_id, self._store.address))
        ctrl_conn = Client(address, authkey=self._authkey)
        ctrl_conn.send(("hello", "ctrl", node_id, self._store.address))
        return _NodeHandle(
            node_id=node_id,
            address=tuple(address),
            process=process,
            task_conn=task_conn,
            ctrl_conn=ctrl_conn,
        )

    def _emergency_teardown(self) -> None:
        for node in self._nodes:
            for connection in (node.task_conn, node.ctrl_conn):
                try:
                    connection.close()
                except Exception:
                    pass
            if node.process is not None and node.process.is_alive():
                node.process.kill()
        self._store.close()

    # ------------------------------------------------------------------ #
    # Task execution
    # ------------------------------------------------------------------ #
    def map(self, function: Callable[..., Any], items: Iterable[Any]) -> List[Any]:
        """Apply ``function`` to each item across the nodes, order-stable."""
        return self.starmap(function, [(item,) for item in items])

    def starmap(
        self, function: Callable[..., Any], argument_tuples: Iterable[Sequence[Any]]
    ) -> List[Any]:
        """Apply ``function(*args)`` across the nodes; results keep input order.

        Tasks are pulled round-robin by one runner thread per node (a
        work-sharing queue: a slow or dead node never strands more than its
        in-flight task).  The first task *exception* in submission order
        propagates with the remote traceback attached; node *deaths*
        re-dispatch transparently until the retry budget or the nodes run
        out, then raise :class:`~repro.exceptions.WorkerCrashError`.
        """
        self._check_active()
        tasks = [tuple(args) for args in argument_tuples]
        if not tasks:
            return []
        if not self._live_nodes():
            raise WorkerCrashError(
                "cannot dispatch: every cluster node is dead",
                executor=type(self).__name__,
            )
        call = _Call(len(tasks))
        for index, args in enumerate(tasks):
            self._tasks.put(_QueuedTask(call=call, index=index, function=function, args=args))
        self._await_call(call)
        for error in call.errors:
            if error is not None:
                raise error
        return list(call.results)

    def _await_call(self, call: _Call) -> None:
        while True:
            with call.condition:
                if call.remaining == 0:
                    return
                call.condition.wait(timeout=0.25)
                if call.remaining == 0:
                    return
            # Safety net for the all-nodes-dead races: any task still queued
            # can never run, so fail it now instead of waiting forever.
            if not self._live_nodes():
                self._drain_queue(RuntimeError("every cluster node is dead"))

    def _node_loop(self, node: _NodeHandle) -> None:
        while True:
            try:
                task = self._tasks.get(timeout=0.2)
            except queue.Empty:
                if self._stopping or not node.alive:
                    return
                continue
            if not node.alive:
                # This runner's node was killed between polls; hand the task
                # to a surviving runner.
                self._tasks.put(task)
                return
            try:
                node.task_conn.send(("task", task.function, task.args))
            except (EOFError, OSError) as error:
                self._on_node_death(node, error)
                self._requeue(task, node, error)
                return
            except Exception as error:
                # Serialisation failed before any bytes hit the wire: a task
                # error (unpicklable function/args), not a node death.
                task.call.complete(task.index, error=error)
                continue
            try:
                if not node.task_conn.poll(self._task_timeout):
                    raise TimeoutError(
                        f"cluster node {node.node_id} gave no reply within "
                        f"{self._task_timeout:.1f}s"
                    )
                reply = node.task_conn.recv()
            except (EOFError, OSError, TimeoutError) as error:
                self._on_node_death(node, error)
                self._requeue(task, node, error)
                return
            except Exception as error:
                # The reply frame arrived but would not deserialise; the
                # channel framing is intact, so the node stays live.
                task.call.complete(task.index, error=error)
                continue
            if reply[0] == "ok":
                task.call.complete(task.index, result=reply[1])
            else:
                task.call.complete(task.index, error=_rebuild_remote_error(reply))

    def _requeue(
        self, task: _QueuedTask, node: _NodeHandle, cause: BaseException
    ) -> None:
        task.attempts += 1
        if task.attempts > self._max_task_retries:
            task.call.complete(
                task.index,
                error=WorkerCrashError(
                    f"cluster node {node.node_id} died while executing task "
                    f"{task.index} ({cause!r}); retry budget "
                    f"({self._max_task_retries}) exhausted",
                    executor=type(self).__name__,
                    task_index=task.index,
                ),
            )
            return
        if not self._live_nodes():
            task.call.complete(
                task.index,
                error=WorkerCrashError(
                    f"cluster node {node.node_id} died while executing task "
                    f"{task.index} ({cause!r}); no surviving node to re-dispatch to",
                    executor=type(self).__name__,
                    task_index=task.index,
                ),
            )
            return
        self._tasks.put(task)

    def _on_node_death(self, node: _NodeHandle, cause: BaseException) -> None:
        with self._nodes_lock:
            if not node.alive:
                return
            node.alive = False
        for connection in (node.task_conn, node.ctrl_conn):
            try:
                connection.close()
            except Exception:
                pass
        if node.process is not None and node.process.is_alive():
            # A *hung* (timed-out) local agent is reaped, not abandoned.
            node.process.kill()
        if not self._live_nodes():
            self._drain_queue(cause)

    def _drain_queue(self, cause: BaseException) -> None:
        while True:
            try:
                task = self._tasks.get_nowait()
            except queue.Empty:
                return
            task.call.complete(
                task.index,
                error=WorkerCrashError(
                    f"task {task.index} could not run: every cluster node is dead "
                    f"({cause!r})",
                    executor=type(self).__name__,
                    task_index=task.index,
                ),
            )

    def _live_nodes(self) -> List[_NodeHandle]:
        return [node for node in self._nodes if node.alive]

    # ------------------------------------------------------------------ #
    # Publication (the object-store capability)
    # ------------------------------------------------------------------ #
    def publish(
        self, key: Hashable, array: np.ndarray, evictable: bool = True
    ) -> ClusterArrayRef:
        """Place (or refresh) a published slot in the driver object store.

        Unlike the shared-memory slot (which rewrites bytes in place), a
        refresh mints a fresh store key and retires the old one: node caches
        hold fetched *copies*, so in-place rewriting could never reach them —
        a new key forces exactly one re-fetch per node.
        """
        self._check_publishable()
        array = np.ascontiguousarray(array)
        with self._objects_lock:
            store_key = self._next_store_key()
            ref = ClusterArrayRef(
                key=store_key, shape=tuple(array.shape), dtype=array.dtype.str
            )
            # Snapshot semantics, like the shared-memory memcpy: later caller
            # mutations of `array` must not leak into what nodes fetch.
            self._store.put(store_key, array.copy())
            previous = self._objects.pop(key, None)
            self._objects[key] = _StoreEntry(ref=ref, pinned=None, evictable=evictable)
            retired = [previous.ref.key] if previous is not None else []
            retired.extend(self._collect_over_cap())
        self._retire_store_keys(retired)
        return ref

    def publish_static(self, array: np.ndarray) -> ClusterArrayRef:
        """Publish write-once data, keyed (and pinned) by array identity.

        Republishing the same array object returns the existing ref without
        touching bytes — a fit's plan arrays cross the wire to each node
        once, no matter how many sweeps reference them.
        """
        self._check_publishable()
        array = np.asarray(array)
        if not array.flags.c_contiguous:
            raise ValueError(
                "publish_static requires a C-contiguous array; copy it first "
                "(a non-contiguous source would silently republish every call)"
            )
        key = ("static", id(array))
        with self._objects_lock:
            entry = self._objects.get(key)
            if entry is not None and entry.pinned is array:
                self._objects.move_to_end(key)
                return entry.ref
            store_key = self._next_store_key()
            ref = ClusterArrayRef(
                key=store_key, shape=tuple(array.shape), dtype=array.dtype.str
            )
            self._store.put(store_key, array)  # pinned: serve the source itself
            previous = self._objects.pop(key, None)
            self._objects[key] = _StoreEntry(ref=ref, pinned=array, evictable=True)
            retired = [previous.ref.key] if previous is not None else []
            retired.extend(self._collect_over_cap())
        self._retire_store_keys(retired)
        return ref

    def unpublish(self, key: Hashable) -> bool:
        """Retire one published slot; nodes evict their cached copies.

        Returns whether the key was live.  This is the generation-retirement
        hook: the serving runtime unpublishes an old model version here and
        every node drops that version's arrays (and any engine rebuilt over
        them) on the spot.
        """
        if self._shut_down:
            return False
        with self._objects_lock:
            entry = self._objects.pop(key, None)
        if entry is None:
            return False
        self._retire_store_keys([entry.ref.key])
        return True

    def release_static(self) -> int:
        """Retire every ``publish_static`` slot; returns how many."""
        with self._objects_lock:
            static_keys = [
                key
                for key in self._objects
                if isinstance(key, tuple) and key and key[0] == "static"
            ]
            retired = [self._objects.pop(key).ref.key for key in static_keys]
        self._retire_store_keys(retired)
        return len(static_keys)

    def active_store_keys(self) -> List[str]:
        """Store keys of every live publication (for tests)."""
        with self._objects_lock:
            return [entry.ref.key for entry in self._objects.values()]

    def _next_store_key(self) -> str:
        return f"repro-cluster-{self._uid}-{next(self._store_key_counter)}"

    def _collect_over_cap(self) -> List[str]:
        retired = []
        while len(self._objects) > self._max_objects:
            oldest = next(
                (k for k, entry in self._objects.items() if entry.evictable), None
            )
            if oldest is None:
                break
            retired.append(self._objects.pop(oldest).ref.key)
        return retired

    def _retire_store_keys(self, store_keys: List[str]) -> None:
        if not store_keys:
            return
        for store_key in store_keys:
            self._store.remove(store_key)
        self._broadcast(("evict", list(store_keys)))

    def _check_publishable(self) -> None:
        if self._shut_down:
            raise ExecutorShutDownError(
                "cannot publish to a shut-down ClusterExecutor; objects stored "
                "now would never be retired"
            )

    # ------------------------------------------------------------------ #
    # Control channel
    # ------------------------------------------------------------------ #
    def _ctrl_request(
        self, node: _NodeHandle, message: Tuple, timeout: Optional[float] = None
    ) -> Any:
        timeout = self._ctrl_timeout if timeout is None else timeout
        with node.ctrl_lock:
            node.ctrl_conn.send(message)
            if not node.ctrl_conn.poll(timeout):
                raise TimeoutError(
                    f"cluster node {node.node_id} gave no ctrl reply within {timeout:.1f}s"
                )
            reply = node.ctrl_conn.recv()
        if reply[0] != "ok":
            raise RuntimeError(
                f"ctrl request {message[0]!r} failed on node {node.node_id}: {reply!r}"
            )
        return reply[1]

    def _broadcast(self, message: Tuple) -> None:
        for node in self._live_nodes():
            try:
                self._ctrl_request(node, message)
            except Exception as error:
                self._on_node_death(node, error)

    def node_stats(self) -> Dict[int, Dict[str, Any]]:
        """Per-node telemetry: pid, tasks executed, cached keys, fetch counts."""
        stats = {}
        for node in self._live_nodes():
            try:
                stats[node.node_id] = self._ctrl_request(node, ("stats",))
            except Exception as error:
                self._on_node_death(node, error)
        return stats

    # ------------------------------------------------------------------ #
    # Fault injection (tests and drills)
    # ------------------------------------------------------------------ #
    def kill_node(self, node_id: int) -> None:
        """SIGKILL one locally spawned agent, exactly like a machine loss.

        The node is *not* marked dead here — the dispatch path must discover
        the death itself (EOF or task timeout) and re-dispatch, which is the
        behaviour under test.
        """
        node = self._nodes[node_id]
        if node.process is None:
            raise ConfigurationError(
                "kill_node only works on locally spawned agents; stop external "
                "agents at their own host"
            )
        node.process.kill()

    def inject_death_after(self, node_id: int, n_tasks: int) -> None:
        """Arm a node to exit hard right before replying to its (n+1)-th task."""
        node = self._nodes[node_id]
        self._ctrl_request(node, ("die_after", int(n_tasks)))

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def _check_active(self) -> None:
        if self._shut_down:
            raise ExecutorShutDownError(
                f"cannot submit work to {type(self).__name__} after shutdown()"
            )

    @property
    def is_shut_down(self) -> bool:
        """Whether :meth:`shutdown` has completed."""
        return self._shut_down

    def shutdown(self) -> None:
        """Drain in-flight work, stop the agents, close the object store.

        Idempotent.  New submissions are rejected immediately; queued and
        in-flight tasks finish first (like the pools' drain-on-shutdown),
        then spawned agents are asked to exit (and reaped if they will not),
        connections and the store are closed, and the publication table is
        dropped.
        """
        with self._lifecycle_lock:
            if self._shut_down:
                return
            self._shut_down = True
        self._stopping = True
        for runner in self._runners:
            runner.join()
        for node in self._nodes:
            if node.alive:
                try:
                    self._ctrl_request(node, ("shutdown",), timeout=5.0)
                except Exception:
                    pass
            node.alive = False
            for connection in (node.task_conn, node.ctrl_conn):
                try:
                    connection.close()
                except Exception:
                    pass
        for node in self._nodes:
            if node.process is not None:
                node.process.join(timeout=5.0)
                if node.process.is_alive():
                    node.process.kill()
                    node.process.join(timeout=5.0)
        self._store.close()
        with self._objects_lock:
            self._objects.clear()

    def __enter__(self) -> "ClusterExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "shut down" if self._shut_down else f"{len(self._live_nodes())} live"
        return f"{type(self).__name__}(nodes={len(self._nodes)}, {state})"


# --------------------------------------------------------------------------- #
# Standalone agent CLI
# --------------------------------------------------------------------------- #
def main(argv: Optional[List[str]] = None) -> int:
    """Run one agent in the foreground: ``python -m repro.parallel.cluster``.

    Start one per machine, then point the driver at them::

        # on each worker machine
        python -m repro.parallel.cluster --host 0.0.0.0 --port 9410 --authkey <hex>

        # on the driver
        ClusterExecutor(addresses=["node1:9410", "node2:9410"],
                        authkey=bytes.fromhex("<hex>"),
                        store_host="<driver-ip>")
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.parallel.cluster",
        description="Run one repro cluster agent node in the foreground.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="interface to bind")
    parser.add_argument(
        "--port", type=int, default=0, help="port to bind (0 picks a free one)"
    )
    parser.add_argument(
        "--authkey",
        required=True,
        help="hex-encoded shared secret; the driver must use the same bytes",
    )
    args = parser.parse_args(argv)
    try:
        authkey = bytes.fromhex(args.authkey)
    except ValueError:
        parser.error("--authkey must be a hex string (e.g. from os.urandom(16).hex())")
    listener = Listener((args.host, args.port), authkey=authkey)
    host, port = listener.address
    print(f"repro cluster agent listening on {host}:{port}", flush=True)
    _serve_agent(listener, authkey)
    return 0


if __name__ == "__main__":
    # Under ``python -m repro.parallel.cluster`` this file runs as the
    # ``__main__`` module while task payloads unpickle against the canonical
    # ``repro.parallel.cluster`` instance — two copies of the module-level
    # node runtime.  Delegate to the canonical instance so the runtime the
    # serving loop installs is the one attached descriptors resolve.
    from repro.parallel.cluster import main as _canonical_main

    sys.exit(_canonical_main())
